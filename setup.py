"""Setuptools shim for legacy editable installs (offline environment
lacks the ``wheel`` package required by PEP 660 editable builds)."""

from setuptools import setup

setup()
