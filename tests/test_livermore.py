"""Tests for the Livermore kernel suite."""

import pytest

from repro.compiler import ALL_STRATEGIES, Strategy, compile_loop
from repro.dependence import analyze_loop
from repro.interp import memory_for_loop, run_loop
from repro.ir.verifier import verify_loop
from repro.machine import paper_machine
from repro.workloads.livermore import LIVERMORE_KERNELS


@pytest.fixture(scope="module")
def machine():
    return paper_machine()


@pytest.mark.parametrize("name", sorted(LIVERMORE_KERNELS))
def test_kernels_verify_and_run(name):
    loop = LIVERMORE_KERNELS[name]()
    verify_loop(loop)
    mem = memory_for_loop(loop, seed=1)
    run_loop(loop, mem, 0, 32)


@pytest.mark.parametrize("name", sorted(LIVERMORE_KERNELS))
@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.value)
def test_all_strategies_equivalent(name, strategy, machine):
    loop = LIVERMORE_KERNELS[name]()
    trip = 47
    ref = memory_for_loop(loop, seed=3)
    seq = run_loop(loop, ref, 0, trip)
    compiled = compile_loop(loop, machine, strategy)
    mem = memory_for_loop(loop, seed=3)
    result = compiled.execute(mem, trip)
    assert mem.snapshot_user_arrays() == ref.snapshot_user_arrays(), name
    for key, value in seq.carried.items():
        assert result.carried[key] == pytest.approx(value, abs=1e-12)


class TestVectorizationCharacter:
    def test_k1_fully_parallel(self, machine):
        dep = analyze_loop(LIVERMORE_KERNELS["k1_hydro"](), 2)
        assert all(dep.is_vectorizable(op) for op in dep.loop.body)

    def test_k5_recurrence_serial(self, machine):
        dep = analyze_loop(LIVERMORE_KERNELS["k5_tridiag"](), 2)
        cycle_ops = [op for op in dep.loop.body if dep.in_cycle(op.uid)]
        assert cycle_ops
        assert all(not dep.is_vectorizable(op) for op in cycle_ops)

    def test_k11_scan_serial(self, machine):
        loop = LIVERMORE_KERNELS["k11_first_sum"]()
        base = compile_loop(loop, machine, Strategy.BASELINE)
        sel = compile_loop(loop, machine, Strategy.SELECTIVE)
        # nothing to gain: recurrence bound dominates
        assert sel.ii_per_iteration() == base.ii_per_iteration()

    def test_k7_selective_wins(self, machine):
        loop = LIVERMORE_KERNELS["k7_equation_of_state"]()
        base = compile_loop(loop, machine, Strategy.BASELINE)
        sel = compile_loop(loop, machine, Strategy.SELECTIVE)
        assert sel.ii_per_iteration() < base.ii_per_iteration()

    def test_k3_reduction_benefits_from_reassociation(self, machine):
        loop = LIVERMORE_KERNELS["k3_inner_product"]()
        strict = compile_loop(loop, machine, Strategy.SELECTIVE)
        relaxed = compile_loop(
            loop, machine, Strategy.SELECTIVE, allow_reassociation=True
        )
        assert relaxed.ii_per_iteration() < strict.ii_per_iteration()
