"""Tests for the cycle-level software-pipeline simulator."""

import pytest

from repro.compiler.driver import compile_loop
from repro.compiler.strategies import Strategy
from repro.interp.interpreter import InterpreterError, run_loop
from repro.interp.memory import memory_for_loop
from repro.machine.configs import figure1_machine, paper_machine
from repro.pipeline.kernel import (
    kernel_listing,
    pipeline_listing,
    prologue_epilogue_cycles,
)
from repro.simulate.pipeline_sim import simulate_pipeline
from repro.workloads.generator import generate
from repro.workloads.kernels import ALL_KERNELS


def compiled_unit(loop, machine, strategy):
    compiled = compile_loop(loop, machine, strategy)
    return compiled.units[0]


class TestExecution:
    @pytest.mark.parametrize(
        "kernel", ["dot_product", "saxpy", "stencil3", "relaxation", "sum_and_scale"]
    )
    @pytest.mark.parametrize("strategy", [Strategy.BASELINE, Strategy.SELECTIVE],
                             ids=lambda s: s.value)
    def test_pipeline_matches_interpreter(self, kernel, strategy):
        """Executing the modulo schedule cycle by cycle produces exactly
        the memory image the sequential interpreter produces."""
        machine = paper_machine()
        loop = ALL_KERNELS[kernel]()
        unit = compiled_unit(loop, machine, strategy)
        factor = unit.transform.factor
        trip = 24  # multiple of the factor: no cleanup needed
        ref = memory_for_loop(loop, seed=3)
        run_loop(loop, ref, 0, trip)

        mem = memory_for_loop(loop, seed=3)
        run = simulate_pipeline(unit.schedule, mem, trip // factor)
        assert ref.snapshot_user_arrays() == mem.snapshot_user_arrays()
        # carried scalars (reductions) agree too
        seq = run_loop(loop, memory_for_loop(loop, seed=3), 0, trip)
        for name, value in seq.carried.items():
            assert run.carried[name] == pytest.approx(value, abs=1e-12)

    def test_generated_loops(self):
        machine = paper_machine()
        for archetype, seed in (("stencil", 5), ("mixed", 8), ("fp_chain", 2)):
            loop = generate(archetype, seed)
            unit = compiled_unit(loop, machine, Strategy.SELECTIVE)
            trip = 10 * unit.transform.factor
            ref = memory_for_loop(loop, seed=1)
            run_loop(loop, ref, 0, trip)
            mem = memory_for_loop(loop, seed=1)
            simulate_pipeline(unit.schedule, mem, trip // unit.transform.factor)
            assert ref.snapshot_user_arrays() == mem.snapshot_user_arrays()

    def test_free_communication_machine(self):
        machine = figure1_machine()
        loop = ALL_KERNELS["dot_product"]()
        unit = compiled_unit(loop, machine, Strategy.SELECTIVE)
        mem = memory_for_loop(loop, seed=2)
        run = simulate_pipeline(unit.schedule, mem, 10)
        seq = run_loop(loop, memory_for_loop(loop, seed=2), 0, 20)
        assert run.carried["s"] == pytest.approx(seq.carried["s"])

    def test_zero_iterations(self):
        machine = paper_machine()
        loop = ALL_KERNELS["saxpy"]()
        unit = compiled_unit(loop, machine, Strategy.BASELINE)
        mem = memory_for_loop(loop, seed=2)
        run = simulate_pipeline(unit.schedule, mem, 0)
        assert run.cycles == 0


class TestTimingConsistency:
    @pytest.mark.parametrize("kernel", ["stencil3", "relaxation", "mgrid_resid"])
    def test_makespan_within_model(self, kernel):
        """Measured makespan must not exceed the closed-form model
        (m + stages - 1) * II, and must approach m * II from above."""
        machine = paper_machine()
        loop = ALL_KERNELS[kernel]()
        unit = compiled_unit(loop, machine, Strategy.SELECTIVE)
        m = 20
        mem = memory_for_loop(loop, seed=4)
        run = simulate_pipeline(unit.schedule, mem, m)
        ii = unit.schedule.ii
        stages = unit.schedule.stage_count
        model = (m + stages - 1) * ii
        assert run.cycles <= model
        assert run.cycles >= m * ii

    def test_utilization_bounded(self):
        machine = paper_machine()
        loop = ALL_KERNELS["relaxation"]()
        unit = compiled_unit(loop, machine, Strategy.SELECTIVE)
        mem = memory_for_loop(loop, seed=4)
        run = simulate_pipeline(unit.schedule, mem, 30)
        assert 0.0 < run.utilization <= 1.0


class TestScheduleValidation:
    def test_corrupted_schedule_detected(self):
        """Moving a consumer before its producer must surface as a
        read-before-produce error, not silent wrong answers."""
        machine = paper_machine()
        loop = ALL_KERNELS["dot_product"]()
        unit = compiled_unit(loop, machine, Strategy.BASELINE)
        schedule = unit.schedule
        # find a flow-dependent pair inside one iteration and swap times
        body = schedule.loop.body
        mul = next(op for op in body if op.kind.value == "mul")
        producer = next(
            op for op in body if op.dest is not None and op.dest in mul.srcs
        )
        times = dict(schedule.times)
        times[mul.uid] = 0
        times[producer.uid] = 50
        from dataclasses import replace

        broken = replace(schedule, times=times)
        mem = memory_for_loop(loop, seed=2)
        with pytest.raises(InterpreterError):
            simulate_pipeline(broken, mem, 4)


class TestKernelRendering:
    def test_kernel_listing(self):
        machine = paper_machine()
        loop = ALL_KERNELS["dot_product"]()
        unit = compiled_unit(loop, machine, Strategy.SELECTIVE)
        text = kernel_listing(unit.schedule)
        assert "II=" in text and "cycle 0" in text

    def test_pipeline_listing_phases(self):
        machine = paper_machine()
        loop = ALL_KERNELS["saxpy"]()
        unit = compiled_unit(loop, machine, Strategy.BASELINE)
        text = pipeline_listing(unit.schedule, 6)
        assert "prologue" in text and "kernel" in text and "epilogue" in text
        # every iteration index appears
        for j in range(6):
            assert f"({j})" in text

    def test_prologue_epilogue_cycles(self):
        machine = paper_machine()
        loop = ALL_KERNELS["saxpy"]()
        unit = compiled_unit(loop, machine, Strategy.BASELINE)
        fill, drain = prologue_epilogue_cycles(unit.schedule)
        assert fill == drain
        assert fill == (unit.schedule.stage_count - 1) * unit.schedule.ii
