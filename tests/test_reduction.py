"""Tests for reduction vectorization (Section 6 extension)."""

import pytest

from repro.compiler.driver import compile_loop
from repro.compiler.strategies import Strategy
from repro.dependence.analysis import analyze_loop
from repro.interp.interpreter import run_loop
from repro.interp.memory import memory_for_loop
from repro.ir.builder import LoopBuilder
from repro.ir.operations import OpKind
from repro.ir.types import ScalarType, VectorType
from repro.machine.configs import paper_machine
from repro.vectorize.reduction import (
    combine_lanes,
    reassociable_reductions,
    vectorize_reduction_loop,
)
from repro.workloads.kernels import dot_product, max_abs, sum_and_scale


@pytest.fixture
def machine():
    return paper_machine()


class TestRecognition:
    def test_dot_product_recognized(self, dot_loop):
        dep = analyze_loop(dot_loop, 2)
        reductions = reassociable_reductions(dep)
        assert len(reductions) == 1
        r = next(iter(reductions.values()))
        assert r.kind is OpKind.ADD
        assert r.identity() == 0.0

    def test_max_reduction_recognized(self):
        dep = analyze_loop(max_abs(), 2)
        reductions = reassociable_reductions(dep)
        assert next(iter(reductions.values())).kind is OpKind.MAX

    def test_sub_reduction_not_recognized(self):
        b = LoopBuilder("subred")
        b.array("x", dim_sizes=(512,))
        s = b.carried("s", 0.0)
        xi = b.load("x", b.idx(), name="xi")
        s2 = b.sub(s, xi, name="s2")
        b.carry("s", s2)
        b.live_out(s2)
        dep = analyze_loop(b.build(), 2)
        assert not reassociable_reductions(dep)

    def test_entry_with_second_reader_not_recognized(self):
        b = LoopBuilder("peek")
        b.array("x", dim_sizes=(512,))
        b.array("z", dim_sizes=(512,))
        s = b.carried("s", 0.0)
        xi = b.load("x", b.idx(), name="xi")
        s2 = b.add(s, xi, name="s2")
        b.store("z", b.idx(), s)  # observes the running value
        b.carry("s", s2)
        dep = analyze_loop(b.build(), 2)
        assert not reassociable_reductions(dep)

    def test_exit_consumer_not_recognized(self):
        b = LoopBuilder("observe")
        b.array("x", dim_sizes=(512,))
        b.array("z", dim_sizes=(512,))
        s = b.carried("s", 0.0)
        xi = b.load("x", b.idx(), name="xi")
        s2 = b.add(s, xi, name="s2")
        b.store("z", b.idx(), s2)  # observes every partial sum
        b.carry("s", s2)
        dep = analyze_loop(b.build(), 2)
        assert not reassociable_reductions(dep)

    def test_constant_carried_not_recognized(self, saxpy_loop):
        dep = analyze_loop(saxpy_loop, 2)
        assert not reassociable_reductions(dep)


class TestTransform:
    def test_accumulator_structure(self, dot_loop, machine):
        dep = analyze_loop(dot_loop, 2)
        tr = vectorize_reduction_loop(dep, machine)
        assert tr is not None
        acc_carried = [
            c for c in tr.loop.carried if isinstance(c.entry.type, VectorType)
            and c.entry.name.endswith(".acc")
        ]
        assert len(acc_carried) == 1
        assert acc_carried[0].init == 0.0
        assert tr.reduction_combines == {"s": (OpKind.ADD, "s.acc")}
        # all real work is vector; no transfers needed
        assert tr.n_transfers == 0

    def test_recmii_halves(self, dot_loop, machine):
        base = compile_loop(dot_loop, machine, Strategy.SELECTIVE)
        red = compile_loop(
            dot_loop, machine, Strategy.SELECTIVE, allow_reassociation=True
        )
        assert red.ii_per_iteration() < base.ii_per_iteration()
        # reduction cycle: one vector add (latency 4) per 2 iterations
        assert red.units[0].schedule.rec_mii == 4

    def test_not_applicable_falls_back(self, machine):
        """sum_and_scale stores a value derived from x alongside the
        reduction; the reduction *is* recognizable, so the whole loop
        vectorizes with the extension."""
        loop = sum_and_scale()
        red = compile_loop(loop, machine, Strategy.SELECTIVE, allow_reassociation=True)
        assert red.units[0].transform.reduction_combines

    def test_serial_loop_falls_back_to_partitioning(self, machine):
        from repro.workloads.kernels import first_order_recurrence

        loop = first_order_recurrence()
        red = compile_loop(loop, machine, Strategy.SELECTIVE, allow_reassociation=True)
        assert not red.units[0].transform.reduction_combines
        assert red.partition is not None


class TestSemantics:
    @pytest.mark.parametrize("trip", [0, 1, 2, 5, 50, 101])
    def test_float_sum_matches_reassociated_reference(self, machine, trip):
        loop = dot_product()
        red = compile_loop(loop, machine, Strategy.SELECTIVE, allow_reassociation=True)
        mem = memory_for_loop(loop, seed=5)
        result = red.execute(mem, trip)
        seq = run_loop(loop, memory_for_loop(loop, seed=5), 0, trip)
        assert result.carried["s"] == pytest.approx(seq.carried["s"], rel=1e-12)

    @pytest.mark.parametrize("trip", [0, 1, 7, 64, 99])
    def test_max_reduction_exact(self, machine, trip):
        loop = max_abs()
        red = compile_loop(loop, machine, Strategy.SELECTIVE, allow_reassociation=True)
        mem = memory_for_loop(loop, seed=8)
        result = red.execute(mem, trip)
        seq = run_loop(loop, memory_for_loop(loop, seed=8), 0, trip)
        assert result.carried["m"] == seq.carried["m"]

    def test_integer_sum_exact(self, machine):
        b = LoopBuilder("isum")
        b.array("x", dtype=ScalarType.I64, dim_sizes=(512,))
        s = b.carried("s", 0, ScalarType.I64)
        xi = b.load("x", b.idx(), name="xi")
        s2 = b.add(s, xi, name="s2")
        b.carry("s", s2)
        b.live_out(s2)
        loop = b.build()
        red = compile_loop(loop, machine, Strategy.SELECTIVE, allow_reassociation=True)
        mem = memory_for_loop(loop, seed=3)
        result = red.execute(mem, 77)
        assert result.carried["s"] == sum(mem.arrays["x"][:77])

    def test_nonzero_initial_value_folded(self, machine):
        loop = dot_product()
        red = compile_loop(loop, machine, Strategy.SELECTIVE, allow_reassociation=True)
        # execute() seeds carried state from the loop's declared init (0.0)
        # — the combine must include it, so a second invocation continues
        # accumulating from the first invocation's total.
        mem = memory_for_loop(loop, seed=4)
        first = red.execute(mem, 40)
        total_after_40 = first.carried["s"]
        seq = run_loop(loop, memory_for_loop(loop, seed=4), 0, 40)
        assert total_after_40 == pytest.approx(seq.carried["s"], rel=1e-12)

    def test_memory_side_effects_match(self, machine):
        loop = sum_and_scale()
        ref = memory_for_loop(loop, seed=6)
        run_loop(loop, ref, 0, 83)
        red = compile_loop(loop, machine, Strategy.SELECTIVE, allow_reassociation=True)
        mem = memory_for_loop(loop, seed=6)
        red.execute(mem, 83)
        assert ref.snapshot_user_arrays() == mem.snapshot_user_arrays()


class TestCombineLanes:
    def test_add(self):
        assert combine_lanes(OpKind.ADD, (1.0, 2.0), 10.0) == 13.0

    def test_mul(self):
        assert combine_lanes(OpKind.MUL, (2.0, 3.0), 2.0) == 12.0

    def test_min_max(self):
        assert combine_lanes(OpKind.MIN, (5.0, -2.0), 1.0) == -2.0
        assert combine_lanes(OpKind.MAX, (5.0, -2.0), 7.0) == 7.0

    def test_rejects_non_reduction(self):
        with pytest.raises(ValueError):
            combine_lanes(OpKind.SUB, (1.0,), 0.0)
