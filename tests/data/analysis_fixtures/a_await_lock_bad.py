"""A-AWAIT-LOCK violation: blocking .result() and .acquire() waits
stall the whole event loop, starving every other connection."""


async def handle(future, lock) -> object:
    lock.acquire()
    try:
        return future.result()
    finally:
        lock.release()
