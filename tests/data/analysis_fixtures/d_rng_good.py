"""D-RNG compliant twin: the RNG is seeded from the request, so every
run draws the identical sequence."""

import random


def entry(items: list, seed: int) -> list:
    rng = random.Random(seed)
    return [rng.random() for _ in items]
