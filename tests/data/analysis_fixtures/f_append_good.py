"""F-APPEND compliant twin: one os.write on an O_APPEND fd — the
kernel appends the whole buffer atomically, so concurrent appenders
interleave complete lines, never halves."""

import os


def append_line(path: str, line: str) -> None:
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, (line + "\n").encode("utf-8"))
    finally:
        os.close(fd)
