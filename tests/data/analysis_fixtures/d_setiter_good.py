"""D-SETITER compliant twin: the set is only used for membership and
dedup; anything ordered goes through sorted()."""


def entry(items: list) -> list:
    seen = set(items)
    return sorted(seen)
