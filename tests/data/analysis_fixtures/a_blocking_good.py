"""A-BLOCKING compliant twin: waits are awaited and file IO is
offloaded — a function *reference* handed to to_thread never becomes a
synchronous call edge, so the helper stays off the event loop."""

import asyncio


async def handle(path: str) -> str:
    await asyncio.sleep(0.1)
    return await asyncio.to_thread(read_file, path)


def read_file(path: str) -> str:
    with open(path, encoding="utf-8") as f:
        return f.read()
