"""F-ATOMIC compliant twin: serialize to a sibling tempfile, then
os.replace — readers only ever see a complete old or new file."""

import json
import os
import tempfile


def write_entry(path: str, payload: dict) -> None:
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path) or ".")
    with os.fdopen(fd, "w", encoding="utf-8") as f:
        json.dump(payload, f)
    os.replace(tmp, path)
