"""K-FORK-STATE violation: module-level mutable state mutated around a
ProcessPoolExecutor — children fork a snapshot that silently diverges
from the parent's copy."""

from concurrent.futures import ProcessPoolExecutor

_RESULTS: dict = {}


def work(item: int) -> int:
    return item * 2


def run(items: list) -> dict:
    with ProcessPoolExecutor() as pool:
        for item, value in zip(items, pool.map(work, items)):
            _RESULTS[item] = value
    return _RESULTS
