"""K-FORK-STATE compliant twin: results flow through return values;
nothing module-level is mutated on either side of the fork."""

from concurrent.futures import ProcessPoolExecutor


def work(item: int) -> int:
    return item * 2


def run(items: list) -> dict:
    with ProcessPoolExecutor() as pool:
        return dict(zip(items, pool.map(work, items)))
