"""K-FORK-LOCK compliant twin: parent-side coordination uses a
function-local lock that never crosses the fork; workers are pure."""

import threading
from concurrent.futures import ProcessPoolExecutor


def work(item: int) -> int:
    return item * 2


def run(items: list) -> list:
    progress_lock = threading.Lock()  # local: dies with this frame
    out = []
    with ProcessPoolExecutor() as pool:
        for value in pool.map(work, items):
            with progress_lock:
                out.append(value)
    return out
