"""D-WALLCLOCK compliant twin: the timestamp is an *input*, stamped by
the caller outside the deterministic path."""


def entry(loops: list, stamp: float) -> dict:
    return {"loops": len(loops), "stamp": normalize(stamp)}


def normalize(stamp: float) -> float:
    return round(stamp, 3)
