"""K-FORK-LOCK violation: a module-level lock captured across the fork
— a child forked while the parent holds it inherits a locked lock no
one will ever release (deadlock)."""

import threading
from concurrent.futures import ProcessPoolExecutor

_LOCK = threading.Lock()


def work(item: int) -> int:
    with _LOCK:
        return item * 2


def run(items: list) -> list:
    with ProcessPoolExecutor() as pool:
        return list(pool.map(work, items))
