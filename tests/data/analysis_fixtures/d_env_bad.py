"""D-ENV violation: an environment variable steers a deterministic
path, so two hosts can compute different answers for the same input."""

import os


def entry(items: list) -> list:
    mode = os.environ.get("FX_MODE", "fast")
    if mode == "fast":
        return items
    return list(reversed(items))
