"""D-RNG violation: module-global RNG and an unseeded Random()."""

import random


def entry(items: list) -> list:
    jitter = random.random()
    rng = random.Random()
    return [jitter, rng]
