"""D-WALLCLOCK violation: a deterministic payload stamped with now()."""

import time


def entry(loops: list) -> dict:
    return {"loops": len(loops), "stamp": stamp()}


def stamp() -> float:
    return time.time()
