"""D-ENV compliant twin: the knob is part of the explicit request
config, captured in cache keys and digests."""


def entry(items: list, mode: str) -> list:
    if mode == "fast":
        return items
    return list(reversed(items))
