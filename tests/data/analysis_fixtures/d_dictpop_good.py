"""D-DICTPOP compliant twin: removal targets a *named* key, so the
choice of element is deterministic."""


def entry(table: dict, keys: list) -> tuple:
    key = min(keys)
    value = table.pop(key)
    return key, value
