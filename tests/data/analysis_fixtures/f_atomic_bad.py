"""F-ATOMIC violation: a shared artifact written in place — a reader
(or a crash) can observe a torn, half-written file."""

import json


def write_entry(path: str, payload: dict) -> None:
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f)
