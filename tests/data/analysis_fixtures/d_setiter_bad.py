"""D-SETITER violation: unordered set iteration order reaches the
result (hash order differs across processes under PYTHONHASHSEED)."""


def entry(items: list) -> list:
    seen = set(items)
    return [item for item in seen]
