"""A-AWAIT-LOCK compliant twin: asyncio primitives are awaited, so the
loop keeps serving other work while this handler waits."""

import asyncio


async def handle(future: asyncio.Future, lock: asyncio.Lock) -> object:
    async with lock:
        return await future
