"""F-APPEND violation: buffered 'a'-mode appends from concurrent
processes can interleave partial lines."""


def append_line(path: str, line: str) -> None:
    with open(path, "a", encoding="utf-8") as f:
        f.write(line + "\n")
