"""A-BLOCKING violation: a coroutine sleeps synchronously and calls a
sync helper that does file IO on the event loop."""

import time


async def handle(path: str) -> str:
    time.sleep(0.1)
    return read_file(path)


def read_file(path: str) -> str:
    with open(path, encoding="utf-8") as f:
        return f.read()
