"""D-DICTPOP violation: popitem()/set.pop() remove arbitrary elements."""


def entry(table: dict, keys: list) -> tuple:
    last = table.popitem()
    pending = set(keys)
    first = pending.pop()
    return last, first
