"""The deterministic profiler, differential profiler, progress monitor,
and perf-history tool."""

from __future__ import annotations

import io
import json
import subprocess

import pytest

from repro.compiler.driver import compile_loop
from repro.compiler.strategies import Strategy
from repro.evaluation.experiments import CompileTelemetry, Evaluator
from repro.machine.configs import figure1_machine
from repro.observability import recording
from repro.profiling import (
    EFFORT_COUNTER_MAP,
    PhaseProfile,
    Profile,
    ProgressMonitor,
    check_profile,
    diff_profiles,
    effort_deltas,
    load_profile,
    render_diff,
    render_tree,
    to_collapsed,
    to_speedscope,
    write_profile,
)
from repro.profiling.__main__ import main as profiling_main
from repro.profiling.history import perf_history, render_history
from repro.workloads.kernels import dot_product

FIGURE1_STRATEGIES = (
    Strategy.BASELINE,
    Strategy.TRADITIONAL,
    Strategy.FULL,
    Strategy.SELECTIVE,
)


def figure1_profile() -> tuple[Profile, CompileTelemetry]:
    """Compile the Figure 1 example under every strategy inside one
    recording session: the profile and the flat telemetry it must match."""
    machine = figure1_machine()
    loop = dot_product()
    telemetry = CompileTelemetry()
    with recording() as rec:
        for strategy in FIGURE1_STRATEGIES:
            compiled = compile_loop(
                loop,
                machine,
                strategy,
                baseline_unroll=1 if strategy is Strategy.BASELINE else None,
            )
            telemetry.absorb(compiled)
    return Profile.from_recorder(rec), telemetry


class TestProfileFromRecorder:
    def test_figure1_effort_counters_match_flat_telemetry_exactly(self):
        # The acceptance invariant: every effort counter, summed over the
        # profile's per-phase attribution, equals the flat
        # CompileTelemetry total exactly.  (Holds because figure1 needs
        # no regalloc II-retries; retried schedules would make recorder
        # attempts exceed the telemetry, which only absorbs the final
        # schedule's attempts.)
        profile, telemetry = figure1_profile()
        totals = profile.counter_totals()
        for field, counter in EFFORT_COUNTER_MAP.items():
            assert totals.get(counter, 0) == getattr(telemetry, field), (
                f"{counter} attributed in the profile tree disagrees with "
                f"CompileTelemetry.{field}"
            )

    def test_profile_counters_reproduce_flat_registry(self):
        machine = figure1_machine()
        with recording() as rec:
            compile_loop(dot_product(), machine, Strategy.SELECTIVE)
            rec.count("outside.any_span", 3)
        profile = Profile.from_recorder(rec)
        assert profile.counter_totals() == rec.stats.counters
        # Counters fired outside spans land on the synthetic root.
        assert profile.root.counters["outside.any_span"] == 3

    def test_invariants_hold_and_self_times_sum_to_total(self):
        profile, _ = figure1_profile()
        assert check_profile(profile) == []
        assert profile.self_ns_sum() == profile.total_ns

    def test_phase_paths_are_unique_and_nested(self):
        profile, _ = figure1_profile()
        phases = profile.phases()
        assert "compile_loop" in phases
        assert "compile_loop/compile_unit/modulo_schedule" in phases
        sched = phases["compile_loop/compile_unit/modulo_schedule"]
        assert sched.counters.get("sched.ii_attempts", 0) > 0

    def test_json_round_trip(self, tmp_path):
        profile, _ = figure1_profile()
        path = tmp_path / "p.json"
        write_profile(profile, str(path))
        loaded = load_profile(str(path))
        assert loaded.to_dict() == profile.to_dict()

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "not_a_profile.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError, match="kind"):
            load_profile(str(path))


class TestExporters:
    def test_render_tree_lists_phases_and_counters(self):
        profile, _ = figure1_profile()
        text = render_tree(profile, counters=True)
        assert "compile_loop" in text
        assert "modulo_schedule" in text
        assert "sched.ii_attempts" in text
        assert "100.0%" in text

    def test_collapsed_stack_weights_are_self_times(self):
        profile, _ = figure1_profile()
        total_us = 0
        for line in to_collapsed(profile).splitlines():
            stack, weight = line.rsplit(" ", 1)
            assert stack
            total_us += int(weight)
        # Collapsed weights are floor-divided to microseconds, so they
        # can only undershoot the exact nanosecond self-time sum.
        assert 0 < total_us * 1000 <= profile.self_ns_sum()

    def test_speedscope_document_shape(self):
        profile, _ = figure1_profile()
        doc = to_speedscope(profile)
        assert doc["$schema"].startswith("https://www.speedscope.app")
        prof = doc["profiles"][0]
        assert prof["type"] == "sampled"
        assert len(prof["samples"]) == len(prof["weights"])
        assert sum(prof["weights"]) == prof["endValue"]


def _leaf(path: str, total_ns: int, counters=None) -> PhaseProfile:
    name = path.rsplit("/", 1)[-1]
    return PhaseProfile(
        name=name,
        path=path,
        calls=1,
        total_ns=total_ns,
        self_ns=total_ns,
        counters=dict(counters or {}),
    )


def _profile_of(*leaves: PhaseProfile) -> Profile:
    root = PhaseProfile("(session)", "", calls=1)
    for leaf in leaves:
        root.children[leaf.name] = leaf
    root.total_ns = sum(leaf.total_ns for leaf in leaves)
    return Profile(root=root)


class TestDiff:
    def test_self_diff_reports_zero_deltas(self):
        profile, _ = figure1_profile()
        deltas = diff_profiles(profile, profile)
        assert effort_deltas(deltas) == []
        assert not any(d.wall_significant for d in deltas)
        assert "0 effort counter delta(s)" in render_diff(deltas)

    def test_wall_noise_below_thresholds_is_insignificant(self):
        a = _profile_of(_leaf("sched", 10_000_000))
        b = _profile_of(_leaf("sched", 11_000_000))  # +10 %, +1 ms
        (root_d, d) = diff_profiles(a, b, wall_rel=0.20, wall_abs_ms=1.0)
        assert d.path == "sched"
        assert not d.significant

    def test_wall_change_needs_both_relative_and_absolute(self):
        # +50 % but only +0.5 ms: absolute threshold filters it.
        a = _profile_of(_leaf("sched", 1_000_000))
        b = _profile_of(_leaf("sched", 1_500_000))
        assert not diff_profiles(a, b)[1].wall_significant
        # +2 ms but only +2 %: relative threshold filters it.
        a = _profile_of(_leaf("sched", 100_000_000))
        b = _profile_of(_leaf("sched", 102_000_000))
        assert not diff_profiles(a, b)[1].wall_significant
        # +50 % and +5 ms: significant.
        a = _profile_of(_leaf("sched", 10_000_000))
        b = _profile_of(_leaf("sched", 15_000_000))
        d = diff_profiles(a, b)[1]
        assert d.wall_significant
        assert d.ratio == pytest.approx(1.5)

    def test_effort_deltas_are_exact(self):
        a = _profile_of(_leaf("sched", 5_000_000, {"sched.ii_attempts": 44}))
        b = _profile_of(_leaf("sched", 5_000_000, {"sched.ii_attempts": 45}))
        deltas = diff_profiles(a, b)
        effort = effort_deltas(deltas)
        assert len(effort) == 1
        assert effort[0].counter_deltas == {"sched.ii_attempts": (44, 45)}
        assert "44 -> 45 (+1)" in render_diff(deltas)

    def test_phase_missing_on_one_side_compares_against_zero(self):
        a = _profile_of(_leaf("sched", 5_000_000))
        b = _profile_of(
            _leaf("sched", 5_000_000),
            _leaf("oracle_certify", 9_000_000, {"oracle.partition_nodes": 7}),
        )
        by_path = {d.path: d for d in diff_profiles(a, b)}
        new = by_path["oracle_certify"]
        assert new.a_total_ns == 0 and new.wall_significant
        assert new.ratio == float("inf")
        assert new.counter_deltas == {"oracle.partition_nodes": (0, 7)}


class TestProgressMonitor:
    def _monitor(self, **kwargs):
        clock = iter(float(t) for t in range(0, 10_000))
        return ProgressMonitor(clock=lambda: next(clock), **kwargs)

    def test_counts_eta_and_cache_rate(self):
        monitor = self._monitor(total=10, interval_s=1e9)
        for i in range(4):
            monitor.tick(f"L{i}", "selective", wall_ms=100.0, cache_hit=i % 2 == 0)
        assert monitor.done == 4
        assert monitor.cache_hit_rate == pytest.approx(0.5)
        # Fake clock ticks 1 s per call; EMA of a constant rate is exact.
        assert monitor.eta_s() == pytest.approx(6 * monitor._ema_s)
        snap = monitor.snapshot()
        assert snap["done"] == 4 and snap["total"] == 10
        assert snap["eta_s"] is not None

    def test_stragglers_keep_the_slowest(self):
        monitor = self._monitor(stragglers=2)
        for i, wall in enumerate([5.0, 50.0, 1.0, 30.0]):
            monitor.tick(f"L{i}", "full", wall_ms=wall)
        assert monitor.stragglers() == [("L1/full", 50.0), ("L3/full", 30.0)]

    def test_per_strategy_effort_accumulates(self):
        monitor = self._monitor()
        monitor.tick("L0", "selective", effort={"kl_pack_steps": 100})
        monitor.tick("L1", "selective", effort={"kl_pack_steps": 20})
        monitor.tick("L0", "baseline", effort={"sched_attempts": 2})
        assert monitor.effort_by_strategy == {
            "selective": {"kl_pack_steps": 120},
            "baseline": {"sched_attempts": 2},
        }

    def test_heartbeats_respect_interval_and_reach_both_sinks(self, tmp_path):
        stream = io.StringIO()
        json_path = tmp_path / "progress.jsonl"
        monitor = self._monitor(
            total=6, stream=stream, json_path=str(json_path), interval_s=2.5
        )
        for i in range(6):
            monitor.tick(f"L{i}", "selective", wall_ms=10.0)
        monitor.finish()
        lines = [ln for ln in stream.getvalue().splitlines() if ln]
        assert lines and all(ln.startswith("[progress]") for ln in lines)
        assert "6/6 loops (100.0%)" in lines[-1]
        payloads = [
            json.loads(ln) for ln in json_path.read_text().splitlines()
        ]
        assert payloads[-1]["done"] == 6
        assert payloads[-1]["stragglers"][0]["wall_ms"] == 10.0
        # One tick per clock second, 2.5 s interval: not every tick emits.
        assert len(payloads) < 6 + 1

    def test_require_tty_suppresses_non_tty_stream(self):
        stream = io.StringIO()  # not a terminal
        monitor = self._monitor(
            total=4, stream=stream, interval_s=0.0, require_tty=True
        )
        for i in range(4):
            monitor.tick(f"L{i}", "selective")
        monitor.finish()
        assert stream.getvalue() == ""
        # The heartbeats still fired (JSON sinks would have been fed).
        assert monitor.heartbeats > 0

    def test_require_tty_emits_on_a_terminal(self):
        class FakeTty(io.StringIO):
            def isatty(self):
                return True

        stream = FakeTty()
        monitor = self._monitor(
            total=2, stream=stream, interval_s=0.0, require_tty=True
        )
        monitor.tick("L0", "selective")
        monitor.finish()
        assert "[progress]" in stream.getvalue()

    def test_explicit_progress_ignores_tty_state(self):
        stream = io.StringIO()
        monitor = self._monitor(
            total=2, stream=stream, interval_s=0.0, require_tty=False
        )
        monitor.tick("L0", "selective")
        monitor.finish()
        assert "[progress]" in stream.getvalue()

    def test_evaluator_ticks_progress_including_cache_hits(self, tmp_path):
        monitor = ProgressMonitor(stream=None, interval_s=1e9)
        evaluator = Evaluator(
            compile_cache=str(tmp_path / "cache"), progress=monitor
        )
        evaluator.prewarm(("101.tomcatv",))
        first_total = monitor.total
        assert monitor.done == first_total > 0
        assert monitor.cache_hits == 0
        assert "selective" in monitor.effort_by_strategy
        # A second evaluator over the same cache ticks pure hits.
        warm = ProgressMonitor(stream=None, interval_s=1e9)
        Evaluator(
            compile_cache=str(tmp_path / "cache"), progress=warm
        ).prewarm(("101.tomcatv",))
        assert warm.done == warm.cache_hits == first_total


class TestHistory:
    @pytest.fixture
    def history_repo(self, tmp_path):
        repo = str(tmp_path / "repo")
        env_git = ["git", "-C", repo]

        def run(*argv):
            subprocess.run(argv, check=True, capture_output=True)

        run("git", "init", "-q", repo)
        run(*env_git, "config", "user.email", "t@example.com")
        run(*env_git, "config", "user.name", "t")
        for steps, wall in ((100, 0.5), (180, 0.9)):
            (tmp_path / "repo" / "BENCH_compile_perf.json").write_text(
                json.dumps(
                    {
                        "loops": 36,
                        "wall_s": wall,
                        "effort": {
                            "kl_pack_steps": steps,
                            "sched_attempts": 44,
                        },
                    }
                )
            )
            run(*env_git, "add", "BENCH_compile_perf.json")
            run(*env_git, "commit", "-q", "-m", f"perf at {steps}")
        return repo

    def test_history_rows_newest_first(self, history_repo):
        rows = perf_history(history_repo)
        assert [r.effort["kl_pack_steps"] for r in rows] == [180, 100]
        assert rows[0].wall_s == pytest.approx(0.9)
        assert all(r.loops == 36 for r in rows)

    def test_render_history_flags_effort_changes(self, history_repo):
        text = render_history(perf_history(history_repo))
        assert "kl_pack_steps" in text
        assert "100 -> 180 (+80)" in text

    def test_repo_artifact_parses_across_committed_history(self):
        rows = perf_history(".", limit=3)
        assert rows, "committed BENCH_compile_perf.json should have history"
        for row in rows:
            assert row.effort.get("sched_attempts", 0) > 0

    def test_exactly_two_subprocesses_regardless_of_history(
        self, history_repo, monkeypatch
    ):
        """The history walk is one ``git log`` plus one ``git cat-file
        --batch`` — never a ``git show`` per commit."""
        import repro.profiling.history as history_mod

        calls: list[list[str]] = []
        real_run = subprocess.run

        def counting_run(argv, *args, **kwargs):
            calls.append(list(argv))
            return real_run(argv, *args, **kwargs)

        monkeypatch.setattr(history_mod.subprocess, "run", counting_run)
        rows = perf_history(history_repo)
        assert [r.effort["kl_pack_steps"] for r in rows] == [180, 100]
        assert len(calls) == 2
        assert calls[0][:2] == ["git", "-C"] and "log" in calls[0]
        assert calls[1][-2:] == ["cat-file", "--batch"]

    def test_cat_file_batch_resolves_missing_objects(self, history_repo):
        from repro.profiling.history import _cat_file_batch

        sha = subprocess.run(
            ["git", "-C", history_repo, "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        good = f"{sha}:BENCH_compile_perf.json"
        missing = f"{sha}:no-such-file.json"
        blobs = _cat_file_batch(history_repo, [good, missing, good])
        assert blobs[missing] is None
        document = json.loads(blobs[good])
        assert document["effort"]["kl_pack_steps"] == 180
        assert _cat_file_batch(history_repo, []) == {}

    def test_broken_commits_warn_and_skip(self, history_repo, tmp_path):
        """A briefly broken artifact never aborts the timeline: the bad
        commits are skipped with a warning, the healthy ones survive."""
        env_git = ["git", "-C", history_repo]

        def run(*argv):
            subprocess.run(argv, check=True, capture_output=True)

        artifact = tmp_path / "repo" / "BENCH_compile_perf.json"
        artifact.write_text('{"loops": 36, "wall_s"')  # truncated JSON
        run(*env_git, "add", "BENCH_compile_perf.json")
        run(*env_git, "commit", "-q", "-m", "broken artifact")
        artifact.write_text(
            json.dumps(
                {"loops": "not-a-number", "wall_s": 0.4, "effort": {}}
            )
        )
        run(*env_git, "add", "BENCH_compile_perf.json")
        run(*env_git, "commit", "-q", "-m", "malformed fields")

        warnings: list[str] = []
        rows = perf_history(history_repo, warn=warnings.append)
        assert [r.effort["kl_pack_steps"] for r in rows] == [180, 100]
        assert any("unparsable" in w for w in warnings)
        assert any("malformed" in w for w in warnings)
        # render_history still works over the surviving rows.
        assert "kl_pack_steps" in render_history(rows)


class TestProfilingCLI:
    @pytest.fixture
    def profile_path(self, tmp_path):
        profile, _ = figure1_profile()
        path = tmp_path / "profile.json"
        write_profile(profile, str(path))
        return str(path)

    def test_show(self, profile_path, capsys):
        assert profiling_main(["show", profile_path, "--counters"]) == 0
        out = capsys.readouterr().out
        assert "compile_loop" in out and "sched.ii_attempts" in out

    def test_check(self, profile_path, capsys):
        assert profiling_main(["check", profile_path]) == 0
        assert "invariants hold" in capsys.readouterr().out

    def test_self_diff_exits_zero_under_fail_on_effort(
        self, profile_path, capsys
    ):
        assert (
            profiling_main(
                ["diff", profile_path, profile_path, "--fail-on-effort"]
            )
            == 0
        )
        assert "0 effort counter delta(s)" in capsys.readouterr().out

    def test_diff_fails_on_effort_regression(
        self, profile_path, tmp_path, capsys
    ):
        regressed = load_profile(profile_path)
        node = regressed.phases()["compile_loop/compile_unit/modulo_schedule"]
        node.counters["sched.ii_attempts"] += 5
        other = tmp_path / "regressed.json"
        write_profile(regressed, str(other))
        assert (
            profiling_main(
                ["diff", profile_path, str(other), "--fail-on-effort"]
            )
            == 1
        )
        assert "(+5)" in capsys.readouterr().out

    def test_export_speedscope_and_collapsed(
        self, profile_path, tmp_path, capsys
    ):
        out_path = tmp_path / "p.speedscope.json"
        assert (
            profiling_main(
                ["export", profile_path, "--format", "speedscope",
                 "-o", str(out_path)]
            )
            == 0
        )
        doc = json.loads(out_path.read_text())
        assert doc["profiles"][0]["type"] == "sampled"
        assert profiling_main(["export", profile_path, "--format", "collapsed"]) == 0
        out = capsys.readouterr().out
        assert any(";" in line for line in out.splitlines() if line[:1].isalpha())


class TestCLIIntegration:
    def test_compiler_profile_flag_covers_check_and_oracle(
        self, tmp_path, capsys
    ):
        from repro.compiler.__main__ import main as compiler_main

        src = tmp_path / "k.loop"
        src.write_text(
            "loop profdemo\n"
            "array x(512), y(512)\n"
            "carry s = 0.0\n"
            "do i\n"
            "    t = x(i) * y(i)\n"
            "    s = s + t\n"
            "end\n"
            "result s\n"
        )
        path = tmp_path / "profile.json"
        assert (
            compiler_main(
                [str(src), "--check", "--oracle", "--profile", str(path)]
            )
            == 0
        )
        profile = load_profile(str(path))
        assert check_profile(profile) == []
        phases = profile.phases()
        assert "check" in phases
        assert "oracle_certify" in phases
        assert phases["check"].counters.get("check.units_checked", 0) >= 1
        assert (
            phases["oracle_certify"]
            .cumulative_counters()
            .get("oracle.partition_runs", 0)
            >= 1
        )

    def test_evaluation_profile_and_progress_flags(self, tmp_path, capsys):
        from repro.evaluation.__main__ import main as evaluation_main

        path = tmp_path / "eval_profile.json"
        progress_path = tmp_path / "progress.jsonl"
        assert (
            evaluation_main(
                [
                    "table2",
                    "--benchmarks",
                    "101.tomcatv",
                    "--no-bench-json",
                    "--profile",
                    str(path),
                    "--progress-json",
                    str(progress_path),
                ]
            )
            == 0
        )
        profile = load_profile(str(path))
        assert check_profile(profile) == []
        payloads = [
            json.loads(ln)
            for ln in progress_path.read_text().splitlines()
        ]
        assert payloads[-1]["done"] == payloads[-1]["total"] > 0
