"""Sharded, resumable sweep runner: determinism, crash-safety, resume.

The load-bearing property: the merged record of a sharded run — even one
that was killed mid-shard and resumed — is byte-for-byte equal (modulo
wall clocks) to an uninterrupted serial reference run.  That is what
lets ``--fail-on-exact`` gate sweeps in CI.
"""

import json
import os

import pytest

from repro.ledger.store import Ledger
from repro.sweep.manifest import SweepManifest
from repro.sweep.runner import (
    SweepConfig,
    SweepError,
    run_sweep,
    shard_bounds,
    shard_path,
)
from repro.sweep.__main__ import EXIT_FAILED_SHARDS, main
from repro.workloads.generator import GENERATORS, CorpusSpec, corpus_plan

#: Small, fast corpus shared by the end-to-end tests.  Two cheap
#: archetypes keep a full compile of the corpus under a second.
SPEC = CorpusSpec(
    size=9,
    seed=7,
    archetypes=("copy_like", "fp_chain"),
    trip_counts=(16, 64),
)


@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory):
    """The uninterrupted single-shard run every other run must match."""
    out = str(tmp_path_factory.mktemp("serial"))
    result = run_sweep(SweepConfig(spec=SPEC, shards=1), out)
    return result


class TestCorpusPlan:
    def test_plan_is_deterministic(self):
        assert corpus_plan(SPEC) == corpus_plan(SPEC)

    def test_items_are_slice_independent(self):
        """Item i is the same loop no matter which shard materializes
        it — the property that makes shard slices composable."""
        plan = corpus_plan(SPEC)
        assert plan[3:7] == corpus_plan(SPEC)[3:7]
        loop = plan[4].materialize()
        again = corpus_plan(SPEC)[4].materialize()
        assert loop.name == again.name
        assert [op.kind for op in loop.body] == [op.kind for op in again.body]

    def test_weights_steer_the_mix(self):
        spec = CorpusSpec(
            size=200,
            seed=1,
            archetypes=("copy_like", "stencil"),
            weights={"stencil": 50.0},
        )
        kinds = [item.archetype for item in corpus_plan(spec)]
        assert kinds.count("stencil") > kinds.count("copy_like")

    def test_spec_round_trips_through_dict(self):
        assert CorpusSpec.from_dict(SPEC.to_dict()) == CorpusSpec(
            size=SPEC.size,
            seed=SPEC.seed,
            archetypes=SPEC.archetypes,
            weights={n: 1.0 for n in SPEC.archetypes},
            trip_counts=SPEC.trip_counts,
        )

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CorpusSpec(size=0)
        with pytest.raises(KeyError):
            CorpusSpec(size=1, archetypes=("no_such_archetype",))
        with pytest.raises(KeyError):
            CorpusSpec(
                size=1, archetypes=("copy_like",), weights={"stencil": 2.0}
            )
        with pytest.raises(ValueError):
            CorpusSpec(size=1, trip_counts=(8, 4))
        # empty archetypes means the full generator mix
        names, weights = CorpusSpec(size=1).mix()
        assert names == tuple(GENERATORS)
        assert weights == (1.0,) * len(GENERATORS)


class TestShardBounds:
    @pytest.mark.parametrize(
        "size,shards", [(10, 3), (9, 9), (5, 8), (100, 7), (1, 1)]
    )
    def test_bounds_partition_the_plan(self, size, shards):
        bounds = shard_bounds(size, shards)
        assert len(bounds) == shards
        assert bounds[0][0] == 0 and bounds[-1][1] == size
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo  # contiguous, no gap and no overlap
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SweepConfig(spec=SPEC, shards=0)
        with pytest.raises(ValueError):
            SweepConfig(spec=SPEC, machine="vax")
        with pytest.raises(ValueError):
            SweepConfig(spec=SPEC, strategies=("no_such_strategy",))


class TestSerialRun:
    def test_bench_artifact_and_record(self, serial_reference, tmp_path):
        result = serial_reference
        assert result.loops == SPEC.size
        assert result.ran_shards == 1 and result.resumed_shards == 0
        with open(result.bench_path, encoding="utf-8") as f:
            payload = json.load(f)
        data = payload["data"]
        assert data["loops"] == SPEC.size
        assert data["shards"] == 1
        assert data["resumed_shards"] == 0
        assert data["effort"]["sched_attempts"] > 0
        assert data["per_loop"]["p50"]["wall_ms"] > 0
        assert len(result.merged.loops["sweep"]) == SPEC.size
        # Per-shard record config carries no shard count — that is what
        # makes serial and sharded merges comparable.
        assert "shards" not in result.merged.config.get("sweep", {})

    def test_ledger_append(self, tmp_path):
        out = str(tmp_path / "run")
        ledger = str(tmp_path / "ledger")
        spec = CorpusSpec(size=3, seed=2, archetypes=("copy_like",))
        result = run_sweep(
            SweepConfig(spec=spec), out, ledger_dir=ledger, run_label="t"
        )
        stored = Ledger(ledger).get(result.merged.run_id)
        assert stored.comparable_dict() == result.merged.comparable_dict()

    def test_fresh_run_refuses_existing_manifest(self, tmp_path):
        out = str(tmp_path / "run")
        spec = CorpusSpec(size=2, seed=3, archetypes=("copy_like",))
        run_sweep(SweepConfig(spec=spec), out)
        with pytest.raises(SweepError, match="already holds a sweep"):
            run_sweep(SweepConfig(spec=spec), out)


class TestShardedEqualsSerial:
    def test_sharded_merge_matches_serial(self, serial_reference, tmp_path):
        out = str(tmp_path / "sharded")
        result = run_sweep(SweepConfig(spec=SPEC, shards=3), out)
        assert (
            result.merged.comparable_dict()
            == serial_reference.merged.comparable_dict()
        )


class TestKillAndResume:
    def test_killed_shard_resumes_bit_identically(
        self, serial_reference, tmp_path
    ):
        out = str(tmp_path / "killed")
        config = SweepConfig(spec=SPEC, shards=3)
        with pytest.raises(SweepError, match="1 shard\\(s\\) failed"):
            run_sweep(out_dir=out, config=config, fail_shard=1, fail_after=1)

        # The kill is durable-clean: the other shards landed (file plus
        # manifest line), the killed one left nothing behind.
        manifest = SweepManifest(out)
        done = manifest.completed_shards()
        assert sorted(done) == [0, 2]
        assert not os.path.exists(shard_path(out, 1))
        assert os.path.exists(shard_path(out, 0))
        assert not os.path.exists(os.path.join(out, "BENCH_sweep.json"))

        resumed = run_sweep(config, out, resume=True)
        assert resumed.resumed_shards == 2
        assert resumed.ran_shards == 1
        assert (
            resumed.merged.comparable_dict()
            == serial_reference.merged.comparable_dict()
        )
        with open(resumed.bench_path, encoding="utf-8") as f:
            assert json.load(f)["data"]["resumed_shards"] == 2

    def test_resume_requires_matching_config(self, tmp_path):
        out = str(tmp_path / "run")
        spec = CorpusSpec(size=4, seed=5, archetypes=("copy_like",))
        config = SweepConfig(spec=spec, shards=2)
        with pytest.raises(SweepError):
            run_sweep(config, out, fail_shard=0, fail_after=0)
        # different shard split
        with pytest.raises(SweepError, match="resume config mismatch"):
            run_sweep(SweepConfig(spec=spec, shards=4), out, resume=True)
        # different corpus
        other = CorpusSpec(size=5, seed=5, archetypes=("copy_like",))
        with pytest.raises(SweepError, match="resume config mismatch"):
            run_sweep(SweepConfig(spec=other, shards=2), out, resume=True)
        # jobs is parallelism, not content: resuming with a different
        # pool size is fine.
        result = run_sweep(
            SweepConfig(spec=spec, shards=2, jobs=2), out, resume=True
        )
        assert result.loops == spec.size

    def test_resume_without_manifest_fails(self, tmp_path):
        with pytest.raises(SweepError, match="nothing to resume"):
            run_sweep(
                SweepConfig(spec=SPEC), str(tmp_path / "empty"), resume=True
            )


class TestManifest:
    def test_torn_tail_is_skipped_with_warning(self, tmp_path):
        out = str(tmp_path)
        manifest = SweepManifest(out)
        manifest.append({"event": "sweep", "run_id": "r", "digest": "d"})
        manifest.append({"event": "shard", "status": "done", "shard": 0})
        with open(manifest.path, "ab") as f:
            f.write(b'{"event": "shard", "status": "do')  # torn mid-write
        warnings: list[str] = []
        readable = SweepManifest(out, warn=warnings.append)
        assert [e["event"] for e in readable.events()] == ["sweep", "shard"]
        assert readable.completed_shards().keys() == {0}
        assert any("torn" in w for w in warnings)

    def test_corrupt_line_is_skipped(self, tmp_path):
        out = str(tmp_path)
        manifest = SweepManifest(out)
        manifest.append({"event": "sweep", "run_id": "r", "digest": "d"})
        with open(manifest.path, "ab") as f:
            f.write(b"\xff\xfe not json \n")
        manifest.append({"event": "shard", "status": "done", "shard": 3})
        warnings: list[str] = []
        readable = SweepManifest(out, warn=warnings.append)
        assert readable.completed_shards().keys() == {3}
        assert any("unreadable" in w for w in warnings)

    def test_header_of_missing_manifest(self, tmp_path):
        manifest = SweepManifest(str(tmp_path / "none"))
        assert not manifest.exists()
        assert manifest.events() == []
        assert manifest.header() is None


class TestCLI:
    def _base_args(self, out):
        return [
            "run",
            "--size",
            "4",
            "--seed",
            "11",
            "--archetypes",
            "copy_like",
            "--shards",
            "2",
            "--out",
            out,
        ]

    def test_induced_failure_then_resume(self, tmp_path, capsys):
        out = str(tmp_path / "cli")
        code = main(
            self._base_args(out) + ["--fail-shard", "1", "--fail-after", "0"]
        )
        assert code == EXIT_FAILED_SHARDS
        assert "resume" in capsys.readouterr().err

        code = main(["status", "--out", out])
        assert code == 0
        status = capsys.readouterr().out
        assert "1/2 shard(s) done" in status
        assert "--resume" in status

        code = main(self._base_args(out) + ["--resume"])
        assert code == 0
        text = capsys.readouterr().out
        assert "1 ran, 1 resumed" in text
        assert os.path.exists(os.path.join(out, "BENCH_sweep.json"))

    def test_status_without_manifest(self, tmp_path, capsys):
        assert main(["status", "--out", str(tmp_path / "none")]) == 1
        assert "no manifest" in capsys.readouterr().out
