"""The exact-optimality oracle: branch-and-bound partitioning,
exhaustive modulo scheduling, and the optimality-gap harness."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.__main__ import main as compiler_main
from repro.compiler.driver import compile_loop
from repro.compiler.strategies import Strategy
from repro.dependence.analysis import analyze_loop
from repro.evaluation import bench_io
from repro.evaluation.__main__ import main as evaluation_main
from repro.machine.configs import figure1_machine, paper_machine
from repro.observability.recorder import recording
from repro.oracle import (
    BOUNDED,
    CERTIFIED,
    TIMEOUT,
    BudgetMeter,
    OracleBudget,
)
from repro.oracle.exact_partition import (
    enumerate_partitions,
    exact_partition,
)
from repro.oracle.exact_schedule import _feasible_at, certify_schedule
from repro.oracle.gap import (
    certify_compiled,
    certify_loop,
    oracle_gap_report,
    render_certificate,
    render_gap_table,
)
from repro.pipeline.mii import edge_delays, minimum_ii
from repro.workloads.generator import GENERATORS, generate
from repro.workloads.kernels import dot_product

PAPER = paper_machine()

small_loops = st.builds(
    generate,
    archetype=st.sampled_from(sorted(GENERATORS)),
    seed=st.integers(0, 5_000),
).filter(lambda loop: len(loop.body) <= 12)


# ----------------------------------------------------------------------
# Branch-and-bound partition oracle


@settings(max_examples=25, deadline=None)
@given(loop=small_loops)
def test_bnb_matches_exhaustive_enumeration(loop):
    """On every small loop the branch-and-bound optimum equals the
    brute-force enumeration optimum, the certificate is exact
    (lower bound meets best cost), and the KL heuristic's cost sits
    within the gap the oracle reports."""
    dep = analyze_loop(loop, PAPER.vector_length)
    brute, evaluated = enumerate_partitions(dep, PAPER)
    result = exact_partition(
        dep, PAPER, budget=OracleBudget(max_nodes=None, max_seconds=None)
    )
    assert result.status == CERTIFIED
    assert result.best_cost == brute
    assert result.lower_bound == result.best_cost

    compiled = compile_loop(loop, PAPER, Strategy.SELECTIVE)
    if compiled.partition is not None:
        assert compiled.partition.cost >= result.best_cost
        warm = exact_partition(
            dep,
            PAPER,
            budget=OracleBudget(max_nodes=None, max_seconds=None),
            incumbent=compiled.partition,
        )
        assert warm.best_cost == brute
        assert warm.kl_gap == compiled.partition.cost - brute
        assert warm.kl_gap >= 0


def test_partition_oracle_certifies_dot_product_on_toy_machine():
    toy = figure1_machine()
    loop = dot_product()
    dep = analyze_loop(loop, toy.vector_length)
    result = exact_partition(dep, toy)
    assert result.status == CERTIFIED
    brute, _ = enumerate_partitions(dep, toy)
    assert result.best_cost == brute


def test_partition_oracle_budget_exhaustion_is_sound():
    """A starved search degrades to ``bounded`` with a true interval —
    it never claims a certificate."""
    loop = generate("mixed", 0)
    dep = analyze_loop(loop, PAPER.vector_length)
    starved = exact_partition(dep, PAPER, budget=OracleBudget(max_nodes=1))
    assert starved.status == BOUNDED
    assert starved.lower_bound <= starved.best_cost
    full = exact_partition(
        dep, PAPER, budget=OracleBudget(max_nodes=None, max_seconds=None)
    )
    assert full.status == CERTIFIED
    assert starved.lower_bound <= full.best_cost <= starved.best_cost


# ----------------------------------------------------------------------
# Exact modulo scheduling


def _selective_unit(loop, machine):
    compiled = compile_loop(loop, machine, Strategy.SELECTIVE)
    unit = compiled.units[0]
    udep = analyze_loop(unit.transform.loop, machine.vector_length)
    return compiled, unit, udep


def test_schedule_oracle_certifies_achieved_mii():
    """achieved == MII needs no search: the heuristic schedule is the
    witness."""
    _, unit, udep = _selective_unit(dot_product(), figure1_machine())
    result = certify_schedule(
        unit.transform.loop, udep.graph, figure1_machine(), unit.schedule.ii
    )
    assert result.status == CERTIFIED
    assert result.certified_ii == unit.schedule.ii
    assert result.ii_gap == 0


def test_schedule_oracle_proves_sub_mii_infeasible():
    """Every II below ResMII is infeasible; the prover must say so, not
    give up."""
    machine = figure1_machine()
    _, unit, udep = _selective_unit(dot_product(), machine)
    delays = edge_delays(udep.graph, machine)
    mii, _, _ = minimum_ii(unit.transform.loop, udep.graph, machine, delays)
    assert mii > 1
    meter = BudgetMeter(OracleBudget(max_nodes=None, max_seconds=None))
    feasible, times = _feasible_at(
        unit.transform.loop, udep.graph, machine, mii - 1, delays, meter
    )
    assert feasible is False
    assert times is None


def test_schedule_oracle_witness_respects_dependences():
    """A feasible verdict comes with a validated witness schedule."""
    machine = figure1_machine()
    _, unit, udep = _selective_unit(dot_product(), machine)
    delays = edge_delays(udep.graph, machine)
    meter = BudgetMeter(OracleBudget(max_nodes=None, max_seconds=None))
    ii = unit.schedule.ii
    feasible, times = _feasible_at(
        unit.transform.loop, udep.graph, machine, ii, delays, meter
    )
    assert feasible is True
    for edge in udep.graph.edges:
        assert (
            times[edge.dst] + ii * edge.distance
            >= times[edge.src] + delays[edge]
        )


def test_schedule_oracle_finds_slack_in_padded_ii():
    """Handed an achieved II above the optimum, the oracle exhibits the
    better schedule (nonzero gap + witness)."""
    machine = figure1_machine()
    _, unit, udep = _selective_unit(dot_product(), machine)
    padded = unit.schedule.ii + 2
    result = certify_schedule(
        unit.transform.loop, udep.graph, machine, padded
    )
    assert result.status == CERTIFIED
    assert result.certified_ii == unit.schedule.ii
    assert result.ii_gap == 2
    assert result.witness is not None


def test_schedule_oracle_budget_starvation_reports_bounded():
    machine = figure1_machine()
    _, unit, udep = _selective_unit(dot_product(), machine)
    result = certify_schedule(
        unit.transform.loop,
        udep.graph,
        machine,
        unit.schedule.ii + 2,
        budget=OracleBudget(max_nodes=1),
    )
    assert result.status in (BOUNDED, TIMEOUT)
    assert result.certified_ii is None
    assert result.ii_gap is None
    assert result.ii_lower_bound >= result.mii


# ----------------------------------------------------------------------
# The gap harness


def test_figure1_dot_product_certified_optimal():
    """The acceptance criterion: selective II/iteration = 1.0 on the
    Figure 1 machine is certified optimal with zero KL gap."""
    cert = certify_loop(dot_product(), figure1_machine())
    assert cert.status == CERTIFIED
    assert cert.kl_gap == 0
    assert cert.ii_gap == 0
    assert cert.achieved_ii_per_iteration == pytest.approx(1.0)
    assert cert.certified_ii_per_iteration == pytest.approx(1.0)
    text = render_certificate(cert)
    assert "optimal" in text


def test_certification_is_observe_only():
    """Certifying never alters the compiled artifact."""
    loop = generate("reduction", 1)
    compiled = compile_loop(loop, PAPER, Strategy.SELECTIVE)
    before = (
        dict(compiled.partition.assignment),
        compiled.partition.cost,
        [(u.transform.loop.name, u.schedule.ii, dict(u.schedule.times))
         for u in compiled.units],
    )
    certify_compiled(loop, PAPER, compiled)
    after = (
        dict(compiled.partition.assignment),
        compiled.partition.cost,
        [(u.transform.loop.name, u.schedule.ii, dict(u.schedule.times))
         for u in compiled.units],
    )
    assert before == after


def test_unfinished_certificate_leaves_a_remark():
    """Budget exhaustion is recorded as an ``oracle`` remark, not lost."""
    loop = generate("mixed", 0)
    compiled = compile_loop(loop, PAPER, Strategy.SELECTIVE)
    with recording() as rec:
        cert = certify_compiled(
            loop, PAPER, compiled, budget=OracleBudget(max_nodes=1)
        )
    assert cert.status in (BOUNDED, TIMEOUT)
    remarks = rec.events.remarks_for(loop=loop.name, pass_name="oracle")
    assert any(
        r.reason in ("partition-unfinished", "ii-unfinished")
        for r in remarks
    )


def test_gap_report_payload_and_gate(tmp_path):
    suite = [(dot_product(), figure1_machine())]
    payload = oracle_gap_report(suite=suite)
    assert payload["schema_version"] == bench_io.BENCH_SCHEMA_VERSION
    assert payload["experiment"] == "oracle_gap"
    summary = payload["data"]["summary"]
    assert summary["loops"] == 1
    assert summary["certified"] == 1
    assert summary["kl_gap_zero"] == 1
    assert bench_io.oracle_gap_regressions(payload) == []
    assert "dot_product" in render_gap_table(payload)
    path = bench_io.write_bench_json("oracle_gap", payload, str(tmp_path))
    assert path.endswith("BENCH_oracle_gap.json")


def test_gap_gate_flags_certified_gaps():
    payload = {
        "data": {
            "loops": {
                "bad": {
                    "partition": {"status": "certified", "kl_gap": 1},
                    "units": {
                        "bad.sel": {"status": "certified", "ii_gap": 2},
                        "bad.vec": {"status": "bounded", "ii_gap": None},
                    },
                },
                "slow": {
                    "partition": {"status": "timeout", "kl_gap": 3},
                    "units": {},
                },
            }
        }
    }
    regressions = bench_io.oracle_gap_regressions(payload)
    metrics = {r.metric for r in regressions}
    assert metrics == {"bad/kl_gap", "bad.sel/ii_gap"}
    assert "2 certified gap(s)" in bench_io.render_oracle_gap_gate(regressions)


# ----------------------------------------------------------------------
# The KL second witness


def test_kl_verify_runs_oracle_second_witness(monkeypatch):
    monkeypatch.setenv("REPRO_KL_VERIFY", "1")
    with recording() as rec:
        compile_loop(dot_product(), PAPER, Strategy.SELECTIVE)
    assert rec.counter("oracle.partition_runs") >= 1


def test_budget_env_fallback(monkeypatch):
    monkeypatch.setenv("REPRO_ORACLE_BUDGET", "1234")
    assert OracleBudget.from_env().max_nodes == 1234
    assert OracleBudget.from_env(override_nodes=9).max_nodes == 9
    monkeypatch.delenv("REPRO_ORACLE_BUDGET")
    assert OracleBudget.from_env().max_nodes == 200_000


# ----------------------------------------------------------------------
# CLI surfaces


DSL = """
loop oracle_demo
array x(2048), y(2048)
carry s = 0.0
do i
    t = x(i) * y(i)
    s = s + t
end
result s
"""


@pytest.fixture
def dsl_file(tmp_path):
    path = tmp_path / "kernel.loop"
    path.write_text(DSL)
    return str(path)


class TestOracleCLI:
    def test_compiler_oracle_flag(self, dsl_file, capsys):
        assert compiler_main([dsl_file, "--machine", "toy", "--oracle"]) == 0
        out = capsys.readouterr().out
        assert "oracle certificate for oracle_demo" in out
        assert "partition: KL cost" in out

    def test_compiler_oracle_flag_with_budget(self, dsl_file, capsys):
        assert (
            compiler_main([dsl_file, "--machine", "toy", "--oracle", "5000"])
            == 0
        )
        assert "oracle certificate" in capsys.readouterr().out

    def test_explain_with_oracle_section(self, dsl_file, capsys):
        assert (
            compiler_main(
                [dsl_file, "--machine", "toy", "--explain", "--oracle"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "== optimality certificates ==" in out
        assert "[partition-optimal]" in out or "[partition-" in out

    def test_explain_without_oracle_has_no_section(self, dsl_file, capsys):
        assert compiler_main([dsl_file, "--machine", "toy", "--explain"]) == 0
        assert "optimality certificates" not in capsys.readouterr().out

    def test_evaluation_oracle_gap(self, tmp_path, capsys):
        assert (
            evaluation_main(["--oracle-gap", "--bench-dir", str(tmp_path)])
            == 0
        )
        out = capsys.readouterr().out
        assert "oracle gate: OK" in out
        assert (tmp_path / "BENCH_oracle_gap.json").exists()
