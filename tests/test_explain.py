"""Tests for schedule explainability: MII provenance (pressure tables,
critical cycles), remark emission, the ``--explain`` CLI, and the
``BENCH_*.json`` baseline regression gate."""

import json

import pytest

from repro.compiler.__main__ import main as compiler_main
from repro.dependence.analysis import analyze_loop
from repro.dependence.graph import DepEdge, DependenceGraph, DepKind, Via
from repro.evaluation import bench_io
from repro.evaluation.__main__ import main as evaluation_main
from repro.ir.operations import Operation, OpKind
from repro.ir.types import ScalarType
from repro.ir.values import VirtualRegister, const_f64
from repro.observability import recording
from repro.pipeline.mii import (
    DependenceCycleError,
    RecMII,
    ResMII,
    rec_mii,
    res_mii,
)
from repro.pipeline.scheduler import modulo_schedule
from repro.vectorize.communication import Side
from repro.vectorize.transform import transform_loop

F64 = ScalarType.F64

DSL = """
loop explain_demo
array x(2048), y(2048), z(2048)
carry s = 0.0
do i
    t = x(i) * y(i)
    z(i) = t + x(i)
    s = s + t
end
result s
"""


def _op(kind=OpKind.ADD, name="r"):
    return Operation(
        kind,
        F64,
        dest=VirtualRegister(name, F64),
        srcs=(const_f64(1.0), const_f64(2.0)),
    )


def _graph(*ops):
    graph = DependenceGraph()
    for op in ops:
        graph.add_op(op)
    return graph


def lowered(loop, machine):
    dep = analyze_loop(loop, machine.vector_length)
    assignment = {op.uid: Side.SCALAR for op in loop.body}
    tr = transform_loop(dep, machine, assignment, 1)
    return tr.loop, analyze_loop(tr.loop, machine.vector_length)


class TestRecMIIEdgeCases:
    def test_empty_graph(self, paper):
        rec = rec_mii(DependenceGraph(), paper)
        assert rec == 1
        assert rec.cycle == ()
        assert rec.describe_cycle() == "(no recurrence)"

    def test_single_self_edge_distance_one(self, paper):
        op = _op()
        graph = _graph(op)
        graph.add_edge(
            DepEdge(op.uid, op.uid, DepKind.FLOW, Via.CARRIED, distance=1)
        )
        latency = paper.opcode_info(op).latency
        rec = rec_mii(graph, paper)
        assert rec == latency
        assert rec.cycle == (op.uid,)
        assert rec.cycle_delay == latency
        assert rec.cycle_distance == 1
        assert rec.describe_cycle(graph).startswith(f"{op.uid}:")

    def test_anti_self_edge_is_free(self, paper):
        # Anti dependences admit same-cycle issue: a lone anti recurrence
        # imposes no bound beyond II=1 and yields no critical cycle.
        op = _op()
        graph = _graph(op)
        graph.add_edge(
            DepEdge(op.uid, op.uid, DepKind.ANTI, Via.MEMORY, distance=1)
        )
        rec = rec_mii(graph, paper)
        assert rec == 1
        assert rec.cycle == ()

    def test_anti_zero_delay_on_cycle_path(self, paper):
        # flow a->b within the iteration, anti b->a one iteration later:
        # the anti leg contributes distance but zero delay, so the bound
        # is just a's latency.
        a, b = _op(), _op(OpKind.MUL)
        graph = _graph(a, b)
        graph.add_edge(
            DepEdge(a.uid, b.uid, DepKind.FLOW, Via.REGISTER, distance=0)
        )
        graph.add_edge(
            DepEdge(b.uid, a.uid, DepKind.ANTI, Via.MEMORY, distance=1)
        )
        rec = rec_mii(graph, paper)
        assert rec == paper.opcode_info(a).latency
        assert set(rec.cycle) == {a.uid, b.uid}
        assert rec.cycle_distance == 1

    def test_zero_distance_cycle_raises_named_diagnostic(self, paper):
        a, b = _op(), _op(OpKind.MUL)
        graph = _graph(a, b)
        graph.add_edge(
            DepEdge(a.uid, b.uid, DepKind.FLOW, Via.REGISTER, distance=0)
        )
        graph.add_edge(
            DepEdge(b.uid, a.uid, DepKind.FLOW, Via.REGISTER, distance=0)
        )
        with pytest.raises(DependenceCycleError) as exc:
            rec_mii(graph, paper)
        assert set(exc.value.cycle) == {a.uid, b.uid}
        message = str(exc.value)
        assert "zero-distance cycle" in message
        assert f"{a.uid}:{a.mnemonic()}" in message
        assert f"{b.uid}:{b.mnemonic()}" in message
        # Still a RuntimeError for callers catching the old type.
        assert isinstance(exc.value, RuntimeError)


class TestResMIIProvenance:
    def test_pressure_table_and_bottleneck(self, dot_loop, toy):
        loop, _ = lowered(dot_loop, toy)
        res = res_mii(loop, toy)
        assert res == 2
        assert isinstance(res, ResMII)
        assert res.bottleneck in res.pressure
        assert res.pressure[res.bottleneck] == max(res.pressure.values())
        assert res.pressure[res.bottleneck] == 2
        # pressure_rows renders most-loaded-first
        rows = res.pressure_rows()
        assert rows[0][1] == max(w for _, w in rows)

    def test_empty_body_has_no_bottleneck(self, paper):
        from repro.ir.loop import Loop

        res = res_mii(Loop(name="empty", body=()), paper)
        assert res == 1
        assert res.bottleneck is None


class TestSchedulerRemarks:
    def test_rec_bound_remark_names_cycle(self, dot_loop, paper):
        loop, dep = lowered(dot_loop, paper)
        with recording() as recorder:
            schedule = modulo_schedule(loop, dep.graph, paper)
        rec = schedule.rec_mii
        assert isinstance(rec, RecMII)
        assert rec > schedule.res_mii  # dot product is recurrence-limited
        remarks = recorder.events.remarks_for(pass_name="scheduler")
        bounds = [r for r in remarks if r.reason == "rec-bound"]
        assert len(bounds) == 1
        message = bounds[0].message
        for uid in rec.cycle:
            assert f"{uid}:" in message
        assert bounds[0].data["cycle"] == list(rec.cycle)
        scheduled = [r for r in remarks if r.reason == "scheduled"]
        assert len(scheduled) == 1

    def test_res_bound_remark_names_bottleneck(self, stream_loop, paper):
        loop, dep = lowered(stream_loop, paper)
        with recording() as recorder:
            schedule = modulo_schedule(loop, dep.graph, paper)
        assert schedule.res_mii >= schedule.rec_mii
        remarks = recorder.events.remarks_for(pass_name="scheduler")
        bounds = [r for r in remarks if r.reason == "res-bound"]
        assert len(bounds) == 1
        assert schedule.res_mii.bottleneck in bounds[0].message

    def test_no_recorder_no_remarks(self, dot_loop, paper):
        # Remark emission is recording-scoped; the bare path stays silent
        # and the schedule is identical.
        loop, dep = lowered(dot_loop, paper)
        schedule = modulo_schedule(loop, dep.graph, paper)
        with recording() as recorder:
            recorded = modulo_schedule(loop, dep.graph, paper)
        assert schedule.ii == recorded.ii
        assert recorder.events.remarks


class TestExplainCLI:
    @pytest.fixture
    def dsl_file(self, tmp_path):
        path = tmp_path / "kernel.loop"
        path.write_text(DSL)
        return str(path)

    def test_explain_report_sections(self, dsl_file, capsys):
        assert compiler_main([dsl_file, "--explain"]) == 0
        out = capsys.readouterr().out
        # loop header with trip count from --trip default
        assert "loop explain_demo" in out
        assert "trip 200" in out
        # every strategy gets a section
        for label in ("baseline", "traditional", "full", "selective"):
            assert f"== strategy {label}:" in out
        # ResMII pressure table with bottleneck marker
        assert "pressure table" in out
        assert "<- bottleneck" in out
        # RecMII critical cycle names ops
        assert "critical cycle" in out
        assert ":add" in out
        # partition reason codes and reservation table
        assert "partition decisions:" in out
        assert "ResMII bottleneck resource" in out
        # strategy comparison verdict
        assert "== strategy comparison ==" in out
        assert "[selective-" in out

    def test_explain_workload_loop_unknown(self, capsys):
        assert evaluation_main(["--explain", "no.such.L0"]) == 2
        assert "unknown loop" in capsys.readouterr().err


def _payloads(ii=2.0, speedup=1.2):
    """Minimal synthetic artifact payloads for gate tests."""
    return {
        "figure1": {
            "schema_version": bench_io.BENCH_SCHEMA_VERSION,
            "experiment": "figure1",
            "data": {"modulo": 2.0, "selective": ii},
        },
        "table2": {
            "schema_version": bench_io.BENCH_SCHEMA_VERSION,
            "experiment": "table2",
            "data": {"bench": {"selective": speedup}},
            "loops": {
                "bench": {
                    "bench.L0": {
                        "selective": {
                            "ii": ii,
                            "res_mii": 1.0,
                            "rec_mii": 1.0,
                        }
                    }
                }
            },
            "telemetry": {},
        },
    }


class TestBenchIO:
    def test_artifact_round_trip(self, tmp_path):
        payloads = _payloads()
        path = bench_io.write_bench_json(
            "table2", payloads["table2"], str(tmp_path)
        )
        assert path.endswith("BENCH_table2.json")
        with open(path, encoding="utf-8") as f:
            assert json.load(f) == payloads["table2"]

    def test_baseline_round_trip(self, tmp_path):
        payloads = _payloads()
        path = str(tmp_path / "baseline.json")
        bench_io.write_baseline(path, payloads)
        assert bench_io.load_baseline(path) == payloads

    def test_baseline_schema_mismatch(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"schema_version": 999, "experiments": {}}')
        with pytest.raises(ValueError, match="schema_version"):
            bench_io.load_baseline(str(path))

    def test_identical_run_passes(self):
        payloads = _payloads()
        assert bench_io.compare_to_baseline(payloads, _payloads()) == []

    def test_improvements_pass(self):
        current = _payloads(ii=1.0, speedup=1.5)
        assert bench_io.compare_to_baseline(current, _payloads()) == []

    def test_worsened_ii_fails(self):
        current = _payloads(ii=3.0)
        regressions = bench_io.compare_to_baseline(current, _payloads())
        metrics = {r.metric for r in regressions}
        assert "ii.selective" in metrics  # figure1 headline
        assert "loop.bench.bench.L0.selective.ii" in metrics
        rendered = bench_io.render_comparison(regressions)
        assert "regression(s) detected" in rendered
        assert "baseline 2 -> current 3" in rendered

    def test_speedup_drop_beyond_tolerance_fails(self):
        current = _payloads(speedup=1.1)
        regressions = bench_io.compare_to_baseline(current, _payloads())
        assert [r.metric for r in regressions] == ["speedup.bench.selective"]

    def test_speedup_drop_within_tolerance_passes(self):
        current = _payloads(speedup=1.19)
        assert bench_io.compare_to_baseline(current, _payloads()) == []

    def test_missing_experiment_is_skipped(self):
        current = {"figure1": _payloads()["figure1"]}
        assert bench_io.compare_to_baseline(current, _payloads()) == []
