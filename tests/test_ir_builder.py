"""Tests for the LoopBuilder and verifier."""

import pytest

from repro.ir.builder import LoopBuilder
from repro.ir.loop import CarriedScalar, Loop
from repro.ir.operations import Operation, OpKind
from repro.ir.subscripts import Subscript
from repro.ir.types import ScalarType
from repro.ir.values import Constant, VirtualRegister, const_f64
from repro.ir.verifier import VerificationError, verify_loop

F64 = ScalarType.F64


class TestBuilder:
    def test_simple_loop(self, dot_loop):
        assert len(dot_loop.body) == 4
        assert dot_loop.increment == 1
        assert len(dot_loop.carried) == 1

    def test_duplicate_array_rejected(self):
        b = LoopBuilder("l")
        b.array("x")
        with pytest.raises(ValueError):
            b.array("x")

    def test_undeclared_array_rejected(self):
        b = LoopBuilder("l")
        with pytest.raises(ValueError):
            b.load("nope", b.idx())

    def test_subscript_rank_checked(self):
        b = LoopBuilder("l")
        b.array("x", dim_sizes=(8, 8))
        with pytest.raises(ValueError):
            b.load("x", b.idx())

    def test_double_assignment_rejected(self):
        b = LoopBuilder("l")
        b.array("x")
        b.load("x", b.idx(), name="t")
        with pytest.raises(ValueError):
            b.load("x", b.idx(), name="t")

    def test_type_mismatch_rejected(self):
        b = LoopBuilder("l")
        b.array("x", dtype=ScalarType.I64)
        xi = b.load("x", b.idx())
        with pytest.raises(TypeError):
            b.add(xi, const_f64(1.0))

    def test_store_type_checked(self):
        b = LoopBuilder("l")
        b.array("x", dtype=ScalarType.I64)
        with pytest.raises(TypeError):
            b.store("x", b.idx(), const_f64(1.0))

    def test_carry_unknown_name(self):
        b = LoopBuilder("l")
        with pytest.raises(ValueError):
            b.carry("s", const_f64(0.0))

    def test_carry_type_checked(self):
        b = LoopBuilder("l")
        b.carried("s", 0.0, ScalarType.F64)
        with pytest.raises(TypeError):
            b.carry("s", Constant(1, ScalarType.I64))

    def test_carried_entry_not_assignable(self):
        b = LoopBuilder("l")
        b.array("x")
        b.carried("s", 0.0)
        with pytest.raises(ValueError):
            b.load("x", b.idx(), name="s")

    def test_fresh_names_unique(self):
        b = LoopBuilder("l")
        b.array("x")
        regs = [b.load("x", b.idx()) for _ in range(5)]
        assert len({r.name for r in regs}) == 5

    def test_live_out_deduplicated(self):
        b = LoopBuilder("l")
        b.array("x")
        t = b.load("x", b.idx())
        b.live_out(t)
        b.live_out(t)
        loop = b.build()
        assert loop.live_out == (t,)

    def test_all_arith_helpers(self):
        b = LoopBuilder("l")
        b.array("x")
        v = b.load("x", b.idx())
        results = [
            b.add(v, v), b.sub(v, v), b.mul(v, v), b.div(v, v),
            b.minimum(v, v), b.maximum(v, v), b.neg(v), b.absolute(v),
            b.sqrt(b.absolute(v)), b.copy(v), b.cvt(v, ScalarType.I64),
        ]
        loop = b.build()
        assert all(r in loop.defined_registers() for r in results)


class TestLoopQueries:
    def test_definition_of(self, dot_loop):
        t = VirtualRegister("t", F64)
        op = dot_loop.definition_of(t)
        assert op is not None and op.kind is OpKind.MUL

    def test_definition_of_missing(self, dot_loop):
        assert dot_loop.definition_of(VirtualRegister("zzz", F64)) is None

    def test_op_by_uid(self, dot_loop):
        op = dot_loop.body[0]
        assert dot_loop.op_by_uid(op.uid) is op

    def test_op_by_uid_missing(self, dot_loop):
        with pytest.raises(KeyError):
            dot_loop.op_by_uid(-1)

    def test_memory_ops(self, dot_loop):
        assert len(dot_loop.memory_ops) == 2

    def test_carried_for_entry(self, dot_loop):
        entry = VirtualRegister("s", F64)
        c = dot_loop.carried_for_entry(entry)
        assert c is not None and c.init == 0.0


class TestVerifier:
    def test_undefined_register_read(self):
        op = Operation(
            OpKind.ADD,
            F64,
            dest=VirtualRegister("a", F64),
            srcs=(VirtualRegister("ghost", F64), const_f64(1.0)),
        )
        loop = Loop("bad", (op,))
        with pytest.raises(VerificationError):
            verify_loop(loop)

    def test_undeclared_array(self):
        op = Operation(
            OpKind.LOAD,
            F64,
            dest=VirtualRegister("a", F64),
            array="ghost",
            subscript=Subscript.linear(),
        )
        loop = Loop("bad", (op,))
        with pytest.raises(VerificationError):
            verify_loop(loop)

    def test_carried_exit_must_exist(self):
        entry = VirtualRegister("s", F64)
        exit_reg = VirtualRegister("ghost", F64)
        loop = Loop("bad", (), carried=(CarriedScalar(entry, exit_reg, 0.0),))
        with pytest.raises(VerificationError):
            verify_loop(loop)

    def test_live_out_must_exist(self):
        loop = Loop("bad", (), live_out=(VirtualRegister("ghost", F64),))
        with pytest.raises(VerificationError):
            verify_loop(loop)

    def test_increment_positive(self, dot_loop):
        from dataclasses import replace

        with pytest.raises(VerificationError):
            verify_loop(replace(dot_loop, increment=0))

    def test_good_loop_passes(self, dot_loop, saxpy_loop, stream_loop):
        verify_loop(dot_loop)
        verify_loop(saxpy_loop)
        verify_loop(stream_loop)


class TestPrinter:
    def test_format_contains_structure(self, dot_loop):
        text = str(dot_loop)
        assert "loop dot" in text
        assert "carried %s" in text
        assert "live-out" in text
        assert "load.f64 x[i]" in text
