"""Dashboard analytics and the self-contained HTML renderer.

Covers the PR's acceptance criteria end to end:

* cold vs warm runs (same corpus, different wall/cache) compare clean —
  zero exact deltas;
* a deliberately sabotaged scheduler (the un-jittered restart variant
  always fails, so every loop costs extra attempts) surfaces as a
  ranked exact-effort regression in ``compare`` and in the rendered
  HTML;
* the rendered dashboard is one self-contained file — no scripts, no
  external URLs — whose structure matches a frozen golden skeleton
  (regenerate with ``REPRO_REGEN_GOLDEN=1``).
"""

from __future__ import annotations

import json
import os
from html.parser import HTMLParser

import pytest

from repro.dashboard import (
    compare_runs,
    metric_value,
    outliers,
    render_comparison,
    render_dashboard,
    spark_line,
    svg_sparkline,
    trend,
)
from repro.dashboard.__main__ import main as dashboard_main
from repro.evaluation import bench_io
from repro.evaluation.experiments import Evaluator
from repro.ledger import Ledger, record_from_payloads

GOLDEN = os.path.join(
    os.path.dirname(__file__), "data", "golden_dashboard.html"
)

BENCH = ("101.tomcatv",)


def _evaluation_record(run_id, created_at, label, *, evaluator=None):
    """A real single-benchmark table2 run, recorded the way the CLI
    records it."""
    evaluator = evaluator or Evaluator()
    payloads = {
        "table2": bench_io.collect_experiment(evaluator, "table2", BENCH)
    }
    perf = bench_io.compile_perf_payload(evaluator, BENCH, wall_s=1.5)
    return record_from_payloads(
        payloads,
        perf,
        run_id=run_id,
        created_at=created_at,
        label=label,
        git_sha="deadbeefcafe",
        config={"benchmarks": list(BENCH)},
    )


@pytest.fixture(scope="module")
def baseline_record():
    return _evaluation_record("run-0001", "2026-08-01T00:00:00Z", "base")


class TestColdWarmClean:
    def test_cold_vs_warm_has_zero_exact_deltas(
        self, baseline_record, tmp_path
    ):
        warm_eval = Evaluator(compile_cache=str(tmp_path / "cc"))
        # Cold pass populates the cache, warm pass replays it.
        bench_io.collect_experiment(warm_eval, "table2", BENCH)
        warm_eval2 = Evaluator(compile_cache=str(tmp_path / "cc"))
        warm = _evaluation_record(
            "run-0002",
            "2026-08-02T00:00:00Z",
            "warm",
            evaluator=warm_eval2,
        )
        assert warm.cache["hits"] > 0 and warm.cache["misses"] == 0
        comparison = compare_runs(baseline_record, warm)
        assert comparison.clean, [
            d.render() for d in comparison.exact_deltas()
        ]
        # The deterministic content digests agree too.
        assert (
            warm.content_digest() != baseline_record.content_digest()
        ) is False


class TestSeededRegression:
    def test_sabotaged_scheduler_ranks_as_effort_regression(
        self, baseline_record, monkeypatch, tmp_path
    ):
        import repro.pipeline.scheduler as sched_mod

        original = sched_mod._try_schedule

        def sabotaged(loop, graph, machine, ii, budget, jitter_seed=None,
                      *args, **kwargs):
            # The un-jittered restart variant always fails, so every
            # loop burns at least one extra scheduling attempt.
            if jitter_seed is None:
                return None
            return original(
                loop, graph, machine, ii, budget, jitter_seed,
                *args, **kwargs,
            )

        monkeypatch.setattr(sched_mod, "_try_schedule", sabotaged)
        mutated = _evaluation_record(
            "run-0003", "2026-08-03T00:00:00Z", "mutated"
        )
        monkeypatch.undo()

        comparison = compare_runs(baseline_record, mutated)
        assert not comparison.clean
        attempts = [
            d
            for d in comparison.effort
            if d.path.endswith("sched_attempts") and d.delta > 0
        ]
        assert attempts, render_comparison(comparison)
        # The ranking puts exact effort deltas first, wall last.
        ranked = comparison.ranked()
        assert ranked[0].kind == "effort"
        assert all(
            d.kind != "wall" or d is ranked[-1] for d in ranked
        )

        # ... and the regression surfaces in the rendered HTML too.
        ledger = Ledger(str(tmp_path / "ledger"))
        ledger.append(baseline_record)
        ledger.append(mutated)
        html = render_dashboard(ledger)
        assert "sched_attempts" in html
        assert "regressed" in html


class TestQueries:
    def test_trend_and_metric_paths_with_dotted_benchmarks(
        self, baseline_record
    ):
        value = metric_value(baseline_record, "effort.sched_attempts")
        assert value and value > 0
        speedup = metric_value(
            baseline_record, "experiments.table2.101.tomcatv.selective"
        )
        assert speedup and speedup > 1.0
        points = trend([baseline_record], "effort.sched_attempts")
        assert points[0][1] == value

    def test_spark_line_shapes(self):
        assert spark_line([]) == ""
        assert spark_line([1.0, None, 8.0]) == "▁ █"
        assert len(spark_line([2.0, 2.0, 2.0])) == 3

    def test_outliers_need_a_genuine_spike(self, baseline_record):
        import dataclasses

        runs = []
        for i in range(6):
            runs.append(
                dataclasses.replace(
                    baseline_record,
                    run_id=f"run-100{i}",
                    wall_s=1.0 + 0.01 * i,
                )
            )
        assert outliers(runs, "wall_s") == []
        runs.append(
            dataclasses.replace(
                baseline_record, run_id="run-spike", wall_s=60.0
            )
        )
        found = outliers(runs, "wall_s")
        assert [o.record.run_id for o in found] == ["run-spike"]


class _Skeleton(HTMLParser):
    """Structural skeleton: (tag, id, class) per element, plus a stack
    check that every non-void element closes."""

    VOID = {"meta", "br", "hr", "img", "input", "link", "circle"}

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.nodes: list[tuple[str, str, str]] = []
        self.stack: list[str] = []

    def handle_starttag(self, tag, attrs):
        d = dict(attrs)
        self.nodes.append((tag, d.get("id", ""), d.get("class", "")))
        if tag not in self.VOID:
            self.stack.append(tag)

    def handle_startendtag(self, tag, attrs):
        d = dict(attrs)
        self.nodes.append((tag, d.get("id", ""), d.get("class", "")))

    def handle_endtag(self, tag):
        assert self.stack and self.stack[-1] == tag, (
            f"mis-nested </{tag}>, open stack {self.stack[-6:]}"
        )
        self.stack.pop()


def _skeleton(html: str) -> list[tuple[str, str, str]]:
    parser = _Skeleton()
    parser.feed(html)
    parser.close()
    assert parser.stack == [], f"unclosed elements: {parser.stack}"
    return parser.nodes


def _golden_ledger(tmp_path) -> Ledger:
    """A deterministic two-run ledger (fixed ids, shas, walls)."""
    ledger = Ledger(str(tmp_path / "golden-ledger"))
    corpus = {
        "alpha": {
            "alpha.L0": {"ii": 4, "res_mii": 3, "rec_mii": 2},
            "alpha.L1": {"ii": 6, "res_mii": 6, "rec_mii": 1},
        }
    }
    for run_id, created, label, attempts, wall in (
        ("run-0001", "2026-08-01T00:00:00Z", "cold", 10, 2.0),
        ("run-0002", "2026-08-02T00:00:00Z", "warm", 12, 0.5),
    ):
        payloads = {
            "table2": {
                "data": {"alpha": {"traditional": 1.0, "selective": 1.4}},
                "loops": {
                    "alpha": {
                        loop: {"selective": dict(metrics)}
                        for loop, metrics in corpus["alpha"].items()
                    }
                },
                "telemetry": {
                    "alpha": {
                        "selective": {
                            "loops": 2,
                            "wall_ms": wall * 1e3,
                            "sched_attempts": attempts,
                        }
                    }
                },
            }
        }
        perf = {
            "effort": {"sched_attempts": attempts, "kl_pack_steps": 40},
            "wall_s": wall,
            "jobs": 1,
            "cache_hits": 0,
            "cache_misses": 2,
        }
        ledger.append(
            record_from_payloads(
                payloads,
                perf,
                run_id=run_id,
                created_at=created,
                label=label,
                git_sha="deadbeefcafe",
                check={"units": 2, "errors": 0, "findings": 0},
                notes=["golden fixture run"],
            )
        )
    return ledger


class TestRenderedHTML:
    @pytest.fixture
    def golden_html(self, tmp_path) -> str:
        return render_dashboard(_golden_ledger(tmp_path))

    def test_self_contained_no_scripts_no_external_urls(self, golden_html):
        lowered = golden_html.lower()
        assert "<script" not in lowered
        assert "http://" not in lowered
        assert "https://" not in lowered
        assert "@import" not in lowered
        assert 'src="' not in lowered  # no fetched images/iframes

    def test_structure_carries_every_section(self, golden_html):
        nodes = _skeleton(golden_html)
        tags = [t for t, _, _ in nodes]
        assert tags.count("section") == 5
        assert "svg" in tags and "polyline" in tags
        assert "details" in tags and "table" in tags
        # Dark mode is selected, not flipped: both scopes present.
        assert "prefers-color-scheme: dark" in golden_html
        assert '[data-theme="dark"]' in golden_html
        assert "tabular-nums" in golden_html

    def test_regression_table_names_the_exact_delta(self, golden_html):
        assert "sched_attempts" in golden_html
        assert "regressed" in golden_html

    def test_matches_frozen_golden_skeleton(self, golden_html):
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            with open(GOLDEN, "w", encoding="utf-8") as f:
                f.write(golden_html)
        with open(GOLDEN, encoding="utf-8") as f:
            frozen = f.read()
        assert _skeleton(golden_html) == _skeleton(frozen), (
            "dashboard structure changed; regenerate the golden with "
            "REPRO_REGEN_GOLDEN=1 if intentional"
        )

    def test_empty_ledger_renders_a_hint(self, tmp_path):
        html = render_dashboard(Ledger(str(tmp_path / "empty")))
        assert "--ledger" in html
        _skeleton(html)

    def test_sparkline_handles_gaps_and_flat_series(self):
        svg = svg_sparkline([1.0, None, 3.0, 3.0])
        assert svg.count("<polyline") == 1
        assert "<circle" in svg
        assert "no data" in svg_sparkline([None, None])


class TestDashboardCLI:
    @pytest.fixture
    def bench_dir(self, tmp_path):
        d = tmp_path / "bench"
        d.mkdir()
        payload = {
            "schema_version": 1,
            "experiment": "table2",
            "data": {"alpha": {"selective": 1.3}},
            "loops": {"alpha": {"alpha.L0": {"selective": {"ii": 4}}}},
            "telemetry": {
                "alpha": {"selective": {"loops": 1, "sched_attempts": 5}}
            },
        }
        (d / "BENCH_table2.json").write_text(json.dumps(payload))
        perf = {
            "schema_version": 1,
            "experiment": "compile_perf",
            "effort": {"sched_attempts": 5},
            "wall_s": 0.25,
            "jobs": 1,
            "cache_hits": 0,
            "cache_misses": 1,
        }
        (d / "BENCH_compile_perf.json").write_text(json.dumps(perf))
        return str(d)

    def test_record_list_compare_render(
        self, bench_dir, tmp_path, capsys, monkeypatch
    ):
        ledger_dir = str(tmp_path / "ledger")
        argv = ["--ledger", ledger_dir, "--bench-dir", bench_dir]
        assert dashboard_main(["record", *argv, "--label", "one"]) == 0
        assert dashboard_main(["record", *argv, "--label", "two"]) == 0
        capsys.readouterr()

        assert dashboard_main(["list", "--ledger", ledger_dir]) == 0
        out = capsys.readouterr().out
        assert "one" in out and "two" in out

        # Identical deterministic content: --fail-on-exact passes.
        assert (
            dashboard_main(
                [
                    "compare",
                    "--ledger",
                    ledger_dir,
                    "prev",
                    "latest",
                    "--fail-on-exact",
                ]
            )
            == 0
        )

        out_html = str(tmp_path / "dash.html")
        assert (
            dashboard_main(
                ["render", "--ledger", ledger_dir, "-o", out_html]
            )
            == 0
        )
        html = open(out_html, encoding="utf-8").read()
        assert "<!doctype html>" in html
        assert "http" + "://" not in html

        # REPRO_LEDGER supplies the directory when --ledger is absent.
        monkeypatch.setenv("REPRO_LEDGER", ledger_dir)
        assert dashboard_main(["trend", "effort.sched_attempts"]) == 0
        trend_out = capsys.readouterr().out
        assert "5" in trend_out

    def test_record_without_artifacts_fails(self, tmp_path, capsys):
        code = dashboard_main(
            [
                "record",
                "--ledger",
                str(tmp_path / "ledger"),
                "--bench-dir",
                str(tmp_path),
            ]
        )
        assert code == 2

    def test_compare_fail_on_exact_flags_a_mutation(
        self, bench_dir, tmp_path, capsys
    ):
        ledger_dir = str(tmp_path / "ledger")
        argv = ["--ledger", ledger_dir, "--bench-dir", bench_dir]
        assert dashboard_main(["record", *argv]) == 0
        perf_path = os.path.join(bench_dir, "BENCH_compile_perf.json")
        perf = json.loads(open(perf_path).read())
        perf["effort"]["sched_attempts"] += 7
        open(perf_path, "w").write(json.dumps(perf))
        assert dashboard_main(["record", *argv]) == 0
        code = dashboard_main(
            [
                "compare",
                "--ledger",
                ledger_dir,
                "prev",
                "latest",
                "--fail-on-exact",
            ]
        )
        assert code == 1
        out = capsys.readouterr()
        assert "sched_attempts" in out.out

    def test_merge_subcommand_folds_shards(
        self, bench_dir, tmp_path, capsys
    ):
        shard_a = str(tmp_path / "shard-a")
        shard_b = str(tmp_path / "shard-b")
        assert (
            dashboard_main(
                ["record", "--ledger", shard_a, "--bench-dir", bench_dir]
            )
            == 0
        )
        # Second shard covers a different benchmark.
        payload = json.loads(
            open(os.path.join(bench_dir, "BENCH_table2.json")).read()
        )
        payload["data"] = {"beta": {"selective": 1.1}}
        payload["loops"] = {"beta": {"beta.L0": {"selective": {"ii": 7}}}}
        payload["telemetry"] = {
            "beta": {"selective": {"loops": 1, "sched_attempts": 3}}
        }
        open(os.path.join(bench_dir, "BENCH_table2.json"), "w").write(
            json.dumps(payload)
        )
        perf_path = os.path.join(bench_dir, "BENCH_compile_perf.json")
        perf = json.loads(open(perf_path).read())
        perf["effort"]["sched_attempts"] = 3
        open(perf_path, "w").write(json.dumps(perf))
        assert (
            dashboard_main(
                ["record", "--ledger", shard_b, "--bench-dir", bench_dir]
            )
            == 0
        )
        merged_dir = str(tmp_path / "merged")
        assert (
            dashboard_main(
                [
                    "merge",
                    "--ledger",
                    merged_dir,
                    shard_a,
                    shard_b,
                    "--label",
                    "sharded",
                ]
            )
            == 0
        )
        records = Ledger(merged_dir).records()
        assert len(records) == 1
        assert set(records[0].loops) == {"alpha", "beta"}
        assert records[0].effort["sched_attempts"] == 8
