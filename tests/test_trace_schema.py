"""Trace-schema guarantees: round-trip property and golden fixture.

Two protections against schema drift:

* a property test — any session the recorder can produce re-parses under
  the schema reader after a JSON round trip;
* a frozen golden fixture (``tests/data/golden_trace.json``) — the exact
  document a scripted session emits under a fake clock.  Any change to
  the trace shape shows up as a diff against the fixture, forcing a
  deliberate schema-version bump instead of silent drift.
"""

from __future__ import annotations

import itertools
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.observability.trace as trace_mod
from repro.observability import recording
from repro.observability.export import TRACE_SCHEMA_VERSION, recorder_to_dict
from repro.observability.schema import (
    SUPPORTED_TRACE_VERSIONS,
    TraceSchemaError,
    load_trace,
    validate_trace,
)

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_trace.json"

_names = st.sampled_from(
    ["compile_loop", "partition", "modulo_schedule", "regalloc", "check"]
)
_counter_names = st.sampled_from(
    ["kl.pack_steps", "sched.ii_attempts", "mii.bf_relaxations"]
)
_counters = st.lists(
    st.tuples(_counter_names, st.integers(min_value=0, max_value=10_000)),
    max_size=3,
)

# A span tree: (name, counters, emit_event, emit_remark, children).
_span_trees = st.recursive(
    st.tuples(
        _names, _counters, st.booleans(), st.booleans(), st.just([])
    ),
    lambda children: st.tuples(
        _names,
        _counters,
        st.booleans(),
        st.booleans(),
        st.lists(children, max_size=3),
    ),
    max_leaves=8,
)


def _replay(rec, node) -> None:
    name, counters, emit_event, emit_remark, children = node
    with rec.span(name, loop="prop_loop"):
        for counter, n in counters:
            rec.count(counter, n)
        if emit_event:
            rec.event(f"{name}.done", detail=1)
        if emit_remark:
            rec.remark(name, "prop_loop", "because", "property remark", k=1)
        for child in children:
            _replay(rec, child)


class TestRoundTripProperty:
    @settings(max_examples=40, deadline=None)
    @given(forest=st.lists(_span_trees, max_size=3))
    def test_any_session_reparses_under_the_schema(self, forest):
        with recording() as rec:
            for tree in forest:
                _replay(rec, tree)
            rec.count("outside.spans", 2)
        document = json.loads(json.dumps(recorder_to_dict(rec)))
        loaded = load_trace(document)
        assert loaded["schema_version"] == TRACE_SCHEMA_VERSION
        # Everything emitted survives the round trip.
        assert len(loaded["spans"]) == len(rec.tracer.roots)
        assert len(loaded["events"]) == len(rec.events.to_dict())
        assert len(loaded["remarks"]) == len(rec.events.remarks_to_dict())
        assert loaded["counters"] == rec.stats.counters
        # Per-span counter attribution sums back to the flat registry.
        attributed: dict[str, int] = {}

        def fold(span):
            for name, value in span["counters"].items():
                attributed[name] = attributed.get(name, 0) + value
            for child in span["children"]:
                fold(child)

        for span in loaded["spans"]:
            fold(span)
        for name, value in attributed.items():
            assert value <= loaded["counters"][name]


class TestGoldenFixture:
    def _golden_session(self):
        """The scripted session the fixture was generated from (fake
        clock: one tick = 1 ms, so durations are deterministic)."""
        ticks = itertools.count(1_000_000, 1_000_000)
        real = trace_mod.time.perf_counter_ns
        trace_mod.time.perf_counter_ns = lambda: next(ticks)
        try:
            with recording() as rec:
                with rec.span(
                    "compile_loop", loop="golden", strategy="selective"
                ):
                    with rec.span("dependence", loop="golden"):
                        rec.count("mii.bf_runs", 1)
                        rec.count("mii.bf_relaxations", 4)
                    with rec.span("partition", loop="golden"):
                        rec.count("kl.iterations", 2)
                        rec.count("kl.pack_steps", 7)
                        rec.event("kl.converged", iterations=2)
                    with rec.span("modulo_schedule", loop="golden"):
                        rec.count("sched.ii_attempts", 3)
                        rec.count("sched.height_relaxations", 5)
                    rec.remark(
                        "sched",
                        "golden",
                        "ii-found",
                        "II=2 after 3 attempt(s)",
                        ii=2,
                        attempts=3,
                    )
                rec.count("session.flushes", 1)
        finally:
            trace_mod.time.perf_counter_ns = real
        return rec

    def test_golden_fixture_validates(self):
        loaded = load_trace(str(GOLDEN_PATH))
        assert loaded["schema_version"] == TRACE_SCHEMA_VERSION
        assert loaded["spans"][0]["name"] == "compile_loop"

    def test_emitted_trace_matches_frozen_fixture(self):
        document = json.loads(
            json.dumps(recorder_to_dict(self._golden_session()), sort_keys=True)
        )
        golden = json.loads(GOLDEN_PATH.read_text())
        assert document == golden, (
            "trace document shape drifted from tests/data/golden_trace.json "
            "— if intentional, bump TRACE_SCHEMA_VERSION, teach "
            "repro.observability.schema the new shape, and regenerate the "
            "fixture"
        )


class TestValidation:
    def _minimal(self, version=TRACE_SCHEMA_VERSION):
        doc = {
            "schema_version": version,
            "spans": [],
            "counters": {},
            "distributions": {},
            "events": [],
        }
        if version >= 2:
            doc["remarks"] = []
        return doc

    def test_supported_versions_include_current(self):
        assert TRACE_SCHEMA_VERSION in SUPPORTED_TRACE_VERSIONS

    def test_minimal_documents_validate(self):
        for version in SUPPORTED_TRACE_VERSIONS:
            validate_trace(self._minimal(version))

    def test_unsupported_version_rejected(self):
        doc = self._minimal()
        doc["schema_version"] = 99
        with pytest.raises(TraceSchemaError, match="schema_version"):
            validate_trace(doc)

    def test_span_missing_key_rejected(self):
        doc = self._minimal()
        doc["spans"] = [{"name": "x", "attrs": {}, "start_ns": 0}]
        with pytest.raises(TraceSchemaError, match=r"spans\[0\]"):
            validate_trace(doc)

    def test_non_integer_counter_rejected(self):
        doc = self._minimal()
        doc["counters"] = {"kl.pack_steps": "7"}
        with pytest.raises(TraceSchemaError, match="integer"):
            validate_trace(doc)

    def test_bool_span_counter_rejected(self):
        doc = self._minimal()
        doc["spans"] = [
            {
                "name": "x",
                "attrs": {},
                "start_ns": 0,
                "duration_ns": 1,
                "children": [],
                "counters": {"n": True},
            }
        ]
        with pytest.raises(TraceSchemaError, match="counter"):
            validate_trace(doc)

    def test_v2_requires_remarks(self):
        doc = self._minimal(2)
        del doc["remarks"]
        with pytest.raises(TraceSchemaError, match="remarks"):
            validate_trace(doc)

    def test_v1_normalized_to_current_shape(self):
        doc = self._minimal(1)
        doc["spans"] = [
            {
                "name": "compile_loop",
                "attrs": {},
                "start_ns": 0,
                "duration_ns": 5,
                "children": [],
            }
        ]
        loaded = load_trace(doc)
        assert loaded["remarks"] == []
        assert loaded["spans"][0]["counters"] == {}
