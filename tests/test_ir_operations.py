"""Tests for repro.ir.operations and repro.ir.values."""

import pytest

from repro.ir.operations import Operation, OpKind
from repro.ir.subscripts import Subscript
from repro.ir.types import ScalarType, VectorType
from repro.ir.values import (
    Constant,
    VirtualRegister,
    const_f64,
    const_i64,
    lane_register,
    vector_register,
)

F64 = ScalarType.F64
I64 = ScalarType.I64


def reg(name, ty=F64):
    return VirtualRegister(name, ty)


class TestValues:
    def test_const_factories(self):
        assert const_i64(3) == Constant(3, I64)
        assert const_f64(3) == Constant(3.0, F64)

    def test_i64_constant_rejects_float(self):
        with pytest.raises(TypeError):
            Constant(1.5, I64)

    def test_lane_register_derives_scalar(self):
        v = reg("t", VectorType(F64, 2))
        lane = lane_register(v, 1)
        assert lane.type is F64
        assert lane.name == "t.l1"

    def test_lane_register_of_scalar(self):
        lane = lane_register(reg("t"), 0)
        assert lane.type is F64

    def test_vector_register_widens(self):
        v = vector_register(reg("t"), 2)
        assert v.type == VectorType(F64, 2)
        assert v.name == "t.v"

    def test_vector_register_idempotent(self):
        v = reg("t", VectorType(F64, 2))
        assert vector_register(v, 2) is v

    def test_register_is_vector(self):
        assert reg("t", VectorType(F64, 2)).is_vector
        assert not reg("t").is_vector


class TestOpKind:
    def test_arity_table(self):
        assert OpKind.ADD.arity == 2
        assert OpKind.NEG.arity == 1
        assert OpKind.LOAD.arity == 0
        assert OpKind.STORE.arity == 1
        assert OpKind.PACK.arity == -1

    def test_memory_kinds(self):
        assert OpKind.LOAD.is_memory and OpKind.STORE.is_memory
        assert not OpKind.ADD.is_memory

    def test_overhead_kinds(self):
        for kind in (OpKind.BUMP, OpKind.IVINC, OpKind.CBR):
            assert kind.is_overhead
        assert not OpKind.MERGE.is_overhead

    def test_has_dest(self):
        assert OpKind.LOAD.has_dest
        assert not OpKind.STORE.has_dest
        assert not OpKind.CBR.has_dest

    def test_commutative(self):
        assert OpKind.ADD.is_commutative
        assert OpKind.MUL.is_commutative
        assert not OpKind.SUB.is_commutative


class TestOperation:
    def test_unique_uids(self):
        a = Operation(OpKind.ADD, F64, dest=reg("a"), srcs=(reg("x"), reg("y")))
        b = Operation(OpKind.ADD, F64, dest=reg("b"), srcs=(reg("x"), reg("y")))
        assert a.uid != b.uid
        assert a != b

    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            Operation(OpKind.ADD, F64, dest=reg("a"), srcs=(reg("x"),))

    def test_memory_requires_array_and_subscript(self):
        with pytest.raises(ValueError):
            Operation(OpKind.LOAD, F64, dest=reg("a"))

    def test_non_memory_rejects_array(self):
        with pytest.raises(ValueError):
            Operation(
                OpKind.ADD,
                F64,
                dest=reg("a"),
                srcs=(reg("x"), reg("y")),
                array="x",
            )

    def test_dest_required(self):
        with pytest.raises(ValueError):
            Operation(OpKind.ADD, F64, srcs=(reg("x"), reg("y")))

    def test_store_rejects_dest(self):
        with pytest.raises(ValueError):
            Operation(
                OpKind.STORE,
                F64,
                dest=reg("a"),
                srcs=(reg("v"),),
                array="x",
                subscript=Subscript.linear(),
            )

    def test_pack_requires_sources(self):
        with pytest.raises(ValueError):
            Operation(OpKind.PACK, F64, dest=reg("a", VectorType(F64, 2)))

    def test_stored_value(self):
        v = reg("v")
        op = Operation(
            OpKind.STORE, F64, srcs=(v,), array="x", subscript=Subscript.linear()
        )
        assert op.stored_value == v

    def test_stored_value_on_load_raises(self):
        op = Operation(
            OpKind.LOAD, F64, dest=reg("a"), array="x", subscript=Subscript.linear()
        )
        with pytest.raises(ValueError):
            _ = op.stored_value

    def test_registers_read_skips_constants(self):
        op = Operation(OpKind.ADD, F64, dest=reg("a"), srcs=(reg("x"), const_f64(1)))
        assert op.registers_read() == (reg("x"),)

    def test_mnemonic_vector_prefix(self):
        op = Operation(
            OpKind.LOAD,
            F64,
            dest=reg("a", VectorType(F64, 2)),
            array="x",
            subscript=Subscript.linear(),
            is_vector=True,
        )
        assert op.mnemonic() == "vload"

    def test_str_contains_pieces(self):
        op = Operation(OpKind.MUL, F64, dest=reg("a"), srcs=(reg("x"), reg("y")))
        text = str(op)
        assert "%a" in text and "mul.f64" in text and "%x" in text

    def test_with_srcs_changes_uid(self):
        op = Operation(OpKind.ADD, F64, dest=reg("a"), srcs=(reg("x"), reg("y")))
        op2 = op.with_srcs((reg("p"), reg("q")))
        assert op2.uid != op.uid
        assert op2.srcs == (reg("p"), reg("q"))
