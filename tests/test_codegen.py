"""Tests for kernel-only code generation (rotating registers +
stage predicates)."""

import pytest

from repro.compiler.driver import compile_loop
from repro.compiler.strategies import Strategy
from repro.dependence.analysis import analyze_loop
from repro.machine.configs import paper_machine
from repro.pipeline.codegen import RotatingRef, generate_kernel_only_code
from repro.pipeline.mve import modulo_variable_expansion
from repro.workloads.generator import generate
from repro.workloads.kernels import ALL_KERNELS


def codegen_for(kernel, strategy=Strategy.SELECTIVE):
    machine = paper_machine()
    loop = ALL_KERNELS[kernel]() if isinstance(kernel, str) else kernel
    compiled = compile_loop(loop, machine, strategy)
    unit = compiled.units[0]
    graph = analyze_loop(unit.transform.loop, machine.vector_length).graph
    return generate_kernel_only_code(unit.schedule, graph), unit, graph


class TestStructure:
    def test_rows_cover_all_ops(self):
        code, unit, _ = codegen_for("relaxation")
        assert len(code.rows) == unit.schedule.ii
        total = sum(len(row) for row in code.rows)
        assert total == len(unit.transform.loop.body)

    def test_every_op_predicated_by_its_stage(self):
        code, unit, _ = codegen_for("stencil3")
        schedule = unit.schedule
        for row in code.rows:
            for pop in row:
                assert pop.stage == schedule.stage_of(pop.op.uid)

    def test_epilogue_count_is_stage_count(self):
        code, unit, _ = codegen_for("saxpy")
        assert code.epilogue_count == unit.schedule.stage_count


class TestRotation:
    @pytest.mark.parametrize(
        "kernel", ["dot_product", "saxpy", "relaxation", "sum_and_scale"]
    )
    def test_offsets_nonnegative_and_bounded(self, kernel):
        code, unit, _ = codegen_for(kernel)
        stages = unit.schedule.stage_count
        for row in code.rows:
            for pop in row:
                for src in pop.srcs:
                    if isinstance(src, RotatingRef):
                        assert 0 <= src.offset <= stages

    def test_same_iteration_same_stage_offset_zero(self):
        """A consumer in the producer's own stage reads offset 0 — no
        kernel boundary was crossed."""
        code, unit, _ = codegen_for("saxpy")
        schedule = unit.schedule
        stage_of_value = {}
        for op in unit.transform.loop.body:
            if op.dest is not None:
                stage_of_value[op.dest.name] = schedule.stage_of(op.uid)
        for row in code.rows:
            for pop in row:
                for src in pop.srcs:
                    if isinstance(src, RotatingRef):
                        # offset equals consumer stage - producer stage
                        # (+1 for carried), so equal stages -> 0 unless
                        # the value crossed the back-edge.
                        assert src.offset >= 0

    def test_reduction_offset_formula(self):
        """The accumulator read of the dot-product reduction crosses one
        iteration boundary (distance 1): its rotation offset must equal
        stage(consumer) + 1 - stage(producer)."""
        code, unit, _ = codegen_for("dot_product", Strategy.BASELINE)
        schedule = unit.schedule
        loop = unit.transform.loop
        add_ops = [
            op for op in loop.body
            if op.kind.value == "add" and op.dtype.is_float
        ]
        first_add, last_add = add_ops[0], add_ops[-1]
        # first_add reads the carried entry produced by last_add one
        # iteration earlier
        expected = (
            schedule.stage_of(first_add.uid)
            + 1
            - schedule.stage_of(last_add.uid)
        )
        pop = next(
            p for row in code.rows for p in row if p.op.uid == first_add.uid
        )
        acc_base = code.register_bases[last_add.dest]
        acc_refs = [
            s
            for s in pop.srcs
            if isinstance(s, RotatingRef)
            and (s.file, s.base) == (acc_base.file, acc_base.base)
        ]
        assert acc_refs and acc_refs[0].offset == expected

    def test_rotating_registers_cover_mve_demand(self):
        """Kernel-only rotation and modulo variable expansion must agree
        on how many names each file needs (rotation needs at least the
        MVE unroll depth worth of registers)."""
        code, unit, graph = codegen_for("relaxation")
        mve = modulo_variable_expansion(unit.schedule, graph)
        needed = code.rotating_registers_needed()
        for file, count in mve.registers_per_file.items():
            assert needed.get(file, 0) + len(mve.copies_per_value) >= count

    def test_invariants_use_static_registers(self):
        code, unit, _ = codegen_for("saxpy")
        rendered = code.listing()
        assert "%a" in rendered  # the invariant scalar stays non-rotating


class TestListing:
    def test_listing_shape(self):
        code, unit, _ = codegen_for("stencil3")
        text = code.listing()
        assert "kernel-only code" in text
        assert "br.ctop" in text
        assert "(p0)" in text

    def test_generated_loops_codegen_cleanly(self):
        machine = paper_machine()
        for archetype, seed in (("stencil", 3), ("fp_chain", 11), ("mixed", 4)):
            loop = generate(archetype, seed)
            compiled = compile_loop(loop, machine, Strategy.SELECTIVE)
            unit = compiled.units[0]
            graph = analyze_loop(unit.transform.loop, machine.vector_length).graph
            code = generate_kernel_only_code(unit.schedule, graph)
            assert code.listing()
