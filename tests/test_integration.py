"""End-to-end integration: DSL source through every subsystem at once."""

import pytest

from repro.compiler import ALL_STRATEGIES, Strategy, compile_loop
from repro.compiler.driver import CompiledLoop
from repro.dependence import analyze_loop
from repro.frontend import parse_loop
from repro.interp import memory_for_loop, run_loop
from repro.machine import paper_machine
from repro.opt import optimize_loop
from repro.pipeline import generate_kernel_only_code, modulo_variable_expansion
from repro.simulate import simulate_pipeline

SOURCE = """
loop integration
array a(4096), b(4096), out(4096), hist(4096)
param w = 0.75
carry acc = 0.0
sym row = 2

do i
    left  = a(i) * w
    right = b(i+1) * (1.0 - 0.75)
    v = left + right
    v = v * v + a(i)          # sequential rebinding
    out(i) = v
    hist(i) = max(abs(v), b(i))
    acc = acc + left
end

result acc
"""


@pytest.fixture(scope="module")
def machine():
    return paper_machine()


@pytest.fixture(scope="module")
def loop():
    return optimize_loop(parse_loop(SOURCE))


@pytest.fixture(scope="module")
def reference(loop):
    mem = memory_for_loop(loop, seed=77)
    result = run_loop(loop, mem, 0, 91)
    return mem.snapshot_user_arrays(), result.carried


@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.value)
def test_full_stack_equivalence(loop, machine, strategy, reference):
    ref_mem, ref_carried = reference
    compiled = compile_loop(loop, machine, strategy)
    mem = memory_for_loop(loop, seed=77)
    result = compiled.execute(mem, 91)
    assert mem.snapshot_user_arrays() == ref_mem
    assert result.carried["acc"] == pytest.approx(ref_carried["acc"], rel=1e-12)


def test_selective_improves_over_baseline(loop, machine):
    baseline = compile_loop(loop, machine, Strategy.BASELINE)
    selective = compile_loop(loop, machine, Strategy.SELECTIVE)
    assert (
        selective.res_mii_per_iteration() <= baseline.res_mii_per_iteration()
    )


def test_schedule_runs_in_pipeline_simulator(loop, machine, reference):
    ref_mem, _ = reference
    compiled = compile_loop(loop, machine, Strategy.SELECTIVE)
    unit = compiled.units[0]
    factor = unit.transform.factor
    trip = 90  # divisible by factor=2: no cleanup
    mem = memory_for_loop(loop, seed=77)
    run = simulate_pipeline(unit.schedule, mem, trip // factor)
    ref2 = memory_for_loop(loop, seed=77)
    run_loop(loop, ref2, 0, trip)
    assert mem.snapshot_user_arrays() == ref2.snapshot_user_arrays()
    model = (trip // factor + unit.schedule.stage_count - 1) * unit.schedule.ii
    assert trip // factor * unit.schedule.ii <= run.cycles <= model


def test_codegen_and_mve_consistent(loop, machine):
    compiled = compile_loop(loop, machine, Strategy.SELECTIVE)
    unit = compiled.units[0]
    graph = analyze_loop(unit.transform.loop, machine.vector_length).graph
    code = generate_kernel_only_code(unit.schedule, graph)
    mve = modulo_variable_expansion(unit.schedule, graph)
    # rotation depth never exceeds the MVE unroll requirement
    assert all(off <= mve.unroll for off in code.max_offset.values())
    assert code.listing()


def test_compiled_loop_repr_fields(loop, machine):
    compiled = compile_loop(loop, machine, Strategy.SELECTIVE)
    assert isinstance(compiled, CompiledLoop)
    assert compiled.source is loop
    assert compiled.strategy is Strategy.SELECTIVE
    assert compiled.invocation_cycles(0) > 0  # setup cost
