"""Tests for modulo variable expansion."""

import math

import pytest

from repro.compiler.driver import compile_loop
from repro.compiler.strategies import Strategy
from repro.dependence.analysis import analyze_loop
from repro.machine.configs import paper_machine
from repro.pipeline.mve import (
    expanded_kernel_listing,
    modulo_variable_expansion,
    value_lifetimes,
)
from repro.regalloc.allocator import _live_copies
from repro.workloads.kernels import ALL_KERNELS


def unit_and_graph(kernel, strategy=Strategy.BASELINE):
    machine = paper_machine()
    loop = ALL_KERNELS[kernel]()
    compiled = compile_loop(loop, machine, strategy)
    unit = compiled.units[0]
    graph = analyze_loop(unit.transform.loop, machine.vector_length).graph
    return unit, graph


class TestLifetimes:
    def test_lifetime_covers_latency(self):
        unit, graph = unit_and_graph("saxpy")
        schedule = unit.schedule
        lifetimes = value_lifetimes(schedule, graph)
        for op in schedule.loop.body:
            if op.dest is None:
                continue
            start, end = lifetimes[op.dest]
            assert start == schedule.times[op.uid]
            latency = schedule.machine.opcode_info(op).latency
            assert end >= start + max(1, latency)

    def test_lifetime_extends_to_consumers(self):
        unit, graph = unit_and_graph("dot_product")
        schedule = unit.schedule
        lifetimes = value_lifetimes(schedule, graph)
        for edge in graph.edges:
            src = graph.ops[edge.src]
            if src.dest is None or src.dest not in lifetimes:
                continue
            _, end = lifetimes[src.dest]


class TestUnrollFactor:
    @pytest.mark.parametrize("kernel", ["saxpy", "dot_product", "relaxation"])
    def test_unroll_is_max_copies(self, kernel):
        unit, graph = unit_and_graph(kernel)
        schedule = unit.schedule
        mve = modulo_variable_expansion(schedule, graph)
        lifetimes = value_lifetimes(schedule, graph)
        expected = max(
            max(1, math.ceil((e - s) / schedule.ii))
            for s, e in lifetimes.values()
        )
        assert mve.unroll == expected
        assert mve.unroll >= schedule.stage_count - 1 or mve.unroll >= 1

    def test_copies_cover_maxlive(self):
        """The number of names MVE allocates for a value must cover the
        maximum number of its simultaneously live rotating copies."""
        unit, graph = unit_and_graph("relaxation", Strategy.SELECTIVE)
        schedule = unit.schedule
        mve = modulo_variable_expansion(schedule, graph)
        lifetimes = value_lifetimes(schedule, graph)
        for reg, (start, end) in lifetimes.items():
            worst = max(
                _live_copies(start, end, c, schedule.ii)
                for c in range(schedule.ii)
            )
            assert mve.copies_per_value[reg] >= worst

    def test_registers_per_file_totals(self):
        unit, graph = unit_and_graph("saxpy")
        mve = modulo_variable_expansion(unit.schedule, graph)
        assert sum(mve.registers_per_file.values()) == sum(
            mve.copies_per_value.values()
        )

    def test_names_for(self):
        unit, graph = unit_and_graph("saxpy")
        mve = modulo_variable_expansion(unit.schedule, graph)
        reg = next(iter(mve.copies_per_value))
        names = mve.names_for(reg)
        assert len(names) == mve.copies_per_value[reg]
        assert len(set(names)) == len(names)


class TestExpandedListing:
    def test_listing_has_all_copies(self):
        unit, graph = unit_and_graph("dot_product")
        mve = modulo_variable_expansion(unit.schedule, graph)
        text = expanded_kernel_listing(unit.schedule, graph)
        for u in range(mve.unroll):
            assert f"copy {u}:" in text
        assert f"unroll x{mve.unroll}" in text

    def test_round_robin_renaming_distinct_across_adjacent_copies(self):
        unit, graph = unit_and_graph("saxpy")
        mve = modulo_variable_expansion(unit.schedule, graph)
        if mve.unroll < 2:
            pytest.skip("kernel needs no expansion")
        text = expanded_kernel_listing(unit.schedule, graph)
        # values with >1 copy must use a different name in copy 0 and 1
        multi = [r for r, n in mve.copies_per_value.items() if n > 1]
        assert multi
        for reg in multi:
            assert f"{reg.name}#0" in text and f"{reg.name}#1" in text
