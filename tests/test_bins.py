"""Tests for the bin-packing machinery (Figure 2, lines 33-70)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.operations import OpKind
from repro.ir.types import ScalarType
from repro.machine.configs import paper_machine
from repro.vectorize.bins import Bins, placement_freedom

F64 = ScalarType.F64
I64 = ScalarType.I64


@pytest.fixture
def bins(paper):
    return Bins(paper)


def info(paper, kind, dtype=F64, vector=False):
    return paper.opcode_info_for(kind, dtype, vector)


class TestBins:
    def test_starts_empty(self, bins):
        assert bins.high_water_mark() == 0
        assert bins.sum_of_squares() == 0

    def test_single_reservation(self, bins, paper):
        bins.reserve_least_used(info(paper, OpKind.ADD), key=1)
        assert bins.high_water_mark() == 1

    def test_alternatives_balance(self, bins, paper):
        # 2 fp units: two fp adds share the high-water mark of 1.
        bins.reserve_least_used(info(paper, OpKind.ADD), key=1)
        bins.reserve_least_used(info(paper, OpKind.ADD), key=2)
        assert bins.high_water_mark() == 1
        bins.reserve_least_used(info(paper, OpKind.ADD), key=3)
        assert bins.high_water_mark() == 2

    def test_issue_slots_fill_across_six(self, bins, paper):
        for k in range(6):
            bins.reserve_least_used(info(paper, OpKind.ADD, I64), key=k)
        # 6 ops over 6 slots, but only 4 int units -> int is the constraint
        assert bins.high_water_mark() == 2

    def test_blocking_divide_weights(self, bins, paper):
        bins.reserve_least_used(info(paper, OpKind.DIV), key=1)
        assert bins.high_water_mark() == 32

    def test_release_restores_exactly(self, bins, paper):
        bins.reserve_least_used(info(paper, OpKind.ADD), key="a")
        snapshot = dict(bins.weights)
        bins.reserve_least_used(info(paper, OpKind.MUL), key="b")
        bins.release("b")
        assert bins.weights == snapshot

    def test_release_unknown_key_is_noop(self, bins):
        bins.release("ghost")
        assert bins.high_water_mark() == 0

    def test_double_release_detected(self, bins, paper):
        bins.reserve_least_used(info(paper, OpKind.ADD), key="a")
        ledger = list(bins.reservations["a"])
        bins.release("a")
        bins.reservations["a"] = ledger
        with pytest.raises(RuntimeError):
            bins.release("a")

    def test_copy_is_independent(self, bins, paper):
        bins.reserve_least_used(info(paper, OpKind.ADD), key="a")
        clone = bins.copy()
        clone.reserve_least_used(info(paper, OpKind.ADD), key="b")
        assert bins.high_water_mark() == 1
        assert "b" not in bins.reservations

    def test_squared_tiebreak_spreads_load(self, bins, paper):
        """When the high-water mark is unaffected, reservations spread
        across alternatives (minimizing the sum of squares)."""
        for k in range(4):
            bins.reserve_least_used(info(paper, OpKind.ADD, I64), key=k)
        int_weights = [bins.weights[f"int{i}"] for i in range(4)]
        assert int_weights == [1, 1, 1, 1]

    @given(st.lists(st.sampled_from(["add", "mul", "load", "store"]), max_size=24))
    def test_hwm_equals_max_weight_invariant(self, kinds):
        paper = paper_machine()
        bins = Bins(paper)
        for i, k in enumerate(kinds):
            kind = {"add": OpKind.ADD, "mul": OpKind.MUL,
                    "load": OpKind.LOAD, "store": OpKind.STORE}[k]
            bins.reserve_least_used(info(paper, kind), key=i)
        assert bins.high_water_mark() == max(bins.weights.values())
        total = sum(bins.weights.values())
        # Every op reserves exactly slot + one unit = 2 cycles.
        assert total == 2 * len(kinds)

    @given(st.lists(st.sampled_from(["add", "mul", "load"]), min_size=1, max_size=16))
    def test_release_all_returns_to_empty(self, kinds):
        paper = paper_machine()
        bins = Bins(paper)
        for i, k in enumerate(kinds):
            kind = {"add": OpKind.ADD, "mul": OpKind.MUL, "load": OpKind.LOAD}[k]
            bins.reserve_least_used(info(paper, kind), key=i)
        for i in range(len(kinds)):
            bins.release(i)
        assert all(w == 0 for w in bins.weights.values())


class TestPlacementFreedom:
    def test_fp_op_freedom(self, paper):
        # slot(6) x fp(2)
        assert placement_freedom(paper, info(paper, OpKind.ADD)) == 12

    def test_branch_is_most_constrained(self, paper):
        assert placement_freedom(paper, info(paper, OpKind.CBR, I64)) == 6

    def test_int_op_freedom(self, paper):
        assert placement_freedom(paper, info(paper, OpKind.ADD, I64)) == 24
