"""The shared pure compile entry point (`repro.compiler.service`).

`compile_one` must be exactly `compile_loop` with named knobs — the
Evaluator, sweep runner, CLI, and compile server all route through it,
so any drift here is drift everywhere at once.
"""

from __future__ import annotations

import json

from repro.compiler.driver import compile_loop
from repro.compiler.service import (
    CompiledLoopPayload,
    CompileRequest,
    compile_one,
    effort_counters,
)
from repro.compiler.strategies import Strategy
from repro.frontend import parse_loop
from repro.machine.configs import (
    MACHINE_FACTORIES,
    machine_by_name,
    paper_machine,
)
from repro.workloads.generator import generate

DSL = "array x(64), z(64)\ndo i\n z(i) = x(i) + x(i) * 2.0\nend"


class TestCompileOne:
    def test_matches_direct_driver_call(self):
        machine = paper_machine()
        for label in ("selective", "traditional", "full"):
            loop = parse_loop(DSL)
            direct = compile_loop(loop, machine, Strategy(label))
            served = compile_one(
                CompileRequest(
                    loop=parse_loop(DSL),
                    machine=machine,
                    strategy=Strategy(label),
                )
            ).compiled
            assert served.ii_per_iteration() == direct.ii_per_iteration()
            assert served.n_vector_ops == direct.n_vector_ops
            assert served.n_transfers == direct.n_transfers
            assert effort_counters(served) == effort_counters(direct)

    def test_knobs_are_forwarded(self):
        machine = paper_machine()
        request = CompileRequest(
            loop=generate("fp_chain", 7),
            machine=machine,
            strategy=Strategy("selective"),
            optimize=True,
        )
        direct = compile_loop(
            generate("fp_chain", 7), machine, Strategy("selective"),
            optimize=True,
        )
        assert (
            compile_one(request).compiled.ii_per_iteration()
            == direct.ii_per_iteration()
        )


class TestCacheKey:
    def test_rebuilt_loop_hashes_equal(self):
        machine = paper_machine()
        keys = {
            CompileRequest(
                loop=generate("stencil", 11),
                machine=machine,
                strategy=Strategy("selective"),
            ).cache_key()
            for _ in range(3)
        }
        assert len(keys) == 1

    def test_distinct_inputs_hash_distinct(self):
        machine = paper_machine()
        base = CompileRequest(
            loop=generate("stencil", 11),
            machine=machine,
            strategy=Strategy("selective"),
        )
        other_loop = CompileRequest(
            loop=generate("stencil", 12),
            machine=machine,
            strategy=Strategy("selective"),
        )
        other_strategy = CompileRequest(
            loop=generate("stencil", 11),
            machine=machine,
            strategy=Strategy("traditional"),
        )
        other_knob = CompileRequest(
            loop=generate("stencil", 11),
            machine=machine,
            strategy=Strategy("selective"),
            optimize=True,
        )
        keys = {
            base.cache_key(),
            other_loop.cache_key(),
            other_strategy.cache_key(),
            other_knob.cache_key(),
        }
        assert len(keys) == 4


class TestSummary:
    def test_summary_is_json_and_complete(self):
        payload = compile_one(
            CompileRequest(
                loop=parse_loop(DSL),
                machine=paper_machine(),
                strategy=Strategy("selective"),
            )
        )
        summary = json.loads(json.dumps(payload.summary()))
        for field in (
            "loop",
            "machine",
            "strategy",
            "ii",
            "res_mii",
            "rec_mii",
            "units",
            "n_vector_ops",
            "n_transfers",
            "resource_limited",
            "effort",
        ):
            assert field in summary
        assert summary["strategy"] == "selective"
        assert summary["units"]
        assert summary["effort"]["sched_attempts"] >= 1

    def test_partition_effort_present_when_partitioned(self):
        payload = compile_one(
            CompileRequest(
                loop=generate("mixed", 5),
                machine=paper_machine(),
                strategy=Strategy("selective"),
            )
        )
        effort = effort_counters(payload.compiled)
        if payload.compiled.partition is not None:
            assert "kl_pack_steps" in effort
            assert "kl_probe_cache_hits" in effort


class TestMachineRegistry:
    def test_every_registry_name_resolves(self):
        for name in MACHINE_FACTORIES:
            machine = machine_by_name(name)
            assert machine.vector_length >= 1

    def test_unknown_name_lists_options(self):
        try:
            machine_by_name("nope")
        except KeyError as exc:
            assert "paper" in str(exc)
        else:
            raise AssertionError("expected KeyError")
