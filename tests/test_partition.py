"""Tests for selective vectorization partitioning (Figure 2)."""


from repro.dependence.analysis import analyze_loop
from repro.ir.builder import LoopBuilder
from repro.ir.values import const_f64
from repro.machine.configs import scalar_only_machine
from repro.vectorize.communication import Side, dataflow_of, transfers_for
from repro.vectorize.partition import PartitionConfig, partition_operations


def fp_chain_loop(length=8):
    b = LoopBuilder("chain")
    b.array("x", dim_sizes=(2048,))
    b.array("z", dim_sizes=(2048,))
    v = b.load("x", b.idx(), name="v")
    acc = v
    for k in range(length):
        acc = b.add(b.mul(acc, acc, name=f"m{k}"), v, name=f"a{k}")
    b.store("z", b.idx(), acc)
    return b.build()


class TestFigure1:
    """The motivating example: the partitioner must reproduce the paper's
    hand schedule on the toy machine."""

    def test_selective_cost_reaches_one_per_iteration(self, dot_loop, toy):
        dep = analyze_loop(dot_loop, 2)
        result = partition_operations(dep, toy)
        assert result.cost == 2  # per 2 original iterations
        assert result.ii_estimate(2) == 1.0

    def test_partition_shape(self, dot_loop, toy):
        dep = analyze_loop(dot_loop, 2)
        result = partition_operations(dep, toy)
        sides = [result.assignment[op.uid] for op in dot_loop.body]
        # The reduction add must stay scalar; exactly 2 of {load, load, mul}
        # are vectorized (one load plus the multiply).
        assert sides[3] is Side.SCALAR
        assert sum(1 for s in sides[:3] if s is Side.VECTOR) == 2

    def test_scalar_cost_is_unrolled_baseline(self, dot_loop, toy):
        dep = analyze_loop(dot_loop, 2)
        result = partition_operations(dep, toy)
        assert result.scalar_cost == 3  # 8 scalar ops over 3 slots


class TestAlgorithmBehavior:
    def test_never_worse_than_scalar(self, dot_loop, saxpy_loop, stream_loop, paper):
        for loop in (dot_loop, saxpy_loop, stream_loop, fp_chain_loop()):
            dep = analyze_loop(loop, 2)
            result = partition_operations(dep, paper)
            assert result.cost <= result.scalar_cost

    def test_history_is_monotone(self, paper):
        dep = analyze_loop(fp_chain_loop(), 2)
        result = partition_operations(dep, paper)
        assert all(a >= b for a, b in zip(result.history, result.history[1:]))

    def test_converges(self, paper):
        dep = analyze_loop(fp_chain_loop(10), 2)
        result = partition_operations(dep, paper)
        assert result.iterations >= 1
        assert result.history[-1] == result.cost

    def test_max_iterations_limits_work(self, paper):
        dep = analyze_loop(fp_chain_loop(10), 2)
        limited = partition_operations(
            dep, paper, PartitionConfig(max_iterations=1)
        )
        assert limited.iterations <= 1

    def test_fp_chain_halves_cost(self, paper):
        """A long fp chain is fp-bound when scalar; splitting it across the
        fp units and the vector unit roughly halves the ResMII."""
        dep = analyze_loop(fp_chain_loop(8), 2)
        result = partition_operations(dep, paper)
        assert result.scalar_cost >= 16
        assert result.cost <= result.scalar_cost * 0.6

    def test_no_vector_unit_keeps_all_scalar(self, dot_loop):
        machine = scalar_only_machine()
        dep = analyze_loop(dot_loop, 2)
        result = partition_operations(dep, machine)
        assert not result.any_vectorized
        assert result.iterations == 0

    def test_nothing_vectorizable_short_circuits(self, paper):
        b = LoopBuilder("serial")
        b.array("y", dim_sizes=(2048,))
        t = b.load("y", b.idx(offset=0), name="t")
        u = b.mul(t, const_f64(0.5), name="u")
        b.store("y", b.idx(offset=1), u)
        dep = analyze_loop(b.build(), 2)
        result = partition_operations(dep, paper)
        assert not result.any_vectorized

    def test_only_vectorizable_ops_assigned_vector(self, dot_loop, paper, toy):
        for machine in (paper, toy):
            dep = analyze_loop(dot_loop, 2)
            result = partition_operations(dep, machine)
            for op in dot_loop.body:
                if result.assignment[op.uid] is Side.VECTOR:
                    assert dep.is_vectorizable(op)

    def test_vectorized_property(self, toy, dot_loop):
        dep = analyze_loop(dot_loop, 2)
        result = partition_operations(dep, toy)
        assert result.vectorized == {
            uid for uid, s in result.assignment.items() if s is Side.VECTOR
        }


class TestCommunicationAwareness:
    def test_communication_blind_config(self, paper):
        """With communication ignored the partitioner happily creates
        transfer-heavy partitions; with it considered the final cost must
        account for them."""
        dep = analyze_loop(fp_chain_loop(8), 2)
        aware = partition_operations(dep, paper)
        blind = partition_operations(
            dep, paper, PartitionConfig(account_communication=False)
        )
        # The blind cost is an underestimate of what its assignment truly
        # costs; re-binning the blind assignment with communication included
        # can only be worse or equal to the aware result.
        model = __import__(
            "repro.vectorize.partition", fromlist=["PartitionCostModel"]
        ).PartitionCostModel(dep, paper, PartitionConfig())
        blind_true_cost = model.bin_pack(blind.assignment).high_water_mark()
        assert aware.cost <= blind_true_cost

    def test_transfers_counted_once_per_operand(self, paper):
        """One producer feeding two scalar consumers across the boundary
        transfers once."""
        b = LoopBuilder("fanout")
        b.array("x", dim_sizes=(2048,))
        b.array("y", dim_sizes=(2048,))
        b.array("z", dim_sizes=(2048,))
        v = b.load("x", b.idx(), name="v")
        p = b.mul(v, v, name="p")
        q = b.add(p, v, name="q")
        r = b.sub(p, v, name="r")
        b.store("y", b.idx(), q)
        b.store("z", b.idx(), r)
        loop = b.build()
        dep = analyze_loop(loop, 2)
        dataflow = dataflow_of(dep)
        assignment = {op.uid: Side.SCALAR for op in loop.body}
        p_op = loop.body[1]
        assignment[p_op.uid] = Side.VECTOR
        transfers = transfers_for(dataflow, assignment)
        keys = [t.key for t in transfers]
        assert keys.count(p_op.uid) == 1
