"""Tests for the traditional (Allen-Kennedy) and full vectorizers."""

import pytest

from repro.compiler.driver import compile_loop
from repro.compiler.strategies import Strategy
from repro.dependence.analysis import analyze_loop
from repro.ir.builder import LoopBuilder
from repro.ir.values import const_f64
from repro.vectorize.communication import Side
from repro.vectorize.full import full_assignment, refine_isolated
from repro.vectorize.traditional import EXPANSION_PREFIX, distribute_loop
from repro.workloads.generator import generate
from repro.workloads.kernels import complex_multiply, sum_and_scale


class TestFullAssignment:
    def test_dot_product_keeps_reduction_scalar(self, dot_loop):
        dep = analyze_loop(dot_loop, 2)
        assignment = full_assignment(dep)
        load_x, load_y, mul, add = dot_loop.body
        assert assignment[load_x.uid] is Side.VECTOR
        assert assignment[mul.uid] is Side.VECTOR
        assert assignment[add.uid] is Side.SCALAR

    def test_isolated_op_demoted(self):
        """A vectorizable op whose only dataflow neighbors are
        non-vectorizable gains nothing from vectorization and stays scalar."""
        b = LoopBuilder("iso")
        b.array("x", dim_sizes=(4096,))
        b.array("z", dim_sizes=(4096,))
        t = b.load("x", b.idx(), name="t")       # vectorizable
        s = b.carried("s", 0.0)
        s2 = b.add(s, t, name="s2")              # reduction: scalar
        b.carry("s", s2)
        b.live_out(s2)
        loop = b.build()
        dep = analyze_loop(loop, 2)
        assignment = full_assignment(dep)
        # the load's only consumer is the scalar add -> demoted
        assert assignment[loop.body[0].uid] is Side.SCALAR

    def test_refine_isolated_keeps_connected(self, stream_loop):
        dep = analyze_loop(stream_loop, 2)
        refined = refine_isolated(dep, set(dep.vectorizable))
        assert refined == dep.vectorizable


class TestDistribution:
    def test_fully_vectorizable_loop_not_distributed(self, stream_loop, paper):
        dep = analyze_loop(stream_loop, 2)
        units = distribute_loop(dep, paper)
        assert len(units) == 1
        assert units[0].vector

    def test_fully_serial_loop_not_distributed(self, paper):
        b = LoopBuilder("serial")
        b.array("y", dim_sizes=(4096,))
        t = b.load("y", b.idx(offset=0), name="t")
        u = b.mul(t, const_f64(0.5), name="u")
        b.store("y", b.idx(offset=1), u)
        dep = analyze_loop(b.build(), 2)
        units = distribute_loop(dep, paper)
        assert len(units) == 1
        assert not units[0].vector

    def test_dot_product_figure_1d(self, dot_loop, paper):
        """Figure 1(d): vector loop {loads, mul, store T} then scalar loop
        {load T, add}."""
        dep = analyze_loop(dot_loop, 2)
        units = distribute_loop(dep, paper)
        assert [u.vector for u in units] == [True, False]
        vector_body, scalar_body = units[0].loop.body, units[1].loop.body
        # the vector loop ends with a store into the expansion array
        assert vector_body[-1].is_store
        assert vector_body[-1].array.startswith(EXPANSION_PREFIX)
        # the scalar loop begins by loading it
        assert scalar_body[0].is_load
        assert scalar_body[0].array.startswith(EXPANSION_PREFIX)
        # the reduction lives in the scalar loop
        assert units[1].loop.carried

    def test_expansion_value_loaded_once_per_partition(self, paper):
        loop = sum_and_scale()
        dep = analyze_loop(loop, 2)
        units = distribute_loop(dep, paper)
        for unit in units:
            loads = [
                op.array
                for op in unit.loop.body
                if op.is_load and op.array.startswith(EXPANSION_PREFIX)
            ]
            assert len(loads) == len(set(loads))

    def test_interleaved_shatters(self, paper):
        loop = generate("interleaved", seed=17)
        dep = analyze_loop(loop, 2)
        units = distribute_loop(dep, paper)
        assert len(units) >= 5
        assert any(u.vector for u in units)
        assert any(not u.vector for u in units)

    def test_strided_aggregation(self, paper):
        """Strided memory is gathered into contiguous expansion arrays so
        the vector loop can consume it — the paper's scatter/gather
        substitute."""
        loop = complex_multiply()
        dep = analyze_loop(loop, 2)
        units = distribute_loop(dep, paper)
        scalar_units = [u for u in units if not u.vector]
        vector_units = [u for u in units if u.vector]
        assert scalar_units and vector_units
        for vu in vector_units:
            for op in vu.loop.body:
                if op.kind.is_memory:
                    assert op.subscript.is_unit_stride

    def test_all_sub_loops_verify(self, paper):
        from repro.ir.verifier import verify_loop

        for seed in (3, 17, 99):
            loop = generate("interleaved", seed=seed)
            dep = analyze_loop(loop, 2)
            for unit in distribute_loop(dep, paper):
                verify_loop(unit.loop)


class TestStrategyComparisons:
    def test_traditional_slower_on_mixed_loops(self, dot_loop, paper):
        base = compile_loop(dot_loop, paper, Strategy.BASELINE)
        trad = compile_loop(dot_loop, paper, Strategy.TRADITIONAL)
        assert trad.invocation_cycles(200) > base.invocation_cycles(200)

    def test_figure1_traditional_ii(self, dot_loop, toy):
        trad = compile_loop(dot_loop, toy, Strategy.TRADITIONAL)
        assert trad.ii_per_iteration() == 3.0

    def test_selective_never_loses_steady_state(self, paper):
        """Per-iteration steady-state cost of selective <= baseline on
        every kernel (fill/drain effects can differ, II cannot be worse
        by more than scheduler noise)."""
        from repro.workloads.kernels import ALL_KERNELS

        for name, factory in sorted(ALL_KERNELS.items()):
            loop = factory()
            base = compile_loop(loop, paper, Strategy.BASELINE)
            sel = compile_loop(loop, paper, Strategy.SELECTIVE)
            assert sel.res_mii_per_iteration() <= base.res_mii_per_iteration() + 1e-9, name

    def test_full_vector_op_counts(self, stream_loop, paper):
        full = compile_loop(stream_loop, paper, Strategy.FULL)
        assert full.n_vector_ops == 4  # 2 vloads + vadd + vstore
        assert full.n_transfers == 0


class TestCarriedExpansion:
    def _loop(self):
        from repro.ir.values import const_f64

        b = LoopBuilder("carried_remote")
        b.array("x", dim_sizes=(2048,))
        b.array("y", dim_sizes=(2048,))
        s = b.carried("s", 1.0)
        xi = b.load("x", b.idx(), name="xi")
        prod = b.mul(xi, s, name="prod")  # vector partition reads s
        q = b.mul(prod, const_f64(0.5), name="q")
        b.store("y", b.idx(), q)
        s2 = b.add(s, xi, name="s2")
        b.carry("s", s2)
        b.live_out(s2)
        return b.build()

    def test_running_value_expanded_to_remote_partition(self, paper):
        """A carried scalar read by a *different* partition is expanded:
        the owner stores its per-iteration entry value; the remote reader
        loads it."""
        loop = self._loop()
        dep = analyze_loop(loop, 2)
        units = distribute_loop(dep, paper)
        owner = next(u for u in units if u.loop.carried)
        exp_store = [
            op
            for op in owner.loop.body
            if op.is_store and op.array == f"{EXPANSION_PREFIX}s"
        ]
        assert exp_store and exp_store[0].stored_value.name == "s"
        readers = [
            u
            for u in units
            if u is not owner
            and any(
                op.is_load and op.array == f"{EXPANSION_PREFIX}s"
                for op in u.loop.body
            )
        ]
        assert readers and readers[0].vector

    def test_semantics_through_driver(self, paper):
        from repro.interp.interpreter import run_loop
        from repro.interp.memory import memory_for_loop

        loop = self._loop()
        trip = 41
        ref = memory_for_loop(loop, seed=2)
        seq = run_loop(loop, ref, 0, trip)
        compiled = compile_loop(loop, paper, Strategy.TRADITIONAL)
        mem = memory_for_loop(loop, seed=2)
        result = compiled.execute(mem, trip)
        assert mem.snapshot_user_arrays() == ref.snapshot_user_arrays()
        assert result.carried["s"] == pytest.approx(seq.carried["s"], abs=1e-12)

    def test_no_fusion_variant_still_correct(self, paper):
        from repro.dependence.analysis import analyze_loop as analyze
        from repro.interp.interpreter import run_loop
        from repro.interp.memory import memory_for_loop
        from repro.vectorize.communication import Side
        from repro.vectorize.transform import transform_loop

        loop = self._loop()
        dep = analyze(loop, 2)
        units = distribute_loop(dep, paper, fuse=False)
        assert len(units) >= 3
        trip = 30
        ref = memory_for_loop(loop, seed=4)
        run_loop(loop, ref, 0, trip)
        mem = memory_for_loop(loop, seed=4)
        carried_state = {c.entry.name: c.init for c in loop.carried}
        for unit in units:
            sub_dep = analyze(unit.loop, 2)
            assignment = {
                op.uid: (
                    Side.VECTOR
                    if unit.vector and sub_dep.is_vectorizable(op)
                    else Side.SCALAR
                )
                for op in unit.loop.body
            }
            factor = 2 if unit.vector else 1
            tr = transform_loop(sub_dep, paper, assignment, factor)
            init = {
                name: value
                for name, value in carried_state.items()
                if name in {c.entry.name for c in tr.loop.carried}
            }
            r = run_loop(tr.loop, mem, 0, trip // factor, carried_init=init)
            carried_state.update(r.carried)
            if trip % factor:
                r = run_loop(
                    tr.cleanup,
                    mem,
                    (trip // factor) * factor,
                    trip % factor,
                    carried_init={
                        name: carried_state[name]
                        for name in {c.entry.name for c in tr.cleanup.carried}
                        if name in carried_state
                    },
                )
                carried_state.update(r.carried)
        assert mem.snapshot_user_arrays() == ref.snapshot_user_arrays()
