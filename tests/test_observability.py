"""Tests for the observability subsystem: spans, stats, events, export."""

import json

import pytest

from repro.compiler import Strategy, compile_loop
from repro.machine import paper_machine
from repro.observability import (
    Recorder,
    active_recorder,
    install,
    maybe_span,
    recorder_to_dict,
    recording,
    render_stats_table,
    write_trace,
)
from repro.workloads.livermore import k1_hydro


class TestSpans:
    def test_spans_nest(self):
        rec = Recorder()
        with rec.span("outer", loop="l"):
            with rec.span("inner"):
                pass
            with rec.span("inner"):
                pass
        assert [r.name for r in rec.tracer.roots] == ["outer"]
        outer = rec.tracer.roots[0]
        assert [c.name for c in outer.children] == ["inner", "inner"]
        assert outer.attrs == {"loop": "l"}
        assert outer.duration_ns >= sum(c.duration_ns for c in outer.children)
        assert all(c.end_ns is not None for c in outer.children)

    def test_path_reflects_open_spans(self):
        rec = Recorder()
        with rec.span("a"):
            with rec.span("b"):
                assert rec.tracer.path() == "a/b"
        assert rec.tracer.path() == ""

    def test_aggregate_counts_by_name(self):
        rec = Recorder()
        for _ in range(3):
            with rec.span("phase"):
                pass
        agg = rec.tracer.aggregate()
        assert agg["phase"][0] == 3
        assert agg["phase"][1] > 0

    def test_exception_unwinds_stack(self):
        rec = Recorder()
        with pytest.raises(ValueError):
            with rec.span("outer"):
                with rec.span("inner"):
                    raise ValueError
        assert rec.tracer.path() == ""
        assert all(s.end_ns is not None for s in rec.tracer.roots[0].walk())


class TestStats:
    def test_counters_and_distributions(self):
        rec = Recorder()
        rec.count("c", 2)
        rec.count("c")
        rec.observe("d", 1.0)
        rec.observe("d", 3.0)
        assert rec.counter("c") == 3
        dist = rec.stats.distributions["d"]
        assert (dist.n, dist.mean, dist.min, dist.max) == (2, 2.0, 1.0, 3.0)

    def test_counters_reset_between_sessions(self):
        with recording() as first:
            first.count("c", 5)
        assert first.counter("c") == 5
        with recording() as second:
            pass
        assert second.counter("c") == 0
        first.reset()
        assert first.counter("c") == 0
        assert first.tracer.roots == []
        assert len(first.events) == 0


class TestDisabledMode:
    def test_no_recorder_by_default(self):
        assert active_recorder() is None

    def test_disabled_compile_records_nothing(self):
        probe = Recorder()  # never installed
        compile_loop(k1_hydro(), paper_machine(), Strategy.SELECTIVE)
        assert probe.stats.counters == {}
        assert probe.tracer.roots == []
        assert len(probe.events) == 0
        assert active_recorder() is None

    def test_maybe_span_with_none_is_shared_null(self):
        first = maybe_span(None, "a")
        second = maybe_span(None, "b", x=1)
        assert first is second  # no per-call allocation when disabled

    def test_trace_disabled_recorder_skips_spans(self):
        rec = Recorder(trace=False)
        with rec.span("phase"):
            rec.count("c")
        assert rec.tracer.roots == []
        assert rec.counter("c") == 1

    def test_recording_restores_previous(self):
        outer = Recorder()
        install(outer)
        try:
            with recording() as inner:
                assert active_recorder() is inner
            assert active_recorder() is outer
        finally:
            install(None)


class TestExport:
    def test_json_round_trip(self, tmp_path):
        with recording() as rec:
            compile_loop(k1_hydro(), paper_machine(), Strategy.SELECTIVE)
        d = recorder_to_dict(rec)
        assert json.loads(json.dumps(d)) == d
        path = tmp_path / "trace.json"
        write_trace(rec, str(path))
        assert json.loads(path.read_text()) == d

    def test_stats_table_renders_all_sections(self):
        with recording() as rec:
            compile_loop(k1_hydro(), paper_machine(), Strategy.SELECTIVE)
        table = render_stats_table(rec)
        assert "phase wall time" in table
        assert "counters" in table
        assert "events" in table
        assert "compile_loop" in table
        assert "kl.moves_evaluated" in table

    def test_empty_recorder_renders(self):
        assert "nothing recorded" in render_stats_table(Recorder())


class TestCompilePipelineTelemetry:
    @pytest.fixture(scope="class")
    def session(self):
        with recording() as rec:
            compiled = compile_loop(
                k1_hydro(), paper_machine(), Strategy.SELECTIVE
            )
        return rec, compiled

    def test_expected_phase_names(self, session):
        rec, _ = session
        names = {s.name for root in rec.tracer.roots for s in root.walk()}
        assert {
            "compile_loop",
            "dependence",
            "partition",
            "transform",
            "compile_unit",
            "modulo_schedule",
            "regalloc",
        } <= names

    def test_kl_and_scheduler_counters_nonzero(self, session):
        rec, _ = session
        assert rec.counter("kl.moves_evaluated") > 0
        assert rec.counter("kl.bin_packs") > 0
        assert rec.counter("kl.iterations") > 0
        assert rec.counter("sched.ii_attempts") > 0
        assert rec.counter("sched.placements") > 0
        assert rec.counter("regalloc.calls") > 0

    def test_decision_events_recorded(self, session):
        rec, compiled = session
        kl = rec.events.by_name("kl.converged")
        assert len(kl) == 1
        assert kl[0].data["cost"] == compiled.partition.cost
        scheduled = rec.events.by_name("sched.scheduled")
        assert scheduled and scheduled[0].data["ii"] == compiled.units[0].ii
        units = rec.events.by_name("unit.compiled")
        assert units and units[0].data["allocation_ok"] is True

    def test_partition_result_carries_search_counts(self, session):
        _, compiled = session
        p = compiled.partition
        assert p.n_probes > 0
        assert p.n_bin_packs > 0
        assert p.moves >= p.moves_accepted > 0


class TestEnvFallback:
    def test_repro_stats_env_prints_table_at_exit(self, tmp_path):
        import os
        import subprocess
        import sys

        trace_path = tmp_path / "trace.json"
        env = dict(os.environ)
        env["REPRO_STATS"] = "1"
        env["REPRO_TRACE"] = str(trace_path)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.compiler import compile_loop, Strategy\n"
                "from repro.machine import paper_machine\n"
                "from repro.workloads.livermore import k1_hydro\n"
                "compile_loop(k1_hydro(), paper_machine(), Strategy.SELECTIVE)\n",
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.returncode == 0, proc.stderr
        assert "compilation statistics" in proc.stderr
        assert "kl.moves_evaluated" in proc.stderr
        trace = json.loads(trace_path.read_text())
        assert trace["counters"]["sched.loops_scheduled"] >= 1


class TestRegallocRetryTelemetry:
    def test_retry_events_emitted_under_pressure(self):
        from dataclasses import replace

        from repro.machine.machine import RegisterFiles
        from tests.test_spill import wide_loop

        machine = replace(
            paper_machine(), register_files=RegisterFiles(scalar_fp=6)
        )
        with recording() as rec:
            compile_loop(wide_loop(10), machine, Strategy.BASELINE)
        assert rec.counter("regalloc.retries") > 0
        retries = rec.events.by_name("regalloc.retry")
        assert retries
        first = retries[0].data
        assert first["attempt"] == 1
        assert first["next_min_ii"] == first["ii"] + 1
        assert "fp" in first["overflow"]
        # The spill fallback fired and was recorded too.
        assert rec.events.by_name("regalloc.spill")

    def test_unspillable_pressure_raises_descriptive_error(self):
        from dataclasses import replace

        from repro.compiler.driver import RegisterAllocationError
        from repro.ir.builder import LoopBuilder
        from repro.ir.values import const_f64
        from repro.machine.machine import RegisterFiles

        # Every fp definition is a carried exit, which spilling protects:
        # the driver has no recourse and must fail loudly, not silently
        # return an unallocatable kernel.
        b = LoopBuilder("all_carried")
        b.array("x", dim_sizes=(4096,))
        accs = [b.carried(f"a{k}", 0.0) for k in range(6)]
        for k, a in enumerate(accs):
            b.carry(f"a{k}", b.add(a, const_f64(1.5)))
        b.store("x", b.idx(), accs[0])
        machine = replace(
            paper_machine(), register_files=RegisterFiles(scalar_fp=3)
        )
        with pytest.raises(RegisterAllocationError) as err:
            compile_loop(b.build(), machine, Strategy.BASELINE, baseline_unroll=1)
        message = str(err.value)
        assert "all_carried" in message
        assert "II=" in message
        assert "fp" in message
