"""Tests for rotating-register allocation / MaxLive analysis."""

from dataclasses import replace

from repro.dependence.analysis import analyze_loop
from repro.ir.builder import LoopBuilder
from repro.ir.types import ScalarType, VectorType
from repro.ir.values import VirtualRegister
from repro.machine.machine import RegisterFiles
from repro.pipeline.scheduler import modulo_schedule
from repro.regalloc.allocator import (
    _live_copies,
    allocate_kernel,
    register_file_of,
)
from repro.vectorize.communication import Side
from repro.vectorize.full import full_assignment
from repro.vectorize.transform import transform_loop

F64 = ScalarType.F64
I64 = ScalarType.I64


def schedule_of(loop, machine, vectorize=False, factor=1):
    dep = analyze_loop(loop, machine.vector_length)
    if vectorize:
        assignment = full_assignment(dep)
        factor = machine.vector_length
    else:
        assignment = {op.uid: Side.SCALAR for op in loop.body}
    tr = transform_loop(dep, machine, assignment, factor)
    dep2 = analyze_loop(tr.loop, machine.vector_length)
    return modulo_schedule(tr.loop, dep2.graph, machine), dep2.graph


class TestRegisterFileOf:
    def test_scalar_files(self):
        assert register_file_of(VirtualRegister("a", F64)) == "fp"
        assert register_file_of(VirtualRegister("a", I64)) == "int"
        assert register_file_of(VirtualRegister("a", ScalarType.PRED)) == "pred"

    def test_vector_files(self):
        assert register_file_of(VirtualRegister("a", VectorType(F64, 2))) == "vfp"
        assert register_file_of(VirtualRegister("a", VectorType(I64, 2))) == "vint"


class TestLiveCopies:
    def test_short_lifetime_one_copy(self):
        # defined at 0, dead at 3, II=4: live at kernel cycles 0..2 only
        assert _live_copies(0, 3, 0, 4) == 1
        assert _live_copies(0, 3, 2, 4) == 1
        assert _live_copies(0, 3, 3, 4) == 0

    def test_cross_stage_two_copies(self):
        # lifetime spans 1.5 IIs: two rotating copies overlap at some cycles
        assert _live_copies(0, 6, 0, 4) == 2
        assert _live_copies(0, 6, 2, 4) == 1

    def test_empty_lifetime(self):
        assert _live_copies(5, 5, 0, 4) == 0


class TestAllocation:
    def test_dot_allocates_within_table1_files(self, dot_loop, paper):
        schedule, graph = schedule_of(dot_loop, paper, factor=2)
        result = allocate_kernel(schedule, graph)
        assert result.ok
        assert result.pressure("fp") >= 2

    def test_vectorized_loop_uses_vector_file(self, stream_loop, paper):
        schedule, graph = schedule_of(stream_loop, paper, vectorize=True)
        result = allocate_kernel(schedule, graph)
        assert result.ok
        assert result.pressure("vfp") >= 2

    def test_rotating_indices_unique_per_file(self, dot_loop, paper):
        schedule, graph = schedule_of(dot_loop, paper, factor=2)
        result = allocate_kernel(schedule, graph)
        assert len(set(result.rotating_indices.values())) <= len(
            result.rotating_indices
        )

    def test_invariants_pin_registers(self, saxpy_loop, paper):
        schedule, graph = schedule_of(saxpy_loop, paper)
        result = allocate_kernel(schedule, graph)
        # the constant-carried 'a' occupies one fp register persistently
        assert result.pressure("fp") >= 1

    def test_tiny_register_file_fails(self, paper):
        b = LoopBuilder("pressure")
        b.array("x", dim_sizes=(2048,))
        b.array("z", dim_sizes=(2048,))
        vals = [b.load("x", b.idx(offset=k), name=f"v{k}") for k in range(6)]
        acc = vals[0]
        for v in vals[1:]:
            acc = b.add(acc, v)
        b.store("z", b.idx(), acc)
        loop = b.build()
        cramped = replace(paper, register_files=RegisterFiles(scalar_fp=2))
        schedule, graph = schedule_of(loop, cramped, factor=2)
        result = allocate_kernel(schedule, graph)
        assert not result.ok
        fp = result.pressures["fp"]
        assert fp.max_live > fp.capacity

    def test_driver_retries_on_allocation_failure(self, paper):
        """The driver must still produce a compiled loop when register
        pressure forces a retry at a longer II."""
        from repro.compiler.driver import compile_loop
        from repro.compiler.strategies import Strategy

        b = LoopBuilder("pressure2")
        b.array("x", dim_sizes=(2048,))
        b.array("z", dim_sizes=(2048,))
        vals = [b.load("x", b.idx(offset=k), name=f"v{k}") for k in range(6)]
        acc = vals[0]
        for v in vals[1:]:
            acc = b.add(acc, v)
        b.store("z", b.idx(), acc)
        loop = b.build()
        cramped = replace(paper, register_files=RegisterFiles(scalar_fp=6))
        compiled = compile_loop(loop, cramped, Strategy.BASELINE)
        assert compiled.units  # did not crash; schedule produced
