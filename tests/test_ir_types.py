"""Tests for repro.ir.types."""

import pytest

from repro.ir.types import ScalarType, VectorType, element_type, is_vector_type


class TestScalarType:
    def test_i64_is_integer(self):
        assert ScalarType.I64.is_integer
        assert not ScalarType.I64.is_float

    def test_f64_is_float(self):
        assert ScalarType.F64.is_float
        assert not ScalarType.F64.is_integer

    def test_pred_is_neither(self):
        assert not ScalarType.PRED.is_integer
        assert not ScalarType.PRED.is_float

    def test_bit_widths(self):
        assert ScalarType.I64.bits == 64
        assert ScalarType.F64.bits == 64
        assert ScalarType.PRED.bits == 1

    def test_str(self):
        assert str(ScalarType.F64) == "f64"


class TestVectorType:
    def test_construction(self):
        vt = VectorType(ScalarType.F64, 2)
        assert vt.element is ScalarType.F64
        assert vt.length == 2

    def test_bits(self):
        assert VectorType(ScalarType.F64, 2).bits == 128
        assert VectorType(ScalarType.I64, 4).bits == 256

    def test_length_one_rejected(self):
        with pytest.raises(ValueError):
            VectorType(ScalarType.F64, 1)

    def test_equality_and_hash(self):
        a = VectorType(ScalarType.F64, 2)
        b = VectorType(ScalarType.F64, 2)
        assert a == b
        assert hash(a) == hash(b)
        assert a != VectorType(ScalarType.I64, 2)

    def test_str(self):
        assert str(VectorType(ScalarType.I64, 2)) == "<2 x i64>"


class TestHelpers:
    def test_is_vector_type(self):
        assert is_vector_type(VectorType(ScalarType.F64, 2))
        assert not is_vector_type(ScalarType.F64)

    def test_element_type_scalar_identity(self):
        assert element_type(ScalarType.I64) is ScalarType.I64

    def test_element_type_of_vector(self):
        assert element_type(VectorType(ScalarType.F64, 2)) is ScalarType.F64
