"""Compile-server semantics, tested in-process over real sockets.

Each test boots a :class:`CompileServer` on a loopback port inside a
plain ``asyncio.run`` and speaks to it with the load generator's HTTP
client — the same code path production traffic takes, minus the
subprocess.  ``jobs=0`` compiles batches on a thread, keeping the
tests fork-free and deterministic; a long ``batch_linger_ms`` plus the
``hold_dispatch`` hook make dedup and backpressure timing-independent.
"""

from __future__ import annotations

import asyncio
import json

from repro.serve.loadgen import HttpClient
from repro.serve.server import CompileServer, ServerConfig

DSL = "array x(64), z(64)\ndo i\n z(i) = x(i) + x(i) * 2.0\nend"


def _body(seed: int = 1, strategy: str = "selective") -> dict:
    return {
        "loop": {
            "generator": {
                "archetype": "copy_like",
                "seed": seed,
                "name": f"serve_{seed}",
            }
        },
        "machine": "paper",
        "strategy": strategy,
    }


async def _boot(store_dir: str, **overrides) -> CompileServer:
    defaults = dict(
        store_dir=store_dir, jobs=0, batch_linger_ms=50.0, queue_limit=64
    )
    defaults.update(overrides)
    server = CompileServer(ServerConfig(**defaults))
    await server.start()
    return server


async def _client(server: CompileServer) -> HttpClient:
    client = HttpClient("127.0.0.1", server.port)
    await client.connect()
    return client


class TestRoutes:
    def test_healthz_stats_and_errors(self, tmp_path):
        async def scenario():
            server = await _boot(str(tmp_path))
            client = await _client(server)
            try:
                status, _, body = await client.request("GET", "/healthz")
                assert (status, body["ok"]) == (200, True)

                status, _, body = await client.request("GET", "/stats")
                assert status == 200
                assert body["requests"] >= 1
                assert "store" in body and "batches" in body

                status, _, body = await client.request("GET", "/nowhere")
                assert status == 404
                assert body["error"]["code"] == "not_found"

                status, _, body = await client.request("GET", "/compile")
                assert status == 405
                assert body["error"]["code"] == "method_not_allowed"
            finally:
                await client.close()
                await server.drain_and_stop()

        asyncio.run(scenario())

    def test_malformed_requests_get_structured_400s(self, tmp_path):
        async def scenario():
            server = await _boot(str(tmp_path))
            client = await _client(server)
            cases = [
                ({"machine": "paper"}, "bad_request"),  # no loop
                ({"loop": {}}, "bad_loop"),
                ({"loop": {"dsl": "do i\n"}}, "parse_error"),
                ({"loop": {"dsl": DSL}, "machine": "warp9"}, "unknown_machine"),
                (
                    {"loop": {"dsl": DSL}, "strategy": "psychic"},
                    "unknown_strategy",
                ),
                (
                    {"loop": {"dsl": DSL}, "baseline_unroll": -3},
                    "bad_request",
                ),
                (
                    {
                        "loop": {
                            "generator": {"archetype": "quines", "seed": 1}
                        }
                    },
                    "unknown_archetype",
                ),
            ]
            try:
                for body, code in cases:
                    status, _, response = await client.request(
                        "POST", "/compile", body
                    )
                    assert status == 400, (body, response)
                    assert response["error"]["code"] == code
                    assert response["error"]["message"]
                # Non-JSON body: framed fine, rejected structurally.
                raw = HttpClient("127.0.0.1", server.port)
                await raw.connect()
                raw._writer.write(
                    b"POST /compile HTTP/1.1\r\nContent-Length: 9\r\n\r\n"
                    b"not json!"
                )
                await raw._writer.drain()
                line = await raw._reader.readline()
                assert b"400" in line
                await raw.close()
                assert server.stats.bad_requests == len(cases) + 1
            finally:
                await client.close()
                await server.drain_and_stop()

        asyncio.run(scenario())


class TestDedupAndBatching:
    def test_identical_concurrent_requests_compile_once(self, tmp_path):
        async def scenario():
            # Linger far longer than the send burst: all eight arrive
            # while the first is still batching, so dedup is forced.
            server = await _boot(str(tmp_path), batch_linger_ms=150.0)
            clients = [await _client(server) for _ in range(8)]
            try:
                responses = await asyncio.gather(
                    *(
                        c.request("POST", "/compile", _body(seed=5))
                        for c in clients
                    )
                )
                assert all(status == 200 for status, _, _ in responses)
                served = sorted(body["served"] for _, _, body in responses)
                assert served.count("dedup") == 7
                keys = {body["key"] for _, _, body in responses}
                results = [
                    json.dumps(body["result"], sort_keys=True)
                    for _, _, body in responses
                ]
                assert len(keys) == 1
                assert len(set(results)) == 1  # byte-identical answers
                assert server.stats.compiles == 1
                assert server.stats.dedup_hits == 7
            finally:
                for c in clients:
                    await c.close()
                await server.drain_and_stop()

        asyncio.run(scenario())

    def test_distinct_requests_coalesce_into_batches(self, tmp_path):
        async def scenario():
            server = await _boot(
                str(tmp_path), batch_linger_ms=150.0, batch_max=8
            )
            clients = [await _client(server) for _ in range(6)]
            try:
                responses = await asyncio.gather(
                    *(
                        c.request("POST", "/compile", _body(seed=10 + i))
                        for i, c in enumerate(clients)
                    )
                )
                assert all(status == 200 for status, _, _ in responses)
                assert server.stats.compiles == 6
                # All six distinct keys landed in one coalesced batch.
                assert max(server.stats.batches) >= 2
            finally:
                for c in clients:
                    await c.close()
                await server.drain_and_stop()

        asyncio.run(scenario())

    def test_warm_key_served_from_store_without_queueing(self, tmp_path):
        async def scenario():
            server = await _boot(str(tmp_path), batch_linger_ms=0.0)
            client = await _client(server)
            try:
                _, _, cold = await client.request(
                    "POST", "/compile", _body(seed=3)
                )
                assert cold["served"] == "compiled"
                _, _, warm = await client.request(
                    "POST", "/compile", _body(seed=3)
                )
                assert warm["served"] == "cache"
                assert warm["result"] == cold["result"]
                assert server.stats.compiles == 1
                assert server.stats.cache_hits == 1
            finally:
                await client.close()
                await server.drain_and_stop()

        asyncio.run(scenario())


class TestBackpressure:
    def test_full_queue_answers_429_with_retry_after(self, tmp_path):
        async def scenario():
            server = await _boot(
                str(tmp_path), queue_limit=2, batch_linger_ms=0.0
            )
            server.hold_dispatch()
            clients = [await _client(server) for _ in range(6)]
            try:
                tasks = [
                    asyncio.create_task(
                        c.request("POST", "/compile", _body(seed=20 + i))
                    )
                    for i, c in enumerate(clients)
                ]
                await asyncio.sleep(0.2)  # let accepts/rejections settle
                done = [t for t in tasks if t.done()]
                rejected = [t.result() for t in done]
                # Queue holds 2, the dispatcher's hand at most 1: at
                # least 3 of 6 must have been turned away already.
                assert len(rejected) >= 3
                for status, headers, body in rejected:
                    assert status == 429
                    assert body["error"]["code"] == "saturated"
                    assert int(headers["retry-after"]) >= 1
                server.release_dispatch()
                accepted = await asyncio.gather(
                    *(t for t in tasks if not t.done())
                )
                for status, _, body in accepted:
                    assert status == 200
                assert server.stats.rejected == len(rejected)
            finally:
                for c in clients:
                    await c.close()
                await server.drain_and_stop()

        asyncio.run(scenario())


class TestShutdown:
    def test_drain_finishes_inflight_and_refuses_new(self, tmp_path):
        async def scenario():
            server = await _boot(str(tmp_path), batch_linger_ms=0.0)
            server.hold_dispatch()
            worker = await _client(server)
            control = await _client(server)
            try:
                inflight = asyncio.create_task(
                    worker.request("POST", "/compile", _body(seed=30))
                )
                await asyncio.sleep(0.1)
                assert not inflight.done()

                status, _, body = await control.request("POST", "/shutdown")
                assert (status, body["draining"]) == (200, True)
                await asyncio.sleep(0.05)

                status, _, body = await control.request(
                    "POST", "/compile", _body(seed=31)
                )
                assert status == 503
                assert body["error"]["code"] == "draining"

                server.release_dispatch()
                status, _, body = await inflight
                assert status == 200  # accepted work completed the drain
                assert body["served"] == "compiled"
                await server.wait_stopped()
                assert server.stats.compiles == 1
            finally:
                await worker.close()
                await control.close()

        asyncio.run(scenario())


class TestLoadgenEndToEnd:
    def test_spawned_server_cold_then_warm(self, tmp_path):
        """The CI smoke in miniature: a cold loadgen run compiles, a
        warm rerun over the same store must be 100% cache/dedup."""
        from repro.serve import loadgen

        store = str(tmp_path / "store")
        out = str(tmp_path / "bench")
        common = [
            "--spawn",
            "--store",
            store,
            "--size",
            "4",
            "--seed",
            "9",
            "--concurrency",
            "4",
            "--duplicates",
            "2",
        ]
        assert loadgen.main(common + ["--out", out]) == 0
        bench = json.load(open(f"{out}/BENCH_serve.json"))
        assert bench["data"]["requests"] == 8
        assert bench["data"]["failures"] == 0
        assert loadgen.main(common + ["--expect-no-compiles"]) == 0
