"""Tests for the experiment harness (Figure 1, Tables 2-5 machinery).

Full-suite runs live in benchmarks/; here we verify the machinery on one
small benchmark (tomcatv, 9 loops) and the motivating example.
"""

import pytest

from repro.evaluation.experiments import Evaluator, figure1_iis
from repro.evaluation.tables import (
    PAPER_FIGURE1,
    format_figure1,
    format_table2,
    format_table3,
    format_table4,
    format_table5,
    render_table,
)

SMALL = ("101.tomcatv",)


@pytest.fixture(scope="module")
def evaluator():
    return Evaluator()


class TestFigure1:
    def test_matches_paper_exactly(self):
        measured = figure1_iis()
        assert measured == PAPER_FIGURE1

    def test_formatting(self):
        text = format_figure1(figure1_iis())
        assert "selective" in text and "1.00" in text


class TestEvaluator:
    def test_speedups_computed(self, evaluator):
        ev = evaluator.evaluate("101.tomcatv")
        assert ev.speedup("baseline") == 1.0
        assert ev.speedup("selective") > 1.2
        assert ev.speedup("traditional") < 1.0

    def test_serial_fraction_applied(self, evaluator):
        ev = evaluator.evaluate("101.tomcatv")
        base_loops = sum(ev.loop_cycles["baseline"])
        frac = ev.benchmark.serial_fraction
        assert ev.serial_cycles == pytest.approx(
            base_loops * frac / (1 - frac), abs=1.0
        )

    def test_compilation_cached(self, evaluator):
        first = evaluator.compiled_loops(
            "101.tomcatv", evaluator.standard_variants()[0]
        )
        second = evaluator.compiled_loops(
            "101.tomcatv", evaluator.standard_variants()[0]
        )
        assert first is second

    def test_worker_pool_reused_across_fanouts(self, monkeypatch):
        """One process pool serves every parallel batch; ``close`` (and
        the context manager) shuts it down exactly once."""
        created: list[int] = []

        class FakePool:
            def __init__(self, max_workers=None, mp_context=None):
                created.append(max_workers)
                self.shutdowns = 0

            def map(self, fn, iterable):
                return list(map(fn, iterable))

            def shutdown(self, wait=True):
                self.shutdowns += 1

        monkeypatch.setattr(
            "concurrent.futures.ProcessPoolExecutor", FakePool
        )
        with Evaluator(jobs=2) as ev:
            variants = ev.standard_variants()
            ev.prewarm(SMALL, [variants[0]])
            pool = ev._pool
            assert created == [2]
            ev.prewarm(SMALL, [variants[1]])
            assert created == [2]  # second fan-out reused the pool
            assert ev._pool is pool
            # The fanned-out compilations actually landed.
            assert len(ev.compiled_loops(SMALL[0], variants[0])) == 9
        assert pool.shutdowns == 1
        assert ev._pool is None
        ev.close()  # idempotent after the context manager already closed
        assert pool.shutdowns == 1

    def test_table2_rows(self, evaluator):
        rows = evaluator.table2(SMALL)
        row = rows["101.tomcatv"]
        assert set(row) == {"traditional", "full", "selective"}
        assert row["selective"] > row["full"] > row["traditional"]

    def test_table3_counts(self, evaluator):
        rows = evaluator.table3(SMALL)
        row = rows["101.tomcatv"]
        counts = row["res_mii"]
        assert row["loops"] == sum(counts.values())
        assert counts["worse"] == 0
        assert counts["better"] >= 4

    def test_table3_final_ii_never_better_than_resmii_counts(self, evaluator):
        comparisons = evaluator.loop_comparisons("101.tomcatv")
        for c in comparisons:
            for label, value in c.final_ii.items():
                assert value >= c.res_mii[label] - 1e-9

    def test_table4_communication_matters(self, evaluator):
        rows = evaluator.table4(SMALL)
        row = rows["101.tomcatv"]
        assert row["considered"] > row["ignored"]

    def test_table5_alignment_never_hurts(self, evaluator):
        rows = evaluator.table5(SMALL)
        row = rows["101.tomcatv"]
        assert row["aligned"] >= row["misaligned"] - 0.03


class TestFormatting:
    def test_render_table_alignment(self):
        text = render_table(["A", "Bee"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_format_table_functions(self, evaluator):
        t2 = evaluator.table2(SMALL)
        assert "101.tomcatv" in format_table2(t2)
        t3 = evaluator.table3(SMALL)
        assert "ResMII" in format_table3(t3)
        t4 = evaluator.table4(SMALL)
        assert "Considered" in format_table4(t4)
        t5 = evaluator.table5(SMALL)
        assert "Misaligned" in format_table5(t5)
