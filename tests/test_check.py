"""Translation validation: clean artifacts pass, corrupted ones are
caught by the matching rule id.

The corruption tests are the proof that the checkers re-derive their
obligations rather than echo compiler state: each one mutates exactly
one artifact field (a cycle slot, a register assignment, a dropped
transfer op) and asserts the specific rule that must fire.
"""

from dataclasses import replace as dc_replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import Severity, TranslationValidationError, run_all_checks
from repro.check.kernel_check import check_kernel
from repro.check.schedule_check import check_schedule
from repro.check.vectorize_check import check_vectorize
from repro.compiler.driver import (
    compile_loop,
    run_translation_checks,
)
from repro.compiler.strategies import Strategy
from repro.dependence.analysis import build_dependence_graph
from repro.dependence.graph import DepKind
from repro.ir.operations import Operation, OpKind
from repro.ir.values import vector_register
from repro.machine.configs import figure1_machine, paper_machine
from repro.observability import recording
from repro.vectorize.communication import Side
from repro.vectorize.transform import SCRATCH_PREFIX, transform_loop
from repro.workloads.generator import GENERATORS, generate
from repro.workloads.kernels import dot_product, saxpy, stencil3

MACHINE = paper_machine()


def rules_of(findings):
    return {f.rule for f in findings if f.severity is Severity.ERROR}


# ----------------------------------------------------------------------
# Clean artifacts validate


@pytest.mark.parametrize("kernel", [dot_product, saxpy, stencil3])
@pytest.mark.parametrize("strategy", list(Strategy))
def test_clean_compiles_have_no_findings(kernel, strategy):
    compiled = compile_loop(kernel(), MACHINE, strategy)
    report = run_all_checks(compiled)
    assert report.ok, report.render_text()
    assert not report.findings, report.render_text()


@pytest.mark.parametrize("strategy", list(Strategy))
def test_figure1_machine_compiles_validate(strategy):
    compiled = compile_loop(
        dot_product(),
        figure1_machine(),
        strategy,
        baseline_unroll=1 if strategy is Strategy.BASELINE else None,
    )
    report = run_all_checks(compiled)
    assert report.ok, report.render_text()


loops = st.builds(
    generate,
    archetype=st.sampled_from(sorted(GENERATORS)),
    seed=st.integers(0, 50_000),
)


@settings(max_examples=15, deadline=None)
@given(loop=loops, strategy=st.sampled_from(list(Strategy)))
def test_rederived_obligations_always_honored(loop, strategy):
    """Superset property: the checker re-derives every dependence edge
    from scratch; a clean report proves the schedule honored at least
    everything the checker derived (and the allocator's MaxLive matches
    an independent recount)."""
    compiled = compile_loop(loop, MACHINE, strategy)
    report = run_all_checks(compiled)
    assert report.ok, report.render_text()


# ----------------------------------------------------------------------
# Corrupted schedules are caught (S-*)


def _flow_edge(schedule):
    graph = build_dependence_graph(schedule.loop)
    for edge in graph.edges:
        if (
            edge.kind is DepKind.FLOW
            and edge.distance == 0
            and schedule.machine.opcode_info(graph.ops[edge.src]).latency > 0
        ):
            return edge
    raise AssertionError("no intra-iteration flow edge in the kernel")


def test_mutated_cycle_slot_caught_by_s_dep():
    compiled = compile_loop(dot_product(), MACHINE, Strategy.SELECTIVE)
    schedule = compiled.units[0].schedule
    edge = _flow_edge(schedule)
    # One corrupted cycle slot: the consumer now issues with its
    # producer, inside the producer's latency.
    schedule.times[edge.dst] = schedule.times[edge.src]
    assert "S-DEP" in rules_of(check_schedule(schedule))


def test_oversubscribed_row_caught_by_s_res_cap():
    compiled = compile_loop(dot_product(), MACHINE, Strategy.BASELINE)
    schedule = compiled.units[0].schedule
    for uid in schedule.times:
        schedule.times[uid] = 0
    assert "S-RES-CAP" in rules_of(check_schedule(schedule))


def test_missing_op_caught_by_s_complete():
    compiled = compile_loop(dot_product(), MACHINE, Strategy.SELECTIVE)
    schedule = compiled.units[0].schedule
    schedule.times.pop(next(iter(schedule.times)))
    assert "S-COMPLETE" in rules_of(check_schedule(schedule))


# ----------------------------------------------------------------------
# Corrupted allocations are caught (K-*)


def test_duplicate_rotating_index_caught_by_k_rotidx():
    compiled = compile_loop(dot_product(), MACHINE, Strategy.SELECTIVE)
    unit = compiled.units[0]
    allocation = unit.allocation
    from repro.regalloc.allocator import register_file_of

    by_file = {}
    for op in unit.schedule.loop.body:
        if op.dest is None or op.dest.name not in allocation.rotating_indices:
            continue
        by_file.setdefault(register_file_of(op.dest), []).append(op.dest.name)
    names = next(ns for ns in by_file.values() if len(ns) >= 2)
    # One corrupted register assignment: two values of one file share a
    # rotating base.
    allocation.rotating_indices[names[1]] = allocation.rotating_indices[
        names[0]
    ]
    assert "K-ROTIDX" in rules_of(check_kernel(unit.schedule, allocation))


def test_understated_pressure_caught_by_k_pressure():
    compiled = compile_loop(dot_product(), MACHINE, Strategy.SELECTIVE)
    unit = compiled.units[0]
    pressure = next(iter(unit.allocation.pressures.values()))
    pressure.max_live += 1
    assert "K-PRESSURE" in rules_of(
        check_kernel(unit.schedule, unit.allocation)
    )


# ----------------------------------------------------------------------
# Corrupted transforms are caught (V-*)


def test_dropped_transfer_op_caught_by_v_transfer():
    compiled = compile_loop(dot_product(), MACHINE, Strategy.FULL)
    transform = compiled.units[0].transform
    body = [
        op
        for op in transform.loop.body
        if not (op.array or "").startswith(SCRATCH_PREFIX)
    ]
    assert len(body) < len(transform.loop.body), "expected transfer ops"
    corrupted = dc_replace(
        transform, loop=dc_replace(transform.loop, body=tuple(body))
    )
    assert "V-TRANSFER" in rules_of(check_vectorize(corrupted, MACHINE))


def test_dropped_alignment_merge_caught_by_v_align():
    compiled = compile_loop(dot_product(), MACHINE, Strategy.FULL)
    transform = compiled.units[0].transform
    assert transform.n_merges > 0, "expected alignment merges"
    orig = {op.uid: op for op in transform.source.body}

    def is_load_merge(op):
        return (
            op.kind is OpKind.MERGE
            and op.is_vector
            and op.origin in orig
            and orig[op.origin].kind is OpKind.LOAD
        )

    body = tuple(op for op in transform.loop.body if not is_load_merge(op))
    corrupted = dc_replace(transform, loop=dc_replace(transform.loop, body=body))
    assert "V-ALIGN" in rules_of(check_vectorize(corrupted, MACHINE))


def test_vectorized_recurrence_caught_by_v_cycle():
    """Injecting a vector op for the reduction add — an op on a
    distance-1 carried cycle — must trip the cycle legality rule."""
    from repro.dependence.analysis import analyze_loop

    loop = dot_product()
    dep = analyze_loop(loop, MACHINE.vector_length)
    assignment = {op.uid: Side.SCALAR for op in loop.body}
    transform = transform_loop(dep, MACHINE, assignment, 2, suffix=".t")
    add = next(op for op in loop.body if op.kind is OpKind.ADD)
    fake = Operation(
        add.kind,
        add.dtype,
        dest=vector_register(add.dest, 2),
        srcs=add.srcs,
        is_vector=True,
        origin=add.uid,
    )
    corrupted = dc_replace(
        transform,
        loop=dc_replace(transform.loop, body=transform.loop.body + (fake,)),
    )
    assert "V-CYCLE" in rules_of(check_vectorize(corrupted, MACHINE))


def test_transform_without_source_is_info_skip():
    compiled = compile_loop(dot_product(), MACHINE, Strategy.SELECTIVE)
    transform = dc_replace(compiled.units[0].transform, source=None)
    findings = check_vectorize(transform, MACHINE)
    assert [f.rule for f in findings] == ["V-SOURCE"]
    assert findings[0].severity is Severity.INFO


# ----------------------------------------------------------------------
# Wiring: reports, exceptions, remarks, telemetry


def test_run_translation_checks_raises_on_error():
    compiled = compile_loop(dot_product(), MACHINE, Strategy.SELECTIVE)
    schedule = compiled.units[0].schedule
    edge = _flow_edge(schedule)
    schedule.times[edge.dst] = schedule.times[edge.src]
    with pytest.raises(TranslationValidationError) as excinfo:
        run_translation_checks(compiled, raise_on_error=True)
    assert not excinfo.value.report.ok
    assert compiled.check_findings > 0


def test_check_telemetry_recorded():
    compiled = compile_loop(dot_product(), MACHINE, Strategy.SELECTIVE)
    report = run_translation_checks(compiled)
    assert report.ok
    assert compiled.check_ms > 0.0
    assert compiled.check_findings == 0


def test_findings_flow_through_recorder():
    with recording() as rec:
        compiled = compile_loop(dot_product(), MACHINE, Strategy.SELECTIVE)
        run_all_checks(compiled)
    remarks = rec.events.remarks_for(pass_name="check")
    assert any(r.reason == "check-summary" for r in remarks)


def test_report_json_shape():
    compiled = compile_loop(dot_product(), MACHINE, Strategy.SELECTIVE)
    payload = run_all_checks(compiled).to_json()
    assert payload["ok"] is True
    assert payload["strategy"] == "selective"
    assert payload["findings"] == []


def test_repro_check_env_validates_in_process(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK", "1")
    compiled = compile_loop(dot_product(), MACHINE, Strategy.SELECTIVE)
    assert compiled.check_ms > 0.0
    assert compiled.check_findings == 0


def test_repro_check_env_zero_disables(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK", "0")
    compiled = compile_loop(dot_product(), MACHINE, Strategy.SELECTIVE)
    assert compiled.check_ms == 0.0
