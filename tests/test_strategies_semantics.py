"""Cross-strategy semantic equivalence — the system's core soundness
property: every compilation strategy must compute exactly what the
original loop computes (memory and carried scalars), for any trip count
including cleanup-loop cases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.driver import compile_loop
from repro.compiler.strategies import ALL_STRATEGIES, Strategy
from repro.interp.interpreter import run_loop
from repro.interp.memory import memory_for_loop
from repro.machine.configs import (
    aligned_machine,
    figure1_machine,
    free_communication_machine,
    paper_machine,
    wide_vector_machine,
)
from repro.workloads.generator import GENERATORS, generate
from repro.workloads.kernels import ALL_KERNELS


def reference_state(loop, trip, seed):
    mem = memory_for_loop(loop, seed=seed)
    result = run_loop(loop, mem, 0, trip)
    return mem.snapshot_user_arrays(), result.carried


def check_equivalence(loop, machine, strategy, trip, seed=11):
    ref_mem, ref_carried = reference_state(loop, trip, seed)
    compiled = compile_loop(loop, machine, strategy)
    mem = memory_for_loop(loop, seed=seed)
    result = compiled.execute(mem, trip)
    assert mem.snapshot_user_arrays() == ref_mem, (
        f"{strategy} changed memory for {loop.name} at trip {trip}"
    )
    for name, value in ref_carried.items():
        got = result.carried.get(name)
        assert got == pytest.approx(value, abs=1e-12), (
            f"{strategy} carried {name}: {got} != {value}"
        )


@pytest.mark.parametrize("kernel", sorted(ALL_KERNELS))
@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.value)
def test_kernels_equivalent_on_paper_machine(kernel, strategy):
    loop = ALL_KERNELS[kernel]()
    check_equivalence(loop, paper_machine(), strategy, trip=53)


@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.value)
@pytest.mark.parametrize("trip", [0, 1, 2, 3, 7, 64])
def test_trip_count_edges(dot_loop, strategy, trip):
    check_equivalence(dot_loop, paper_machine(), strategy, trip=trip)


@pytest.mark.parametrize(
    "machine_factory",
    [figure1_machine, aligned_machine, free_communication_machine],
    ids=["toy", "aligned", "free-comm"],
)
@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.value)
def test_machine_variants_equivalent(dot_loop, machine_factory, strategy):
    check_equivalence(dot_loop, machine_factory(), strategy, trip=41)


@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.value)
def test_vector_length_four(stream_loop, strategy):
    check_equivalence(stream_loop, wide_vector_machine(4), strategy, trip=37)


@pytest.mark.parametrize("archetype", sorted(GENERATORS))
@pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.value)
def test_generated_archetypes_equivalent(archetype, strategy):
    loop = generate(archetype, seed=2024)
    check_equivalence(loop, paper_machine(), strategy, trip=45)


@settings(max_examples=20, deadline=None)
@given(
    archetype=st.sampled_from(sorted(GENERATORS)),
    seed=st.integers(0, 10_000),
    trip=st.integers(0, 40),
    strategy=st.sampled_from([Strategy.SELECTIVE, Strategy.TRADITIONAL]),
)
def test_random_loops_random_trips(archetype, seed, trip, strategy):
    """Property: arbitrary generated loops at arbitrary trip counts are
    compiled semantics-preservingly by the vectorizing strategies."""
    loop = generate(archetype, seed=seed)
    check_equivalence(loop, paper_machine(), strategy, trip=trip, seed=seed % 97)
