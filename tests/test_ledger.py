"""The run ledger: append-only durability, shard merge, run resolution.

The centerpiece property (hypothesis): **splitting a run into shards and
merging the shard records equals the serial record modulo wall clock** —
the deterministic content (experiments, loops, effort, digests) is
byte-identical, only circumstantial fields (wall, cache traffic) differ.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ledger import (
    Ledger,
    RunRecord,
    merge_records,
    record_from_payloads,
    strip_wall_fields,
)
from repro.ledger.record import VOLATILE_FIELDS, WALL_FIELDS

BENCH_POOL = ("alpha", "beta.2", "gamma", "delta")
COUNTERS = ("sched_attempts", "kl_pack_steps", "kl_probes")


def _payloads_for(corpus: dict[str, dict[str, dict]], wall_ms: float):
    """One experiment payload + perf payload over a benchmark subset,
    shaped like ``bench_io.collect_experiment`` output."""
    data = {
        bench: {"selective": 1.0 + len(loops) / 10.0}
        for bench, loops in corpus.items()
    }
    loops = {
        bench: {
            loop: {"selective": dict(metrics)}
            for loop, metrics in loops_by_name.items()
        }
        for bench, loops_by_name in corpus.items()
    }
    telemetry = {
        bench: {
            "selective": {
                "loops": len(loops_by_name),
                "wall_ms": wall_ms,
                **{
                    counter: sum(
                        metrics[counter]
                        for metrics in loops_by_name.values()
                    )
                    for counter in COUNTERS
                },
            }
        }
        for bench, loops_by_name in corpus.items()
    }
    effort = {
        counter: sum(
            metrics[counter]
            for loops_by_name in corpus.values()
            for metrics in loops_by_name.values()
        )
        for counter in COUNTERS
    }
    payloads = {
        "table2": {"data": data, "loops": loops, "telemetry": telemetry}
    }
    perf = {
        "effort": effort,
        "wall_s": wall_ms / 1e3,
        "jobs": 1,
        "cache_hits": 0,
        "cache_misses": sum(len(v) for v in corpus.values()),
    }
    return payloads, perf


def _record_for(corpus, label, wall_ms=7.5):
    payloads, perf = _payloads_for(corpus, wall_ms)
    return record_from_payloads(
        payloads,
        perf,
        label=label,
        git_sha="deadbeef",
        config={"benchmarks": sorted(corpus)},
    )


corpus_strategy = st.dictionaries(
    st.sampled_from(BENCH_POOL),
    st.dictionaries(
        st.sampled_from(["L0", "L1", "L2"]),
        st.fixed_dictionaries(
            {
                "ii": st.integers(1, 40),
                **{c: st.integers(0, 500) for c in COUNTERS},
            }
        ),
        min_size=1,
        max_size=3,
    ),
    min_size=1,
    max_size=4,
)


class TestShardMerge:
    @settings(max_examples=40, deadline=None)
    @given(corpus=corpus_strategy, data=st.data())
    def test_merge_of_shards_equals_serial_modulo_wall(self, corpus, data):
        serial = _record_for(corpus, label="serial", wall_ms=100.0)
        benches = sorted(corpus)
        n_shards = data.draw(st.integers(1, len(benches)))
        assignment = data.draw(
            st.lists(
                st.integers(0, n_shards - 1),
                min_size=len(benches),
                max_size=len(benches),
            )
        )
        shards = []
        for shard_index in range(n_shards):
            subset = {
                bench: corpus[bench]
                for bench, owner in zip(benches, assignment)
                if owner == shard_index
            }
            if not subset:
                continue
            shards.append(
                _record_for(
                    subset,
                    label="shard",
                    wall_ms=float(10 * (shard_index + 1)),
                )
            )
        merged = merge_records(shards, label="serial")
        assert merged.comparable_dict() == serial.comparable_dict()
        assert merged.content_digest() == serial.content_digest()
        # Circumstantial wall clock sums across shards instead.
        assert merged.wall_s == pytest.approx(
            sum(s.wall_s for s in shards)
        )

    def test_merge_rejects_disagreeing_shards(self):
        a = _record_for({"alpha": {"L0": {"ii": 4, **{c: 1 for c in COUNTERS}}}}, "a")
        b = _record_for({"alpha": {"L0": {"ii": 5, **{c: 1 for c in COUNTERS}}}}, "b")
        with pytest.raises(ValueError, match="disagree"):
            merge_records([a, b])

    def test_merge_rejects_mixed_commits(self):
        a = _record_for({"alpha": {"L0": {"ii": 4, **{c: 1 for c in COUNTERS}}}}, "a")
        b = _record_for({"beta.2": {"L0": {"ii": 5, **{c: 1 for c in COUNTERS}}}}, "b")
        b.git_sha = "cafef00d"
        with pytest.raises(ValueError, match="commits"):
            merge_records([a, b])


class TestStore:
    def test_append_roundtrip_and_index(self, tmp_path):
        ledger = Ledger(str(tmp_path / "ledger"))
        r1 = _record_for({"alpha": {"L0": {"ii": 4, **{c: 2 for c in COUNTERS}}}}, "one")
        r2 = _record_for({"beta.2": {"L0": {"ii": 6, **{c: 3 for c in COUNTERS}}}}, "two")
        ledger.append(r1)
        ledger.append(r2)
        records = ledger.records()
        assert [r.run_id for r in records] == [r1.run_id, r2.run_id]
        assert records[0].to_dict() == r1.to_dict()
        index = json.loads((tmp_path / "ledger" / "index.json").read_text())
        assert set(index["runs"]) == {r1.run_id, r2.run_id}
        assert index["runs"][r1.run_id]["content_digest"] == r1.content_digest()

    def test_torn_tail_is_skipped_with_warning(self, tmp_path):
        warnings: list[str] = []
        ledger = Ledger(str(tmp_path / "ledger"), warn=warnings.append)
        r1 = _record_for({"alpha": {"L0": {"ii": 4, **{c: 2 for c in COUNTERS}}}}, "ok")
        ledger.append(r1)
        # A writer crashed mid-append: half a record, no newline.
        with open(ledger.runs_path, "ab") as f:
            f.write(b'{"run_id": "torn-run", "created')
        records = ledger.records()
        assert [r.run_id for r in records] == [r1.run_id]
        assert any("torn" in w for w in warnings)

    def test_corrupt_middle_line_is_skipped_with_warning(self, tmp_path):
        warnings: list[str] = []
        ledger = Ledger(str(tmp_path / "ledger"), warn=warnings.append)
        r1 = _record_for({"alpha": {"L0": {"ii": 4, **{c: 2 for c in COUNTERS}}}}, "a")
        ledger.append(r1)
        with open(ledger.runs_path, "ab") as f:
            f.write(b"this is not json\n")
            f.write(b'{"created_at": "2026-01-01T00:00:00Z"}\n')  # no run_id
        r2 = _record_for({"gamma": {"L0": {"ii": 5, **{c: 2 for c in COUNTERS}}}}, "b")
        ledger.append(r2)
        records = ledger.records()
        assert [r.run_id for r in records] == [r1.run_id, r2.run_id]
        assert len([w for w in warnings if "unreadable" in w]) >= 2

    def test_append_is_a_single_complete_line(self, tmp_path):
        ledger = Ledger(str(tmp_path / "ledger"))
        record = _record_for(
            {"alpha": {"L0": {"ii": 4, **{c: 2 for c in COUNTERS}}}}, "x"
        )
        ledger.append(record)
        raw = open(ledger.runs_path, "rb").read()
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1

    def test_resolve_references(self, tmp_path):
        ledger = Ledger(str(tmp_path / "ledger"))
        rs = [
            _record_for(
                {"alpha": {"L0": {"ii": i, **{c: 1 for c in COUNTERS}}}},
                f"r{i}",
            )
            for i in (1, 2, 3)
        ]
        for r in rs:
            ledger.append(r)
        assert ledger.resolve("latest").run_id == rs[2].run_id
        assert ledger.resolve("prev").run_id == rs[1].run_id
        assert ledger.resolve("-3").run_id == rs[0].run_id
        assert ledger.resolve(rs[0].run_id).run_id == rs[0].run_id
        # A unique prefix resolves; an unknown one raises.
        assert (
            ledger.resolve(rs[1].run_id[:-2]).run_id == rs[1].run_id
        )
        with pytest.raises(KeyError):
            ledger.resolve("no-such-run")

    def test_missing_ledger_reads_empty(self, tmp_path):
        ledger = Ledger(str(tmp_path / "nope"))
        assert ledger.records() == []
        with pytest.raises(KeyError):
            ledger.resolve("latest")


class TestRecord:
    def test_comparable_dict_drops_volatile_and_identity(self):
        record = _record_for(
            {"alpha": {"L0": {"ii": 4, **{c: 2 for c in COUNTERS}}}},
            "cold",
            wall_ms=500.0,
        )
        tree = record.comparable_dict()
        blob = json.dumps(tree)
        for key in ("run_id", "created_at", "label", "wall_ms", "wall_s"):
            assert f'"{key}"' not in blob
        assert "cache_hits" not in blob and "cache_misses" not in blob

    def test_cold_and_warm_runs_share_a_content_digest(self):
        corpus = {"alpha": {"L0": {"ii": 4, **{c: 2 for c in COUNTERS}}}}
        cold = _record_for(corpus, "cold", wall_ms=900.0)
        warm = _record_for(corpus, "warm", wall_ms=30.0)
        warm.cache = {"hits": 9, "misses": 0, "compile_cache": True}
        assert cold.content_digest() == warm.content_digest()

    def test_strip_wall_fields_is_recursive(self):
        tree = {
            "wall_s": 1.0,
            "keep": {"cache_hits": 3, "ii": 4, "inner": [{"wall_ms": 9}]},
        }
        assert strip_wall_fields(tree) == {
            "keep": {"ii": 4, "inner": [{}]}
        }
        assert WALL_FIELDS < VOLATILE_FIELDS

    def test_from_dict_requires_identity(self):
        with pytest.raises(ValueError, match="run_id"):
            RunRecord.from_dict({"created_at": "2026-01-01T00:00:00Z"})

    def test_from_dict_ignores_unknown_fields(self):
        record = RunRecord.from_dict(
            {
                "run_id": "r",
                "created_at": "2026-01-01T00:00:00Z",
                "some_future_field": 42,
            }
        )
        assert record.run_id == "r"


class TestConcurrentAppend:
    def test_interleaved_appends_all_survive(self, tmp_path):
        """Two processes appending concurrently interleave whole lines."""
        import multiprocessing

        root = str(tmp_path / "ledger")
        corpus = {"alpha": {"L0": {"ii": 4, **{c: 2 for c in COUNTERS}}}}
        Ledger(root).append(_record_for(corpus, "seed"))

        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_append_many, args=(root, corpus, i))
            for i in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
            assert p.exitcode == 0
        records = Ledger(root).records()
        assert len(records) == 1 + 4 * 5
        assert len({r.run_id for r in records}) == len(records)


def _append_many(root: str, corpus: dict, worker: int) -> None:
    ledger = Ledger(root)
    for i in range(5):
        ledger.append(_record_for(corpus, f"w{worker}.{i}"))


class TestCanonicalArtifacts:
    """BENCH_*.json writes are canonical and churn-free: a re-run whose
    only difference is wall clock / cache traffic leaves the committed
    artifact byte-identical."""

    PAYLOAD = {
        "schema_version": 1,
        "experiment": "table2",
        "data": {"alpha": {"selective": 1.25}},
        "telemetry": {
            "alpha": {
                "selective": {
                    "loops": 1,
                    "wall_ms": 12.3456789,
                    "sched_attempts": 5,
                    "cache_hits": 0,
                    "cache_misses": 1,
                }
            }
        },
    }

    def test_wall_floats_are_rounded_and_newline_terminated(self, tmp_path):
        from repro.evaluation.bench_io import write_bench_json

        path = write_bench_json("table2", dict(self.PAYLOAD), str(tmp_path))
        raw = open(path, encoding="utf-8").read()
        assert raw.endswith("}\n")
        assert json.loads(raw)["telemetry"]["alpha"]["selective"][
            "wall_ms"
        ] == pytest.approx(12.346)

    def test_noop_rerun_leaves_the_artifact_untouched(self, tmp_path):
        from repro.evaluation.bench_io import write_bench_json

        path = write_bench_json("table2", dict(self.PAYLOAD), str(tmp_path))
        before = open(path, "rb").read()
        rerun = json.loads(json.dumps(self.PAYLOAD))
        # Only volatile circumstance moved: wall clock and cache split.
        row = rerun["telemetry"]["alpha"]["selective"]
        row["wall_ms"] = 99.9
        row["cache_hits"], row["cache_misses"] = 1, 0
        write_bench_json("table2", rerun, str(tmp_path))
        assert open(path, "rb").read() == before

    def test_deterministic_change_rewrites_the_artifact(self, tmp_path):
        from repro.evaluation.bench_io import write_bench_json

        path = write_bench_json("table2", dict(self.PAYLOAD), str(tmp_path))
        changed = json.loads(json.dumps(self.PAYLOAD))
        changed["telemetry"]["alpha"]["selective"]["sched_attempts"] = 6
        write_bench_json("table2", changed, str(tmp_path))
        written = json.loads(open(path, encoding="utf-8").read())
        assert (
            written["telemetry"]["alpha"]["selective"]["sched_attempts"]
            == 6
        )

    def test_older_format_artifacts_are_tolerated(self, tmp_path):
        """An artifact written by an earlier bench_io (unsorted keys,
        unrounded walls, no trailing newline) still counts as equivalent
        when its deterministic content matches."""
        from repro.evaluation.bench_io import artifact_name, write_bench_json

        path = os.path.join(str(tmp_path), artifact_name("table2"))
        legacy = json.loads(json.dumps(self.PAYLOAD))
        legacy["telemetry"]["alpha"]["selective"]["wall_ms"] = 12.3456789
        with open(path, "w", encoding="utf-8") as f:
            json.dump(legacy, f)  # unsorted, compact, no newline
        write_bench_json("table2", dict(self.PAYLOAD), str(tmp_path))
        raw = open(path, encoding="utf-8").read()
        assert not raw.endswith("\n")  # equivalent: left untouched

    def test_baseline_write_is_churn_free_too(self, tmp_path):
        from repro.evaluation.bench_io import write_baseline

        path = str(tmp_path / "baseline.json")
        write_baseline(path, {"table2": dict(self.PAYLOAD)})
        before = open(path, "rb").read()
        rerun = json.loads(json.dumps(self.PAYLOAD))
        rerun["telemetry"]["alpha"]["selective"]["wall_ms"] = 1.0
        write_baseline(path, {"table2": rerun})
        assert open(path, "rb").read() == before


class TestRecordFromPayloads:
    def test_compile_perf_payload_is_used_not_duplicated(self):
        payloads, perf = _payloads_for(
            {"alpha": {"L0": {"ii": 4, **{c: 2 for c in COUNTERS}}}}, 5.0
        )
        payloads["compile_perf"] = perf
        record = record_from_payloads(payloads, git_sha="deadbeef")
        assert "compile_perf" not in record.experiments
        assert record.effort == perf["effort"]
        assert record.config["experiments"] == ["table2"]

    def test_corpus_digest_tracks_loop_population(self):
        small = _record_for(
            {"alpha": {"L0": {"ii": 4, **{c: 2 for c in COUNTERS}}}}, "s"
        )
        large = _record_for(
            {
                "alpha": {
                    "L0": {"ii": 4, **{c: 2 for c in COUNTERS}},
                    "L1": {"ii": 6, **{c: 2 for c in COUNTERS}},
                }
            },
            "l",
        )
        assert small.corpus_digest != large.corpus_digest
