"""Tests for the invariant static analyzer (``repro.analysis``).

Coverage contract (see docs/static-analysis.md):

* every rule id in :data:`repro.analysis.rules.RULES` is demonstrated
  by a fixture pair under ``tests/data/analysis_fixtures`` — a minimal
  violation the rule must fire on and a compliant twin it must stay
  silent on;
* analyzer output is a pure function of file *content*, independent of
  file-discovery order (hypothesis property over module permutations);
* the zone map classifies every detected ``CompileTelemetry``
  effort-counter mutator as deterministic-core (found independently by
  AST scan, not by trusting the analyzer's own detection);
* the checked-in baseline is loadable, every entry justified, none
  stale, and the tree-wide gate passes at ``--fail-on error``.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    AnalysisFinding,
    Baseline,
    BaselineEntry,
    RULES,
    Severity,
    Zone,
    analyze_tree,
    default_config,
    discover_modules,
    zone_map_payload,
)
from repro.analysis.baseline import BaselineError
from repro.analysis.callgraph import MODULE_BODY
from repro.analysis.runner import (
    EFFORT_FIELDS,
    config_for_fixture,
    default_baseline_path,
)
from repro.analysis.__main__ import main as analysis_main

FIXTURE_ROOT = Path(__file__).resolve().parent / "data" / "analysis_fixtures"

#: rule id -> (violating fixture module, compliant twin) — both under
#: the synthetic ``fx`` package rooted at FIXTURE_ROOT.
FIXTURE_PAIRS: dict[str, tuple[str, str]] = {
    "D-WALLCLOCK": ("d_wallclock_bad", "d_wallclock_good"),
    "D-RNG": ("d_rng_bad", "d_rng_good"),
    "D-SETITER": ("d_setiter_bad", "d_setiter_good"),
    "D-DICTPOP": ("d_dictpop_bad", "d_dictpop_good"),
    "D-ENV": ("d_env_bad", "d_env_good"),
    "A-BLOCKING": ("a_blocking_bad", "a_blocking_good"),
    "A-AWAIT-LOCK": ("a_await_lock_bad", "a_await_lock_good"),
    "F-ATOMIC": ("f_atomic_bad", "f_atomic_good"),
    "F-APPEND": ("f_append_bad", "f_append_good"),
    "K-FORK-STATE": ("k_fork_state_bad", "k_fork_state_good"),
    "K-FORK-LOCK": ("k_fork_lock_bad", "k_fork_lock_good"),
}


def _fixture_config():
    d_modules = sorted(
        m for pair in FIXTURE_PAIRS.values() for m in pair if m.startswith("d_")
    )
    a_modules = sorted(
        m for pair in FIXTURE_PAIRS.values() for m in pair if m.startswith("a_")
    )
    f_modules = sorted(
        m for pair in FIXTURE_PAIRS.values() for m in pair if m.startswith("f_")
    )
    return config_for_fixture(
        FIXTURE_ROOT,
        "fx",
        deterministic_seeds=tuple(f"fx.{m}:entry" for m in d_modules),
        async_module_prefixes=tuple(f"fx.{m}" for m in a_modules),
        shared_fs_modules=tuple(f"fx.{m}" for m in f_modules),
    )


@pytest.fixture(scope="module")
def fixture_result():
    return analyze_tree(config=_fixture_config())


@pytest.fixture(scope="module")
def tree_result():
    """One tree-wide run over the real repro package, shared by the
    gate and zone-map tests."""
    baseline = Baseline.load(default_baseline_path())
    return analyze_tree(config=default_config(), baseline=baseline)


# --------------------------------------------------------------------------
# Per-rule fixture pairs
# --------------------------------------------------------------------------


def test_every_rule_has_a_fixture_pair():
    assert set(FIXTURE_PAIRS) == set(RULES)


def test_fixture_modules_all_discovered(fixture_result):
    names = {m.name for m in fixture_result.modules}
    expected = {f"fx.{m}" for pair in FIXTURE_PAIRS.values() for m in pair}
    assert expected <= names


@pytest.mark.parametrize("rule_id", sorted(FIXTURE_PAIRS))
def test_rule_fires_on_violation_and_not_on_twin(rule_id, fixture_result):
    bad, good = FIXTURE_PAIRS[rule_id]
    by_module = {}
    for finding in fixture_result.findings:
        by_module.setdefault((finding.rule, finding.module), []).append(finding)
    fired = by_module.get((rule_id, f"fx.{bad}"), [])
    assert fired, f"{rule_id} did not fire on fx.{bad}"
    silent = by_module.get((rule_id, f"fx.{good}"), [])
    assert not silent, f"{rule_id} fired on compliant twin fx.{good}: {silent}"


def test_findings_carry_spans_and_zones(fixture_result):
    for finding in fixture_result.findings:
        assert finding.rule in RULES
        assert finding.line >= 1
        assert finding.col >= 0
        assert finding.zone == RULES[finding.rule].zone.value
        assert finding.path.endswith(".py")


def test_wallclock_finding_fires_in_callee_with_trace(fixture_result):
    """The call graph matters: time.time() lives in ``stamp()``, which
    is only deterministic-core because ``entry()`` calls it."""
    hits = [
        f
        for f in fixture_result.findings
        if f.rule == "D-WALLCLOCK" and f.module == "fx.d_wallclock_bad"
    ]
    assert hits
    (finding,) = hits
    assert finding.function == "stamp"
    assert finding.trace == (
        "fx.d_wallclock_bad:entry",
        "fx.d_wallclock_bad:stamp",
    )


def test_async_blocking_fires_in_sync_helper_reached_from_coroutine(fixture_result):
    hits = {
        f.function
        for f in fixture_result.findings
        if f.rule == "A-BLOCKING" and f.module == "fx.a_blocking_bad"
    }
    # time.sleep in the coroutine itself AND open() in the sync helper
    # it calls — the helper is pulled into the async zone by the edge.
    assert hits == {"handle", "read_file"}


def test_offloaded_helper_stays_out_of_async_zone(fixture_result):
    """``asyncio.to_thread(read_file, ...)`` passes a reference, not a
    call — the helper's file IO must not be flagged."""
    key = "fx.a_blocking_good:read_file"
    assert not fixture_result.zone_map.in_zone(key, Zone.ASYNC_HANDLER)


def test_fork_rules_report_module_scope(fixture_result):
    for rule_id in ("K-FORK-STATE", "K-FORK-LOCK"):
        bad, _ = FIXTURE_PAIRS[rule_id]
        hits = [
            f
            for f in fixture_result.findings
            if f.rule == rule_id and f.module == f"fx.{bad}"
        ]
        assert hits
        assert all(f.function == MODULE_BODY for f in hits)
        assert all("work" in f.message for f in hits)


# --------------------------------------------------------------------------
# Discovery-order independence (hypothesis)
# --------------------------------------------------------------------------


def _canonical_modules():
    config = _fixture_config()
    return config, discover_modules(config.root, config.package)


_CANONICAL_CONFIG, _CANONICAL_MODULES = _canonical_modules()
_CANONICAL_JSON = json.dumps(
    analyze_tree(config=_CANONICAL_CONFIG, modules=list(_CANONICAL_MODULES)).to_json(),
    sort_keys=True,
)


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(perm=st.permutations(_CANONICAL_MODULES))
def test_output_independent_of_discovery_order(perm):
    result = analyze_tree(config=_CANONICAL_CONFIG, modules=list(perm))
    assert json.dumps(result.to_json(), sort_keys=True) == _CANONICAL_JSON


def test_zone_map_payload_independent_of_discovery_order(fixture_result):
    reordered = analyze_tree(
        config=_CANONICAL_CONFIG, modules=list(reversed(_CANONICAL_MODULES))
    )
    assert zone_map_payload(reordered) == zone_map_payload(fixture_result)


# --------------------------------------------------------------------------
# Zone map: effort-counter mutators are deterministic-core
# --------------------------------------------------------------------------


def _scan_effort_mutators(root: Path, package: str) -> set[str]:
    """Independent ground truth: AST-scan the real tree for functions
    containing an attribute store to any effort-counter field."""
    mutators: set[str] = set()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        parts = (package, *rel.with_suffix("").parts)
        module = ".".join(parts[:-1] if parts[-1] == "__init__" else parts)
        tree = ast.parse(path.read_text(encoding="utf-8"))
        stack: list[tuple[ast.AST, tuple[str, ...]]] = [(tree, ())]
        while stack:
            node, qual = stack.pop()
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    stack.append((child, qual + (child.name,)))
                elif isinstance(child, ast.ClassDef):
                    stack.append((child, qual + (child.name,)))
                else:
                    stack.append((child, qual))
            if isinstance(node, (ast.Attribute, ast.AugAssign)):
                targets = []
                if isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, ast.Store
                ):
                    targets = [node.attr]
                elif isinstance(node, ast.AugAssign) and isinstance(
                    node.target, ast.Attribute
                ):
                    targets = [node.target.attr]
                if qual and any(t in EFFORT_FIELDS for t in targets):
                    mutators.add(f"{module}:{'.'.join(qual)}")
    return mutators


def test_effort_mutators_are_deterministic_core(tree_result):
    config = tree_result.config
    expected = _scan_effort_mutators(Path(config.root), config.package)
    assert expected, "no effort-counter mutators found — scan is broken"
    payload = zone_map_payload(tree_result)
    assert set(payload["effort_mutators"]) >= expected
    functions = payload["functions"]
    for key in sorted(expected):
        assert key in functions, f"{key} missing from zone map"
        assert Zone.DETERMINISTIC_CORE.value in functions[key]["zones"], (
            f"effort-counter mutator {key} is not classified deterministic-core"
        )


def test_zone_map_payload_shape(tree_result):
    payload = zone_map_payload(tree_result)
    assert payload["version"] == 1
    assert payload["package"] == "repro"
    assert list(payload["effort_fields"]) == list(EFFORT_FIELDS)
    for key, entry in payload["functions"].items():
        assert ":" in key
        assert entry["zones"] == sorted(entry["zones"])
        assert set(entry["reasons"]) == set(entry["zones"])


# --------------------------------------------------------------------------
# Baseline mechanics
# --------------------------------------------------------------------------


def _finding(rule="D-WALLCLOCK", module="m", function="f") -> AnalysisFinding:
    return AnalysisFinding(
        rule=rule,
        severity=RULES[rule].severity,
        module=module,
        function=function,
        path="m.py",
        line=3,
        col=0,
        zone=RULES[rule].zone.value,
        message="synthetic",
        trace=(),
    )


def test_baseline_rejects_empty_reason(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {"rule": "D-RNG", "module": "m", "function": "f", "reason": "  "}
                ],
            }
        ),
        encoding="utf-8",
    )
    with pytest.raises(BaselineError, match="empty reason"):
        Baseline.load(path)


def test_baseline_rejects_missing_fields_and_bad_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 2, "entries": []}), encoding="utf-8")
    with pytest.raises(BaselineError, match="version"):
        Baseline.load(path)
    path.write_text(
        json.dumps({"version": 1, "entries": [{"rule": "D-RNG"}]}), encoding="utf-8"
    )
    with pytest.raises(BaselineError, match="missing"):
        Baseline.load(path)


def test_baseline_apply_splits_and_reports_stale():
    waived = BaselineEntry("D-WALLCLOCK", "m", "f", "deliberate")
    stale = BaselineEntry("D-RNG", "gone", "g", "was fixed")
    baseline = Baseline(entries=[waived, stale])
    findings = [_finding(), _finding(module="other")]
    unbaselined, baselined, stale_out = baseline.apply(findings)
    assert [f.module for f in unbaselined] == ["other"]
    assert [(f.module, e.reason) for f, e in baselined] == [("m", "deliberate")]
    assert stale_out == [stale]


def test_baseline_roundtrip(tmp_path):
    baseline = Baseline(entries=[BaselineEntry("F-ATOMIC", "m", "f", "why")])
    path = tmp_path / "b.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert loaded.entries == baseline.entries


# --------------------------------------------------------------------------
# Tree-wide gate and CLI
# --------------------------------------------------------------------------


def test_checked_in_baseline_gate_is_clean(tree_result):
    assert tree_result.gate_failures("error") == []
    assert tree_result.stale_entries == []
    assert all(e.reason.strip() for _, e in tree_result.baselined)


def test_severity_gating_thresholds(tree_result):
    assert tree_result.gate_failures("never") == []
    # every current rule is ERROR, so widening the threshold cannot
    # produce fewer failures than the error gate
    assert len(tree_result.gate_failures("info")) >= len(
        tree_result.gate_failures("error")
    )
    assert Severity("error").rank < Severity("info").rank


def test_cli_list_rules(capsys):
    assert analysis_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out


def test_cli_gate_passes_with_baseline(capsys):
    assert analysis_main(["--fail-on", "error"]) == 0
    out = capsys.readouterr().out
    assert "analysis gate: OK" in out


def test_cli_no_baseline_fails_then_never_passes(capsys):
    assert analysis_main(["--no-baseline", "--fail-on", "error"]) == 1
    assert analysis_main(["--no-baseline", "--fail-on", "never"]) == 0
    capsys.readouterr()


def test_cli_json_output_and_zone_map(tmp_path, capsys):
    zone_path = tmp_path / "zones.json"
    code = analysis_main(["--format", "json", "--zone-map", str(zone_path)])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["unbaselined"] == 0
    zones = json.loads(zone_path.read_text(encoding="utf-8"))
    assert zones["version"] == 1
    assert zones["functions"]


def test_cli_malformed_baseline_is_usage_error(tmp_path, capsys):
    path = tmp_path / "broken.json"
    path.write_text("{", encoding="utf-8")
    assert analysis_main(["--baseline", str(path)]) == 2
    assert "cannot load baseline" in capsys.readouterr().err
