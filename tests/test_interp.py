"""Tests for the functional interpreter and memory image."""


import pytest

from repro.interp.interpreter import InterpreterError, run_loop
from repro.interp.memory import MemoryImage, memory_for_loop
from repro.ir.builder import LoopBuilder
from repro.ir.types import ScalarType
from repro.ir.values import const_f64, const_i64

F64 = ScalarType.F64
I64 = ScalarType.I64


class TestMemoryImage:
    def test_declare_and_access(self, dot_loop):
        mem = memory_for_loop(dot_loop)
        assert len(mem.arrays["x"]) == 1024
        mem.store("x", 3, 1.5)
        assert mem.load("x", 3) == 1.5

    def test_bounds_checked(self, dot_loop):
        mem = memory_for_loop(dot_loop)
        with pytest.raises(IndexError):
            mem.load("x", 1024)
        with pytest.raises(IndexError):
            mem.store("x", -1, 0.0)

    def test_randomize_deterministic(self, dot_loop):
        a = memory_for_loop(dot_loop, seed=7)
        b = memory_for_loop(dot_loop, seed=7)
        assert a.arrays == b.arrays
        c = memory_for_loop(dot_loop, seed=8)
        assert a.arrays != c.arrays

    def test_integer_arrays_randomize_to_ints(self):
        b = LoopBuilder("l")
        b.array("n", dtype=I64, dim_sizes=(64,))
        t = b.load("n", b.idx())
        b.array("m", dtype=I64, dim_sizes=(64,))
        b.store("m", b.idx(), t)
        mem = memory_for_loop(b.build(), seed=1)
        assert all(isinstance(v, int) for v in mem.arrays["n"])

    def test_snapshot_excludes_compiler_buffers(self):
        mem = MemoryImage()
        mem.arrays["user"] = [1.0]
        mem.arrays["xfer.t"] = [2.0]
        mem.arrays["exp.t"] = [3.0]
        assert set(mem.snapshot_user_arrays()) == {"user"}

    def test_copy_independent(self, dot_loop):
        a = memory_for_loop(dot_loop, seed=1)
        b = a.copy()
        b.store("x", 0, 99.0)
        assert a.load("x", 0) != 99.0


class TestScalarExecution:
    def test_dot_product_value(self, dot_loop):
        mem = memory_for_loop(dot_loop)
        mem.arrays["x"] = [float(i) for i in range(1024)]
        mem.arrays["y"] = [2.0] * 1024
        result = run_loop(dot_loop, mem, 0, 10)
        assert result.carried["s"] == 2.0 * sum(range(10))

    def test_start_offset(self, dot_loop):
        mem = memory_for_loop(dot_loop)
        mem.arrays["x"] = [1.0] * 1024
        mem.arrays["y"] = [1.0] * 1024
        result = run_loop(dot_loop, mem, 5, 10)
        assert result.carried["s"] == 10.0

    def test_carried_init_override(self, dot_loop):
        mem = memory_for_loop(dot_loop)
        mem.arrays["x"] = [1.0] * 1024
        mem.arrays["y"] = [1.0] * 1024
        result = run_loop(dot_loop, mem, 0, 3, carried_init={"s": 100.0})
        assert result.carried["s"] == 103.0

    def test_all_arith_kinds(self):
        b = LoopBuilder("l")
        b.array("x", dim_sizes=(64,))
        b.array("o", dim_sizes=(64, 8))
        v = b.load("x", b.idx())
        results = {
            "add": b.add(v, const_f64(1.0)),
            "sub": b.sub(v, const_f64(1.0)),
            "mul": b.mul(v, const_f64(3.0)),
            "div": b.div(v, const_f64(2.0)),
            "min": b.minimum(v, const_f64(0.5)),
            "max": b.maximum(v, const_f64(0.5)),
            "neg": b.neg(v),
            "abs": b.absolute(v),
            "sqrt": b.sqrt(b.absolute(v)),
        }
        for col, r in enumerate(results.values()):
            b.store("o", b.idx2(b.aff(1, 0), b.aff(0, col)), r)
        loop = b.build()
        mem = memory_for_loop(loop)
        mem.arrays["x"][0] = -2.0
        run_loop(loop, mem, 0, 1)
        row = mem.arrays["o"][:8]
        assert row[0] == -1.0 and row[1] == -3.0 and row[2] == -6.0
        assert row[3] == -1.0 and row[4] == -2.0 and row[5] == 0.5
        assert row[6] == 2.0 and row[7] == 2.0
        # sqrt(|-2|) stored in column 8 of row 0... columns 0..7 checked above

    def test_integer_division_truncates_toward_zero(self):
        b = LoopBuilder("l")
        b.array("n", dtype=I64, dim_sizes=(8,))
        b.array("m", dtype=I64, dim_sizes=(8,))
        t = b.load("n", b.idx())
        q = b.div(t, const_i64(2))
        b.store("m", b.idx(), q)
        loop = b.build()
        mem = memory_for_loop(loop)
        mem.arrays["n"] = [-3, 3, -7, 7, 0, 1, -1, 5]
        run_loop(loop, mem, 0, 8)
        assert mem.arrays["m"] == [-1, 1, -3, 3, 0, 0, 0, 2]

    def test_division_by_zero_raises(self):
        b = LoopBuilder("l")
        b.array("x", dim_sizes=(8,))
        b.array("z", dim_sizes=(8,))
        t = b.load("x", b.idx())
        q = b.div(t, const_f64(0.0))
        b.store("z", b.idx(), q)
        loop = b.build()
        with pytest.raises(InterpreterError):
            run_loop(loop, memory_for_loop(loop), 0, 1)

    def test_sqrt_of_negative_raises(self):
        b = LoopBuilder("l")
        b.array("x", dim_sizes=(8,))
        b.array("z", dim_sizes=(8,))
        t = b.load("x", b.idx())
        b.store("z", b.idx(), b.sqrt(t))
        loop = b.build()
        mem = memory_for_loop(loop)
        mem.arrays["x"][0] = -1.0
        with pytest.raises(InterpreterError):
            run_loop(loop, mem, 0, 1)

    def test_preheader_executes_once(self):
        from repro.ir.loop import Loop
        from repro.ir.operations import Operation, OpKind
        from repro.ir.values import VirtualRegister

        b = LoopBuilder("l")
        b.array("z", dim_sizes=(64,))
        pre = Operation(
            OpKind.ADD, F64,
            dest=VirtualRegister("c", F64),
            srcs=(const_f64(1.0), const_f64(2.0)),
        )
        body = Operation(
            OpKind.STORE, F64,
            srcs=(VirtualRegister("c", F64),),
            array="z",
            subscript=b.idx(),
        )
        from repro.ir.loop import ArrayInfo

        loop = Loop(
            "l",
            (body,),
            arrays={"z": ArrayInfo("z", F64, (64,))},
            preheader=(pre,),
        )
        mem = MemoryImage()
        run_loop(loop, mem, 0, 4)
        assert mem.arrays["z"][:4] == [3.0] * 4


class TestVectorExecution:
    def test_vector_ops_lanewise(self, stream_loop, paper):
        from repro.dependence.analysis import analyze_loop
        from repro.vectorize.full import full_assignment
        from repro.vectorize.transform import transform_loop

        dep = analyze_loop(stream_loop, 2)
        tr = transform_loop(dep, paper, full_assignment(dep), 2)
        mem = memory_for_loop(tr.loop)
        mem.arrays["x"] = [float(i) for i in range(1024)]
        mem.arrays["y"] = [10.0] * 1024
        run_loop(tr.loop, mem, 0, 4)
        assert mem.arrays["z"][:8] == [10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0, 17.0]

    def test_undefined_register_read_raises(self, dot_loop):
        broken = dot_loop.body[2]  # mul reading loads — run it alone
        from repro.ir.loop import Loop

        loop = Loop("broken", (broken,), arrays=dict(dot_loop.arrays))
        with pytest.raises(InterpreterError):
            run_loop(loop, memory_for_loop(loop), 0, 1)
