"""Tests for the loop transformation engine (Section 3.3)."""

import pytest

from repro.dependence.analysis import analyze_loop
from repro.ir.builder import LoopBuilder
from repro.ir.operations import OpKind
from repro.ir.types import VectorType
from repro.ir.values import const_f64
from repro.ir.verifier import verify_loop
from repro.machine.configs import aligned_machine
from repro.vectorize.communication import Side
from repro.vectorize.full import full_assignment
from repro.vectorize.transform import (
    SCRATCH_PREFIX,
    ordered_components,
    transform_loop,
)


def all_scalar(loop):
    return {op.uid: Side.SCALAR for op in loop.body}


def kinds(loop):
    return [op.mnemonic() for op in loop.body]


class TestBaselineUnrolling:
    def test_factor_two_replicates_body(self, stream_loop, paper):
        dep = analyze_loop(stream_loop, 2)
        tr = transform_loop(dep, paper, all_scalar(stream_loop), 2)
        real_ops = [op for op in tr.loop.body if not op.kind.is_overhead]
        assert len(real_ops) == 2 * len(stream_loop.body)
        assert tr.loop.increment == 2
        assert tr.cleanup is not None
        verify_loop(tr.loop)

    def test_factor_one_adds_only_overhead(self, stream_loop, paper):
        dep = analyze_loop(stream_loop, 2)
        tr = transform_loop(dep, paper, all_scalar(stream_loop), 1)
        overhead = [op for op in tr.loop.body if op.kind.is_overhead]
        # 3 arrays -> 3 bumps, + ivinc + cbr
        assert len(overhead) == 5
        assert tr.cleanup is None

    def test_toy_machine_has_no_overhead_ops(self, stream_loop, toy):
        dep = analyze_loop(stream_loop, 2)
        tr = transform_loop(dep, toy, all_scalar(stream_loop), 2)
        assert not any(op.kind.is_overhead for op in tr.loop.body)

    def test_subscripts_folded_into_j_space(self, stream_loop, paper):
        dep = analyze_loop(stream_loop, 2)
        tr = transform_loop(dep, paper, all_scalar(stream_loop), 2)
        loads = [op for op in tr.loop.body if op.is_load]
        inner = sorted(
            (op.subscript.innermost.coeff, op.subscript.innermost.offset)
            for op in loads
        )
        assert inner == [(2, 0), (2, 0), (2, 1), (2, 1)]

    def test_reduction_chain_serializes_across_lanes(self, dot_loop, paper):
        dep = analyze_loop(dot_loop, 2)
        tr = transform_loop(dep, paper, all_scalar(dot_loop), 2)
        adds = [op for op in tr.loop.body if op.kind is OpKind.ADD]
        # lane 1 add must consume lane 0's result
        assert adds[1].srcs[0] == adds[0].dest
        carried = [c for c in tr.loop.carried if c.entry.name == "s"]
        assert carried[0].exit == adds[1].dest


class TestVectorEmission:
    def test_full_vectorization_stream(self, stream_loop, paper):
        dep = analyze_loop(stream_loop, 2)
        tr = transform_loop(dep, paper, full_assignment(dep), 2)
        assert tr.n_vector_ops == 4
        assert tr.n_transfers == 0
        vec_ops = [op for op in tr.loop.body if op.is_vector]
        assert all(op.kind in (OpKind.LOAD, OpKind.STORE, OpKind.ADD, OpKind.MERGE)
                   for op in vec_ops)

    def test_misaligned_loads_get_merges_and_carried_chunk(self, stream_loop, paper):
        dep = analyze_loop(stream_loop, 2)
        tr = transform_loop(dep, paper, full_assignment(dep), 2)
        merges = [op for op in tr.loop.body if op.kind is OpKind.MERGE]
        assert len(merges) == 3  # two loads + one store
        assert tr.n_merges == 3
        # each merge carries the previous iteration's aligned chunk
        vec_carried = [
            c for c in tr.loop.carried if isinstance(c.entry.type, VectorType)
        ]
        assert len(vec_carried) == 3

    def test_aligned_machine_emits_no_merges(self, stream_loop):
        machine = aligned_machine()
        dep = analyze_loop(stream_loop, 2)
        tr = transform_loop(dep, machine, full_assignment(dep), 2)
        assert tr.n_merges == 0

    def test_through_memory_transfers_use_scratch(self, dot_loop, paper):
        dep = analyze_loop(dot_loop, 2)
        assignment = all_scalar(dot_loop)
        # vectorize both loads and the multiply; the add stays scalar
        for op in dot_loop.body[:3]:
            assignment[op.uid] = Side.VECTOR
        tr = transform_loop(dep, paper, assignment, 2)
        assert tr.n_transfers == 1
        scratch = [a for a in tr.loop.arrays if a.startswith(SCRATCH_PREFIX)]
        assert len(scratch) == 1
        # vector store + 2 scalar loads on the scratch array
        ops_on_scratch = [op for op in tr.loop.body if op.array == scratch[0]]
        assert [op.mnemonic() for op in ops_on_scratch] == ["vstore", "load", "load"]

    def test_free_comm_machine_uses_pack_extract(self, dot_loop, toy):
        dep = analyze_loop(dot_loop, 2)
        assignment = all_scalar(dot_loop)
        for op in dot_loop.body[:3]:
            assignment[op.uid] = Side.VECTOR
        tr = transform_loop(dep, toy, assignment, 2)
        assert OpKind.EXTRACT in {op.kind for op in tr.loop.body}
        assert not any(a.startswith(SCRATCH_PREFIX) for a in tr.loop.arrays)

    def test_invariant_operand_splat_in_preheader(self, saxpy_loop, paper):
        dep = analyze_loop(saxpy_loop, 2)
        tr = transform_loop(dep, paper, full_assignment(dep), 2)
        splats = [op for op in tr.loop.preheader if op.kind is OpKind.COPY]
        assert len(splats) == 1
        assert splats[0].is_vector

    def test_rejects_vectorizing_unvectorizable(self, dot_loop, paper):
        dep = analyze_loop(dot_loop, 2)
        assignment = all_scalar(dot_loop)
        assignment[dot_loop.body[-1].uid] = Side.VECTOR  # the reduction add
        with pytest.raises(ValueError):
            transform_loop(dep, paper, assignment, 2)

    def test_rejects_wrong_factor_for_vector(self, dot_loop, paper):
        dep = analyze_loop(dot_loop, 2)
        assignment = all_scalar(dot_loop)
        assignment[dot_loop.body[0].uid] = Side.VECTOR
        with pytest.raises(ValueError):
            transform_loop(dep, paper, assignment, 3)

    def test_liveout_mapping_scalar(self, dot_loop, paper):
        dep = analyze_loop(dot_loop, 2)
        tr = transform_loop(dep, paper, all_scalar(dot_loop), 2)
        spec = tr.liveout_map["s2"]
        assert spec.register.name == "s2.l1"
        assert spec.lane is None

    def test_liveout_mapping_vector_lane(self, stream_loop, paper):
        b = LoopBuilder("lo")
        b.array("x", dim_sizes=(2048,))
        v = b.load("x", b.idx(), name="v")
        w = b.mul(v, const_f64(2.0), name="w")
        b.array("z", dim_sizes=(2048,))
        b.store("z", b.idx(), w)
        b.live_out(w)
        loop = b.build()
        dep = analyze_loop(loop, 2)
        tr = transform_loop(dep, paper, full_assignment(dep), 2)
        spec = tr.liveout_map["w"]
        assert spec.lane == 1
        assert isinstance(spec.register.type, VectorType)


class TestComponentOrdering:
    def test_topological_sources_first(self, dot_loop):
        dep = analyze_loop(dot_loop, 2)
        comps = ordered_components(dep)
        flat = [uid for comp in comps for uid in comp]
        uids = [op.uid for op in dot_loop.body]
        # loads before mul before add
        assert flat.index(uids[2]) > flat.index(uids[0])
        assert flat.index(uids[3]) > flat.index(uids[2])

    def test_forward_carried_dependence_ordering(self, paper):
        """store a[i] / load a[i-1]: the store's component must be emitted
        first so lane 1's load sees lane 0's store within an iteration."""
        b = LoopBuilder("fwd")
        b.array("a", dim_sizes=(4096,))
        b.array("x", dim_sizes=(4096,))
        b.array("z", dim_sizes=(4096,))
        xi = b.load("x", b.idx(offset=1), name="xi")
        b.store("a", b.idx(offset=1), xi)
        t = b.load("a", b.idx(offset=0), name="t")
        b.store("z", b.idx(), t)
        loop = b.build()
        dep = analyze_loop(loop, 2)
        tr = transform_loop(dep, paper, all_scalar(loop), 2)
        body = tr.loop.body
        a_stores = [i for i, op in enumerate(body) if op.is_store and op.array == "a"]
        a_loads = [i for i, op in enumerate(body) if op.is_load and op.array == "a"]
        assert max(a_stores) < min(a_loads)

    def test_transformed_loops_verify(self, dot_loop, saxpy_loop, stream_loop, paper):
        for loop in (dot_loop, saxpy_loop, stream_loop):
            dep = analyze_loop(loop, 2)
            for assignment in (all_scalar(loop), full_assignment(dep)):
                tr = transform_loop(dep, paper, assignment, 2)
                verify_loop(tr.loop)
                if tr.cleanup:
                    verify_loop(tr.cleanup)
