"""Tests for the loop DSL: lexer, parser, and lowering."""

import pytest

from repro.frontend import parse_loop, parse_program
from repro.frontend.lexer import SyntaxErrorDSL, TokenKind, tokenize
from repro.frontend.lowering import LoweringError
from repro.interp.interpreter import run_loop
from repro.interp.memory import memory_for_loop
from repro.ir.operations import OpKind
from repro.ir.types import ScalarType


class TestLexer:
    def test_names_numbers_punct(self):
        tokens = tokenize("x = a1 + 2.5e-1")
        kinds = [t.kind for t in tokens]
        assert kinds[0] is TokenKind.NAME
        assert TokenKind.NUMBER in kinds
        texts = [t.text for t in tokens]
        assert "2.5e-1" in texts

    def test_comments_stripped(self):
        tokens = tokenize("a = 1 # comment with * stuff\n")
        assert all("comment" not in t.text for t in tokens)

    def test_blank_lines_produce_no_tokens(self):
        tokens = tokenize("\n\n\n")
        assert tokens[-1].kind is TokenKind.EOF
        assert len(tokens) == 1

    def test_unexpected_character(self):
        with pytest.raises(SyntaxErrorDSL):
            tokenize("a = $b")

    def test_locations(self):
        tokens = tokenize("a = 1\nb = 2")
        b_tok = [t for t in tokens if t.text == "b"][0]
        assert b_tok.location.line == 2


class TestParser:
    def test_full_program(self):
        program = parse_program(
            """
            loop demo
            array x(100), y(100) : f64
            array n(100) : i64
            param a = 1.5
            carry s = 0.0
            sym j
            do i
                t = x(i) + a
                y(i) = t
                s = s + t
            end
            result s
            """
        )
        assert program.name == "demo"
        assert [a.name for a in program.arrays] == ["x", "y", "n"]
        assert program.arrays[2].dtype is ScalarType.I64
        assert program.params[0].value == 1.5
        assert program.carries[0].name == "s"
        assert program.syms[0].name == "j"
        assert program.index == "i"
        assert len(program.body) == 3
        assert program.results == ["s"]

    def test_multidim_array(self):
        program = parse_program("array a(10, 20)\ndo i\na(j, i) = 1.0\nend\nsym j")
        assert program.arrays[0].dims == (10, 20)

    def test_align_clause(self):
        program = parse_program("array a(10) align 1\ndo i\nend")
        assert program.arrays[0].align == 1

    def test_missing_end(self):
        with pytest.raises(SyntaxErrorDSL):
            parse_program("do i\n x = 1.0\n")

    def test_precedence(self):
        loop = parse_loop(
            "array x(64), z(64)\ndo i\n z(i) = x(i) + x(i) * 2.0\nend"
        )
        kinds = [op.kind for op in loop.body if op.kind.is_arith]
        assert kinds == [OpKind.MUL, OpKind.ADD]

    def test_parenthesized_grouping(self):
        loop = parse_loop(
            "array x(64), z(64)\ndo i\n z(i) = (x(i) + x(i)) * 2.0\nend"
        )
        kinds = [op.kind for op in loop.body if op.kind.is_arith]
        assert kinds == [OpKind.ADD, OpKind.MUL]

    def test_functions(self):
        loop = parse_loop(
            "array x(64), z(64)\ndo i\n z(i) = max(abs(x(i)), sqrt(abs(x(i))))\nend"
        )
        kinds = {op.kind for op in loop.body}
        assert {OpKind.ABS, OpKind.SQRT, OpKind.MAX} <= kinds


class TestLowering:
    def test_dot_product_roundtrip(self):
        loop = parse_loop(
            """
            array x(256), y(256)
            carry s = 0.0
            do i
                s = s + x(i) * y(i)
            end
            result s
            """
        )
        mem = memory_for_loop(loop)
        mem.arrays["x"] = [2.0] * 256
        mem.arrays["y"] = [3.0] * 256
        result = run_loop(loop, mem, 0, 10)
        assert result.carried["s"] == 60.0

    def test_sequential_name_rebinding(self):
        loop = parse_loop(
            """
            array x(64), z(64)
            do i
                t = x(i) + 1.0
                t = t * 2.0
                z(i) = t
            end
            """
        )
        mem = memory_for_loop(loop)
        mem.arrays["x"][0] = 4.0
        run_loop(loop, mem, 0, 1)
        assert mem.arrays["z"][0] == 10.0

    def test_carry_reads_then_updates(self):
        loop = parse_loop(
            """
            array z(64)
            carry s = 1.0
            do i
                z(i) = s
                s = s * 2.0
            end
            """
        )
        mem = memory_for_loop(loop)
        run_loop(loop, mem, 0, 4)
        assert mem.arrays["z"][:4] == [1.0, 2.0, 4.0, 8.0]

    def test_affine_subscripts(self):
        loop = parse_loop(
            "sym j\narray a(16, 64), z(64)\ndo i\n z(i) = a(j, 2*i+3)\nend"
        )
        load = loop.body[0]
        inner = load.subscript.innermost
        assert (inner.coeff, inner.offset) == (2, 3)
        outer = load.subscript.dims[0]
        assert outer.symbols == (("j", 1),)

    def test_nonlinear_subscript_rejected(self):
        with pytest.raises(LoweringError):
            parse_loop("array a(64)\ndo i\n a(i*i) = 1.0\nend")

    def test_float_subscript_rejected(self):
        with pytest.raises(LoweringError):
            parse_loop("array a(64)\ndo i\n a(1.5) = 1.0\nend")

    def test_undeclared_array_rejected(self):
        with pytest.raises(LoweringError):
            parse_loop("do i\n a(i) = 1.0\nend")

    def test_undefined_name_rejected(self):
        with pytest.raises(LoweringError):
            parse_loop("array a(64)\ndo i\n a(i) = ghost\nend")

    def test_index_outside_subscript_rejected(self):
        with pytest.raises(LoweringError):
            parse_loop("array a(64)\ndo i\n a(i) = i\nend" % ())

    def test_mixed_types_rejected(self):
        with pytest.raises(LoweringError):
            parse_loop(
                "array a(64) : i64\narray b(64) : f64\narray z(64)\n"
                "do i\n z(i) = a(i) + b(i)\nend"
            )

    def test_int_constant_coerces_to_float(self):
        loop = parse_loop("array z(64)\ndo i\n z(i) = 1 + 0.5\nend")
        mem = memory_for_loop(loop)
        run_loop(loop, mem, 0, 1)
        assert mem.arrays["z"][0] == 1.5

    def test_result_must_exist(self):
        with pytest.raises(LoweringError):
            parse_loop("array z(64)\ndo i\n z(i) = 1.0\nend\nresult ghost")

    def test_compiles_through_all_strategies(self):
        from repro.compiler.driver import compile_loop
        from repro.compiler.strategies import ALL_STRATEGIES
        from repro.machine.configs import paper_machine

        loop = parse_loop(
            """
            array x(256), y(256), z(256)
            carry s = 0.0
            do i
                t = x(i) * y(i)
                z(i) = t + x(i)
                s = s + t
            end
            result s
            """
        )
        machine = paper_machine()
        for strategy in ALL_STRATEGIES:
            compiled = compile_loop(loop, machine, strategy)
            assert compiled.invocation_cycles(100) > 0
