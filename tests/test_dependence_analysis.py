"""Tests for dependence graph construction, SCCs, and vectorizability."""


from repro.dependence.analysis import analyze_loop, build_dependence_graph
from repro.dependence.graph import DepKind, Via
from repro.dependence.scc import scc_membership, tarjan_sccs
from repro.ir.builder import LoopBuilder
from repro.ir.values import const_f64


def edges_between(graph, src, dst):
    return [e for e in graph.successors(src.uid) if e.dst == dst.uid]


class TestRegisterEdges:
    def test_flow_edges(self, dot_loop):
        graph = build_dependence_graph(dot_loop)
        load_x, load_y, mul, add = dot_loop.body
        assert edges_between(graph, load_x, mul)
        assert edges_between(graph, load_y, mul)
        assert edges_between(graph, mul, add)

    def test_carried_self_edge_on_reduction(self, dot_loop):
        graph = build_dependence_graph(dot_loop)
        add = dot_loop.body[-1]
        self_edges = [e for e in graph.successors(add.uid) if e.dst == add.uid]
        assert len(self_edges) == 1
        assert self_edges[0].distance == 1
        assert self_edges[0].via is Via.CARRIED

    def test_constant_carried_has_no_edge(self, saxpy_loop):
        graph = build_dependence_graph(saxpy_loop)
        assert all(e.via is not Via.CARRIED for e in graph.edges)


class TestMemoryEdges:
    def _loop_with_offset(self, store_offset):
        b = LoopBuilder("l")
        b.array("a", dim_sizes=(2048,))
        t = b.load("a", b.idx(), name="t")
        u = b.mul(t, const_f64(2.0), name="u")
        b.store("a", b.idx(offset=store_offset), u)
        return b.build()

    def test_forward_flow_distance(self):
        loop = self._loop_with_offset(4)
        graph = build_dependence_graph(loop)
        load, _, store = loop.body
        edges = edges_between(graph, store, load)
        assert any(e.distance == 4 and e.kind is DepKind.FLOW for e in edges)

    def test_same_location_anti(self):
        loop = self._loop_with_offset(0)
        graph = build_dependence_graph(loop)
        load, _, store = loop.body
        edges = edges_between(graph, load, store)
        assert any(e.kind is DepKind.ANTI and e.distance == 0 for e in edges)

    def test_disjoint_arrays_no_edges(self, stream_loop):
        graph = build_dependence_graph(stream_loop)
        mem_edges = [e for e in graph.edges if e.via is Via.MEMORY]
        assert not mem_edges

    def test_loads_never_conflict(self):
        b = LoopBuilder("l")
        b.array("a", dim_sizes=(2048,))
        t = b.load("a", b.idx(), name="t")
        u = b.load("a", b.idx(), name="u")
        b.array("z", dim_sizes=(2048,))
        b.store("z", b.idx(), b.add(t, u))
        graph = build_dependence_graph(b.build())
        assert not [
            e
            for e in graph.edges
            if e.via is Via.MEMORY and e.src != e.dst and "z" not in str(e)
            and graph.ops[e.src].array == "a"
        ]

    def test_unknown_alias_creates_cycle(self):
        b = LoopBuilder("l")
        b.array("a", dim_sizes=(2048,))
        t = b.load("a", b.idx(j=1), name="t")
        b.store("a", b.idx(k=1), t)
        loop = b.build()
        graph = build_dependence_graph(loop)
        load, store = loop.body
        fwd = edges_between(graph, load, store)
        back = edges_between(graph, store, load)
        assert fwd and back
        assert any(not e.exact for e in fwd + back)

    def test_invariant_store_self_output(self):
        b = LoopBuilder("l")
        b.array("a", dim_sizes=(2048,))
        b.array("x", dim_sizes=(2048,))
        t = b.load("x", b.idx(), name="t")
        b.store("a", b.idx(coeff=0, offset=3), t)
        loop = b.build()
        graph = build_dependence_graph(loop)
        store = loop.body[1]
        self_edges = [e for e in graph.successors(store.uid) if e.dst == store.uid]
        assert self_edges and self_edges[0].kind is DepKind.OUTPUT


class TestTarjan:
    def test_simple_cycle(self):
        edges = {1: [2], 2: [3], 3: [1], 4: [1]}
        sccs = tarjan_sccs([1, 2, 3, 4], lambda n: edges.get(n, []))
        sizes = sorted(len(c) for c in sccs)
        assert sizes == [1, 3]

    def test_reverse_topological_emission(self):
        edges = {1: [2], 2: [3]}
        sccs = tarjan_sccs([1, 2, 3], lambda n: edges.get(n, []))
        order = [c[0] for c in sccs]
        assert order.index(3) < order.index(2) < order.index(1)

    def test_membership(self):
        member = scc_membership([[1, 2], [3]])
        assert member[1] == member[2] == 0
        assert member[3] == 1

    def test_large_chain_no_recursion_blowup(self):
        n = 5000
        edges = {i: [i + 1] for i in range(n - 1)}
        sccs = tarjan_sccs(range(n), lambda k: edges.get(k, []))
        assert len(sccs) == n


class TestVectorizability:
    def test_reduction_add_not_vectorizable(self, dot_loop, paper):
        dep = analyze_loop(dot_loop, 2)
        load_x, load_y, mul, add = dot_loop.body
        assert dep.is_vectorizable(load_x)
        assert dep.is_vectorizable(mul)
        assert not dep.is_vectorizable(add)

    def test_strided_memory_not_vectorizable(self):
        b = LoopBuilder("l")
        b.array("a", dim_sizes=(4096,))
        b.array("z", dim_sizes=(4096,))
        t = b.load("a", b.idx(coeff=2), name="t")
        u = b.mul(t, t, name="u")
        b.store("z", b.idx(), u)
        loop = b.build()
        dep = analyze_loop(loop, 2)
        load, mul, store = loop.body
        assert not dep.is_vectorizable(load)
        assert dep.is_vectorizable(mul)
        assert dep.is_vectorizable(store)

    def test_shifted_cycle_depends_on_vl(self):
        b = LoopBuilder("l")
        b.array("a", dim_sizes=(4096,))
        t = b.load("a", b.idx(), name="t")
        b.store("a", b.idx(offset=4), t)
        loop = b.build()
        for vl, expected in ((2, True), (4, True), (8, False)):
            dep = analyze_loop(loop, vl)
            assert all(
                dep.is_vectorizable(op) == expected for op in loop.body
            ), vl

    def test_memory_recurrence_not_vectorizable(self):
        b = LoopBuilder("l")
        b.array("y", dim_sizes=(4096,))
        t = b.load("y", b.idx(offset=0), name="t")
        u = b.mul(t, const_f64(0.5), name="u")
        b.store("y", b.idx(offset=1), u)
        loop = b.build()
        dep = analyze_loop(loop, 2)
        assert not any(dep.is_vectorizable(op) for op in loop.body)

    def test_unknown_alias_blocks_vectorization(self):
        b = LoopBuilder("l")
        b.array("a", dim_sizes=(4096,))
        t = b.load("a", b.idx(j=1), name="t")
        b.store("a", b.idx(k=1), t)
        loop = b.build()
        dep = analyze_loop(loop, 2)
        assert not any(dep.is_vectorizable(op) for op in loop.body)

    def test_in_cycle_helper(self, dot_loop):
        dep = analyze_loop(dot_loop, 2)
        add = dot_loop.body[-1]
        mul = dot_loop.body[2]
        assert dep.in_cycle(add.uid)
        assert not dep.in_cycle(mul.uid)


class TestVectorSpanEdges:
    def test_vector_store_span_conflicts_detected(self):
        """A vector store spanning [2j, 2j+1] must conflict with a scalar
        load of 2j+1 even though the lane-0 subscripts differ."""
        from repro.ir.operations import Operation, OpKind
        from repro.ir.subscripts import AffineExpr, Subscript
        from repro.ir.types import ScalarType, VectorType
        from repro.ir.values import VirtualRegister
        from repro.ir.loop import ArrayInfo, Loop

        v = VirtualRegister("v", VectorType(ScalarType.F64, 2))
        vload = Operation(
            OpKind.LOAD,
            ScalarType.F64,
            dest=v,
            array="a",
            subscript=Subscript((AffineExpr(2, 0),)),
            is_vector=True,
        )
        store = Operation(
            OpKind.STORE,
            ScalarType.F64,
            srcs=(VirtualRegister("w", ScalarType.F64),),
            array="a",
            subscript=Subscript((AffineExpr(2, 1),)),
        )
        w_def = Operation(
            OpKind.COPY,
            ScalarType.F64,
            dest=VirtualRegister("w", ScalarType.F64),
            srcs=(VirtualRegister("v", VectorType(ScalarType.F64, 2)),),
        )
        loop = Loop(
            "span",
            (vload, w_def, store),
            arrays={"a": ArrayInfo("a", ScalarType.F64, (4096,))},
        )
        graph = build_dependence_graph(loop)
        edges = [
            e
            for e in graph.edges
            if {e.src, e.dst} == {vload.uid, store.uid}
        ]
        assert edges, "span overlap must be detected"
