"""Tests for the compilation driver, timing model, and Table 3 plumbing."""

import pytest

from repro.compiler.driver import compile_loop
from repro.compiler.strategies import ALL_STRATEGIES, Strategy
from repro.simulate.timing import (
    LOOP_SETUP_CYCLES,
    UnitTiming,
    aggregate_cycles,
    speedup,
)
from repro.workloads.kernels import dot_product, first_order_recurrence


class TestUnitTiming:
    def test_zero_trip_pays_only_setup(self):
        t = UnitTiming(ii=3, stages=4, factor=2, cleanup_cycles=10, preheader_cycles=1)
        assert t.invocation_cycles(0) == LOOP_SETUP_CYCLES + 1

    def test_pipeline_formula(self):
        t = UnitTiming(ii=3, stages=4, factor=2, cleanup_cycles=10, preheader_cycles=0)
        # 10 kernel iterations: (10 + 3) * 3
        assert t.invocation_cycles(20) == LOOP_SETUP_CYCLES + 13 * 3

    def test_cleanup_charged_per_residual(self):
        t = UnitTiming(ii=3, stages=2, factor=2, cleanup_cycles=10, preheader_cycles=0)
        with_residual = t.invocation_cycles(21)
        without = t.invocation_cycles(20)
        assert with_residual == without + 10

    def test_trip_below_factor_runs_only_cleanup(self):
        t = UnitTiming(ii=3, stages=2, factor=2, cleanup_cycles=10, preheader_cycles=0)
        assert t.invocation_cycles(1) == LOOP_SETUP_CYCLES + 10

    def test_negative_trip_rejected(self):
        t = UnitTiming(ii=1, stages=1, factor=1, cleanup_cycles=0, preheader_cycles=0)
        with pytest.raises(ValueError):
            t.invocation_cycles(-1)

    def test_steady_state(self):
        t = UnitTiming(ii=3, stages=2, factor=2, cleanup_cycles=0, preheader_cycles=0)
        assert t.steady_state_ii_per_iteration() == 1.5

    def test_aggregate_and_speedup(self):
        a = UnitTiming(ii=2, stages=1, factor=1, cleanup_cycles=0, preheader_cycles=0)
        b = UnitTiming(ii=3, stages=1, factor=1, cleanup_cycles=0, preheader_cycles=0)
        total = aggregate_cycles([a, b], 10)
        assert total == (LOOP_SETUP_CYCLES + 20) + (LOOP_SETUP_CYCLES + 30)
        assert speedup(100, 50) == 2.0
        with pytest.raises(ValueError):
            speedup(100, 0)


class TestCompiledLoop:
    def test_monotone_in_trip_count(self, paper, dot_loop):
        for strategy in ALL_STRATEGIES:
            compiled = compile_loop(dot_loop, paper, strategy)
            cycles = [compiled.invocation_cycles(n) for n in (0, 2, 10, 50, 200)]
            assert cycles == sorted(cycles)

    def test_resource_limited_flag(self, paper):
        parallel = compile_loop(dot_product(), paper, Strategy.BASELINE,
                                baseline_unroll=1)
        serial = compile_loop(first_order_recurrence(), paper, Strategy.BASELINE)
        assert serial.rec_mii_per_iteration() > serial.res_mii_per_iteration()
        assert not serial.is_resource_limited

    def test_res_mii_lower_bounds_ii(self, paper, dot_loop, stream_loop):
        for loop in (dot_loop, stream_loop):
            for strategy in ALL_STRATEGIES:
                compiled = compile_loop(loop, paper, strategy)
                assert (
                    compiled.ii_per_iteration()
                    >= compiled.res_mii_per_iteration() - 1e-9
                )

    def test_baseline_unroll_override(self, paper, dot_loop):
        u1 = compile_loop(dot_loop, paper, Strategy.BASELINE, baseline_unroll=1)
        u2 = compile_loop(dot_loop, paper, Strategy.BASELINE)
        assert u1.units[0].factor == 1
        assert u2.units[0].factor == 2

    def test_selective_records_partition(self, paper, dot_loop):
        compiled = compile_loop(dot_loop, paper, Strategy.SELECTIVE)
        assert compiled.partition is not None
        assert compiled.partition.scalar_cost >= compiled.partition.cost

    def test_optimize_flag_runs_pipeline(self, paper):
        from repro.frontend import parse_loop

        loop = parse_loop(
            "array x(128), z(128)\ndo i\n dead = x(i) * 2.0\n z(i) = x(i)\nend"
        )
        plain = compile_loop(loop, paper, Strategy.BASELINE)
        opt = compile_loop(loop, paper, Strategy.BASELINE, optimize=True)
        assert opt.invocation_cycles(100) <= plain.invocation_cycles(100)

    def test_traditional_unit_structure(self, paper, dot_loop):
        compiled = compile_loop(dot_loop, paper, Strategy.TRADITIONAL)
        assert len(compiled.units) == 2
        factors = [u.factor for u in compiled.units]
        assert factors == [2, 1]  # vector loop steps by VL; scalar loop by 1
