"""Tests for affine subscripts, including hypothesis properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.subscripts import AffineExpr, Subscript


class TestAffineExpr:
    def test_normalizes_zero_symbol_coefficients(self):
        e = AffineExpr(1, 0, (("j", 0), ("k", 2)))
        assert e.symbols == (("k", 2),)

    def test_symbols_sorted(self):
        e = AffineExpr.of(1, 0, z=1, a=2)
        assert e.symbols == (("a", 2), ("z", 1))

    def test_is_constant(self):
        assert AffineExpr.of(0, 5).is_constant
        assert not AffineExpr.of(1, 5).is_constant
        assert not AffineExpr.of(0, 5, j=1).is_constant

    def test_is_loop_invariant(self):
        assert AffineExpr.of(0, 5, j=1).is_loop_invariant
        assert not AffineExpr.of(2, 5).is_loop_invariant

    def test_shifted_substitutes_index(self):
        e = AffineExpr.of(3, 1)
        assert e.shifted(2) == AffineExpr.of(3, 7)

    def test_plus_displaces_by_elements(self):
        e = AffineExpr.of(3, 1)
        assert e.plus(2) == AffineExpr.of(3, 3)

    def test_evaluate_with_symbols(self):
        e = AffineExpr.of(2, 1, j=3)
        assert e.evaluate(4, {"j": 10}) == 2 * 4 + 1 + 30

    def test_evaluate_missing_symbol_raises(self):
        with pytest.raises(KeyError):
            AffineExpr.of(1, 0, j=1).evaluate(0, {})

    def test_str_forms(self):
        assert str(AffineExpr.of(1, 0)) == "i"
        assert str(AffineExpr.of(-1, 2)) == "-i + 2"
        assert str(AffineExpr.of(0, 0)) == "0"
        assert "j" in str(AffineExpr.of(1, 0, j=1))

    @given(st.integers(-5, 5), st.integers(-10, 10), st.integers(-4, 4), st.integers(0, 50))
    def test_shift_evaluate_commutes(self, coeff, offset, delta, i):
        e = AffineExpr.of(coeff, offset)
        assert e.shifted(delta).evaluate(i) == e.evaluate(i + delta)

    @given(st.integers(-5, 5), st.integers(-10, 10), st.integers(-4, 4), st.integers(0, 50))
    def test_plus_adds_elements(self, coeff, offset, delta, i):
        e = AffineExpr.of(coeff, offset)
        assert e.plus(delta).evaluate(i) == e.evaluate(i) + delta


class TestSubscript:
    def test_linear_factory(self):
        s = Subscript.linear(2, 3)
        assert s.rank == 1
        assert s.innermost == AffineExpr.of(2, 3)

    def test_unit_stride(self):
        assert Subscript.linear(1, 7).is_unit_stride
        assert not Subscript.linear(2, 0).is_unit_stride

    def test_unit_stride_multidim_requires_invariant_outer(self):
        good = Subscript.of(AffineExpr.of(0, 0, j=1), AffineExpr.of(1, 0))
        bad = Subscript.of(AffineExpr.of(1, 0), AffineExpr.of(1, 0))
        assert good.is_unit_stride
        assert not bad.is_unit_stride

    def test_loop_invariant(self):
        assert Subscript.linear(0, 3).is_loop_invariant
        assert not Subscript.linear(1, 3).is_loop_invariant

    def test_shifted_all_dims(self):
        s = Subscript.of(AffineExpr.of(2, 0), AffineExpr.of(1, 1))
        shifted = s.shifted(3)
        assert shifted.dims[0] == AffineExpr.of(2, 6)
        assert shifted.dims[1] == AffineExpr.of(1, 4)

    def test_plus_innermost_only_touches_last_dim(self):
        s = Subscript.of(AffineExpr.of(0, 2), AffineExpr.of(1, 0))
        out = s.plus_innermost(5)
        assert out.dims[0] == AffineExpr.of(0, 2)
        assert out.dims[1] == AffineExpr.of(1, 5)

    def test_evaluate_row_major(self):
        s = Subscript.of(AffineExpr.of(0, 2), AffineExpr.of(1, 1))
        # flat = 2 * 10 + (i + 1)
        assert s.evaluate(4, (8, 10)) == 25

    def test_evaluate_rank_mismatch(self):
        with pytest.raises(ValueError):
            Subscript.linear(1, 0).evaluate(0, (4, 4))

    def test_str(self):
        assert str(Subscript.linear(1, 2)) == "[i + 2]"
