"""Equivalence of the flat-array hot kernels and their dict references.

The bitmask modulo reservation table and the arrayified Bellman-Ford are
pure performance rewrites: this suite drives them and their original
dict implementations through randomized inputs and requires identical
observable behavior —

* :class:`ModuloReservationTable` (bitmask rows) vs
  :class:`DictModuloReservationTable` (the original per-cell dict, kept
  in-tree as the executable specification): same fits verdicts, same
  occupied cells after every action, same eviction sets, across random
  machines (including few-unit machines that force conflicts and
  non-pipelined multi-cycle divides) and random place / force-place /
  remove sequences;
* :func:`_relax` / :func:`rec_mii` / :func:`_heights` vs reference
  reimplementations of the original dict-based relaxations: same
  distances, same predecessor edges, same witness, same RecMII value and
  critical cycle, same heights, on random dependence graphs (zero-
  distance edges kept acyclic, loop-carried edges unrestricted).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dependence.analysis import analyze_loop
from repro.dependence.graph import DepEdge, DependenceGraph, DepKind, Via
from repro.ir.operations import Operation, OpKind
from repro.ir.types import ScalarType
from repro.ir.values import VirtualRegister, const_f64, const_i64
from repro.machine.configs import figure1_machine, paper_machine
from repro.machine.machine import LatencyTable, MachineDescription
from repro.machine.resources import ResourceClass
from repro.pipeline.mii import _relax, edge_delays, rec_mii
from repro.pipeline.reservation import (
    DictModuloReservationTable,
    ModuloReservationTable,
)
from repro.pipeline.scheduler import _heights
from repro.workloads.generator import GENERATORS, generate

F64 = ScalarType.F64
I64 = ScalarType.I64


def _tight_machine(slots: int, fp: int, ints: int, ls: int) -> MachineDescription:
    """A deliberately small machine so random placements collide."""
    return MachineDescription(
        name=f"tight-s{slots}f{fp}i{ints}l{ls}",
        resources=(
            ResourceClass("slot", slots),
            ResourceClass("int", ints),
            ResourceClass("fp", fp),
            ResourceClass("ls", ls),
            ResourceClass("br", 1),
        ),
        vector_length=2,
        latencies=LatencyTable(int_div=5, fp_div=7),
    )


MACHINES = [
    paper_machine(),
    figure1_machine(),
    _tight_machine(2, 1, 1, 1),
    _tight_machine(3, 2, 1, 1),
    _tight_machine(1, 1, 1, 1),
]

#: (kind, dtype) choices; DIV/SQRT are the non-pipelined multi-cycle
#: reservations (fp_div/int_div busy cycles on the tight machines).
OP_SHAPES = [
    (OpKind.ADD, F64),
    (OpKind.MUL, F64),
    (OpKind.DIV, F64),
    (OpKind.SQRT, F64),
    (OpKind.ADD, I64),
    (OpKind.MUL, I64),
    (OpKind.DIV, I64),
]


def _make_op(shape_idx: int) -> Operation:
    kind, dtype = OP_SHAPES[shape_idx % len(OP_SHAPES)]
    const = const_f64(1.0) if dtype.is_float else const_i64(1)
    srcs = (const,) * kind.arity
    return Operation(
        kind, dtype, dest=VirtualRegister(f"t{id(object())}", dtype), srcs=srcs
    )


action_strategy = st.tuples(
    st.sampled_from(["place", "force", "remove"]),
    st.integers(0, len(OP_SHAPES) - 1),
    st.integers(0, 40),
)


@settings(max_examples=120, deadline=None)
@given(
    machine_idx=st.integers(0, len(MACHINES) - 1),
    ii=st.integers(1, 9),
    actions=st.lists(action_strategy, min_size=1, max_size=25),
)
def test_bitset_mrt_matches_dict_mrt(machine_idx, ii, actions):
    machine = MACHINES[machine_idx]
    fast = ModuloReservationTable(machine, ii)
    ref = DictModuloReservationTable(machine, ii)
    placed: list[Operation] = []
    for verb, shape_idx, cycle in actions:
        if verb == "remove" and placed:
            op = placed.pop(cycle % len(placed))
            fast.remove(op.uid)
            ref.remove(op.uid)
        elif verb == "place":
            op = _make_op(shape_idx)
            fits_fast = fast.fits(op, cycle)
            fits_ref = ref.fits(op, cycle)
            assert fits_fast == fits_ref, (op, cycle)
            if fits_fast:
                fast.place(op, cycle)
                ref.place(op, cycle)
                placed.append(op)
        else:  # force placement
            op = _make_op(shape_idx)
            assert fast.conflicting_holders(op, cycle) == ref.conflicting_holders(
                op, cycle
            ), (op, cycle)
            err_fast = err_ref = False
            evicted_fast = evicted_ref = set()
            try:
                evicted_fast = fast.place_evicting(op, cycle)
            except ValueError:
                err_fast = True
            try:
                evicted_ref = ref.place_evicting(op, cycle)
            except ValueError:
                err_ref = True
            assert err_fast == err_ref, (op, cycle)
            if not err_fast:
                assert evicted_fast == evicted_ref, (op, cycle)
                placed = [p for p in placed if p.uid not in evicted_fast]
                placed.append(op)
        # After every action the full observable state must agree: the
        # same cells busy with the same holders, the same holder set.
        assert fast.occupied_cells() == ref.occupied_cells()
        assert set(fast.held) == set(ref.held)


# ----------------------------------------------------------------------
# Bellman-Ford references: the original dict implementations, verbatim.


def _relax_ref(graph, machine, ii, delays):
    nodes = graph.node_ids()
    dist = {n: 0 for n in nodes}
    pred = {}
    weights = [(e, delays[e] - ii * e.distance) for e in graph.edges]
    witness = None
    for _ in range(len(nodes)):
        changed = False
        for e, w in weights:
            if dist[e.src] + w > dist[e.dst]:
                dist[e.dst] = dist[e.src] + w
                pred[e.dst] = e
                changed = True
                witness = e.dst
        if not changed:
            return dist, pred, None
    return dist, pred, witness


def _rec_mii_ref(graph, machine):
    if not graph.edges:
        return 1, (), 0, 0
    delays = edge_delays(graph, machine)
    max_delay = max(delays[e] for e in graph.edges)
    hi = max(1, max_delay * len(graph.ops))

    def positive(ii):
        return _relax_ref(graph, machine, ii, delays)[2] is not None

    def extract(ii):
        _, pred, witness = _relax_ref(graph, machine, ii, delays)
        if witness is None:
            return []
        node = witness
        for _ in range(len(graph.ops)):
            node = pred[node].src
        cycle, cur = [], node
        for _ in range(len(graph.ops) + 1):
            edge = pred[cur]
            cycle.append(edge)
            cur = edge.src
            if cur == node:
                break
        cycle.reverse()
        return cycle

    assert not positive(hi), "zero-distance cycle in generated graph"
    lo = 1
    while lo < hi:
        mid = (lo + hi) // 2
        if positive(mid):
            lo = mid + 1
        else:
            hi = mid
    if lo <= 1:
        return 1, (), 0, 0
    cycle = extract(lo - 1)
    return (
        lo,
        tuple(cycle),
        sum(delays[e] for e in cycle),
        sum(e.distance for e in cycle),
    )


def _heights_ref(loop, graph, machine, ii, delays):
    height = {op.uid: 0 for op in loop.body}
    for _ in range(len(loop.body)):
        changed = False
        for edge in graph.edges:
            w = delays[edge] - ii * edge.distance
            candidate = height[edge.dst] + w
            if candidate > height[edge.src]:
                height[edge.src] = candidate
                changed = True
        if not changed:
            break
    return height


@st.composite
def graph_strategy(draw):
    """A random dependence graph whose zero-distance edges are acyclic
    (forward-only), with arbitrary loop-carried edges on top."""
    n = draw(st.integers(2, 9))
    ops = [_make_op(draw(st.integers(0, len(OP_SHAPES) - 1))) for _ in range(n)]
    graph = DependenceGraph()
    for op in ops:
        graph.add_op(op)
    kinds = [DepKind.FLOW, DepKind.ANTI, DepKind.OUTPUT]
    n_edges = draw(st.integers(0, 3 * n))
    for _ in range(n_edges):
        distance = draw(st.integers(0, 3))
        if distance == 0:
            src = draw(st.integers(0, n - 2))
            dst = draw(st.integers(src + 1, n - 1))
        else:
            src = draw(st.integers(0, n - 1))
            dst = draw(st.integers(0, n - 1))
        graph.add_edge(
            DepEdge(
                src=ops[src].uid,
                dst=ops[dst].uid,
                kind=draw(st.sampled_from(kinds)),
                via=Via.REGISTER,
                distance=distance,
            )
        )
    return graph


@settings(max_examples=100, deadline=None)
@given(
    graph=graph_strategy(),
    machine_idx=st.integers(0, len(MACHINES) - 1),
    ii=st.integers(1, 12),
)
def test_flat_relax_matches_reference(graph, machine_idx, ii):
    machine = MACHINES[machine_idx]
    delays = edge_delays(graph, machine)
    ref_dist, ref_pred, ref_witness = _relax_ref(graph, machine, ii, delays)
    dist: dict[int, int] = {}
    pred, witness = _relax(graph, machine, ii, delays, dist)
    assert dist == ref_dist
    assert witness == ref_witness
    assert pred == ref_pred


@settings(max_examples=80, deadline=None)
@given(graph=graph_strategy(), machine_idx=st.integers(0, len(MACHINES) - 1))
def test_flat_rec_mii_matches_reference(graph, machine_idx):
    machine = MACHINES[machine_idx]
    ref_value, ref_cycle, ref_delay, ref_distance = _rec_mii_ref(graph, machine)
    bound = rec_mii(graph, machine)
    assert int(bound) == ref_value
    assert bound.cycle_edges == ref_cycle
    assert bound.cycle_delay == ref_delay
    assert bound.cycle_distance == ref_distance


loop_strategy = st.builds(
    generate,
    archetype=st.sampled_from(sorted(GENERATORS)),
    seed=st.integers(0, 50_000),
)


@settings(max_examples=40, deadline=None)
@given(loop=loop_strategy, ii=st.integers(1, 8))
def test_flat_heights_match_reference(loop, ii):
    machine = paper_machine()
    dep = analyze_loop(loop, machine.vector_length)
    delays = edge_delays(dep.graph, machine)
    ref = _heights_ref(loop, dep.graph, machine, ii, delays)
    assert _heights(loop, dep.graph, machine, ii, delays) == ref
