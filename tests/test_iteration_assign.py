"""Tests for the whole-iteration-assignment extension (paper Section 6)."""

import pytest

from repro.compiler.driver import _compile_unit
from repro.dependence.analysis import analyze_loop
from repro.interp.interpreter import run_loop
from repro.interp.memory import memory_for_loop
from repro.ir.types import VectorType
from repro.ir.verifier import verify_loop
from repro.machine.configs import paper_machine
from repro.vectorize.iteration_assign import applicable, whole_iteration_transform
from repro.workloads.kernels import dot_product, stencil3, vector_scale


@pytest.fixture
def machine():
    return paper_machine()


class TestApplicability:
    def test_parallel_loop_applies(self, stream_loop):
        assert applicable(analyze_loop(stream_loop, 2))

    def test_reduction_does_not(self):
        dep = analyze_loop(dot_product(), 2)
        assert not applicable(dep)
        assert whole_iteration_transform(dep, paper_machine()) is None

    def test_extra_iterations_validated(self, stream_loop, machine):
        dep = analyze_loop(stream_loop, 2)
        with pytest.raises(ValueError):
            whole_iteration_transform(dep, machine, extra_scalar_iterations=0)


class TestTransformShape:
    def test_factor_and_widths(self, stream_loop, machine):
        dep = analyze_loop(stream_loop, 2)
        tr = whole_iteration_transform(dep, machine)
        assert tr is not None
        assert tr.factor == 3
        verify_loop(tr.loop)
        vec_dests = [
            op.dest for op in tr.loop.body if op.is_vector and op.dest is not None
        ]
        assert vec_dests
        assert all(
            isinstance(d.type, VectorType) and d.type.length == 2
            for d in vec_dests
        )

    def test_no_transfers_ever(self, stream_loop, machine):
        dep = analyze_loop(stream_loop, 2)
        tr = whole_iteration_transform(dep, machine, extra_scalar_iterations=2)
        assert tr is not None
        assert tr.factor == 4
        assert tr.n_transfers == 0

    def test_merges_forced_even_when_aligned(self, stream_loop):
        from repro.machine.configs import aligned_machine

        machine = aligned_machine()
        dep = analyze_loop(stream_loop, 2)
        tr = whole_iteration_transform(dep, machine)
        assert tr is not None
        # unroll factor 3 is not a multiple of VL=2: always misaligned
        assert tr.n_merges == 3

    def test_scalar_lane_per_op(self, stream_loop, machine):
        dep = analyze_loop(stream_loop, 2)
        tr = whole_iteration_transform(dep, machine)
        scalar_lanes = [
            op for op in tr.loop.body if op.lane is not None and op.lane == 2
        ]
        assert len(scalar_lanes) == len(stream_loop.body)


class TestSemantics:
    @pytest.mark.parametrize("kernel", [vector_scale, stencil3])
    @pytest.mark.parametrize("trip", [0, 1, 2, 3, 29, 60])
    def test_equivalent_to_original(self, kernel, trip, machine):
        loop = kernel()
        dep = analyze_loop(loop, 2)
        tr = whole_iteration_transform(dep, machine)
        assert tr is not None
        ref = memory_for_loop(loop, seed=13)
        run_loop(loop, ref, 0, trip)
        mem = memory_for_loop(loop, seed=13)
        main = trip // tr.factor
        run_loop(tr.loop, mem, 0, main)
        if trip % tr.factor:
            run_loop(tr.cleanup, mem, main * tr.factor, trip % tr.factor)
        assert ref.snapshot_user_arrays() == mem.snapshot_user_arrays()

    def test_schedulable(self, stream_loop, machine):
        dep = analyze_loop(stream_loop, 2)
        tr = whole_iteration_transform(dep, machine)
        unit = _compile_unit(tr, machine)
        assert unit.schedule.ii >= 1
        assert unit.timing.factor == 3
