"""Tests for the subscript dependence tests (ZIV / SIV / GCD / Banerjee)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.dependence.tests import INDEPENDENT, UNKNOWN, Distance
from repro.dependence.tests import test_dimension as dim_test
from repro.dependence.tests import test_subscripts as subs_test
from repro.ir.subscripts import AffineExpr, Subscript


def aff(coeff=0, offset=0, **syms):
    return AffineExpr.of(coeff, offset, **syms)


class TestZIV:
    def test_same_constant_conflicts(self):
        assert dim_test(aff(0, 5), aff(0, 5)) is UNKNOWN

    def test_different_constants_independent(self):
        assert dim_test(aff(0, 5), aff(0, 6)) is INDEPENDENT

    def test_matching_symbols_cancel(self):
        assert dim_test(aff(0, 5, j=1), aff(0, 5, j=1)) is UNKNOWN

    def test_mismatched_symbols_unknown(self):
        assert dim_test(aff(0, 5, j=1), aff(0, 5, k=1)) is UNKNOWN


class TestStrongSIV:
    def test_same_subscript_distance_zero(self):
        assert dim_test(aff(1, 0), aff(1, 0)) == Distance(0)

    def test_unit_offset_gives_distance(self):
        # ref1 at x[i], ref2 at x[i-1]: conflict when i2 - 1 == i1 -> d=1
        assert dim_test(aff(1, 0), aff(1, -1)) == Distance(1)

    def test_negative_distance(self):
        assert dim_test(aff(1, 0), aff(1, 1)) == Distance(-1)

    def test_nondivisible_delta_independent(self):
        # 2i and 2i+1 never meet
        assert dim_test(aff(2, 0), aff(2, 1)) is INDEPENDENT

    def test_strided_distance_scaled(self):
        # 2i vs 2i-4: d = 2
        assert dim_test(aff(2, 0), aff(2, -4)) == Distance(2)

    def test_trip_count_bounds_distance(self):
        assert dim_test(aff(1, 0), aff(1, -100), trip_count=50) is INDEPENDENT
        assert dim_test(aff(1, 0), aff(1, -100), trip_count=200) == Distance(100)

    @given(st.integers(1, 6), st.integers(-30, 30), st.integers(-30, 30))
    def test_strong_siv_exactness(self, c, o1, o2):
        """Whenever the test reports an exact distance d, iteration pairs
        (i, i+d) really touch the same element; INDEPENDENT means no pair
        does (checked exhaustively over a window)."""
        result = dim_test(aff(c, o1), aff(c, o2))
        touched = {
            (i1, i2)
            for i1 in range(40)
            for i2 in range(40)
            if c * i1 + o1 == c * i2 + o2
        }
        if isinstance(result, Distance):
            assert all(i2 - i1 == result.d for i1, i2 in touched)
            assert touched or abs(result.d) >= 40
        else:
            assert result is INDEPENDENT
            assert not touched


class TestGCD:
    def test_gcd_rules_out(self):
        # 2i vs 4i+1: parity mismatch
        assert dim_test(aff(2, 0), aff(4, 1)) is INDEPENDENT

    def test_gcd_admits_unknown(self):
        assert dim_test(aff(2, 0), aff(4, 2)) is UNKNOWN

    def test_one_invariant_one_varying(self):
        # x[5] vs x[i]: conflicts whenever i == 5 -> crossing distances
        assert dim_test(aff(0, 5), aff(1, 0)) is UNKNOWN

    def test_banerjee_window(self):
        # i vs 2i + 100 with 0 <= i < 10: ranges [0,9] and [100,118] disjoint
        assert dim_test(aff(1, 0), aff(2, 100), trip_count=10) is INDEPENDENT

    @given(
        st.integers(-4, 4),
        st.integers(-8, 8),
        st.integers(-4, 4),
        st.integers(-8, 8),
    )
    def test_independent_is_sound(self, c1, o1, c2, o2):
        """INDEPENDENT must never be reported when some iteration pair
        conflicts (soundness — the property that keeps transforms legal)."""
        result = dim_test(aff(c1, o1), aff(c2, o2))
        if result is INDEPENDENT:
            for i1 in range(25):
                for i2 in range(25):
                    assert c1 * i1 + o1 != c2 * i2 + o2


class TestSubscriptCombination:
    def test_any_independent_dimension_wins(self):
        s1 = Subscript.of(aff(0, 1), aff(1, 0))
        s2 = Subscript.of(aff(0, 2), aff(1, 0))
        assert subs_test(s1, s2) is INDEPENDENT

    def test_exact_distances_must_agree(self):
        s1 = Subscript.of(aff(1, 0), aff(1, 0))
        s2 = Subscript.of(aff(1, -1), aff(1, -2))
        assert subs_test(s1, s2) is INDEPENDENT

    def test_agreeing_distances_combine(self):
        s1 = Subscript.of(aff(1, 0), aff(1, 0))
        s2 = Subscript.of(aff(1, -2), aff(1, -2))
        assert subs_test(s1, s2) == Distance(2)

    def test_unknown_dim_refined_by_exact_dim(self):
        s1 = Subscript.of(aff(0, 3), aff(1, 0))
        s2 = Subscript.of(aff(0, 3), aff(1, -1))
        assert subs_test(s1, s2) == Distance(1)

    def test_all_unknown_stays_unknown(self):
        s1 = Subscript.of(aff(0, 3))
        s2 = Subscript.of(aff(0, 3))
        assert subs_test(s1, s2) is UNKNOWN

    def test_rank_mismatch_raises(self):
        import pytest

        with pytest.raises(ValueError):
            subs_test(Subscript.linear(), Subscript.of(aff(1, 0), aff(1, 0)))


class TestSymbolicEdgeCases:
    """Symbolic subscript parts: matching symbols cancel exactly; any
    mismatch must fall back to UNKNOWN no matter what the affine parts
    would otherwise prove."""

    def test_ziv_unequal_offsets_with_matching_symbols(self):
        # x[n+5] vs x[n+6]: the symbol cancels, constants differ
        assert dim_test(aff(0, 5, n=1), aff(0, 6, n=1)) is INDEPENDENT

    def test_ziv_unequal_symbolic_coefficients(self):
        # x[n+5] vs x[2n+5]: nothing cancels
        assert dim_test(aff(0, 5, n=1), aff(0, 5, n=2)) is UNKNOWN

    def test_siv_negative_coefficient_distance(self):
        # x[-i] vs x[-i - 2]: conflict at i2 = i1 - 2
        assert dim_test(aff(-1, 0), aff(-1, -2)) == Distance(-2)

    def test_siv_negative_coefficient_scaled(self):
        # x[-2i] vs x[-2i - 4]: conflict at i2 = i1 - 2
        assert dim_test(aff(-2, 0), aff(-2, -4)) == Distance(-2)

    def test_siv_negative_coefficient_nondivisible(self):
        # -2i and -2i + 1 never meet (parity)
        assert dim_test(aff(-2, 0), aff(-2, 1)) is INDEPENDENT

    def test_mismatched_symbols_defeat_siv(self):
        # x[i+n] vs x[i+m]: would be Distance(0) if the symbols matched
        assert dim_test(aff(1, 0, n=1), aff(1, 0, m=1)) is UNKNOWN

    def test_mismatched_symbols_defeat_independence_proof(self):
        # 2i+n vs 2i+m+1: parity would prove INDEPENDENT, but n-m is free
        assert dim_test(aff(2, 0, n=1), aff(2, 1, m=1)) is UNKNOWN

    @given(
        st.integers(-4, 4),
        st.integers(-8, 8),
        st.integers(-4, 4),
        st.integers(-8, 8),
    )
    def test_symbol_mismatch_always_conservative(self, c1, o1, c2, o2):
        """Differing symbolic parts force UNKNOWN — never an exact
        distance, never an independence claim."""
        assert dim_test(aff(c1, o1, n=1), aff(c2, o2, m=1)) is UNKNOWN

    @given(
        st.integers(-4, 4),
        st.integers(-8, 8),
        st.integers(-4, 4),
        st.integers(-8, 8),
        st.integers(-3, 3),
    )
    def test_matching_symbols_cancel_exactly(self, c1, o1, c2, o2, s):
        """A shared symbolic term never changes the verdict: it cancels
        from both sides of the conflict equation."""
        with_sym = dim_test(aff(c1, o1, n=s), aff(c2, o2, n=s))
        without = dim_test(aff(c1, o1), aff(c2, o2))
        assert with_sym == without
