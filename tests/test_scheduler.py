"""Tests for MII bounds, the modulo reservation table, and the iterative
modulo scheduler."""

import pytest

from repro.dependence.analysis import analyze_loop
from repro.ir.builder import LoopBuilder
from repro.ir.operations import Operation, OpKind
from repro.ir.types import ScalarType
from repro.ir.values import VirtualRegister, const_f64
from repro.pipeline.list_schedule import list_schedule_length
from repro.pipeline.mii import edge_delay, minimum_ii, rec_mii, res_mii
from repro.pipeline.reservation import ModuloReservationTable
from repro.pipeline.scheduler import SchedulingError, modulo_schedule
from repro.vectorize.communication import Side
from repro.vectorize.transform import transform_loop

F64 = ScalarType.F64


def lowered(loop, machine, factor=1):
    dep = analyze_loop(loop, machine.vector_length)
    assignment = {op.uid: Side.SCALAR for op in loop.body}
    tr = transform_loop(dep, machine, assignment, factor)
    return tr.loop, analyze_loop(tr.loop, machine.vector_length)


class TestResMII:
    def test_dot_on_toy_machine(self, dot_loop, toy):
        loop, dep = lowered(dot_loop, toy)
        assert res_mii(loop, toy) == 2  # 4 ops over 3 slots

    def test_stream_on_paper_machine(self, stream_loop, paper):
        loop, dep = lowered(stream_loop, paper, factor=2)
        # 6 memory ops over 2 ls units = 3 per 2 iterations
        assert res_mii(loop, paper) == 3


class TestRecMII:
    def test_acyclic_is_one(self, stream_loop, paper):
        loop, dep = lowered(stream_loop, paper)
        # overhead self-edges force only RecMII 1
        assert rec_mii(dep.graph, paper) == 1

    def test_fp_reduction_cycle(self, dot_loop, paper):
        loop, dep = lowered(dot_loop, paper)
        # s = s + t: one fp add (latency 4) at distance 1
        assert rec_mii(dep.graph, paper) == 4

    def test_unrolled_reduction_doubles(self, dot_loop, paper):
        loop, dep = lowered(dot_loop, paper, factor=2)
        assert rec_mii(dep.graph, paper) == 8

    def test_memory_recurrence(self, paper):
        b = LoopBuilder("rec")
        b.array("y", dim_sizes=(2048,))
        t = b.load("y", b.idx(offset=0), name="t")
        u = b.mul(t, const_f64(0.5), name="u")
        b.store("y", b.idx(offset=1), u)
        loop, dep = lowered(b.build(), paper)
        # load(3) + mul(4) + store(1) around a distance-1 cycle
        assert rec_mii(dep.graph, paper) == 8

    def test_minimum_ii_is_max(self, dot_loop, paper):
        loop, dep = lowered(dot_loop, paper)
        mii, res, rec = minimum_ii(loop, dep.graph, paper)
        assert mii == max(res, rec)


class TestReservationTable:
    def _op(self, kind=OpKind.ADD, dtype=F64):
        return Operation(
            kind, dtype, dest=VirtualRegister(f"r{id(object())}", dtype),
            srcs=(const_f64(1.0), const_f64(2.0)),
        )

    def test_place_and_conflict(self, paper):
        mrt = ModuloReservationTable(paper, ii=1)
        a, b, c = self._op(), self._op(), self._op()
        assert mrt.fits(a, 0)
        mrt.place(a, 0)
        assert mrt.fits(b, 0)  # second fp unit
        mrt.place(b, 0)
        assert not mrt.fits(c, 0)  # both fp units busy at II=1... slots remain

    def test_wraparound(self, paper):
        mrt = ModuloReservationTable(paper, ii=2)
        a = self._op()
        mrt.place(a, 5)
        b = self._op()
        mrt.place(b, 1)
        c = self._op()
        # cycles 1, 3, 5... all map to row 1: both fp units now busy there
        assert not mrt.fits(c, 3)
        assert mrt.fits(c, 2)

    def test_remove_frees_cells(self, paper):
        mrt = ModuloReservationTable(paper, ii=1)
        a, b = self._op(), self._op()
        mrt.place(a, 0)
        mrt.place(b, 0)
        mrt.remove(a.uid)
        assert mrt.fits(self._op(), 0)

    def test_eviction_returns_holders(self, paper):
        mrt = ModuloReservationTable(paper, ii=1)
        a, b, c = self._op(), self._op(), self._op()
        mrt.place(a, 0)
        mrt.place(b, 0)
        evicted = mrt.place_evicting(c, 0)
        assert len(evicted) == 1
        assert evicted < {a.uid, b.uid}

    def test_blocking_reservation_longer_than_ii_rejected(self, paper):
        div = Operation(
            OpKind.DIV, F64, dest=VirtualRegister("d", F64),
            srcs=(const_f64(1.0), const_f64(2.0)),
        )
        mrt = ModuloReservationTable(paper, ii=4)
        assert not mrt.fits(div, 0)  # needs 32 consecutive fp cycles


class TestModuloScheduler:
    def test_reaches_resmii_on_simple_loops(self, stream_loop, paper):
        loop, dep = lowered(stream_loop, paper, factor=2)
        schedule = modulo_schedule(loop, dep.graph, paper)
        assert schedule.ii == max(schedule.res_mii, schedule.rec_mii)

    def test_schedule_respects_dependences(self, dot_loop, paper):
        loop, dep = lowered(dot_loop, paper, factor=2)
        schedule = modulo_schedule(loop, dep.graph, paper)
        for edge in dep.graph.edges:
            lhs = schedule.times[edge.dst] + schedule.ii * edge.distance
            rhs = schedule.times[edge.src] + edge_delay(edge, dep.graph, paper)
            assert lhs >= rhs

    def test_schedule_respects_resources(self, paper):
        """Re-place every op into a fresh MRT: must fit."""
        loop, dep = lowered(build_big_loop(), paper, factor=2)
        schedule = modulo_schedule(loop, dep.graph, paper)
        mrt = ModuloReservationTable(paper, schedule.ii)
        for op in sorted(loop.body, key=lambda o: schedule.times[o.uid]):
            assert mrt.fits(op, schedule.times[op.uid])
            mrt.place(op, schedule.times[op.uid])

    def test_stage_count(self, dot_loop, paper):
        loop, dep = lowered(dot_loop, paper)
        schedule = modulo_schedule(loop, dep.graph, paper)
        assert schedule.stage_count >= 2  # load latency forces pipelining

    def test_kernel_rows_cover_all_ops(self, dot_loop, paper):
        loop, dep = lowered(dot_loop, paper)
        schedule = modulo_schedule(loop, dep.graph, paper)
        rows = schedule.kernel_rows()
        assert len(rows) == schedule.ii
        assert sum(len(r) for r in rows) == len(loop.body)

    def test_min_ii_respected(self, stream_loop, paper):
        loop, dep = lowered(stream_loop, paper)
        schedule = modulo_schedule(loop, dep.graph, paper, min_ii=9)
        assert schedule.ii >= 9

    def test_empty_body_rejected(self, paper):
        from repro.dependence.graph import DependenceGraph
        from repro.ir.loop import Loop

        with pytest.raises(SchedulingError):
            modulo_schedule(Loop("empty", ()), DependenceGraph(), paper)

    def test_ii_per_original_iteration(self, dot_loop, paper):
        loop, dep = lowered(dot_loop, paper, factor=2)
        schedule = modulo_schedule(loop, dep.graph, paper)
        assert schedule.ii_per_original_iteration() == schedule.ii / 2


def build_big_loop():
    b = LoopBuilder("big")
    b.array("x", dim_sizes=(2048,))
    b.array("y", dim_sizes=(2048,))
    b.array("z", dim_sizes=(2048,))
    xi = b.load("x", b.idx(), name="xi")
    yi = b.load("y", b.idx(), name="yi")
    acc = b.mul(xi, yi, name="m0")
    for k in range(6):
        acc = b.add(b.mul(acc, xi if k % 2 else yi, name=f"m{k+1}"), acc, name=f"a{k}")
    b.store("z", b.idx(), acc)
    return b.build()


class TestListScheduler:
    def test_respects_latency_chain(self, dot_loop, paper):
        loop, dep = lowered(dot_loop, paper)
        length = list_schedule_length(loop, dep.graph, paper)
        # load(3) -> mul(4) -> add(4) critical path at least
        assert length >= 11

    def test_empty_loop(self, paper):
        from repro.dependence.graph import DependenceGraph
        from repro.ir.loop import Loop

        assert list_schedule_length(Loop("e", ()), DependenceGraph(), paper) == 0

    def test_resource_pressure_extends_makespan(self, paper):
        b = LoopBuilder("wide")
        b.array("x", dim_sizes=(2048,))
        b.array("z", dim_sizes=(2048,))
        vals = [b.load("x", b.idx(offset=k), name=f"v{k}") for k in range(8)]
        acc = vals[0]
        for v in vals[1:]:
            acc = b.add(acc, v)
        b.store("z", b.idx(), acc)
        loop, dep = lowered(b.build(), paper)
        length = list_schedule_length(loop, dep.graph, paper)
        # 8 loads on 2 ls units = 4 issue cycles, then a 7-add chain
        assert length >= 4 + 3 + 7 * 4 - 4
