"""Tests for spill-code insertion under register pressure."""

from dataclasses import replace

import pytest

from repro.compiler.driver import compile_loop
from repro.compiler.strategies import Strategy
from repro.dependence.analysis import analyze_loop
from repro.interp.interpreter import run_loop
from repro.interp.memory import memory_for_loop
from repro.ir.builder import LoopBuilder
from repro.ir.verifier import verify_loop
from repro.machine.configs import paper_machine
from repro.machine.machine import RegisterFiles
from repro.pipeline.scheduler import modulo_schedule
from repro.regalloc.spill import SPILL_PREFIX, insert_spills, spill_candidates
from repro.vectorize.communication import Side
from repro.vectorize.transform import transform_loop


def wide_loop(n_values=8):
    """Many long-lived values: loads early, all consumed late."""
    b = LoopBuilder("pressure")
    b.array("x", dim_sizes=(4096,))
    b.array("z", dim_sizes=(4096,))
    vals = [b.load("x", b.idx(offset=k), name=f"v{k}") for k in range(n_values)]
    acc = vals[0]
    for v in vals[1:]:
        acc = b.add(acc, v)
    b.store("z", b.idx(), acc)
    return b.build()


def schedule_loop(loop, machine, factor=2):
    dep = analyze_loop(loop, machine.vector_length)
    assignment = {op.uid: Side.SCALAR for op in loop.body}
    tr = transform_loop(dep, machine, assignment, factor)
    dep2 = analyze_loop(tr.loop, machine.vector_length)
    schedule = modulo_schedule(tr.loop, dep2.graph, machine)
    return tr.loop, dep2.graph, schedule


class TestCandidates:
    def test_sorted_by_lifetime(self, paper):
        loop, graph, schedule = schedule_loop(wide_loop(), paper)
        candidates = spill_candidates(schedule, graph, "fp")
        assert candidates
        # all candidates belong to the fp file and are not live-outs
        assert all(not r.name.startswith("ptr") for r in candidates)

    def test_live_outs_protected(self, paper, dot_loop):
        loop, graph, schedule = schedule_loop(dot_loop, paper)
        candidates = spill_candidates(schedule, graph, "fp")
        live_out_names = {r.name for r in loop.live_out}
        assert all(c.name not in live_out_names for c in candidates)


class TestInsertSpills:
    def test_store_follows_def_reload_precedes_use(self, paper):
        loop, graph, schedule = schedule_loop(wide_loop(4), paper)
        victim = spill_candidates(schedule, graph, "fp")[0]
        spilled = insert_spills(loop, [victim])
        verify_loop(spilled)
        body = list(spilled.body)
        array = f"{SPILL_PREFIX}{victim.name}"
        assert array in spilled.arrays
        def_idx = next(
            i for i, op in enumerate(body) if op.dest == victim
        )
        store_idx = next(
            i
            for i, op in enumerate(body)
            if op.is_store and op.array == array
        )
        assert store_idx == def_idx + 1
        # every original consumer now reads a reload register
        for op in body:
            if op.array == array:
                continue
            assert victim not in op.registers_read()

    def test_no_victims_identity(self, paper, dot_loop):
        assert insert_spills(dot_loop, []) is dot_loop

    def test_semantics_preserved(self, paper):
        loop = wide_loop(6)
        t_loop, graph, schedule = schedule_loop(loop, paper)
        victims = spill_candidates(schedule, graph, "fp")[:3]
        spilled = insert_spills(t_loop, victims)
        m0 = memory_for_loop(t_loop, seed=5)
        run_loop(t_loop, m0, 0, 20)
        m1 = memory_for_loop(spilled, seed=5)
        run_loop(spilled, m1, 0, 20)
        assert m0.snapshot_user_arrays() == m1.snapshot_user_arrays()


class TestDriverIntegration:
    def _cramped_machine(self, fp_regs):
        return replace(
            paper_machine(), register_files=RegisterFiles(scalar_fp=fp_regs)
        )

    def test_spilling_restores_allocability(self):
        machine = self._cramped_machine(6)
        compiled = compile_loop(wide_loop(10), machine, Strategy.BASELINE)
        unit = compiled.units[0]
        spill_arrays = [
            a for a in unit.transform.loop.arrays if a.startswith(SPILL_PREFIX)
        ]
        # either the II retries solved it, or spills were inserted
        assert unit.allocation.ok or spill_arrays

    def test_spilled_compilation_still_correct(self):
        machine = self._cramped_machine(5)
        loop = wide_loop(10)
        compiled = compile_loop(loop, machine, Strategy.BASELINE)
        ref = memory_for_loop(loop, seed=2)
        run_loop(loop, ref, 0, 31)
        mem = memory_for_loop(loop, seed=2)
        compiled.execute(mem, 31)
        assert ref.snapshot_user_arrays() == mem.snapshot_user_arrays()

    def test_spill_traffic_costs_cycles(self):
        roomy = compile_loop(wide_loop(10), paper_machine(), Strategy.BASELINE)
        cramped = compile_loop(
            wide_loop(10), self._cramped_machine(4), Strategy.BASELINE
        )
        assert cramped.invocation_cycles(200) >= roomy.invocation_cycles(200)


@pytest.fixture
def paper():
    return paper_machine()
