"""Shared fixtures: machines and reference loops."""

from __future__ import annotations

import pytest

from repro.ir.builder import LoopBuilder
from repro.machine.configs import figure1_machine, paper_machine


@pytest.fixture
def paper():
    return paper_machine()


@pytest.fixture
def toy():
    return figure1_machine()


def build_dot_product(n: int = 1024):
    b = LoopBuilder("dot")
    b.array("x", dim_sizes=(n,))
    b.array("y", dim_sizes=(n,))
    s = b.carried("s", 0.0)
    xi = b.load("x", b.idx(), name="xi")
    yi = b.load("y", b.idx(), name="yi")
    t = b.mul(xi, yi, name="t")
    s2 = b.add(s, t, name="s2")
    b.carry("s", s2)
    b.live_out(s2)
    return b.build()


def build_saxpy(n: int = 1024):
    b = LoopBuilder("saxpy")
    b.array("x", dim_sizes=(n,))
    b.array("y", dim_sizes=(n,))
    a = b.carried("a", 2.5)
    xi = b.load("x", b.idx(), name="xi")
    yi = b.load("y", b.idx(), name="yi")
    t = b.mul(a, xi, name="t")
    u = b.add(t, yi, name="u")
    b.store("y", b.idx(), u)
    return b.build()


def build_stream(n: int = 1024):
    """z[i] = x[i] + y[i] — fully parallel, no carried state."""
    b = LoopBuilder("stream")
    b.array("x", dim_sizes=(n,))
    b.array("y", dim_sizes=(n,))
    b.array("z", dim_sizes=(n,))
    xi = b.load("x", b.idx(), name="xi")
    yi = b.load("y", b.idx(), name="yi")
    t = b.add(xi, yi, name="t")
    b.store("z", b.idx(), t)
    return b.build()


@pytest.fixture
def dot_loop():
    return build_dot_product()


@pytest.fixture
def saxpy_loop():
    return build_saxpy()


@pytest.fixture
def stream_loop():
    return build_stream()
