"""Tests for machine descriptions and opcode selection."""

import pytest

from repro.ir.operations import OpKind
from repro.ir.types import ScalarType
from repro.machine.configs import (
    aligned_machine,
    dual_vector_unit_machine,
    free_communication_machine,
    scalar_only_machine,
    wide_vector_machine,
)
from repro.machine.machine import AlignmentPolicy, CommunicationModel
from repro.machine.resources import ResourceClass, ResourceUse

F64 = ScalarType.F64
I64 = ScalarType.I64


def uses_of(machine, kind, dtype=F64, vector=False):
    info = machine.opcode_info_for(kind, dtype, vector)
    return {u.resource for u in info.uses}


class TestResourceClass:
    def test_instances(self):
        rc = ResourceClass("int", 3)
        assert rc.instances() == ["int0", "int1", "int2"]

    def test_count_validated(self):
        with pytest.raises(ValueError):
            ResourceClass("x", 0)

    def test_resource_use_cycles_validated(self):
        with pytest.raises(ValueError):
            ResourceUse("x", 0)


class TestPaperMachine:
    def test_table1_resources(self, paper):
        expect = {"slot": 6, "int": 4, "fp": 2, "ls": 2, "br": 1, "vec": 1, "vmerge": 1}
        assert {r.name: r.count for r in paper.resources} == expect

    def test_table1_latencies(self, paper):
        lat = paper.latencies
        assert (lat.int_alu, lat.int_mul, lat.int_div) == (1, 3, 36)
        assert (lat.fp_alu, lat.fp_mul, lat.fp_div) == (4, 4, 32)
        assert (lat.load, lat.branch) == (3, 1)

    def test_table1_register_files(self, paper):
        rf = paper.register_files
        assert (rf.scalar_int, rf.scalar_fp) == (128, 128)
        assert (rf.vector_int, rf.vector_fp) == (64, 64)
        assert rf.predicate == 64

    def test_scalar_fp_add_uses_fp_unit(self, paper):
        assert uses_of(paper, OpKind.ADD) == {"slot", "fp"}

    def test_scalar_int_add_uses_int_unit(self, paper):
        assert uses_of(paper, OpKind.ADD, I64) == {"slot", "int"}

    def test_vector_arith_uses_vector_unit(self, paper):
        assert uses_of(paper, OpKind.MUL, F64, vector=True) == {"slot", "vec"}

    def test_vector_memory_competes_on_ls(self, paper):
        assert uses_of(paper, OpKind.LOAD, F64, vector=True) == {"slot", "ls"}

    def test_merge_uses_merge_unit(self, paper):
        assert uses_of(paper, OpKind.MERGE, F64, vector=True) == {"slot", "vmerge"}

    def test_overhead_ops(self, paper):
        assert uses_of(paper, OpKind.BUMP, I64) == {"slot", "int"}
        assert uses_of(paper, OpKind.CBR, I64) == {"slot", "br"}

    def test_divide_blocks_unit(self, paper):
        info = paper.opcode_info_for(OpKind.DIV, F64, False)
        fp_use = next(u for u in info.uses if u.resource == "fp")
        assert fp_use.cycles == 32
        assert info.latency == 32

    def test_multiply_is_pipelined(self, paper):
        info = paper.opcode_info_for(OpKind.MUL, F64, False)
        fp_use = next(u for u in info.uses if u.resource == "fp")
        assert fp_use.cycles == 1
        assert info.latency == 4

    def test_pack_rejected_on_through_memory_machine(self, paper):
        with pytest.raises(ValueError):
            paper.opcode_info_for(OpKind.PACK, F64, True)

    def test_transfer_opcodes_through_memory(self, paper):
        to_vec = paper.transfer_opcodes(F64, to_vector=True)
        assert len(to_vec) == 3  # 2 scalar stores + 1 vector load
        assert to_vec[-1] == (OpKind.LOAD, F64, True)
        from_vec = paper.transfer_opcodes(F64, to_vector=False)
        assert from_vec[0] == (OpKind.STORE, F64, True)
        assert len(from_vec) == 3


class TestToyMachine:
    def test_three_slots_only(self, toy):
        names = {r.name for r in toy.resources}
        assert names == {"slot", "vec"}
        assert toy.resource_class("slot").count == 3

    def test_scalar_ops_take_slot_only(self, toy):
        assert uses_of(toy, OpKind.MUL) == {"slot"}
        assert uses_of(toy, OpKind.LOAD) == {"slot"}

    def test_vector_memory_takes_vector_token(self, toy):
        assert uses_of(toy, OpKind.LOAD, vector=True) == {"slot", "vec"}

    def test_free_communication(self, toy):
        assert toy.transfer_opcodes(F64, True) == []
        info = toy.opcode_info_for(OpKind.PACK, F64, True)
        assert info.uses == () and info.latency == 0

    def test_unit_latencies(self, toy):
        assert toy.opcode_info_for(OpKind.MUL, F64, False).latency == 1
        assert toy.opcode_info_for(OpKind.LOAD, F64, False).latency == 1

    def test_no_loop_overhead(self, toy):
        assert not toy.model_loop_overhead


class TestVariants:
    def test_scalar_only_has_no_vectors(self):
        m = scalar_only_machine()
        assert not m.supports_vectors
        with pytest.raises(ValueError):
            m.opcode_info_for(OpKind.ADD, F64, True)

    def test_wide_vector_length(self):
        assert wide_vector_machine(4).vector_length == 4

    def test_dual_vector_units(self):
        m = dual_vector_unit_machine()
        assert m.resource_class("vec").count == 2

    def test_aligned_machine_policy(self):
        assert aligned_machine().alignment is AlignmentPolicy.ASSUME_ALIGNED
        assert not aligned_machine().needs_alignment_merges

    def test_free_comm_machine(self):
        m = free_communication_machine()
        assert m.communication is CommunicationModel.FREE
        assert m.transfer_opcodes(F64, True) == []

    def test_duplicate_resource_names_rejected(self):
        from repro.machine.machine import MachineDescription

        with pytest.raises(ValueError):
            MachineDescription(
                "bad",
                (ResourceClass("slot", 1), ResourceClass("slot", 2)),
                vector_length=2,
            )

    def test_unknown_resource_class_lookup(self, paper):
        with pytest.raises(KeyError):
            paper.resource_class("tpu")
