"""Property-based invariants across the whole pipeline.

These hypothesis tests exercise the system on randomly generated loops
and check the structural guarantees every component promises:

* partition cost never exceeds the all-scalar cost;
* schedules respect every dependence edge and never oversubscribe a
  resource;
* the final II is bounded below by ResMII and RecMII;
* transformation conserves per-original-iteration work for scalar code.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dependence.analysis import analyze_loop
from repro.machine.configs import paper_machine
from repro.pipeline.mii import edge_delay
from repro.pipeline.reservation import ModuloReservationTable
from repro.pipeline.scheduler import modulo_schedule
from repro.vectorize.communication import Side
from repro.vectorize.partition import partition_operations
from repro.vectorize.transform import transform_loop
from repro.workloads.generator import GENERATORS, generate

MACHINE = paper_machine()

loop_strategy = st.builds(
    generate,
    archetype=st.sampled_from(sorted(GENERATORS)),
    seed=st.integers(0, 100_000),
)


@settings(max_examples=25, deadline=None)
@given(loop=loop_strategy)
def test_partition_cost_never_exceeds_scalar(loop):
    dep = analyze_loop(loop, 2)
    result = partition_operations(dep, MACHINE)
    assert result.cost <= result.scalar_cost
    assert result.history == sorted(result.history, reverse=True)


@settings(max_examples=25, deadline=None)
@given(loop=loop_strategy)
def test_partition_respects_vectorizability(loop):
    dep = analyze_loop(loop, 2)
    result = partition_operations(dep, MACHINE)
    for op in loop.body:
        if result.assignment[op.uid] is Side.VECTOR:
            assert dep.is_vectorizable(op)


@settings(max_examples=15, deadline=None)
@given(loop=loop_strategy, factor=st.sampled_from([1, 2]))
def test_schedule_feasibility(loop, factor):
    """Every produced schedule satisfies all dependence edges and fits a
    fresh reservation table — rebuilt from scratch, not trusting the
    scheduler's own bookkeeping."""
    dep = analyze_loop(loop, 2)
    assignment = {op.uid: Side.SCALAR for op in loop.body}
    tr = transform_loop(dep, MACHINE, assignment, factor)
    dep2 = analyze_loop(tr.loop, 2)
    schedule = modulo_schedule(tr.loop, dep2.graph, MACHINE)

    for edge in dep2.graph.edges:
        lhs = schedule.times[edge.dst] + schedule.ii * edge.distance
        rhs = schedule.times[edge.src] + edge_delay(edge, dep2.graph, MACHINE)
        assert lhs >= rhs

    mrt = ModuloReservationTable(MACHINE, schedule.ii)
    for op in sorted(tr.loop.body, key=lambda o: schedule.times[o.uid]):
        assert mrt.fits(op, schedule.times[op.uid])
        mrt.place(op, schedule.times[op.uid])

    assert schedule.ii >= max(schedule.res_mii, schedule.rec_mii)
    assert all(t >= 0 for t in schedule.times.values())


@settings(max_examples=15, deadline=None)
@given(loop=loop_strategy)
def test_selective_transform_work_conservation(loop):
    """The transformed loop performs exactly VL copies of each scalar-side
    operation and one vector op per vector-side operation (plus transfers,
    merges, and overhead)."""
    dep = analyze_loop(loop, 2)
    result = partition_operations(dep, MACHINE)
    tr = transform_loop(dep, MACHINE, result.assignment, 2)
    by_origin: dict[int, int] = {}
    for op in tr.loop.body:
        if op.origin is not None:
            by_origin[op.origin] = by_origin.get(op.origin, 0) + 1
    for op in loop.body:
        side = result.assignment[op.uid]
        expected = 1 if side is Side.VECTOR else 2
        if side is Side.VECTOR and op.kind.is_memory:
            # misaligned vector memory refs carry one merge with them
            assert by_origin[op.uid] in (1, 2)
        else:
            assert by_origin[op.uid] == expected


@settings(max_examples=15, deadline=None)
@given(loop=loop_strategy)
def test_transform_scratch_arrays_match_transfer_count(loop):
    dep = analyze_loop(loop, 2)
    result = partition_operations(dep, MACHINE)
    tr = transform_loop(dep, MACHINE, result.assignment, 2)
    scratch = [a for a in tr.loop.arrays if a.startswith("xfer.")]
    assert len(scratch) == tr.n_transfers
