"""Fast-path equivalence tests: the compile-time optimizations must be
behavior-preserving.

Covered here:

* ``Bins.checkpoint``/``rollback`` restores weights, ledger, high-water
  mark, and the sum-of-squares tie-break state exactly;
* the apply/undo ``TEST-REPARTITION`` probe equals the reference
  deep-copy probe and leaves the live bins untouched;
* :class:`IncrementalPacker`'s resumed pack equals a from-scratch
  ``BIN-PACK`` after every accepted move (via ``REPRO_KL_VERIFY``);
* the FM-style probe cache changes no partition outcome;
* ``edge_delays`` equals per-edge ``edge_delay``;
* the parallel evaluator and the compile cache reproduce serial,
  cold-compile results bit-for-bit, with identical deterministic effort
  counters.
"""

import random

import pytest

from repro.dependence.analysis import analyze_loop
from repro.machine.configs import paper_machine
from repro.pipeline.mii import edge_delay, edge_delays
from repro.vectorize.communication import Side, transfer_for_key
from repro.vectorize.partition import (
    IncrementalPacker,
    PartitionCostModel,
    PartitionConfig,
    partition_operations,
)
from repro.workloads.generator import generate

MACHINE = paper_machine()

ARCHETYPE_SEEDS = [
    ("fp_chain", 3),
    ("stencil", 11),
    ("mixed", 7),
    ("memory_bound", 5),
    ("interleaved", 2),
]


def _dep(archetype, seed):
    return analyze_loop(generate(archetype, seed), MACHINE.vector_length)


def _bins_state(bins):
    return (
        dict(bins.weights),
        {k: list(v) for k, v in bins.reservations.items()},
        bins.high_water_mark(),
        bins.sum_of_squares(),
    )


# ----------------------------------------------------------------------
# Bins journal


def test_checkpoint_rollback_restores_exact_state():
    rng = random.Random(0)
    dep = _dep("mixed", 1)
    model = PartitionCostModel(dep, MACHINE, PartitionConfig())
    assignment = {op.uid: Side.SCALAR for op in dep.loop.body}
    bins = model.bin_pack(assignment)
    before = _bins_state(bins)
    mark = bins.checkpoint()
    ops = list(dep.loop.body)
    for _ in range(30):
        op = rng.choice(ops)
        if rng.random() < 0.5 and bins.has_key(("op", op.uid)):
            bins.release(("op", op.uid))
        else:
            side = rng.choice((Side.SCALAR, Side.VECTOR))
            for info in model.op_opcodes(op, side):
                bins.reserve_least_used(info, ("op", op.uid))
    bins.rollback(mark)
    assert _bins_state(bins) == before


def test_nested_checkpoints_rollback_to_marks():
    dep = _dep("fp_chain", 3)
    model = PartitionCostModel(dep, MACHINE, PartitionConfig())
    assignment = {op.uid: Side.SCALAR for op in dep.loop.body}
    bins = model.bin_pack(assignment)
    op = dep.loop.body[0]
    outer = bins.checkpoint()
    for info in model.op_opcodes(op, Side.VECTOR):
        bins.reserve_least_used(info, ("extra", 1))
    mid = _bins_state(bins)
    inner = bins.checkpoint()
    bins.release(("extra", 1))
    bins.rollback(inner)
    assert _bins_state(bins) == mid
    bins.rollback(outer)
    assert not bins.has_key(("extra", 1))


# ----------------------------------------------------------------------
# Probe protocol


def _reference_probe(model, bins, assignment, op):
    """The pre-fast-path TEST-REPARTITION: deep-copy and re-reserve."""
    probe = bins.copy()
    probe.release(("op", op.uid))
    touched = model.touch_keys[op.uid]
    for key in touched:
        if probe.has_key(("comm", key)):
            probe.release(("comm", key))
    new_side = assignment[op.uid].flipped()
    assignment[op.uid] = new_side
    try:
        probe.reserve_all(model.op_opcodes(op, new_side), ("op", op.uid))
        for key in touched:
            transfer = transfer_for_key(model.dataflow, assignment, key)
            if transfer is None:
                continue
            opcodes = model.transfer_opcodes(transfer)
            if opcodes:
                probe.reserve_all(opcodes, ("comm", key))
    finally:
        assignment[op.uid] = new_side.flipped()
    return probe.high_water_mark()


@pytest.mark.parametrize("archetype,seed", ARCHETYPE_SEEDS)
def test_probe_matches_reference_and_restores_bins(archetype, seed):
    dep = _dep(archetype, seed)
    model = PartitionCostModel(dep, MACHINE, PartitionConfig())
    assignment = {op.uid: Side.SCALAR for op in dep.loop.body}
    bins = model.bin_pack(assignment)
    for op in dep.loop.body:
        if not dep.is_vectorizable(op):
            continue
        before = _bins_state(bins)
        expected = _reference_probe(model, bins, assignment, op)
        got = model.probe_cost(bins, assignment, op)
        assert got == expected
        assert _bins_state(bins) == before


# ----------------------------------------------------------------------
# Resumed packing (the commit path)


@pytest.mark.parametrize("archetype,seed", ARCHETYPE_SEEDS)
def test_packer_repack_equals_fresh_bin_pack(archetype, seed):
    rng = random.Random(seed)
    dep = _dep(archetype, seed)
    model = PartitionCostModel(dep, MACHINE, PartitionConfig())
    assignment = {op.uid: Side.SCALAR for op in dep.loop.body}
    packer = IncrementalPacker(model, assignment)
    flippable = [op for op in dep.loop.body if dep.is_vectorizable(op)]
    if not flippable:
        pytest.skip("archetype generated no vectorizable ops")
    for _ in range(12):
        op = rng.choice(flippable)
        assignment[op.uid] = assignment[op.uid].flipped()
        cost = packer.repack(assignment)
        reference = model.bin_pack(assignment)
        assert packer.bins.weights == reference.weights
        assert packer.bins.reservations == reference.reservations
        assert cost == reference.high_water_mark()


@pytest.mark.parametrize("archetype,seed", ARCHETYPE_SEEDS)
def test_partition_verify_mode_passes(archetype, seed, monkeypatch):
    """REPRO_KL_VERIFY=1 asserts the resumed pack against a reference
    bin-pack after every accepted move of the real KL search."""
    monkeypatch.setenv("REPRO_KL_VERIFY", "1")
    dep = _dep(archetype, seed)
    partition_operations(dep, MACHINE)


# ----------------------------------------------------------------------
# Probe cache


@pytest.mark.parametrize("archetype,seed", ARCHETYPE_SEEDS)
def test_probe_cache_changes_no_outcome(archetype, seed, monkeypatch):
    dep = _dep(archetype, seed)
    monkeypatch.setenv("REPRO_KL_PROBE_CACHE", "0")
    plain = partition_operations(dep, MACHINE)
    monkeypatch.setenv("REPRO_KL_PROBE_CACHE", "1")
    cached = partition_operations(dep, MACHINE)
    assert cached.assignment == plain.assignment
    assert cached.cost == plain.cost
    assert cached.history == plain.history
    assert cached.moves == plain.moves
    assert cached.moves_accepted == plain.moves_accepted
    # Every cache hit replaces exactly one fresh probe.
    assert cached.n_probes + cached.n_probe_cache_hits == plain.n_probes


# ----------------------------------------------------------------------
# Edge-delay table


@pytest.mark.parametrize("archetype,seed", ARCHETYPE_SEEDS)
def test_edge_delays_table_matches_per_edge(archetype, seed):
    dep = _dep(archetype, seed)
    delays = edge_delays(dep.graph, MACHINE)
    assert set(delays) == set(dep.graph.edges)
    for edge in dep.graph.edges:
        assert delays[edge] == edge_delay(edge, dep.graph, MACHINE)


# ----------------------------------------------------------------------
# Evaluation harness: parallel and cached runs


def _loop_signature(evaluator, names):
    return evaluator.loop_metric_rows(names)


def test_parallel_evaluator_matches_serial():
    from repro.evaluation.experiments import Evaluator

    names = ("101.tomcatv",)
    serial = Evaluator()
    parallel = Evaluator(jobs=2)
    assert serial.table2(names) == parallel.table2(names)
    assert _loop_signature(serial, names) == _loop_signature(parallel, names)
    for key, t in serial.telemetry.items():
        p = parallel.telemetry[key]
        assert (t.kl_probes, t.kl_bin_packs, t.sched_attempts) == (
            p.kl_probes,
            p.kl_bin_packs,
            p.sched_attempts,
        )


def test_compile_cache_cold_warm_identical(tmp_path):
    from repro.evaluation.experiments import Evaluator

    names = ("101.tomcatv",)
    cache_dir = str(tmp_path / "ccache")
    cold = Evaluator(compile_cache=cache_dir)
    cold_data = cold.table2(names)
    warm = Evaluator(compile_cache=cache_dir)
    warm_data = warm.table2(names)
    assert cold_data == warm_data
    assert _loop_signature(cold, names) == _loop_signature(warm, names)
    for key, t in cold.telemetry.items():
        w = warm.telemetry[key]
        assert t.cache_hits == 0 and t.cache_misses == t.loops
        assert w.cache_hits == w.loops and w.cache_misses == 0
        # Effort counters ride the cached objects: identical warm or cold.
        assert (t.kl_probes, t.kl_bin_packs, t.kl_pack_steps) == (
            w.kl_probes,
            w.kl_bin_packs,
            w.kl_pack_steps,
        )


def test_cache_key_invariant_to_uid_numbering():
    from repro.compiler.strategies import Strategy
    from repro.evaluation.compile_cache import cache_key
    from repro.workloads.spec import build_benchmark

    first = build_benchmark("101.tomcatv").loops[0].loop
    second = build_benchmark("101.tomcatv").loops[0].loop
    assert [op.uid for op in first.body] != [op.uid for op in second.body]
    assert cache_key(first, MACHINE, Strategy.SELECTIVE) == cache_key(
        second, MACHINE, Strategy.SELECTIVE
    )
    assert cache_key(first, MACHINE, Strategy.SELECTIVE) != cache_key(
        first, MACHINE, Strategy.FULL
    )


def test_effort_gate_flags_counter_growth():
    from repro.evaluation import bench_io

    row = {
        "loops": 1,
        "kl_probes": 100,
        "kl_bin_packs": 5,
        "kl_iterations": 2,
        "kl_repacks": 10,
        "kl_pack_steps": 50,
        "sched_attempts": 3,
    }
    base = {"table2": {"telemetry": {"b": {"selective": dict(row)}}}}
    same = {"table2": {"telemetry": {"b": {"selective": dict(row)}}}}
    assert bench_io.compare_effort(same, base) == []
    worse_row = dict(row, kl_probes=101)
    worse = {"table2": {"telemetry": {"b": {"selective": worse_row}}}}
    regressions = bench_io.compare_effort(worse, base)
    assert [r.metric for r in regressions] == [
        "effort.b.selective.kl_probes"
    ]
