"""Tests for the dataflow optimization passes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import parse_loop
from repro.interp.interpreter import run_loop
from repro.interp.memory import memory_for_loop
from repro.ir.operations import OpKind
from repro.ir.verifier import verify_loop
from repro.opt.pass_manager import optimize_loop
from repro.opt.passes import (
    algebraic_simplification,
    common_subexpression_elimination,
    constant_propagation,
    copy_propagation,
    dead_code_elimination,
    loop_invariant_code_motion,
)
from repro.workloads.generator import GENERATORS, generate


def arith_count(loop):
    return sum(1 for op in loop.body if op.kind.is_arith)


class TestConstantPropagation:
    def test_folds_chains(self):
        loop = parse_loop(
            "array z(64)\ndo i\n c = 2.0 * 3.0\n d = c + 1.0\n z(i) = d\nend"
        )
        out = constant_propagation(loop)
        assert arith_count(out) == 0
        assert len(out.body) == 1  # just the store of a constant

    def test_division_by_zero_not_folded(self):
        loop = parse_loop(
            "array z(64)\ndo i\n c = 1.0 / 0.0\n z(i) = c\nend"
        )
        out = constant_propagation(loop)
        assert any(op.kind is OpKind.DIV for op in out.body)


class TestCopyPropagation:
    def test_copies_removed(self, dot_loop):
        from repro.ir.builder import LoopBuilder

        b = LoopBuilder("c")
        b.array("x", dim_sizes=(64,))
        b.array("z", dim_sizes=(64,))
        t = b.load("x", b.idx(), name="t")
        c1 = b.copy(t, name="c1")
        c2 = b.copy(c1, name="c2")
        b.store("z", b.idx(), c2)
        out = copy_propagation(b.build())
        assert not any(op.kind is OpKind.COPY for op in out.body)
        store = out.body[-1]
        assert store.stored_value.name == "t"


class TestAlgebraicSimplification:
    @pytest.mark.parametrize(
        "expr,expected_arith",
        [
            ("x(i) * 1.0", 0),
            ("x(i) + 0.0", 0),
            ("x(i) - 0.0", 0),
            ("x(i) / 1.0", 0),
            ("1.0 * x(i)", 0),
            ("0.0 + x(i)", 0),
        ],
    )
    def test_identities(self, expr, expected_arith):
        loop = parse_loop(f"array x(64), z(64)\ndo i\n z(i) = {expr}\nend")
        out = algebraic_simplification(loop)
        assert arith_count(out) == expected_arith

    def test_mul_by_two_becomes_add(self):
        loop = parse_loop("array x(64), z(64)\ndo i\n z(i) = x(i) * 2.0\nend")
        out = algebraic_simplification(loop)
        kinds = [op.kind for op in out.body if op.kind.is_arith]
        assert kinds == [OpKind.ADD]


class TestCSE:
    def test_identical_loads_merged(self):
        loop = parse_loop(
            "array x(64), z(64)\ndo i\n z(i) = x(i) + x(i)\nend"
        )
        out = common_subexpression_elimination(loop)
        assert sum(1 for op in out.body if op.is_load) == 1

    def test_commutative_normalization(self):
        loop = parse_loop(
            "array x(64), y(64), z(64), w(64)\ndo i\n"
            " z(i) = x(i) + y(i)\n w(i) = y(i) + x(i)\nend"
        )
        out = common_subexpression_elimination(loop)
        assert sum(1 for op in out.body if op.kind is OpKind.ADD) == 1

    def test_store_kills_loads(self):
        loop = parse_loop(
            "array x(64), z(64), w(64)\ndo i\n"
            " a = x(i)\n x(i) = a * 2.0\n b = x(i)\n z(i) = a\n w(i) = b\nend"
        )
        out = common_subexpression_elimination(loop)
        # The second x(i) load must survive: a store intervened.
        assert sum(1 for op in out.body if op.is_load) == 2

    def test_sub_not_commuted(self):
        loop = parse_loop(
            "array x(64), y(64), z(64), w(64)\ndo i\n"
            " z(i) = x(i) - y(i)\n w(i) = y(i) - x(i)\nend"
        )
        out = common_subexpression_elimination(loop)
        assert sum(1 for op in out.body if op.kind is OpKind.SUB) == 2


class TestDCE:
    def test_dead_chain_removed(self):
        loop = parse_loop(
            "array x(64), z(64)\ndo i\n"
            " dead1 = x(i) * 3.0\n dead2 = dead1 + 1.0\n z(i) = x(i)\nend"
        )
        out = dead_code_elimination(loop)
        assert arith_count(out) == 0

    def test_reduction_kept_via_carried_exit(self, dot_loop):
        out = dead_code_elimination(dot_loop)
        assert len(out.body) == len(dot_loop.body)

    def test_live_out_kept(self):
        loop = parse_loop(
            "array x(64)\ndo i\n v = x(i) * 2.0\nend\nresult v"
        )
        out = dead_code_elimination(loop)
        assert arith_count(out) == 1


class TestLICM:
    def test_invariant_expression_hoisted(self):
        loop = parse_loop(
            "array x(64), z(64)\nparam a = 2.0\ndo i\n"
            " c = a * a\n z(i) = x(i) + c\nend"
        )
        out = loop_invariant_code_motion(loop)
        assert len(out.preheader) == 1
        assert arith_count(out) == 1

    def test_transitive_hoisting(self):
        loop = parse_loop(
            "array x(64), z(64)\nparam a = 2.0\ndo i\n"
            " c = a * a\n d = c + a\n z(i) = x(i) + d\nend"
        )
        out = loop_invariant_code_motion(loop)
        assert len(out.preheader) == 2

    def test_invariant_load_hoisted_when_array_readonly(self):
        loop = parse_loop(
            "array t(8), x(64), z(64)\ndo i\n z(i) = x(i) + t(3)\nend"
        )
        out = loop_invariant_code_motion(loop)
        assert any(op.is_load for op in out.preheader)

    def test_invariant_load_not_hoisted_when_array_written(self):
        loop = parse_loop(
            "array t(8), x(64)\ndo i\n v = t(3)\n t(5) = x(i) + v\nend"
        )
        out = loop_invariant_code_motion(loop)
        assert not out.preheader

    def test_varying_op_not_hoisted(self, dot_loop):
        out = loop_invariant_code_motion(dot_loop)
        assert not out.preheader


class TestPipeline:
    def test_fixpoint_and_verification(self):
        loop = parse_loop(
            """
            array x(128), z(128)
            param a = 2.0
            do i
                c = 3.0 * 2.0
                t = x(i) * y0
                u = x(i) * y0
                dead = t * 9.0
                v = t + u
                w = v * 1.0
                q = a * a
                z(i) = w + c + q
            end
            """.replace("y0", "x(i)")
        )
        out = optimize_loop(loop)
        verify_loop(out)
        assert len(out.body) < len(loop.body)

    @settings(max_examples=15, deadline=None)
    @given(
        archetype=st.sampled_from(sorted(GENERATORS)),
        seed=st.integers(0, 5000),
    )
    def test_pipeline_preserves_semantics(self, archetype, seed):
        loop = generate(archetype, seed)
        out = optimize_loop(loop)
        verify_loop(out)
        m0 = memory_for_loop(loop, seed=5)
        r0 = run_loop(loop, m0, 0, 30)
        m1 = memory_for_loop(out, seed=5)
        r1 = run_loop(out, m1, 0, 30)
        assert m0.snapshot_user_arrays() == m1.snapshot_user_arrays()
        assert r0.carried == r1.carried
