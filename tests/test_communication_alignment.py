"""Tests for communication accounting and alignment modeling."""

import pytest

from repro.dependence.analysis import analyze_loop
from repro.ir.builder import LoopBuilder
from repro.ir.types import ScalarType
from repro.machine.configs import aligned_machine
from repro.machine.machine import AlignmentPolicy
from repro.vectorize.alignment import merge_overhead_opcodes, reference_is_misaligned
from repro.vectorize.communication import (
    Side,
    dataflow_of,
    transfer_cost_opcodes,
    transfer_for_key,
    transfer_keys_touching,
    transfers_for,
)

from dataclasses import replace


class TestDataflow:
    def test_consumers_map(self, dot_loop):
        dep = analyze_loop(dot_loop, 2)
        df = dataflow_of(dep)
        load_x, load_y, mul, add = dot_loop.body
        assert df.consumers[load_x.uid] == [mul.uid]
        assert df.consumers[mul.uid] == [add.uid]
        assert df.consumers[add.uid] == []

    def test_carried_consumers(self, dot_loop):
        dep = analyze_loop(dot_loop, 2)
        df = dataflow_of(dep)
        (entry,) = df.carried_consumers
        assert entry.name == "s"

    def test_constant_carried_detected(self, saxpy_loop):
        dep = analyze_loop(saxpy_loop, 2)
        df = dataflow_of(dep)
        assert any(r.name == "a" for r in df.constant_carried)


class TestTransfers:
    def test_no_transfer_when_same_side(self, dot_loop):
        dep = analyze_loop(dot_loop, 2)
        df = dataflow_of(dep)
        assignment = {op.uid: Side.SCALAR for op in dot_loop.body}
        assert transfers_for(df, assignment) == []

    def test_vector_to_scalar_direction(self, dot_loop):
        dep = analyze_loop(dot_loop, 2)
        df = dataflow_of(dep)
        assignment = {op.uid: Side.SCALAR for op in dot_loop.body}
        mul = dot_loop.body[2]
        assignment[mul.uid] = Side.VECTOR
        # mul consumes two scalar loads and feeds the scalar add:
        # loads -> mul are two scalar->vector packs; mul -> add is one
        # vector->scalar transfer.
        transfers = transfers_for(df, assignment)
        directions = sorted(t.to_vector for t in transfers)
        assert directions == [False, True, True]

    def test_constant_carried_never_transfers(self, saxpy_loop):
        dep = analyze_loop(saxpy_loop, 2)
        df = dataflow_of(dep)
        assignment = {op.uid: Side.VECTOR if dep.is_vectorizable(op) else Side.SCALAR
                      for op in saxpy_loop.body}
        assert all(
            not (isinstance(t.key, tuple) and t.key[0] == "carried")
            for t in transfers_for(df, assignment)
        )

    def test_transfer_keys_touching(self, dot_loop):
        dep = analyze_loop(dot_loop, 2)
        df = dataflow_of(dep)
        mul = dot_loop.body[2]
        keys = transfer_keys_touching(df, mul)
        load_x, load_y = dot_loop.body[0], dot_loop.body[1]
        assert keys == {mul.uid, load_x.uid, load_y.uid}

    def test_transfer_for_key_matches_full_computation(self, dot_loop):
        dep = analyze_loop(dot_loop, 2)
        df = dataflow_of(dep)
        assignment = {op.uid: Side.SCALAR for op in dot_loop.body}
        assignment[dot_loop.body[2].uid] = Side.VECTOR
        full = {t.key: t for t in transfers_for(df, assignment)}
        for key in full:
            assert transfer_for_key(df, assignment, key) == full[key]

    def test_transfer_cost_through_memory(self, paper):
        from repro.vectorize.communication import Transfer

        t = Transfer(key=1, dtype=ScalarType.F64, to_vector=True)
        infos = transfer_cost_opcodes(paper, t)
        assert len(infos) == 3
        mnemonics = [i.mnemonic for i in infos]
        assert mnemonics == ["store", "store", "vload"]

    def test_transfer_cost_free_machine(self, toy):
        from repro.vectorize.communication import Transfer

        t = Transfer(key=1, dtype=ScalarType.F64, to_vector=True)
        assert transfer_cost_opcodes(toy, t) == []


class TestAlignment:
    def _load(self, loop):
        return loop.body[0]

    def test_assume_misaligned_pays(self, stream_loop, paper):
        assert reference_is_misaligned(paper, stream_loop, self._load(stream_loop))
        assert len(merge_overhead_opcodes(paper, stream_loop, self._load(stream_loop))) == 1

    def test_assume_aligned_free(self, stream_loop):
        machine = aligned_machine()
        assert not reference_is_misaligned(machine, stream_loop, self._load(stream_loop))
        assert merge_overhead_opcodes(machine, stream_loop, self._load(stream_loop)) == []

    def test_analyze_mode_uses_offsets(self, paper):
        machine = replace(paper, alignment=AlignmentPolicy.ANALYZE)
        b = LoopBuilder("al")
        b.array("ev", dim_sizes=(2048,))              # aligned base
        b.array("od", dim_sizes=(2048,), alignment_offset=1)
        a0 = b.load("ev", b.idx(offset=0), name="a0")   # aligned
        a1 = b.load("ev", b.idx(offset=1), name="a1")   # misaligned
        a2 = b.load("od", b.idx(offset=1), name="a2")   # 1+1 = aligned
        b.array("z", dim_sizes=(2048,))
        b.store("z", b.idx(), b.add(b.add(a0, a1), a2))
        loop = b.build()
        assert not reference_is_misaligned(machine, loop, loop.body[0])
        assert reference_is_misaligned(machine, loop, loop.body[1])
        assert not reference_is_misaligned(machine, loop, loop.body[2])

    def test_analyze_mode_symbolic_offset_conservative(self, paper):
        machine = replace(paper, alignment=AlignmentPolicy.ANALYZE)
        b = LoopBuilder("sym")
        b.array("x", dim_sizes=(2048,))
        b.array("z", dim_sizes=(2048,))
        t = b.load("x", b.idx(j=1), name="t")
        b.store("z", b.idx(), t)
        loop = b.build()
        assert reference_is_misaligned(machine, loop, loop.body[0])

    def test_non_memory_op_rejected(self, dot_loop, paper):
        with pytest.raises(ValueError):
            reference_is_misaligned(paper, dot_loop, dot_loop.body[2])
