"""Tests for kernels, the loop generator, and the SPEC corpus."""

import pytest

from repro.dependence.analysis import analyze_loop
from repro.interp.interpreter import run_loop
from repro.interp.memory import memory_for_loop
from repro.ir.verifier import verify_loop
from repro.workloads.generator import ARRAY_ELEMS, GENERATORS, generate
from repro.workloads.kernels import ALL_KERNELS
from repro.workloads.spec import (
    BENCHMARK_NAMES,
    PROFILES,
    build_benchmark,
    build_suite,
)


class TestKernels:
    @pytest.mark.parametrize("name", sorted(ALL_KERNELS))
    def test_kernels_verify_and_run(self, name):
        loop = ALL_KERNELS[name]()
        verify_loop(loop)
        mem = memory_for_loop(loop, seed=1)
        run_loop(loop, mem, 0, 16)

    def test_dot_product_reduction_shape(self):
        loop = ALL_KERNELS["dot_product"]()
        dep = analyze_loop(loop, 2)
        vectorizable = sum(dep.is_vectorizable(op) for op in loop.body)
        assert vectorizable == 3  # loads + mul, not the reduction add

    def test_complex_multiply_has_no_vectorizable_memory(self):
        loop = ALL_KERNELS["complex_multiply"]()
        dep = analyze_loop(loop, 2)
        for op in loop.body:
            if op.kind.is_memory:
                assert not dep.is_vectorizable(op)

    def test_recurrence_cycle_serial(self):
        """Everything on the recurrence cycle stays scalar; only the
        independent input load is vectorizable."""
        loop = ALL_KERNELS["first_order_recurrence"]()
        dep = analyze_loop(loop, 2)
        for op in loop.body:
            if dep.in_cycle(op.uid):
                assert not dep.is_vectorizable(op)
        assert len(dep.vectorizable) <= 1

    def test_shift_kernel_vectorizable_below_shift(self):
        loop = ALL_KERNELS["shift_by_vl"]()
        assert analyze_loop(loop, 4).vectorizable
        assert not analyze_loop(loop, 8).vectorizable


class TestGenerator:
    @pytest.mark.parametrize("archetype", sorted(GENERATORS))
    def test_deterministic(self, archetype):
        a = generate(archetype, seed=42)
        b = generate(archetype, seed=42)
        assert [str(op) for op in a.body] == [str(op) for op in b.body]

    @pytest.mark.parametrize("archetype", sorted(GENERATORS))
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_generated_loops_verify_and_run(self, archetype, seed):
        loop = generate(archetype, seed)
        verify_loop(loop)
        mem = memory_for_loop(loop, seed=seed)
        run_loop(loop, mem, 0, 12)

    def test_unknown_archetype(self):
        with pytest.raises(KeyError):
            generate("quantum", seed=0)

    def test_no_dead_loads_in_fp_chain(self):
        for seed in range(6):
            loop = generate("fp_chain", seed)
            dep = analyze_loop(loop, 2)
            for op in loop.body:
                if op.is_load:
                    assert dep.graph.successors(op.uid), f"dead load in seed {seed}"

    def test_recurrence_cycle_never_vectorizable(self):
        for seed in range(6):
            loop = generate("recurrence", seed)
            dep = analyze_loop(loop, 2)
            for op in loop.body:
                if dep.in_cycle(op.uid):
                    assert not dep.is_vectorizable(op)

    def test_strided_memory_never_vectorizable(self):
        for seed in range(6):
            loop = generate("strided", seed)
            dep = analyze_loop(loop, 2)
            for op in loop.body:
                if op.kind.is_memory:
                    assert not dep.is_vectorizable(op)

    def test_array_sizes_cover_interpreter_range(self):
        for archetype in GENERATORS:
            loop = generate(archetype, seed=5)
            for info in loop.arrays.values():
                assert info.size >= ARRAY_ELEMS


class TestSpecCorpus:
    def test_nine_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 9

    def test_loop_counts_match_table3(self):
        # Table 3 loop counts are the *resource-limited* counts; the
        # profiles additionally include recurrence-bound loops.
        expected_totals = {
            name: sum(p.archetype_counts.values())
            for name, p in PROFILES.items()
        }
        for name in BENCHMARK_NAMES:
            bench = build_benchmark(name)
            assert bench.loop_count == expected_totals[name]

    def test_corpus_deterministic(self):
        a = build_benchmark("101.tomcatv")
        b = build_benchmark("101.tomcatv")
        assert [w.loop.name for w in a.loops] == [w.loop.name for w in b.loops]
        assert [w.trip_count for w in a.loops] == [w.trip_count for w in b.loops]
        assert [w.invocations for w in a.loops] == [w.invocations for w in b.loops]

    def test_trip_counts_in_profile_range(self):
        for name in BENCHMARK_NAMES:
            profile = PROFILES[name]
            bench = build_benchmark(name)
            lo, hi = profile.trip_range
            assert all(lo <= w.trip_count <= hi for w in bench.loops)

    def test_serial_fractions_sane(self):
        for profile in PROFILES.values():
            assert 0.0 <= profile.serial_fraction < 0.5

    def test_all_corpus_loops_verify(self):
        for bench in build_suite(("125.turb3d", "101.tomcatv")):
            for w in bench.loops:
                verify_loop(w.loop)

    def test_turb3d_has_low_trip_counts(self):
        bench = build_benchmark("125.turb3d")
        assert max(w.trip_count for w in bench.loops) <= 16
