"""The shared artifact store: LRU eviction, torn-entry safety, and
concurrent access.

The property under test everywhere: a load returns *the* artifact
stored under its key or a miss — never a torn pickle, never another
key's artifact — no matter how stores, loads, and evictions interleave
across threads of control or processes (the torn-tail discipline of
``tests/test_ledger.py``, applied to the compile cache).
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.service import CompileRequest, compile_one
from repro.compiler.strategies import Strategy
from repro.evaluation.compile_cache import CompileCache
from repro.machine.configs import paper_machine
from repro.observability import recording
from repro.serve.store import ArtifactStore
from repro.workloads.generator import generate

KEYS = ("aa" + "0" * 62, "ab" + "1" * 62, "ba" + "2" * 62)


@pytest.fixture(scope="module")
def artifacts():
    """Three distinct real compiled loops, compiled once per module."""
    machine = paper_machine()
    out = {}
    for key, seed in zip(KEYS, (1, 2, 3)):
        out[key] = compile_one(
            CompileRequest(
                loop=generate("copy_like", seed, f"store_{seed}"),
                machine=machine,
                strategy=Strategy("selective"),
            )
        ).compiled
    return out


def _entry_size(tmp_path, artifacts) -> int:
    probe = CompileCache(str(tmp_path / "probe"))
    probe.store(KEYS[0], artifacts[KEYS[0]])
    return probe.total_bytes()


class TestRoundtripAndTorn:
    def test_roundtrip_counts_hit(self, tmp_path, artifacts):
        cache = CompileCache(str(tmp_path))
        assert cache.load(KEYS[0]) is None
        cache.store(KEYS[0], artifacts[KEYS[0]])
        loaded = cache.load(KEYS[0])
        assert loaded.source.name == artifacts[KEYS[0]].source.name
        assert cache.hits == 1
        assert cache.misses == 1

    def test_torn_entry_reads_as_miss(self, tmp_path, artifacts):
        cache = CompileCache(str(tmp_path))
        cache.store(KEYS[0], artifacts[KEYS[0]])
        path = cache._path(KEYS[0])
        with open(path, "rb") as f:
            whole = f.read()
        with open(path, "wb") as f:
            f.write(whole[: len(whole) // 2])
        assert cache.load(KEYS[0]) is None

    def test_garbage_entry_reads_as_miss(self, tmp_path):
        cache = CompileCache(str(tmp_path))
        path = cache._path(KEYS[1])
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as f:
            f.write(b"not a pickle at all")
        assert cache.load(KEYS[1]) is None

    def test_recorder_sees_cache_traffic(self, tmp_path, artifacts):
        cache = CompileCache(str(tmp_path))
        with recording() as rec:
            cache.load(KEYS[0])
            cache.store(KEYS[0], artifacts[KEYS[0]])
            cache.load(KEYS[0])
        assert rec.counter("compile_cache.misses") == 1
        assert rec.counter("compile_cache.hits") == 1


class TestEviction:
    def test_store_evicts_oldest_beyond_budget(self, tmp_path, artifacts):
        size = _entry_size(tmp_path, artifacts)
        cache = CompileCache(str(tmp_path / "c"), max_bytes=int(2.5 * size))
        cache.store(KEYS[0], artifacts[KEYS[0]])
        cache.store(KEYS[1], artifacts[KEYS[1]])
        os.utime(cache._path(KEYS[0]), (1000, 1000))
        os.utime(cache._path(KEYS[1]), (2000, 2000))
        cache.store(KEYS[2], artifacts[KEYS[2]])
        assert cache.load(KEYS[0]) is None  # oldest went
        assert cache.load(KEYS[1]) is not None
        assert cache.load(KEYS[2]) is not None
        assert cache.evictions == 1
        assert cache.total_bytes() <= cache.max_bytes

    def test_hit_refreshes_recency(self, tmp_path, artifacts):
        size = _entry_size(tmp_path, artifacts)
        cache = CompileCache(str(tmp_path / "c"), max_bytes=int(2.5 * size))
        cache.store(KEYS[0], artifacts[KEYS[0]])
        cache.store(KEYS[1], artifacts[KEYS[1]])
        os.utime(cache._path(KEYS[0]), (1000, 1000))
        os.utime(cache._path(KEYS[1]), (2000, 2000))
        # The hit bumps KEYS[0] ahead of KEYS[1], flipping who survives.
        assert cache.load(KEYS[0]) is not None
        cache.store(KEYS[2], artifacts[KEYS[2]])
        assert cache.load(KEYS[0]) is not None
        assert cache.load(KEYS[1]) is None

    def test_just_stored_key_never_evicted(self, tmp_path, artifacts):
        size = _entry_size(tmp_path, artifacts)
        # Budget below one entry: the newest store must still survive.
        cache = CompileCache(str(tmp_path / "c"), max_bytes=max(1, size // 2))
        for key in KEYS:
            cache.store(key, artifacts[key])
            assert cache.load(key) is not None

    def test_rejects_nonpositive_budget(self, tmp_path):
        with pytest.raises(ValueError):
            CompileCache(str(tmp_path), max_bytes=0)


@settings(deadline=None, max_examples=25)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["store", "load"]), st.sampled_from(KEYS)
        ),
        max_size=12,
    ),
    bounded=st.booleans(),
)
def test_store_behaves_like_a_map_modulo_eviction(ops, bounded, artifacts):
    """Hypothesis: under any store/load interleaving, a load returns the
    exact artifact of its key or a miss; an unbounded cache never
    forgets; a bounded cache stays within budget after every store."""
    with tempfile.TemporaryDirectory() as root:
        size = _entry_size_in(root, artifacts)
        budget = int(2.2 * size) if bounded else None
        cache = CompileCache(os.path.join(root, "c"), max_bytes=budget)
        stored: set[str] = set()
        for op, key in ops:
            if op == "store":
                cache.store(key, artifacts[key])
                stored.add(key)
                if budget is not None:
                    assert cache.total_bytes() <= budget
                assert cache.load(key) is not None
            else:
                got = cache.load(key)
                if got is not None:
                    assert got.source.name == artifacts[key].source.name
                    assert key in stored
                elif budget is None:
                    assert key not in stored


def _entry_size_in(root: str, artifacts) -> int:
    probe = CompileCache(os.path.join(root, "probe"))
    probe.store(KEYS[0], artifacts[KEYS[0]])
    return probe.total_bytes()


def _hammer(directory: str, max_bytes: int | None, seed: int, rounds: int):
    """Child-process body: interleave stores, loads, and (via bounded
    budget) evictions; exit nonzero if any load is torn or wrong."""
    import random

    machine = paper_machine()
    local = {
        key: compile_one(
            CompileRequest(
                loop=generate("copy_like", s, f"store_{s}"),
                machine=machine,
                strategy=Strategy("selective"),
            )
        ).compiled
        for key, s in zip(KEYS, (1, 2, 3))
    }
    cache = CompileCache(directory, max_bytes=max_bytes)
    rng = random.Random(seed)
    for _ in range(rounds):
        key = rng.choice(KEYS)
        if rng.random() < 0.5:
            cache.store(key, local[key])
        else:
            got = cache.load(key)
            if got is not None and got.source.name != local[key].source.name:
                os._exit(17)
    os._exit(0)


@pytest.mark.parametrize("bounded", [False, True])
def test_concurrent_readers_writers_and_eviction(tmp_path, artifacts, bounded):
    """Multiprocess: concurrent stores, loads, and eviction racing reads
    never surface a torn or wrong artifact (each child re-verifies every
    load against its own reference compile)."""
    size = _entry_size(tmp_path, artifacts)
    budget = int(2.2 * size) if bounded else None
    directory = str(tmp_path / "shared")
    ctx = multiprocessing.get_context("fork")
    children = [
        ctx.Process(target=_hammer, args=(directory, budget, seed, 25))
        for seed in (11, 22, 33)
    ]
    for child in children:
        child.start()
    for child in children:
        child.join(timeout=120)
        assert child.exitcode == 0


class TestArtifactStore:
    def test_summary_memo_and_stats(self, tmp_path, artifacts):
        store = ArtifactStore(str(tmp_path))
        request = CompileRequest(
            loop=generate("copy_like", 1, "store_1"),
            machine=paper_machine(),
            strategy=Strategy("selective"),
        )
        key = KEYS[0]
        assert store.get_summary(key, request) is None
        payload = compile_one(request)
        summary = store.put(key, payload)
        assert store.get_summary(key, request) == summary
        assert store.memo_hits == 1
        # A cold store instance rebuilds the summary from disk, equally.
        cold = ArtifactStore(str(tmp_path))
        assert cold.get_summary(key, request) == summary
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["memo_hits"] == 1

    def test_shares_layout_with_compile_cache(self, tmp_path, artifacts):
        """The store and the evaluation cache are the same on-disk
        artifact space: either side reads the other's writes."""
        cache = CompileCache(str(tmp_path))
        cache.store(KEYS[0], artifacts[KEYS[0]])
        store = ArtifactStore(str(tmp_path))
        assert store.load_compiled(KEYS[0]) is not None
        request = CompileRequest(
            loop=generate("copy_like", 1, "store_1"),
            machine=paper_machine(),
            strategy=Strategy("selective"),
        )
        assert store.get_summary(KEYS[0], request) is not None
