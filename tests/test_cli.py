"""Tests for the command-line entry points."""

import pytest

from repro.compiler.__main__ import main as compiler_main
from repro.evaluation.__main__ import main as evaluation_main
from repro.evaluation.report import generate_report, write_report

DSL = """
loop cli_demo
array x(2048), y(2048), z(2048)
carry s = 0.0
do i
    t = x(i) * y(i)
    z(i) = t + x(i)
    s = s + t
end
result s
"""


@pytest.fixture
def dsl_file(tmp_path):
    path = tmp_path / "kernel.loop"
    path.write_text(DSL)
    return str(path)


class TestCompilerCLI:
    def test_default_invocation(self, dsl_file, capsys):
        assert compiler_main([dsl_file]) == 0
        out = capsys.readouterr().out
        assert "selective on paper-vliw" in out
        assert "II/iteration" in out

    def test_all_sections(self, dsl_file, capsys):
        assert compiler_main([dsl_file, "--all", "--trip", "40"]) == 0
        out = capsys.readouterr().out
        assert "dependence analysis" in out
        assert "partition:" in out
        assert "kernel of" in out
        assert "carried s =" in out

    def test_machine_and_strategy_selection(self, dsl_file, capsys):
        assert compiler_main(
            [dsl_file, "--machine", "toy", "--strategy", "traditional"]
        ) == 0
        out = capsys.readouterr().out
        assert "traditional on figure1-toy" in out

    def test_pipeline_listing(self, dsl_file, capsys):
        assert compiler_main([dsl_file, "--pipeline", "--trip", "8"]) == 0
        out = capsys.readouterr().out
        assert "prologue" in out

    def test_stdin_input(self, dsl_file, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(DSL))
        assert compiler_main(["-", "--strategy", "baseline"]) == 0
        assert "baseline on paper-vliw" in capsys.readouterr().out

    def test_optimize_flag(self, dsl_file, capsys):
        assert compiler_main([dsl_file, "--optimize", "--ir"]) == 0

    def test_bad_strategy_rejected(self, dsl_file):
        with pytest.raises(SystemExit):
            compiler_main([dsl_file, "--strategy", "quantum"])

    def test_stats_flag_prints_table(self, dsl_file, capsys):
        assert compiler_main([dsl_file, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "=== compilation statistics ===" in out
        assert "phase wall time" in out
        assert "compile_loop" in out
        assert "modulo_schedule" in out
        assert "kl.moves_evaluated" in out
        assert "kl.moves_accepted" in out
        assert "kl.bin_packs" in out
        assert "sched.ii_attempts" in out
        assert "regalloc.calls" in out

    def test_trace_json_flag_writes_trace(self, dsl_file, capsys, tmp_path):
        import json

        path = tmp_path / "trace.json"
        assert compiler_main([dsl_file, "--trace-json", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"wrote trace to {path}" in out
        trace = json.loads(path.read_text())
        from repro.observability.export import TRACE_SCHEMA_VERSION

        assert trace["schema_version"] == TRACE_SCHEMA_VERSION
        assert trace["spans"][0]["name"] == "compile_loop"
        assert trace["spans"][0]["attrs"]["loop"] == "cli_demo"
        assert any(e["name"] == "kl.converged" for e in trace["events"])
        assert trace["counters"]["sched.loops_scheduled"] >= 1

    def test_no_stats_without_flags(self, dsl_file, capsys):
        assert compiler_main([dsl_file]) == 0
        out = capsys.readouterr().out
        assert "compilation statistics" not in out


class TestEvaluationCLI:
    def test_figure1(self, capsys):
        assert evaluation_main(["figure1", "--no-bench-json"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "1.00" in out

    def test_table_subset(self, capsys):
        assert (
            evaluation_main(
                ["table2", "--benchmarks", "101.tomcatv", "--no-bench-json"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "101.tomcatv" in out and "Selective" in out

    def test_stats_and_trace_flags(self, capsys, tmp_path):
        import json

        path = tmp_path / "eval_trace.json"
        assert (
            evaluation_main(
                [
                    "table2",
                    "--benchmarks",
                    "101.tomcatv",
                    "--no-bench-json",
                    "--stats",
                    "--trace-json",
                    str(path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "=== compilation statistics ===" in out
        assert "kl.moves_evaluated" in out
        trace = json.loads(path.read_text())
        names = {s["name"] for s in trace["spans"]}
        assert "compile_benchmark" in names


class TestReport:
    def test_generate_report_single_benchmark(self):
        text = generate_report(names=("101.tomcatv",))
        assert "## Table 2" in text
        assert "## Table 5" in text
        assert "101.tomcatv" in text
        assert "(1.38)" in text  # paper value rendered alongside

    def test_write_report(self, tmp_path):
        path = tmp_path / "report.md"
        text = write_report(str(path), names=("101.tomcatv",))
        assert path.read_text() == text
