"""Cross-cutting invariants: bounds, idempotence, monotonicity."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.driver import compile_loop
from repro.compiler.strategies import Strategy
from repro.dependence.analysis import analyze_loop
from repro.machine.configs import paper_machine, wide_vector_machine
from repro.interp.interpreter import run_loop
from repro.interp.memory import memory_for_loop
from repro.opt.pass_manager import _fingerprint, optimize_loop
from repro.opt.passes import STANDARD_PASSES
from repro.pipeline.list_schedule import list_schedule_length
from repro.pipeline.mii import res_mii
from repro.simulate.timing import LOOP_SETUP_CYCLES, UnitTiming
from repro.vectorize.communication import Side
from repro.vectorize.transform import transform_loop
from repro.workloads.generator import GENERATORS, generate

MACHINE = paper_machine()

loops = st.builds(
    generate,
    archetype=st.sampled_from(sorted(GENERATORS)),
    seed=st.integers(0, 50_000),
)


@settings(max_examples=20, deadline=None)
@given(loop=loops)
def test_resmii_lower_bounds(loop):
    """ResMII is at least every per-class occupancy bound: total reserved
    cycles of a class divided by its unit count."""
    dep = analyze_loop(loop, 2)
    assignment = {op.uid: Side.SCALAR for op in loop.body}
    lowered = transform_loop(dep, MACHINE, assignment, 1).loop
    value = res_mii(lowered, MACHINE)
    totals: dict[str, int] = {}
    for op in lowered.body:
        for use in MACHINE.opcode_info(op).uses:
            totals[use.resource] = totals.get(use.resource, 0) + use.cycles
    for name, total in totals.items():
        count = MACHINE.resource_class(name).count
        assert value >= math.ceil(total / count)


@settings(max_examples=20, deadline=None)
@given(loop=loops)
def test_list_schedule_bounds(loop):
    """The list schedule is at least as long as both the issue bound and
    the dependence critical path (checked via ResMII as a proxy)."""
    dep = analyze_loop(loop, 2)
    assignment = {op.uid: Side.SCALAR for op in loop.body}
    lowered = transform_loop(dep, MACHINE, assignment, 1)
    dep2 = analyze_loop(lowered.loop, 2)
    length = list_schedule_length(lowered.loop, dep2.graph, MACHINE)
    assert length >= res_mii(lowered.loop, MACHINE)
    # and at least the longest single-op latency
    assert length >= max(
        MACHINE.opcode_info(op).latency for op in lowered.loop.body
    )


@settings(max_examples=15, deadline=None)
@given(loop=loops)
def test_optimizer_idempotent_and_shrinking(loop):
    once = optimize_loop(loop)
    twice = optimize_loop(once)
    assert _fingerprint(once) == _fingerprint(twice)
    assert len(once.body) + len(once.preheader) <= len(loop.body) + len(
        loop.preheader
    )


@settings(max_examples=10, deadline=None)
@given(loop=loops, seed=st.integers(0, 99))
def test_each_pass_individually_sound(loop, seed):
    """Every standard pass, applied alone, preserves semantics."""
    for p in STANDARD_PASSES:
        out = p(loop)
        m0 = memory_for_loop(loop, seed=seed)
        r0 = run_loop(loop, m0, 0, 20)
        m1 = memory_for_loop(out, seed=seed)
        r1 = run_loop(out, m1, 0, 20)
        assert m0.snapshot_user_arrays() == m1.snapshot_user_arrays(), p.__name__
        assert r0.carried == r1.carried, p.__name__


@settings(max_examples=12, deadline=None)
@given(
    ii=st.integers(1, 12),
    stages=st.integers(1, 8),
    factor=st.integers(1, 4),
    cleanup=st.integers(0, 30),
    trips=st.lists(st.integers(0, 200), min_size=2, max_size=6),
)
def test_timing_monotone_per_phase(ii, stages, factor, cleanup, trips):
    """Full monotonicity in the trip count is *not* an invariant — a trip
    just below a multiple of the factor runs entirely in the unpipelined
    cleanup loop and can legitimately cost more than the next multiple.
    What does hold: cost is monotone across multiples of the factor, and
    residual iterations only ever add to the multiple below them."""
    timing = UnitTiming(
        ii=ii,
        stages=stages,
        factor=factor,
        cleanup_cycles=max(cleanup, ii),
        preheader_cycles=0,
    )
    multiples = [timing.invocation_cycles(n * factor) for n in range(8)]
    assert multiples == sorted(multiples)
    for n in sorted(trips):
        base = timing.invocation_cycles((n // factor) * factor)
        assert timing.invocation_cycles(n) >= base
        assert timing.invocation_cycles(n) >= LOOP_SETUP_CYCLES


@settings(max_examples=10, deadline=None)
@given(
    loop=loops,
    trip=st.integers(0, 30),
    seed=st.integers(0, 1000),
)
def test_vl4_machine_equivalence(loop, trip, seed):
    """Vector length 4 exercises deeper lane replication and wider
    vector values end to end."""
    machine = wide_vector_machine(4)
    ref = memory_for_loop(loop, seed=seed)
    expected = run_loop(loop, ref, 0, trip)
    compiled = compile_loop(loop, machine, Strategy.SELECTIVE)
    mem = memory_for_loop(loop, seed=seed)
    result = compiled.execute(mem, trip)
    assert mem.snapshot_user_arrays() == ref.snapshot_user_arrays()
    for name, value in expected.carried.items():
        assert result.carried[name] == value or abs(
            result.carried[name] - value
        ) < 1e-9


# ----------------------------------------------------------------------
# Verifier invariants (duplicate definitions, live-out/carried conflicts)

import pytest

from repro.ir.loop import CarriedScalar, Loop
from repro.ir.operations import Operation, OpKind
from repro.ir.types import ScalarType
from repro.ir.values import Constant, VirtualRegister
from repro.ir.verifier import VerificationError, verify_loop


def test_verifier_rejects_duplicate_register_object():
    t = VirtualRegister("t", ScalarType.F64)
    op = Operation(
        OpKind.COPY, ScalarType.F64, dest=t, srcs=(Constant(1.0, ScalarType.F64),)
    )
    loop = Loop(name="dup", body=(op, op))
    with pytest.raises(VerificationError, match="assigned more than once"):
        verify_loop(loop)


def test_verifier_rejects_duplicate_name_with_different_type():
    """Two SSA defs sharing a name but not a type are still duplicates;
    pure set membership over (name, type) pairs would miss this."""
    t_f = VirtualRegister("t", ScalarType.F64)
    t_i = VirtualRegister("t", ScalarType.I64)
    loop = Loop(
        name="dupname",
        body=(
            Operation(
                OpKind.COPY,
                ScalarType.F64,
                dest=t_f,
                srcs=(Constant(1.0, ScalarType.F64),),
            ),
            Operation(
                OpKind.COPY,
                ScalarType.I64,
                dest=t_i,
                srcs=(Constant(1, ScalarType.I64),),
            ),
        ),
    )
    with pytest.raises(VerificationError, match="defined more than once"):
        verify_loop(loop)


def test_verifier_rejects_liveout_shadowing_carried_exit_type():
    """A live-out register whose name is also a carried exit under a
    different type is ambiguous at loop end and must be rejected."""
    res_f = VirtualRegister("res", ScalarType.F64)
    res_i = VirtualRegister("res", ScalarType.I64)
    body = (
        Operation(
            OpKind.COPY,
            ScalarType.F64,
            dest=res_f,
            srcs=(Constant(2.0, ScalarType.F64),),
        ),
    )
    loop = Loop(
        name="shadow",
        body=body,
        carried=(CarriedScalar(res_i, res_i, 0),),
        live_out=(res_f,),
    )
    with pytest.raises(VerificationError, match="mismatched type"):
        verify_loop(loop)


def test_verifier_accepts_matching_liveout_carried_exit():
    """Sanity: the same shape with consistent types still verifies."""
    res = VirtualRegister("res", ScalarType.F64)
    acc = VirtualRegister("acc", ScalarType.F64)
    body = (
        Operation(
            OpKind.ADD, ScalarType.F64, dest=res, srcs=(acc, Constant(1.0, ScalarType.F64))
        ),
    )
    loop = Loop(
        name="ok",
        body=body,
        carried=(CarriedScalar(acc, res, 0.0),),
        live_out=(res,),
    )
    verify_loop(loop)
