"""A tomcatv-style relaxation stencil through the whole pipeline.

Shows the pieces a compiler engineer would inspect: the dependence graph,
the vectorizability verdicts, the Kernighan-Lin partition trace, the
transformed loop with realignment merges, the modulo schedule, register
pressure, and a functional equivalence check against the untransformed
loop.

Run:  python examples/stencil_pipeline.py
"""

from repro.compiler import Strategy, compile_loop
from repro.dependence import analyze_loop
from repro.interp import memory_for_loop, run_loop
from repro.machine import paper_machine
from repro.vectorize import Side, partition_operations
from repro.workloads.kernels import relaxation


def main() -> None:
    machine = paper_machine()
    loop = relaxation()
    trip = 500

    print("=== source loop ===")
    print(loop)

    dep = analyze_loop(loop, machine.vector_length)
    print("\n=== dependence analysis ===")
    print(f"{len(dep.graph.edges)} edges, {len(dep.sccs)} components")
    for op in loop.body:
        verdict = "vectorizable" if dep.is_vectorizable(op) else "serial"
        print(f"  [{verdict:>12}] {op}")

    print("\n=== selective vectorization ===")
    partition = partition_operations(dep, machine)
    print(f"all-scalar ResMII estimate: {partition.scalar_cost} per "
          f"{machine.vector_length} iterations")
    print(f"selected partition cost:    {partition.cost} "
          f"(after {partition.iterations} Kernighan-Lin iterations, "
          f"trace {partition.history})")
    vectorized = sum(
        1 for s in partition.assignment.values() if s is Side.VECTOR
    )
    print(f"vectorized {vectorized} of {len(loop.body)} operations")

    compiled = compile_loop(loop, machine, Strategy.SELECTIVE)
    unit = compiled.units[0]
    print("\n=== transformed loop ===")
    print(unit.transform.loop)
    print(f"\ntransfers: {unit.transform.n_transfers}, "
          f"merges: {unit.transform.n_merges}")

    print("\n=== modulo schedule ===")
    schedule = unit.schedule
    print(f"II = {schedule.ii} (ResMII {schedule.res_mii}, "
          f"RecMII {schedule.rec_mii}), {schedule.stage_count} stages")
    pressures = {f: p.max_live for f, p in unit.allocation.pressures.items()}
    print(f"register pressure (MaxLive): {pressures}")

    print("\n=== timing vs baseline ===")
    baseline = compile_loop(loop, machine, Strategy.BASELINE)
    b = baseline.invocation_cycles(trip)
    s = compiled.invocation_cycles(trip)
    print(f"baseline  {b} cycles for {trip} iterations")
    print(f"selective {s} cycles  ->  {b / s:.2f}x")

    print("\n=== functional check ===")
    ref = memory_for_loop(loop, seed=9)
    run_loop(loop, ref, 0, trip)
    mem = memory_for_loop(loop, seed=9)
    compiled.execute(mem, trip)
    match = ref.snapshot_user_arrays() == mem.snapshot_user_arrays()
    print(f"memory identical to untransformed execution: {match}")
    assert match


if __name__ == "__main__":
    main()
