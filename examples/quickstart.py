"""Quickstart: write a loop, compile it four ways, compare schedules.

Run:  python examples/quickstart.py
"""

from repro.compiler import ALL_STRATEGIES, compile_loop
from repro.frontend import parse_loop
from repro.interp import memory_for_loop
from repro.machine import paper_machine

SOURCE = """
loop quickstart
array x(4096), y(4096), z(4096)
param alpha = 1.8
carry s = 0.0

do i
    t = alpha * x(i) + y(i)
    u = t * t - x(i)
    z(i) = u
    s = s + t
end

result s
"""


def main() -> None:
    loop = parse_loop(SOURCE)
    machine = paper_machine()
    trip = 1000

    print(loop)
    print()
    print(f"{'strategy':<12} {'II/iter':>8} {'cycles':>8} {'vec ops':>8} "
          f"{'transfers':>9}   s (functional)")
    for strategy in ALL_STRATEGIES:
        compiled = compile_loop(loop, machine, strategy)
        memory = memory_for_loop(loop, seed=42)
        result = compiled.execute(memory, trip)
        print(
            f"{strategy.value:<12} {compiled.ii_per_iteration():>8.2f} "
            f"{compiled.invocation_cycles(trip):>8} "
            f"{compiled.n_vector_ops:>8} {compiled.n_transfers:>9}   "
            f"{result.carried['s']:.6f}"
        )

    print()
    selective = compile_loop(loop, machine, ALL_STRATEGIES[-1])
    print("selective vectorization kernel (one row per cycle):")
    schedule = selective.units[0].schedule
    for cycle, row in enumerate(schedule.kernel_rows()):
        ops = ", ".join(f"{op.mnemonic()}(s{stage})" for op, stage in row)
        print(f"  cycle {cycle}: {ops}")


if __name__ == "__main__":
    main()
