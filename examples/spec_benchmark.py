"""Evaluate one synthetic SPEC benchmark, Table-2 style.

Run:  python examples/spec_benchmark.py [benchmark]
      python examples/spec_benchmark.py 172.mgrid
"""

import sys

from repro.evaluation import Evaluator, PAPER_TABLE2
from repro.workloads.spec import BENCHMARK_NAMES


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "101.tomcatv"
    if name not in BENCHMARK_NAMES:
        raise SystemExit(f"unknown benchmark {name!r}; pick from {BENCHMARK_NAMES}")

    evaluator = Evaluator()
    bench = evaluator.benchmark(name)
    print(f"{name}: {bench.loop_count} loops, "
          f"serial fraction {bench.serial_fraction:.0%}")
    archetypes: dict[str, int] = {}
    for w in bench.loops:
        archetypes[w.archetype] = archetypes.get(w.archetype, 0) + 1
    print("archetype mix:", ", ".join(f"{k}x{v}" for k, v in sorted(archetypes.items())))
    print()

    evaluation = evaluator.evaluate(name)
    paper = PAPER_TABLE2[name]
    print(f"{'strategy':<12} {'speedup':>8}  {'paper':>6}")
    for label in ("traditional", "full", "selective"):
        print(f"{label:<12} {evaluation.speedup(label):>8.2f}  "
              f"{paper[label]:>6.2f}")

    print("\nper-loop selective outcomes (resource-limited loops):")
    better = equal = 0
    for comparison in evaluator.loop_comparisons(name, evaluation):
        if not comparison.resource_limited:
            continue
        outcome = comparison.res_mii_outcome()
        better += outcome == "better"
        equal += outcome == "equal"
    print(f"  ResMII better: {better}, equal: {equal}")


if __name__ == "__main__":
    main()
