"""Watch a software pipeline execute, cycle by cycle.

Compiles a stencil under selective vectorization, prints the kernel and
the unrolled pipeline (prologue / steady state / epilogue), executes the
schedule in the cycle-level simulator, and checks both the produced
memory and the measured makespan against the sequential interpreter and
the closed-form timing model.  Also shows the modulo-variable-expansion
fallback for machines without rotating registers.

Run:  python examples/pipeline_trace.py
"""

from repro.compiler import Strategy, compile_loop
from repro.dependence import analyze_loop
from repro.interp import memory_for_loop, run_loop
from repro.machine import paper_machine
from repro.pipeline import (
    expanded_kernel_listing,
    kernel_listing,
    modulo_variable_expansion,
    pipeline_listing,
)
from repro.simulate import simulate_pipeline
from repro.workloads.kernels import mgrid_resid


def main() -> None:
    machine = paper_machine()
    loop = mgrid_resid()
    compiled = compile_loop(loop, machine, Strategy.SELECTIVE)
    unit = compiled.units[0]
    schedule = unit.schedule

    print(kernel_listing(schedule))
    print()
    print(pipeline_listing(schedule, iterations=4))
    print()

    iterations = 24
    trip = iterations * unit.transform.factor
    memory = memory_for_loop(loop, seed=7)
    run = simulate_pipeline(schedule, memory, iterations)
    print(
        f"simulated {run.iterations} kernel iterations in {run.cycles} "
        f"cycles (issue-slot utilization {run.utilization:.0%})"
    )
    model = (iterations + schedule.stage_count - 1) * schedule.ii
    print(f"timing model predicts {model} cycles "
          f"(measured within {model - run.cycles} cycles)")

    reference = memory_for_loop(loop, seed=7)
    run_loop(loop, reference, 0, trip)
    match = reference.snapshot_user_arrays() == memory.snapshot_user_arrays()
    print(f"memory identical to sequential execution: {match}")
    assert match

    print()
    graph = analyze_loop(unit.transform.loop, machine.vector_length).graph
    mve = modulo_variable_expansion(schedule, graph)
    print(
        f"without rotating registers, modulo variable expansion unrolls "
        f"the kernel x{mve.unroll} and needs {mve.registers_per_file} "
        "architected registers:"
    )
    print()
    listing = expanded_kernel_listing(schedule, graph)
    print("\n".join(listing.splitlines()[:14]))
    print("  ...")


if __name__ == "__main__":
    main()
