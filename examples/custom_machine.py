"""Selective vectorization on machines you define.

The partitioner balances work against whatever resources the machine
description exposes.  This example sweeps machine variants — vector
length, number of vector units, alignment support, communication model —
and shows how the chosen partition shifts: more vector capability pulls
more operations onto the vector side; expensive communication pushes them
back.

Run:  python examples/custom_machine.py
"""

from dataclasses import replace

from repro.compiler import Strategy, compile_loop
from repro.machine import (
    MachineDescription,
    ResourceClass,
    aligned_machine,
    dual_vector_unit_machine,
    free_communication_machine,
    paper_machine,
    wide_vector_machine,
)
from repro.workloads.kernels import relaxation


def mini_dsp() -> MachineDescription:
    """A narrow 3-issue embedded core with one of everything."""
    base = paper_machine()
    return replace(
        base,
        name="mini-dsp",
        resources=(
            ResourceClass("slot", 3),
            ResourceClass("int", 1),
            ResourceClass("fp", 1),
            ResourceClass("ls", 1),
            ResourceClass("br", 1),
            ResourceClass("vec", 1),
            ResourceClass("vmerge", 1),
        ),
    )


def main() -> None:
    loop = relaxation()
    trip = 400
    machines = [
        paper_machine(),
        wide_vector_machine(4),
        dual_vector_unit_machine(),
        aligned_machine(),
        free_communication_machine(),
        mini_dsp(),
    ]
    print(f"kernel: {loop.name} ({len(loop.body)} operations)\n")
    print(f"{'machine':<18} {'VL':>3} {'base II':>8} {'sel II':>7} "
          f"{'speedup':>8} {'vec ops':>8} {'xfers':>6}")
    for machine in machines:
        baseline = compile_loop(loop, machine, Strategy.BASELINE)
        selective = compile_loop(loop, machine, Strategy.SELECTIVE)
        b = baseline.invocation_cycles(trip)
        s = selective.invocation_cycles(trip)
        print(
            f"{machine.name:<18} {machine.vector_length:>3} "
            f"{baseline.ii_per_iteration():>8.2f} "
            f"{selective.ii_per_iteration():>7.2f} "
            f"{b / s:>8.2f} {selective.n_vector_ops:>8} "
            f"{selective.n_transfers:>6}"
        )


if __name__ == "__main__":
    main()
