"""The paper's Figure 1: a dot product on a three-issue machine.

Reproduces the motivating example end to end: plain modulo scheduling
achieves II 2.0, traditional vectorization *degrades* to 3.0 (loop
distribution kills the ILP), full vectorization reaches 1.5, and
selective vectorization — vectorizing exactly one load and the multiply —
reaches the optimal 1.0.

Run:  python examples/motivating_example.py
"""

from repro.compiler import Strategy, compile_loop
from repro.machine import figure1_machine
from repro.vectorize import Side
from repro.workloads.kernels import dot_product


def main() -> None:
    machine = figure1_machine()
    loop = dot_product()
    print(loop)
    print()

    baseline = compile_loop(loop, machine, Strategy.BASELINE, baseline_unroll=1)
    print(f"modulo scheduling      II = {baseline.ii_per_iteration():.1f}")

    for strategy in (Strategy.TRADITIONAL, Strategy.FULL, Strategy.SELECTIVE):
        compiled = compile_loop(loop, machine, strategy)
        layout = ""
        if strategy is Strategy.TRADITIONAL:
            layout = (
                "  ("
                + " then ".join(
                    f"{'vector' if u.transform.n_vector_ops else 'scalar'} loop"
                    f" II={u.ii}"
                    for u in compiled.units
                )
                + ")"
            )
        print(
            f"{strategy.value:<22} II = {compiled.ii_per_iteration():.1f}{layout}"
        )

    selective = compile_loop(loop, machine, Strategy.SELECTIVE)
    print("\nselective partition (Figure 1(f)):")
    assert selective.partition is not None
    for op in loop.body:
        side = selective.partition.assignment[op.uid]
        marker = "VECTOR" if side is Side.VECTOR else "scalar"
        print(f"  [{marker}] {op}")

    print("\nselective kernel:")
    schedule = selective.units[0].schedule
    for cycle, row in enumerate(schedule.kernel_rows()):
        ops = ", ".join(f"{op.mnemonic()}(stage {stage})" for op, stage in row)
        print(f"  cycle {cycle}: {ops}")


if __name__ == "__main__":
    main()
