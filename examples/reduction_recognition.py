"""Reduction recognition (paper Section 6): vectorizing reductions.

A floating-point reduction like the dot product pins every strategy in
the paper to the reduction's recurrence bound: one fp-add latency per
iteration (RecMII 4 on the Table 1 machine).  With reassociation
permitted, the accumulation splits into VL independent partial sums in a
carried vector register, halving the recurrence bound, and the lanes are
combined once when the pipeline drains.

Run:  python examples/reduction_recognition.py
"""

from repro.compiler import Strategy, compile_loop
from repro.dependence import analyze_loop
from repro.interp import memory_for_loop, run_loop
from repro.machine import paper_machine
from repro.vectorize import reassociable_reductions
from repro.workloads.kernels import dot_product, max_abs


def show(loop, machine, trip=5000):
    print(f"=== {loop.name} ===")
    dep = analyze_loop(loop, machine.vector_length)
    recognized = reassociable_reductions(dep)
    for entry, r in recognized.items():
        print(
            f"recognized reduction: {entry} via {r.kind.value} "
            f"(identity {r.identity()})"
        )

    strict = compile_loop(loop, machine, Strategy.SELECTIVE)
    relaxed = compile_loop(
        loop, machine, Strategy.SELECTIVE, allow_reassociation=True
    )
    print(f"strict fp semantics:   II/iter {strict.ii_per_iteration():.2f} "
          f"(RecMII {strict.rec_mii_per_iteration():.2f})")
    print(f"with reassociation:    II/iter {relaxed.ii_per_iteration():.2f} "
          f"(RecMII {relaxed.rec_mii_per_iteration():.2f})")
    s = strict.invocation_cycles(trip)
    r = relaxed.invocation_cycles(trip)
    print(f"speedup from reassociation at N={trip}: {s / r:.2f}x")

    # numeric comparison: the reordered sum differs only by fp rounding
    seq = run_loop(loop, memory_for_loop(loop, seed=1), 0, 999)
    mem = memory_for_loop(loop, seed=1)
    out = relaxed.execute(mem, 999)
    name = loop.carried[0].entry.name
    print(f"sequential {name} = {seq.carried[name]!r}")
    print(f"reassociated {name} = {out.carried[name]!r}")
    print()


def main() -> None:
    machine = paper_machine()
    show(dot_product(), machine)
    show(max_abs(), machine)  # min/max reductions reassociate exactly


if __name__ == "__main__":
    main()
