"""Differential profiling: align two profiles by phase path and report
what changed.

Wall time is noisy (machine load, CPU frequency, allocator luck), so
wall deltas only count when they clear *both* a relative and an absolute
threshold.  Effort counters are deterministic — pure functions of the
corpus and the compiler — so their threshold is exact: any nonzero delta
is real.  That split is what makes "this PR made scheduling 2x slower on
table2" a one-command answer: run ``python -m repro.profiling diff
old.json new.json`` and read the per-phase report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.profiling.profile import PhaseProfile, Profile

#: Wall-time deltas below these thresholds are treated as noise.
DEFAULT_WALL_REL = 0.20  # 20 % relative change, and
DEFAULT_WALL_ABS_MS = 1.0  # at least 1 ms absolute change.


@dataclass
class PhaseDelta:
    """One phase's differences between profile A and profile B."""

    path: str
    a_total_ns: int = 0
    b_total_ns: int = 0
    a_self_ns: int = 0
    b_self_ns: int = 0
    a_calls: int = 0
    b_calls: int = 0
    wall_significant: bool = False
    #: counter -> (a value, b value); only counters that differ.
    counter_deltas: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def total_delta_ns(self) -> int:
        return self.b_total_ns - self.a_total_ns

    @property
    def self_delta_ns(self) -> int:
        return self.b_self_ns - self.a_self_ns

    @property
    def ratio(self) -> float:
        """B total over A total (inf when A is empty)."""
        if self.a_total_ns <= 0:
            return float("inf") if self.b_total_ns > 0 else 1.0
        return self.b_total_ns / self.a_total_ns

    @property
    def has_effort_delta(self) -> bool:
        return bool(self.counter_deltas)

    @property
    def significant(self) -> bool:
        return self.wall_significant or self.has_effort_delta


def wall_significant(
    a_ns: int, b_ns: int, rel: float, abs_ms: float
) -> bool:
    """True when a wall-clock delta clears *both* noise thresholds.

    Shared noise discipline: the profile diff and the dashboard's
    cross-run comparison both gate wall time through this predicate.
    """
    delta = abs(b_ns - a_ns)
    if delta < abs_ms * 1e6:
        return False
    base = max(a_ns, 1)
    return delta / base >= rel


#: Backwards-compatible alias (pre-dashboard name).
_wall_significant = wall_significant


def diff_profiles(
    a: Profile,
    b: Profile,
    *,
    wall_rel: float = DEFAULT_WALL_REL,
    wall_abs_ms: float = DEFAULT_WALL_ABS_MS,
) -> list[PhaseDelta]:
    """Per-phase deltas of ``b`` against ``a``, aligned by phase path.

    Returns one :class:`PhaseDelta` per path present in either profile
    (in A-then-B discovery order); phases absent on one side compare
    against zeros.
    """
    a_phases = a.phases()
    b_phases = b.phases()
    deltas: list[PhaseDelta] = []
    for path in list(a_phases) + [
        p for p in b_phases if p not in a_phases
    ]:
        an: PhaseProfile | None = a_phases.get(path)
        bn: PhaseProfile | None = b_phases.get(path)
        delta = PhaseDelta(
            path=path,
            a_total_ns=an.total_ns if an else 0,
            b_total_ns=bn.total_ns if bn else 0,
            a_self_ns=an.self_ns if an else 0,
            b_self_ns=bn.self_ns if bn else 0,
            a_calls=an.calls if an else 0,
            b_calls=bn.calls if bn else 0,
        )
        delta.wall_significant = _wall_significant(
            delta.a_total_ns, delta.b_total_ns, wall_rel, wall_abs_ms
        )
        names = set(an.counters if an else {}) | set(bn.counters if bn else {})
        for name in sorted(names):
            av = (an.counters.get(name, 0) if an else 0)
            bv = (bn.counters.get(name, 0) if bn else 0)
            if av != bv:
                delta.counter_deltas[name] = (av, bv)
        deltas.append(delta)
    return deltas


def effort_deltas(deltas: list[PhaseDelta]) -> list[PhaseDelta]:
    """The phases whose deterministic effort counters changed at all."""
    return [d for d in deltas if d.has_effort_delta]


def _fmt_ms(ns: int) -> str:
    return f"{ns / 1e6:.3f}"


def _fmt_ratio(ratio: float) -> str:
    if ratio == float("inf"):
        return "new"
    return f"{ratio:.2f}x"


def render_diff(
    deltas: list[PhaseDelta], *, show_all: bool = False
) -> str:
    """Human-readable diff report: significant wall changes first, then
    every effort-counter delta (always shown — they are exact)."""
    lines: list[str] = ["== profile diff (B vs A) =="]

    wall = [d for d in deltas if d.wall_significant or show_all]
    wall.sort(key=lambda d: -abs(d.total_delta_ns))
    if wall:
        lines.append("")
        lines.append(
            f"{'phase':<48} {'A ms':>10} {'B ms':>10} {'delta ms':>10} {'ratio':>7}"
        )
        for d in wall:
            label = (d.path or "(session)")[:48]
            lines.append(
                f"{label:<48} {_fmt_ms(d.a_total_ns):>10} "
                f"{_fmt_ms(d.b_total_ns):>10} "
                f"{_fmt_ms(d.total_delta_ns):>10} {_fmt_ratio(d.ratio):>7}"
            )
    else:
        lines.append("(no wall-time change clears the noise thresholds)")

    effort = effort_deltas(deltas)
    if effort:
        lines.append("")
        lines.append("-- effort deltas (deterministic; any change is real) --")
        for d in effort:
            for name, (av, bv) in sorted(d.counter_deltas.items()):
                sign = "+" if bv >= av else ""
                lines.append(
                    f"  {d.path or '(session)'}: {name} "
                    f"{av} -> {bv} ({sign}{bv - av})"
                )
    n_effort = sum(len(d.counter_deltas) for d in effort)
    lines.append("")
    lines.append(
        f"profile diff: {n_effort} effort counter delta(s) across "
        f"{len(effort)} phase(s), "
        f"{sum(1 for d in deltas if d.wall_significant)} significant "
        f"wall-time change(s)"
    )
    return "\n".join(lines)
