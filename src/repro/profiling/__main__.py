"""CLI for profiles: show, diff, export, check, history.

Examples::

    python -m repro.profiling show profile.json --counters
    python -m repro.profiling diff old.json new.json --fail-on-effort
    python -m repro.profiling export profile.json --format speedscope -o p.speedscope.json
    python -m repro.profiling check profile.json
    python -m repro.profiling history --limit 10
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.profiling.diff import (
    DEFAULT_WALL_ABS_MS,
    DEFAULT_WALL_REL,
    diff_profiles,
    effort_deltas,
    render_diff,
)
from repro.profiling.export import render_tree, to_collapsed, to_speedscope
from repro.profiling.history import (
    DEFAULT_ARTIFACT,
    perf_history,
    render_history,
)
from repro.profiling.profile import check_profile, load_profile


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.profiling",
        description="Inspect, diff, export and audit repro profiles.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser("show", help="render a profile as a text tree")
    show.add_argument("profile", help="profile JSON path")
    show.add_argument("--depth", type=int, default=None, metavar="N")
    show.add_argument(
        "--counters",
        action="store_true",
        help="include per-phase effort counters",
    )
    show.add_argument(
        "--min-ms",
        type=float,
        default=0.0,
        help="hide phases below this total wall time",
    )

    diff = sub.add_parser(
        "diff", help="compare two profiles aligned by phase path"
    )
    diff.add_argument("a", help="baseline profile JSON")
    diff.add_argument("b", help="candidate profile JSON")
    diff.add_argument(
        "--wall-rel",
        type=float,
        default=DEFAULT_WALL_REL,
        help="relative wall-time noise threshold (default %(default)s)",
    )
    diff.add_argument(
        "--wall-abs-ms",
        type=float,
        default=DEFAULT_WALL_ABS_MS,
        help="absolute wall-time noise threshold in ms (default %(default)s)",
    )
    diff.add_argument(
        "--show-all",
        action="store_true",
        help="list every phase's wall times, not just significant ones",
    )
    diff.add_argument(
        "--fail-on-effort",
        action="store_true",
        help="exit 1 if any deterministic effort counter differs",
    )

    export = sub.add_parser(
        "export", help="export a profile for external viewers"
    )
    export.add_argument("profile", help="profile JSON path")
    export.add_argument(
        "--format",
        choices=("speedscope", "collapsed"),
        default="speedscope",
    )
    export.add_argument(
        "-o", "--output", default=None, help="output path (default stdout)"
    )

    check = sub.add_parser(
        "check", help="audit a profile's structural invariants"
    )
    check.add_argument("profile", help="profile JSON path")

    history = sub.add_parser(
        "history",
        help="per-commit effort/wall timeline of the committed benchmark",
    )
    history.add_argument(
        "--artifact",
        default=DEFAULT_ARTIFACT,
        help="artifact path inside the repo (default %(default)s)",
    )
    history.add_argument(
        "--repo", default=".", help="git repository root (default .)"
    )
    history.add_argument(
        "--limit", type=int, default=None, metavar="N", help="newest N commits"
    )
    history.add_argument(
        "--json", action="store_true", help="emit JSON rows instead of a table"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "show":
        profile = load_profile(args.profile)
        print(
            render_tree(
                profile,
                max_depth=args.depth,
                counters=args.counters,
                min_total_ns=int(args.min_ms * 1e6),
            )
        )
        return 0

    if args.command == "diff":
        deltas = diff_profiles(
            load_profile(args.a),
            load_profile(args.b),
            wall_rel=args.wall_rel,
            wall_abs_ms=args.wall_abs_ms,
        )
        print(render_diff(deltas, show_all=args.show_all))
        if args.fail_on_effort and effort_deltas(deltas):
            return 1
        return 0

    if args.command == "export":
        profile = load_profile(args.profile)
        if args.format == "collapsed":
            payload = to_collapsed(profile)
        else:
            payload = json.dumps(to_speedscope(profile), indent=2) + "\n"
        if args.output:
            with open(args.output, "w", encoding="utf-8") as f:
                f.write(payload)
            print(f"wrote {args.format} export to {args.output}")
        else:
            sys.stdout.write(payload)
        return 0

    if args.command == "check":
        problems = check_profile(load_profile(args.profile))
        if problems:
            for problem in problems:
                print(f"PROFILE INVARIANT VIOLATION: {problem}")
            return 1
        print("profile invariants hold")
        return 0

    if args.command == "history":
        rows = perf_history(
            args.repo, args.artifact, limit=args.limit
        )
        if args.json:
            print(
                json.dumps(
                    [row.to_dict() for row in rows], indent=2, sort_keys=True
                )
            )
        else:
            print(render_history(rows))
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
