"""Perf history: the committed benchmark artifact, across git history.

``BENCH_compile_perf.json`` is committed on purpose — its deterministic
effort counters are comparable across machines, so the git history of
the file *is* a compile-cost timeline of the project.  This module walks
that history (``git log`` for the commits touching the artifact, then a
single ``git cat-file --batch`` process fed every ``<sha>:<path>``
request at once) and aggregates it into one row per commit: wall time
(noisy, machine-bound) next to the effort counters (exact).  Exactly two
subprocesses run regardless of history length — the old one-``git
show``-per-commit walk forked O(commits) times.  ``python -m
repro.profiling history`` renders the timeline; a sudden jump in
``kl_pack_steps`` between two commits points the finger long before
anyone notices the wall-clock regression.
"""

from __future__ import annotations

import json
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Callable

DEFAULT_ARTIFACT = "BENCH_compile_perf.json"


def _stderr_warn(message: str) -> None:
    print(f"[history] {message}", file=sys.stderr)

#: Effort counters shown as timeline columns, in display order.
HISTORY_COUNTERS = (
    "sched_attempts",
    "kl_pack_steps",
    "kl_probes",
    "kl_repacks",
)


@dataclass
class CommitPerf:
    """One commit's snapshot of the benchmark artifact."""

    sha: str
    date: str
    subject: str
    loops: int = 0
    wall_s: float = 0.0
    effort: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "sha": self.sha,
            "date": self.date,
            "subject": self.subject,
            "loops": self.loops,
            "wall_s": self.wall_s,
            "effort": dict(sorted(self.effort.items())),
        }


def _git(repo: str, *args: str) -> str:
    result = subprocess.run(
        ["git", "-C", repo, *args],
        capture_output=True,
        text=True,
        check=True,
    )
    return result.stdout


def _cat_file_batch(repo: str, requests: list[str]) -> dict[str, bytes | None]:
    """Resolve every ``<sha>:<path>`` request through one ``git cat-file
    --batch`` subprocess.  Returns request -> blob bytes, or ``None`` for
    objects git reports ``missing`` (e.g. the commit that deleted the
    artifact).  One fork total, however long the history."""
    if not requests:
        return {}
    proc = subprocess.run(
        ["git", "-C", repo, "cat-file", "--batch"],
        input=("\n".join(requests) + "\n").encode("utf-8"),
        capture_output=True,
        check=True,
    )
    out = proc.stdout
    results: dict[str, bytes | None] = {}
    pos = 0
    for request in requests:
        nl = out.index(b"\n", pos)
        header = out[pos:nl].decode("utf-8", "replace")
        pos = nl + 1
        # Header is "<oid> <type> <size>", or the echoed request plus
        # " missing" / " ambiguous" when the object can't be resolved.
        fields = header.split()
        if len(fields) != 3 or not fields[2].isdigit():
            results[request] = None
            continue
        size = int(fields[2])
        results[request] = out[pos : pos + size]
        pos += size + 1  # content plus its trailing newline
    return results


def _artifact_effort(document: dict[str, object]) -> dict[str, int]:
    effort = document.get("effort")
    if isinstance(effort, dict):
        return {str(k): int(v) for k, v in effort.items()}
    # Pre-effort artifact versions: fold the per-benchmark telemetry.
    totals: dict[str, int] = {}
    telemetry = document.get("telemetry")
    if isinstance(telemetry, dict):
        for variants in telemetry.values():
            if not isinstance(variants, dict):
                continue
            for stats in variants.values():
                if not isinstance(stats, dict):
                    continue
                for name, value in stats.items():
                    if isinstance(value, int) and name not in (
                        "loops",
                        "cache_hits",
                        "cache_misses",
                    ):
                        totals[name] = totals.get(name, 0) + value
    return totals


def perf_history(
    repo: str = ".",
    artifact: str = DEFAULT_ARTIFACT,
    *,
    limit: int | None = None,
    warn: Callable[[str], None] | None = None,
) -> list[CommitPerf]:
    """One :class:`CommitPerf` per commit that touched the artifact,
    newest first.

    Commits where the artifact is missing (e.g. the commit that deleted
    it), fails to parse, or carries malformed fields are skipped **with
    a warning** — the timeline survives a briefly broken file and still
    reports every healthy commit.  Pass ``warn`` to capture the
    warnings; the default prints them to stderr.
    """
    warn = warn if warn is not None else _stderr_warn
    log_args = ["log", "--format=%H\x1f%cs\x1f%s", "--follow"]
    if limit is not None:
        log_args.append(f"-n{limit}")
    log_args += ["--", artifact]
    commits: list[tuple[str, str, str]] = []
    for line in _git(repo, *log_args).splitlines():
        sha, _, rest = line.partition("\x1f")
        date, _, subject = rest.partition("\x1f")
        commits.append((sha, date, subject))
    blobs = _cat_file_batch(repo, [f"{sha}:{artifact}" for sha, _, _ in commits])
    rows: list[CommitPerf] = []
    for sha, date, subject in commits:
        raw = blobs.get(f"{sha}:{artifact}")
        if raw is None:
            warn(f"{sha[:8]}: no {artifact} at this commit — skipped")
            continue
        try:
            document = json.loads(raw)
        except json.JSONDecodeError as exc:
            warn(f"{sha[:8]}: unparsable {artifact} ({exc}) — skipped")
            continue
        if not isinstance(document, dict):
            warn(
                f"{sha[:8]}: {artifact} is not a JSON object "
                f"({type(document).__name__}) — skipped"
            )
            continue
        try:
            rows.append(
                CommitPerf(
                    sha=sha,
                    date=date,
                    subject=subject,
                    loops=int(document.get("loops") or 0),
                    wall_s=float(document.get("wall_s") or 0.0),
                    effort=_artifact_effort(document),
                )
            )
        except (TypeError, ValueError) as exc:
            warn(f"{sha[:8]}: malformed {artifact} ({exc}) — skipped")
    return rows


def render_history(rows: list[CommitPerf]) -> str:
    """The per-commit timeline table, newest commit first."""
    if not rows:
        return "(no committed benchmark artifact found in history)"
    counter_cols = [
        name
        for name in HISTORY_COUNTERS
        if any(row.effort.get(name) for row in rows)
    ]
    header = (
        f"{'commit':<9} {'date':<11} {'loops':>5} {'wall s':>8} "
        + " ".join(f"{name:>14}" for name in counter_cols)
    )
    lines = ["== compile-perf history (newest first) ==", header.rstrip()]
    for row in rows:
        cols = " ".join(
            f"{row.effort.get(name, 0):>14}" for name in counter_cols
        )
        lines.append(
            f"{row.sha[:8]:<9} {row.date:<11} {row.loops:>5} "
            f"{row.wall_s:>8.3f} {cols}".rstrip()
            + f"  {row.subject[:48]}"
        )
    prev: CommitPerf | None = None
    deltas: list[str] = []
    for row in reversed(rows):  # oldest -> newest for delta direction
        if prev is not None:
            for name in counter_cols:
                a, b = prev.effort.get(name, 0), row.effort.get(name, 0)
                if a != b:
                    sign = "+" if b >= a else ""
                    deltas.append(
                        f"  {prev.sha[:8]} -> {row.sha[:8]}: {name} "
                        f"{a} -> {b} ({sign}{b - a})"
                    )
        prev = row
    if deltas:
        lines.append("")
        lines.append("-- effort changes between consecutive commits --")
        lines.extend(deltas)
    return "\n".join(lines)
