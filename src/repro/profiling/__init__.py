"""Deterministic hierarchical profiler and perf-attribution tools.

Layered on :mod:`repro.observability`: the recorder's span tree already
carries wall time per phase, and (since trace schema v3) every effort
counter is attributed to the innermost open span.  This package turns
one recording session into a proper call-tree profile and gives it the
standard profiler surfaces:

* :class:`Profile` / :class:`PhaseProfile` — phases merged by path, with
  calls, total/self wall time, and *deterministic effort counters*
  (KL pack steps, scheduler attempts, Bellman-Ford relaxations, checker
  obligations) attributed to the phase that spent them;
* text tree, collapsed-stack (flamegraph.pl) and speedscope-JSON
  exporters (:mod:`repro.profiling.export`);
* a differential profiler aligning two profiles by phase path, with
  noise-aware thresholds on wall time and exact thresholds on effort
  counters (:mod:`repro.profiling.diff`);
* sweep-scale progress telemetry for the evaluation harness
  (:mod:`repro.profiling.progress`);
* a perf-history tool aggregating the committed
  ``BENCH_compile_perf.json`` across git history
  (:mod:`repro.profiling.history`).

CLI: ``python -m repro.profiling {show,diff,export,check,history}``, and
``--profile[=PATH]`` on both the compiler and evaluation CLIs.
"""

from repro.profiling.diff import (
    PhaseDelta,
    diff_profiles,
    effort_deltas,
    render_diff,
)
from repro.profiling.export import (
    render_tree,
    to_collapsed,
    to_speedscope,
)
from repro.profiling.history import CommitPerf, perf_history, render_history
from repro.profiling.profile import (
    EFFORT_COUNTER_MAP,
    PROFILE_SCHEMA_VERSION,
    PhaseProfile,
    Profile,
    check_profile,
    load_profile,
    write_profile,
)
from repro.profiling.progress import ProgressMonitor

__all__ = [
    "CommitPerf",
    "EFFORT_COUNTER_MAP",
    "PROFILE_SCHEMA_VERSION",
    "PhaseDelta",
    "PhaseProfile",
    "Profile",
    "ProgressMonitor",
    "check_profile",
    "diff_profiles",
    "effort_deltas",
    "load_profile",
    "perf_history",
    "render_diff",
    "render_history",
    "render_tree",
    "to_collapsed",
    "to_speedscope",
    "write_profile",
]
