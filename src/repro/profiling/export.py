"""Profile exporters: text tree, collapsed stacks, speedscope JSON.

* :func:`render_tree` — the human-readable call tree ``--profile``
  prints: per phase calls, total/self wall time, percent of the session,
  and (optionally) the effort counters attributed to the phase.
* :func:`to_collapsed` — ``flamegraph.pl`` input: one
  ``phase;sub;subsub <self-microseconds>`` line per phase.
* :func:`to_speedscope` — a `speedscope <https://www.speedscope.app>`_
  sampled profile: one sample per phase (its full stack) weighted by the
  phase's self time, in nanoseconds.
"""

from __future__ import annotations

from repro.profiling.profile import PhaseProfile, Profile

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def _ms(ns: int) -> str:
    return f"{ns / 1e6:.3f}"


def render_tree(
    profile: Profile,
    *,
    max_depth: int | None = None,
    counters: bool = False,
    min_total_ns: int = 0,
) -> str:
    """The text call tree, children sorted by total time descending."""
    total = max(profile.total_ns, 1)
    lines = [
        "== profile ==",
        f"{'phase':<44} {'calls':>7} {'total ms':>10} {'self ms':>10} {'total %':>8}",
    ]

    def visit(node: PhaseProfile, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        if node.total_ns < min_total_ns:
            return
        label = ("  " * depth + node.name)[:44]
        lines.append(
            f"{label:<44} {node.calls:>7} {_ms(node.total_ns):>10} "
            f"{_ms(node.self_ns):>10} {100.0 * node.total_ns / total:>7.1f}%"
        )
        if counters and node.counters:
            for name, value in sorted(node.counters.items()):
                lines.append("  " * (depth + 1) + f"· {name} = {value}")
        for child in sorted(
            node.children.values(), key=lambda c: -c.total_ns
        ):
            visit(child, depth + 1)

    visit(profile.root, 0)
    return "\n".join(lines)


def to_collapsed(profile: Profile) -> str:
    """Collapsed-stack form (``flamegraph.pl`` input), weights in
    microseconds of self time.  Zero-self phases are omitted — they
    carry no area of their own."""
    lines: list[str] = []

    def visit(node: PhaseProfile, stack: list[str]) -> None:
        frames = stack + [node.name]
        weight_us = node.self_ns // 1000
        if weight_us > 0:
            lines.append(";".join(frames) + f" {weight_us}")
        for child in node.children.values():
            visit(child, frames)

    for child in profile.root.children.values():
        visit(child, [])
    return "\n".join(lines) + ("\n" if lines else "")


def to_speedscope(
    profile: Profile, name: str = "repro compile profile"
) -> dict[str, object]:
    """A speedscope ``sampled`` profile document: one sample per phase,
    weighted by its self time (nanoseconds)."""
    frames: list[dict[str, str]] = []
    frame_index: dict[str, int] = {}

    def frame(frame_name: str) -> int:
        if frame_name not in frame_index:
            frame_index[frame_name] = len(frames)
            frames.append({"name": frame_name})
        return frame_index[frame_name]

    samples: list[list[int]] = []
    weights: list[int] = []

    def visit(node: PhaseProfile, stack: list[int]) -> None:
        frames_here = stack + [frame(node.name)]
        if node.self_ns > 0:
            samples.append(frames_here)
            weights.append(node.self_ns)
        for child in node.children.values():
            visit(child, frames_here)

    for child in profile.root.children.values():
        visit(child, [])

    total = sum(weights)
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "nanoseconds",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        ],
        "exporter": "repro.profiling",
    }
