"""Sweep-scale progress telemetry for long evaluation runs.

A :class:`ProgressMonitor` receives one :meth:`~ProgressMonitor.tick`
per compiled loop (cache hits included) and periodically emits a
heartbeat — a human line to a stream and/or one JSON object per line
appended to a file
  (pass ``stream=sys.stderr`` and/or ``json_path=...``) — carrying:

* loops done / total and percent complete;
* an ETA from a *decaying rate estimate* (exponential moving average of
  per-loop wall time, so the estimate tracks the current compile mix,
  not the run-wide mean);
* compile-cache hit rate so far;
* per-strategy deterministic effort so far (KL pack steps, scheduler
  attempts, ...);
* the stragglers: the slowest loops by compile wall time.

The monitor is fan-out-friendly: under ``--jobs N`` the evaluation
harness ticks as worker results stream back, so heartbeats reflect pool
throughput.  Time is injectable (``clock=``) for deterministic tests.
"""

from __future__ import annotations

import heapq
import json
import time
from typing import Callable, TextIO

#: EMA smoothing: weight of the newest per-loop duration.
DEFAULT_DECAY = 0.2

DEFAULT_INTERVAL_S = 2.0
DEFAULT_STRAGGLERS = 3


def _is_tty(stream: TextIO) -> bool:
    try:
        return bool(stream.isatty())
    except (AttributeError, ValueError, OSError):
        return False


class ProgressMonitor:
    """Heartbeat emitter for a sweep of loop compilations."""

    def __init__(
        self,
        total: int = 0,
        *,
        stream: TextIO | None = None,
        json_path: str | None = None,
        interval_s: float = DEFAULT_INTERVAL_S,
        decay: float = DEFAULT_DECAY,
        stragglers: int = DEFAULT_STRAGGLERS,
        clock: Callable[[], float] = time.monotonic,
        require_tty: bool = False,
    ):
        self.total = total
        self.done = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.effort_by_strategy: dict[str, dict[str, int]] = {}
        self.stream = stream
        #: When set, human heartbeats go to ``stream`` only if it is an
        #: interactive terminal — implicit progress (enabled by
        #: environment rather than an explicit flag) must not pollute
        #: redirected CI logs.  JSON heartbeats are unaffected.
        self.require_tty = require_tty
        self.json_path = json_path
        self.interval_s = interval_s
        self.decay = decay
        self.n_stragglers = stragglers
        self._straggler_heap: list[tuple[float, str]] = []
        self._clock = clock
        self._started = clock()
        self._last_tick = self._started
        self._last_emit = self._started
        self._ema_s: float | None = None
        self.heartbeats = 0

    # ------------------------------------------------------------------

    def add_total(self, n: int) -> None:
        """Grow the expected loop count (batches announce themselves)."""
        self.total += n

    def tick(
        self,
        loop: str,
        strategy: str = "",
        *,
        wall_ms: float = 0.0,
        cache_hit: bool = False,
        effort: dict[str, int] | None = None,
    ) -> None:
        """Record one finished loop compilation and maybe heartbeat."""
        now = self._clock()
        self.done += 1
        if cache_hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        dt = now - self._last_tick
        self._last_tick = now
        if self._ema_s is None:
            self._ema_s = dt
        else:
            self._ema_s = self.decay * dt + (1.0 - self.decay) * self._ema_s
        if effort:
            bucket = self.effort_by_strategy.setdefault(strategy or "?", {})
            for name, value in effort.items():
                bucket[name] = bucket.get(name, 0) + int(value)
        entry = (float(wall_ms), f"{loop}/{strategy}" if strategy else loop)
        heapq.heappush(self._straggler_heap, entry)
        if len(self._straggler_heap) > self.n_stragglers:
            heapq.heappop(self._straggler_heap)
        self.maybe_heartbeat(now)

    # ------------------------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        seen = self.cache_hits + self.cache_misses
        return self.cache_hits / seen if seen else 0.0

    def eta_s(self) -> float | None:
        """Estimated seconds to finish, from the decaying rate estimate."""
        if self._ema_s is None or self.total <= self.done:
            return None
        return (self.total - self.done) * self._ema_s

    def rate_per_s(self) -> float | None:
        if self._ema_s is None or self._ema_s <= 0:
            return None
        return 1.0 / self._ema_s

    def stragglers(self) -> list[tuple[str, float]]:
        """Slowest loops so far: (label, wall_ms), slowest first."""
        return [
            (label, wall_ms)
            for wall_ms, label in sorted(self._straggler_heap, reverse=True)
        ]

    def snapshot(self) -> dict[str, object]:
        """The machine-readable heartbeat payload."""
        eta = self.eta_s()
        rate = self.rate_per_s()
        return {
            "done": self.done,
            "total": self.total,
            "elapsed_s": round(self._clock() - self._started, 3),
            "eta_s": round(eta, 3) if eta is not None else None,
            "rate_per_s": round(rate, 3) if rate is not None else None,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "effort_by_strategy": {
                label: dict(sorted(counters.items()))
                for label, counters in sorted(
                    self.effort_by_strategy.items()
                )
            },
            "stragglers": [
                {"loop": label, "wall_ms": round(wall_ms, 3)}
                for label, wall_ms in self.stragglers()
            ],
        }

    def render_line(self) -> str:
        parts = [f"[progress] {self.done}/{self.total or '?'} loops"]
        if self.total:
            parts[0] += f" ({100.0 * self.done / self.total:.1f}%)"
        rate = self.rate_per_s()
        if rate is not None:
            parts.append(f"{rate:.1f}/s")
        eta = self.eta_s()
        if eta is not None:
            parts.append(f"eta {eta:.0f}s")
        if self.cache_hits or self.cache_misses:
            parts.append(f"cache {100.0 * self.cache_hit_rate:.0f}% hit")
        worst = self.stragglers()
        if worst and worst[0][1] > 0:
            label, wall_ms = worst[0]
            parts.append(f"slowest {label} {wall_ms:.0f}ms")
        return ", ".join(parts)

    # ------------------------------------------------------------------

    def maybe_heartbeat(self, now: float | None = None) -> bool:
        """Emit a heartbeat if the reporting interval has elapsed."""
        now = self._clock() if now is None else now
        if now - self._last_emit < self.interval_s:
            return False
        self._emit(now)
        return True

    def finish(self) -> None:
        """Emit one final heartbeat summarizing the whole sweep."""
        self._emit(self._clock())

    def _emit(self, now: float) -> None:
        self._last_emit = now
        self.heartbeats += 1
        if self.stream is not None and not (
            self.require_tty and not _is_tty(self.stream)
        ):
            print(self.render_line(), file=self.stream, flush=True)
        if self.json_path:
            with open(self.json_path, "a", encoding="utf-8") as f:
                json.dump(self.snapshot(), f, sort_keys=True)
                f.write("\n")
