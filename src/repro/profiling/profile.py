"""The call-tree profile: phases merged by path, wall + effort per phase.

A :class:`Profile` is built from one recorder session
(:meth:`Profile.from_recorder`).  Spans are *merged by phase path*: every
``compile_loop/compile_unit/modulo_schedule`` span in the session folds
into one :class:`PhaseProfile` node accumulating call count, total and
self wall time, and the effort counters attributed to exactly that
phase.  Merging by path is what makes two profiles comparable — the
differential profiler aligns nodes by their unique path.

Wall time is machine noise; the effort counters are not.  They are pure
functions of (loop corpus, machine, compiler version), so two runs of
the same build must agree on them exactly — the property the
``profiling diff`` exact thresholds and the profile-vs-telemetry test
both lean on.

The JSON form (:func:`write_profile` / :func:`load_profile`) is its own
small schema (``repro-profile`` version 1), independent of the trace
schema so a profile stays loadable even as the trace grows new fields.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.observability.recorder import Recorder

PROFILE_SCHEMA_VERSION = 1
PROFILE_KIND = "repro-profile"

#: Root node name: the synthetic parent of the session's top-level spans.
ROOT_NAME = "(session)"

#: CompileTelemetry field -> recorder counter carrying the same effort.
#: The profile's per-phase attribution of each counter must sum exactly
#: to the flat telemetry total (verified by tests/test_profiling.py).
EFFORT_COUNTER_MAP = {
    "kl_iterations": "kl.iterations",
    "kl_probes": "kl.moves_evaluated",
    "kl_probe_cache_hits": "kl.probe_cache_hits",
    "kl_bin_packs": "kl.bin_packs",
    "kl_repacks": "kl.repacks",
    "kl_pack_steps": "kl.pack_steps",
    "sched_attempts": "sched.ii_attempts",
}


@dataclass
class PhaseProfile:
    """One phase (unique by path) of the merged call tree."""

    name: str
    path: str
    calls: int = 0
    total_ns: int = 0
    self_ns: int = 0
    counters: dict[str, int] = field(default_factory=dict)
    children: dict[str, "PhaseProfile"] = field(default_factory=dict)

    def child(self, name: str) -> "PhaseProfile":
        node = self.children.get(name)
        if node is None:
            child_path = f"{self.path}/{name}" if self.path else name
            node = self.children[name] = PhaseProfile(name, child_path)
        return node

    def walk(self):
        """This node and every descendant, preorder."""
        yield self
        for child in self.children.values():
            yield from child.walk()

    def cumulative_counters(self) -> dict[str, int]:
        """Self counters plus every descendant's, by name."""
        totals: dict[str, int] = {}
        for node in self.walk():
            for name, value in node.counters.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "path": self.path,
            "calls": self.calls,
            "total_ns": self.total_ns,
            "self_ns": self.self_ns,
            "counters": dict(sorted(self.counters.items())),
            "children": [c.to_dict() for c in self.children.values()],
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "PhaseProfile":
        node = cls(
            name=str(data["name"]),
            path=str(data["path"]),
            calls=int(data["calls"]),  # type: ignore[arg-type]
            total_ns=int(data["total_ns"]),  # type: ignore[arg-type]
            self_ns=int(data["self_ns"]),  # type: ignore[arg-type]
            counters={
                str(k): int(v)
                for k, v in dict(data.get("counters") or {}).items()
            },
        )
        for child_data in data.get("children") or []:  # type: ignore[union-attr]
            child = cls.from_dict(child_data)
            node.children[child.name] = child
        return node


@dataclass
class Profile:
    """One session's merged call-tree profile.

    ``root`` is a synthetic node whose children are the session's
    top-level phases; counters recorded while *no* span was open land on
    the root itself, so :meth:`counter_totals` always reproduces the
    session's flat counter registry exactly.
    """

    root: PhaseProfile
    meta: dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_recorder(cls, recorder: Recorder) -> "Profile":
        root = PhaseProfile(ROOT_NAME, "")
        root.calls = 1
        for span in recorder.tracer.roots:
            _merge_span(root, span)
        root.total_ns = sum(c.total_ns for c in root.children.values())
        # Counters the attribution missed (recorded outside any span, or
        # with tracing disabled) stay on the root so flat totals are
        # always recoverable from the tree alone.
        attributed = root.cumulative_counters()
        for name, flat in sorted(recorder.stats.counters.items()):
            missing = flat - attributed.get(name, 0)
            if missing:
                root.counters[name] = root.counters.get(name, 0) + missing
        return cls(root=root)

    def walk(self):
        yield from self.root.walk()

    def phases(self) -> dict[str, PhaseProfile]:
        """Every node keyed by its unique phase path (root at ``""``)."""
        return {node.path: node for node in self.walk()}

    def counter_totals(self) -> dict[str, int]:
        """Flat counter totals recovered from the per-phase attribution."""
        return self.root.cumulative_counters()

    @property
    def total_ns(self) -> int:
        return self.root.total_ns

    def self_ns_sum(self) -> int:
        """Sum of self times over every phase (== total, by construction)."""
        return sum(node.self_ns for node in self.walk())

    def to_dict(self) -> dict[str, object]:
        return {
            "schema_version": PROFILE_SCHEMA_VERSION,
            "kind": PROFILE_KIND,
            "meta": dict(self.meta),
            "root": self.root.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Profile":
        if data.get("kind") != PROFILE_KIND:
            raise ValueError(
                f"not a {PROFILE_KIND} document (kind={data.get('kind')!r})"
            )
        version = data.get("schema_version")
        if version != PROFILE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported profile schema_version {version!r} "
                f"(expected {PROFILE_SCHEMA_VERSION})"
            )
        return cls(
            root=PhaseProfile.from_dict(data["root"]),  # type: ignore[arg-type]
            meta=dict(data.get("meta") or {}),  # type: ignore[call-overload]
        )


def _merge_span(parent: PhaseProfile, span) -> None:
    node = parent.child(span.name)
    node.calls += 1
    node.total_ns += span.duration_ns
    node.self_ns += span.self_ns
    for name, value in span.counters.items():
        node.counters[name] = node.counters.get(name, 0) + value
    for child in span.children:
        _merge_span(node, child)


def write_profile(profile: Profile, path: str) -> str:
    with open(path, "w", encoding="utf-8") as f:
        json.dump(profile.to_dict(), f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def load_profile(source: str | dict[str, object]) -> Profile:
    if isinstance(source, str):
        with open(source, encoding="utf-8") as f:
            source = json.load(f)
    return Profile.from_dict(source)


def check_profile(profile: Profile) -> list[str]:
    """Structural invariants every profile must satisfy; returns the
    violations (empty = sound).

    * self times are the total minus the children's totals, so the self
      sum over the whole tree equals the root total exactly;
    * no phase has negative self time (children cannot outlast their
      parent) or negative counters;
    * every child total is contained in its parent's total.
    """
    problems: list[str] = []
    if profile.self_ns_sum() != profile.total_ns:
        problems.append(
            f"self-time sum {profile.self_ns_sum()} ns != "
            f"total {profile.total_ns} ns"
        )
    for node in profile.walk():
        label = node.path or ROOT_NAME
        if node.self_ns < 0:
            problems.append(f"{label}: negative self time {node.self_ns} ns")
        child_total = sum(c.total_ns for c in node.children.values())
        if child_total > node.total_ns:
            problems.append(
                f"{label}: children total {child_total} ns exceeds "
                f"phase total {node.total_ns} ns"
            )
        for name, value in node.counters.items():
            if value < 0:
                problems.append(f"{label}: negative counter {name}={value}")
    return problems
