"""Affine array subscripts.

Memory operations address arrays through affine functions of the loop
induction variable: ``coeff * i + offset + sum(sym_coeff * sym)`` where the
``sym`` terms are loop-invariant symbolic values (outer-loop indices,
runtime parameters).  Keeping subscripts in this closed form — rather than
as explicit address arithmetic — is what makes exact dependence testing
possible; explicit addressing operations are materialized later, during
lowering to machine operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AffineExpr:
    """``coeff * i + offset + sum(symbols[name] * name)``."""

    coeff: int = 0
    offset: int = 0
    symbols: tuple[tuple[str, int], ...] = field(default=())

    def __post_init__(self) -> None:
        # Normalize: sorted, no zero coefficients.
        syms = tuple(sorted((n, c) for n, c in self.symbols if c != 0))
        object.__setattr__(self, "symbols", syms)

    @staticmethod
    def of(coeff: int = 0, offset: int = 0, **symbols: int) -> AffineExpr:
        return AffineExpr(coeff, offset, tuple(symbols.items()))

    @property
    def is_constant(self) -> bool:
        return self.coeff == 0 and not self.symbols

    @property
    def is_loop_invariant(self) -> bool:
        """True when the subscript does not vary with the loop index."""
        return self.coeff == 0

    @property
    def has_symbols(self) -> bool:
        return bool(self.symbols)

    def shifted(self, delta: int) -> AffineExpr:
        """The subscript for iteration ``i + delta``: substitutes i := i + delta."""
        return AffineExpr(self.coeff, self.offset + self.coeff * delta, self.symbols)

    def plus(self, delta: int) -> AffineExpr:
        """The subscript displaced by a constant number of elements."""
        return AffineExpr(self.coeff, self.offset + delta, self.symbols)

    def symbols_match(self, other: AffineExpr) -> bool:
        return self.symbols == other.symbols

    def evaluate(self, i: int, env: dict[str, int] | None = None) -> int:
        value = self.coeff * i + self.offset
        for name, c in self.symbols:
            if env is None or name not in env:
                raise KeyError(f"no binding for symbolic subscript term {name!r}")
            value += c * env[name]
        return value

    def __str__(self) -> str:
        parts: list[str] = []
        if self.coeff == 1:
            parts.append("i")
        elif self.coeff == -1:
            parts.append("-i")
        elif self.coeff != 0:
            parts.append(f"{self.coeff}*i")
        for name, c in self.symbols:
            if c == 1:
                parts.append(name)
            elif c == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{c}*{name}")
        if self.offset != 0 or not parts:
            parts.append(str(self.offset))
        out = parts[0]
        for p in parts[1:]:
            out += f" - {p[1:]}" if p.startswith("-") else f" + {p}"
        return out


@dataclass(frozen=True)
class Subscript:
    """A (possibly multi-dimensional) array subscript.

    Dimensions are listed from outermost to innermost; ``dims[-1]`` is the
    fastest-varying (unit-stride) dimension for Fortran-style layouts we
    model.  Contiguity for vectorization is judged on the last dimension.
    """

    dims: tuple[AffineExpr, ...]

    @staticmethod
    def of(*dims: AffineExpr) -> Subscript:
        return Subscript(tuple(dims))

    @staticmethod
    def linear(coeff: int = 1, offset: int = 0, **symbols: int) -> Subscript:
        return Subscript((AffineExpr.of(coeff, offset, **symbols),))

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def innermost(self) -> AffineExpr:
        return self.dims[-1]

    @property
    def is_unit_stride(self) -> bool:
        """Unit stride in the innermost dimension, invariant elsewhere."""
        if self.dims[-1].coeff != 1:
            return False
        return all(d.coeff == 0 for d in self.dims[:-1])

    @property
    def is_loop_invariant(self) -> bool:
        return all(d.coeff == 0 for d in self.dims)

    def shifted(self, delta: int) -> Subscript:
        return Subscript(tuple(d.shifted(delta) for d in self.dims))

    def plus_innermost(self, delta: int) -> Subscript:
        return Subscript(self.dims[:-1] + (self.dims[-1].plus(delta),))

    def evaluate(
        self,
        i: int,
        dim_sizes: tuple[int, ...],
        env: dict[str, int] | None = None,
    ) -> int:
        """Flat element index for iteration ``i`` (row-major over ``dims``)."""
        if len(dim_sizes) != self.rank:
            raise ValueError(
                f"subscript rank {self.rank} does not match array rank {len(dim_sizes)}"
            )
        flat = 0
        for expr, size in zip(self.dims, dim_sizes):
            flat = flat * size + expr.evaluate(i, env)
        return flat

    def __str__(self) -> str:
        return "[" + ", ".join(str(d) for d in self.dims) + "]"
