"""Scalar and vector types for the loop IR.

The machine modeled in the paper operates on 64-bit integer and floating
point data, with 128-bit vector registers holding two 64-bit elements.
We keep the type system small but explicit so that opcode selection,
register-file accounting, and the interpreter can all dispatch on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ScalarType(enum.Enum):
    """Element types supported by the IR."""

    I64 = "i64"
    F64 = "f64"
    PRED = "pred"

    @property
    def is_integer(self) -> bool:
        return self is ScalarType.I64

    @property
    def is_float(self) -> bool:
        return self is ScalarType.F64

    @property
    def bits(self) -> int:
        return 1 if self is ScalarType.PRED else 64

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class VectorType:
    """A short vector of ``length`` elements of type ``element``."""

    element: ScalarType
    length: int

    def __post_init__(self) -> None:
        if self.length < 2:
            raise ValueError(f"vector length must be >= 2, got {self.length}")

    @property
    def bits(self) -> int:
        return self.element.bits * self.length

    def __str__(self) -> str:
        return f"<{self.length} x {self.element}>"


IRType = ScalarType | VectorType


def is_vector_type(ty: IRType) -> bool:
    return isinstance(ty, VectorType)


def element_type(ty: IRType) -> ScalarType:
    """The scalar element type of ``ty`` (identity for scalars)."""
    return ty.element if isinstance(ty, VectorType) else ty
