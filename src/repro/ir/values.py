"""Values that flow between IR operations.

Operands are either virtual registers (produced by operations, loop
induction variables, or loop-carried scalars) or compile-time constants.
Virtual registers are identified by name; the IR is register-based rather
than strictly SSA, but the builder enforces single assignment within a
loop body, which is all the backend passes require.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.types import IRType, ScalarType, VectorType, is_vector_type


@dataclass(frozen=True)
class VirtualRegister:
    """A named virtual register of a given type."""

    name: str
    type: IRType

    @property
    def is_vector(self) -> bool:
        return is_vector_type(self.type)

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Constant:
    """A compile-time scalar constant."""

    value: int | float
    type: ScalarType

    def __post_init__(self) -> None:
        if self.type is ScalarType.I64 and not isinstance(self.value, int):
            raise TypeError(f"i64 constant must be int, got {self.value!r}")

    def __str__(self) -> str:
        return repr(self.value)


Operand = VirtualRegister | Constant


def const_i64(value: int) -> Constant:
    return Constant(value, ScalarType.I64)


def const_f64(value: float) -> Constant:
    return Constant(float(value), ScalarType.F64)


def operand_type(operand: Operand) -> IRType:
    return operand.type


def lane_register(reg: VirtualRegister, lane: int) -> VirtualRegister:
    """The scalar register standing for ``lane`` of a replicated value.

    Loop transformation replicates scalar operations ``VL`` times; each
    replica defines a lane-suffixed register derived from the original.
    """
    ty = reg.type
    if isinstance(ty, VectorType):
        ty = ty.element
    return VirtualRegister(f"{reg.name}.l{lane}", ty)


def vector_register(reg: VirtualRegister, length: int) -> VirtualRegister:
    """The vector register standing for the vectorized form of ``reg``."""
    if isinstance(reg.type, VectorType):
        return reg
    return VirtualRegister(f"{reg.name}.v", VectorType(reg.type, length))
