"""The loop container.

The unit of compilation throughout the system is a single innermost
counted loop (a Fortran ``do`` loop) without control flow — exactly the
loops to which the paper applies selective vectorization and modulo
scheduling.  The loop iterates ``i = 0 .. N-1`` with unit step; ``N`` is
supplied at interpretation/timing time.

Loop-carried scalars (reductions, recurrences) are modeled explicitly: a
:class:`CarriedScalar` names the register that holds the incoming value at
the top of each iteration, the operand whose end-of-iteration value is
carried to the next iteration, and the initial value.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.ir.operations import Operation
from repro.ir.types import ScalarType
from repro.ir.values import Operand, VirtualRegister


@dataclass(frozen=True)
class ArrayInfo:
    """A named array the loop reads or writes.

    ``dim_sizes`` are concrete extents used by the interpreter to flatten
    multi-dimensional subscripts (row-major).  ``alignment_offset`` is the
    array base's offset, in elements, from the nearest vector-aligned
    boundary; it participates in alignment analysis when the machine
    requires aligned vector memory operations.
    """

    name: str
    dtype: ScalarType
    dim_sizes: tuple[int, ...]
    alignment_offset: int = 0

    @property
    def size(self) -> int:
        total = 1
        for s in self.dim_sizes:
            total *= s
        return total


@dataclass(frozen=True)
class CarriedScalar:
    """A scalar value carried from one iteration to the next."""

    entry: VirtualRegister
    exit: Operand
    init: int | float

    @property
    def is_self_carried(self) -> bool:
        return self.entry == self.exit


@dataclass(frozen=True)
class Loop:
    """An innermost counted loop: preheader + straight-line body."""

    name: str
    body: tuple[Operation, ...]
    arrays: dict[str, ArrayInfo] = field(default_factory=dict)
    carried: tuple[CarriedScalar, ...] = ()
    live_out: tuple[VirtualRegister, ...] = ()
    preheader: tuple[Operation, ...] = ()
    increment: int = 1
    # Default bindings for symbolic subscript terms (outer-loop indices,
    # runtime parameters).  Dependence analysis still treats symbols as
    # unknown — these are interpreter/simulator defaults only.
    symbols: dict[str, int] = field(default_factory=dict)
    # Expected dynamic trip count, when known (workload profiles, CLI
    # --trip).  Purely informational — compilation never depends on it —
    # but it makes printed dumps self-contained.
    trip_count: int | None = None

    def defined_registers(self) -> set[VirtualRegister]:
        defs = {op.dest for op in self.body if op.dest is not None}
        defs.update(op.dest for op in self.preheader if op.dest is not None)
        return defs

    def definition_of(self, reg: VirtualRegister) -> Operation | None:
        for op in self.body:
            if op.dest == reg:
                return op
        return None

    def carried_entries(self) -> set[VirtualRegister]:
        return {c.entry for c in self.carried}

    def carried_for_entry(self, reg: VirtualRegister) -> CarriedScalar | None:
        for c in self.carried:
            if c.entry == reg:
                return c
        return None

    def op_by_uid(self, uid: int) -> Operation:
        for op in self.body:
            if op.uid == uid:
                return op
        raise KeyError(f"no operation with uid {uid} in loop {self.name!r}")

    def with_body(self, body: tuple[Operation, ...]) -> Loop:
        return replace(self, body=body)

    @property
    def memory_ops(self) -> tuple[Operation, ...]:
        return tuple(op for op in self.body if op.kind.is_memory)

    def __str__(self) -> str:
        from repro.ir.printer import format_loop

        return format_loop(self)
