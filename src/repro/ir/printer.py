"""Textual rendering of loops and operations for debugging and docs."""

from __future__ import annotations

from repro.ir.loop import Loop


def format_loop(loop: Loop) -> str:
    trip = str(loop.trip_count) if loop.trip_count is not None else "symbolic"
    lines = [f"loop {loop.name} (i += {loop.increment}, trip {trip}):"]
    for info in loop.arrays.values():
        dims = "x".join(str(d) for d in info.dim_sizes)
        extra = (
            f" align+{info.alignment_offset}" if info.alignment_offset else ""
        )
        lines.append(f"  array {info.name}: {info.dtype}[{dims}]{extra}")
    for c in loop.carried:
        lines.append(
            f"  carried {c.entry}: {c.entry.type} = {c.init}; "
            f"next <- {c.exit}"
        )
    if loop.preheader:
        lines.append("  preheader:")
        for op in loop.preheader:
            lines.append(f"    {op}")
    lines.append("  body:")
    for op in loop.body:
        lines.append(f"    {op}")
    if loop.live_out:
        outs = ", ".join(str(r) for r in loop.live_out)
        lines.append(f"  live-out: {outs}")
    return "\n".join(lines)
