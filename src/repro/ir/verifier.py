"""Structural and type invariants for loop IR.

Passes may assume any loop they receive has passed :func:`verify_loop`;
every transformation re-verifies its output in tests.
"""

from __future__ import annotations

from repro.ir.loop import Loop
from repro.ir.operations import Operation, OpKind
from repro.ir.types import ScalarType
from repro.ir.values import VirtualRegister


class VerificationError(Exception):
    """The loop violates an IR invariant."""


def verify_loop(loop: Loop) -> None:
    defined: set[VirtualRegister] = set()
    defined_names: dict[str, VirtualRegister] = {}
    available: set[VirtualRegister] = set(loop.carried_entries())

    for op in loop.preheader:
        _verify_op(loop, op, available, defined, defined_names)
    for op in loop.body:
        _verify_op(loop, op, available, defined, defined_names)

    for c in loop.carried:
        if isinstance(c.exit, VirtualRegister):
            if c.exit not in available:
                raise VerificationError(
                    f"carried exit {c.exit} of {c.entry} is never defined"
                )
            if c.exit.type != c.entry.type:
                raise VerificationError(
                    f"carried scalar {c.entry} type mismatch with exit {c.exit}"
                )

    for reg in loop.live_out:
        if reg not in available:
            raise VerificationError(f"live-out register {reg} is never defined")
        for c in loop.carried:
            if (
                isinstance(c.exit, VirtualRegister)
                and c.exit.name == reg.name
                and c.exit.type != reg.type
            ):
                raise VerificationError(
                    f"live-out register {reg} is also the carried exit of "
                    f"{c.entry} with mismatched type {c.exit.type}"
                )

    if loop.increment < 1:
        raise VerificationError(f"loop increment must be >= 1, got {loop.increment}")


def _verify_op(
    loop: Loop,
    op: Operation,
    available: set[VirtualRegister],
    defined: set[VirtualRegister],
    defined_names: dict[str, VirtualRegister],
) -> None:
    for src in op.registers_read():
        if src not in available:
            raise VerificationError(f"operation {op} reads undefined register {src}")

    if op.kind.is_memory:
        info = loop.arrays.get(op.array or "")
        if info is None:
            raise VerificationError(f"operation {op} references undeclared array")
        if op.subscript is None or op.subscript.rank != len(info.dim_sizes):
            raise VerificationError(
                f"operation {op} subscript rank does not match array {info.name!r}"
            )
        elem = info.dtype
        if op.dtype != elem:
            raise VerificationError(
                f"operation {op} dtype {op.dtype} does not match array "
                f"element type {elem}"
            )
        if op.is_store:
            value = op.stored_value
            stored_elem = (
                value.type.element
                if not isinstance(value.type, ScalarType)
                else value.type
            )
            if stored_elem != elem:
                raise VerificationError(
                    f"store {op} value type {value.type} does not match "
                    f"array element type {elem}"
                )

    if op.kind.is_arith and op.kind is not OpKind.CVT:
        for src in op.srcs:
            src_elem = (
                src.type.element
                if not isinstance(src.type, ScalarType)
                else src.type
            )
            if src_elem != op.dtype:
                raise VerificationError(
                    f"operation {op} operand {src} type does not match {op.dtype}"
                )

    if op.dest is not None:
        if op.dest in defined:
            raise VerificationError(f"register {op.dest} assigned more than once")
        previous = defined_names.get(op.dest.name)
        if previous is not None:
            # Same SSA name under a different type is still a duplicate
            # definition (set membership alone would miss it).
            raise VerificationError(
                f"register name {op.dest.name!r} defined more than once "
                f"(as {previous.type} and {op.dest.type})"
            )
        if op.dest in loop.carried_entries():
            raise VerificationError(
                f"register {op.dest} is a carried-scalar entry and cannot be "
                "a destination"
            )
        dest_elem = (
            op.dest.type.element
            if not isinstance(op.dest.type, ScalarType)
            else op.dest.type
        )
        if dest_elem != op.dtype:
            raise VerificationError(
                f"operation {op} destination type does not match opcode dtype"
            )
        defined.add(op.dest)
        defined_names[op.dest.name] = op.dest
        available.add(op.dest)
