"""Loop intermediate representation.

The IR models exactly what the paper's backend pass consumes: an innermost
counted loop of straight-line operations over virtual registers and
affine-subscripted arrays, with explicit loop-carried scalars.
"""

from repro.ir.builder import LoopBuilder
from repro.ir.loop import ArrayInfo, CarriedScalar, Loop
from repro.ir.operations import Operation, OpKind
from repro.ir.printer import format_loop
from repro.ir.subscripts import AffineExpr, Subscript
from repro.ir.types import IRType, ScalarType, VectorType, element_type, is_vector_type
from repro.ir.values import (
    Constant,
    Operand,
    VirtualRegister,
    const_f64,
    const_i64,
    lane_register,
    vector_register,
)
from repro.ir.verifier import VerificationError, verify_loop

__all__ = [
    "AffineExpr",
    "ArrayInfo",
    "CarriedScalar",
    "Constant",
    "IRType",
    "Loop",
    "LoopBuilder",
    "Operand",
    "Operation",
    "OpKind",
    "ScalarType",
    "Subscript",
    "VectorType",
    "VerificationError",
    "VirtualRegister",
    "const_f64",
    "const_i64",
    "element_type",
    "format_loop",
    "is_vector_type",
    "lane_register",
    "vector_register",
    "verify_loop",
]
