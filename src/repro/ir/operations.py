"""IR operations.

A loop body is a straight-line sequence of operations.  Each operation has
an opcode kind, an element data type, at most one destination register and
a tuple of source operands.  Memory operations additionally name an array
and carry an affine :class:`~repro.ir.subscripts.Subscript`.

Three *overhead* kinds — ``BUMP`` (address-pointer increment), ``IVINC``
(induction-variable increment) and ``CBR`` (loop-back compare-and-branch) —
are materialized during lowering.  They have no dataflow semantics visible
to the interpreter but consume real machine resources, which is how the
paper's loop-control and addressing costs enter the schedule.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace

from repro.ir.subscripts import Subscript
from repro.ir.types import ScalarType
from repro.ir.values import Operand, VirtualRegister


class OpKind(enum.Enum):
    # Arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    NEG = "neg"
    ABS = "abs"
    MIN = "min"
    MAX = "max"
    SQRT = "sqrt"
    COPY = "copy"
    CVT = "cvt"  # int <-> float conversion
    # Memory
    LOAD = "load"
    STORE = "store"
    # Vector-register data movement (misalignment support)
    MERGE = "merge"
    # Direct scalar<->vector register moves — only emitted on machines
    # with a free communication model (the Figure 1 example)
    PACK = "pack"
    EXTRACT = "extract"
    # Loop overhead (materialized during lowering)
    BUMP = "bump"
    IVINC = "ivinc"
    CBR = "cbr"

    @property
    def is_memory(self) -> bool:
        return self in (OpKind.LOAD, OpKind.STORE)

    @property
    def is_arith(self) -> bool:
        return self in _ARITH_KINDS

    @property
    def is_overhead(self) -> bool:
        return self in (OpKind.BUMP, OpKind.IVINC, OpKind.CBR)

    @property
    def arity(self) -> int:
        return _ARITY[self]

    @property
    def has_dest(self) -> bool:
        return self not in (OpKind.STORE, OpKind.CBR)

    @property
    def is_commutative(self) -> bool:
        return self in (OpKind.ADD, OpKind.MUL, OpKind.MIN, OpKind.MAX)


_ARITH_KINDS = frozenset(
    {
        OpKind.ADD,
        OpKind.SUB,
        OpKind.MUL,
        OpKind.DIV,
        OpKind.NEG,
        OpKind.ABS,
        OpKind.MIN,
        OpKind.MAX,
        OpKind.SQRT,
        OpKind.COPY,
        OpKind.CVT,
    }
)

_ARITY: dict[OpKind, int] = {
    OpKind.ADD: 2,
    OpKind.SUB: 2,
    OpKind.MUL: 2,
    OpKind.DIV: 2,
    OpKind.NEG: 1,
    OpKind.ABS: 1,
    OpKind.MIN: 2,
    OpKind.MAX: 2,
    OpKind.SQRT: 1,
    OpKind.COPY: 1,
    OpKind.CVT: 1,
    OpKind.LOAD: 0,
    OpKind.STORE: 1,
    OpKind.MERGE: 2,
    OpKind.PACK: -1,  # variable: one source per lane
    OpKind.EXTRACT: 1,
    OpKind.BUMP: 0,
    OpKind.IVINC: 0,
    OpKind.CBR: 0,
}

_op_ids = itertools.count()


def _next_op_id() -> int:
    return next(_op_ids)


@dataclass(frozen=True)
class Operation:
    """A single IR operation.

    ``uid`` uniquely identifies the operation across the whole process so
    that dependence graphs and schedules can key on operations directly.
    ``origin``/``lane`` record provenance through loop transformation: the
    ``uid`` of the source-loop operation an emitted operation implements,
    and which lane of it (for replicated scalars).
    """

    kind: OpKind
    dtype: ScalarType
    dest: VirtualRegister | None = None
    srcs: tuple[Operand, ...] = ()
    array: str | None = None
    subscript: Subscript | None = None
    is_vector: bool = False
    uid: int = field(default_factory=_next_op_id)
    origin: int | None = None
    lane: int | None = None

    def __post_init__(self) -> None:
        if self.kind.arity >= 0 and len(self.srcs) != self.kind.arity:
            raise ValueError(
                f"{self.kind.value} expects {self.kind.arity} sources, "
                f"got {len(self.srcs)}"
            )
        if self.kind.arity < 0 and not self.srcs:
            raise ValueError(f"{self.kind.value} expects at least one source")
        if self.kind.is_memory and (self.array is None or self.subscript is None):
            raise ValueError(f"{self.kind.value} requires array and subscript")
        if not self.kind.is_memory and self.array is not None:
            raise ValueError(f"{self.kind.value} must not name an array")
        if self.kind.has_dest and self.dest is None:
            raise ValueError(f"{self.kind.value} requires a destination")
        if not self.kind.has_dest and self.dest is not None:
            raise ValueError(f"{self.kind.value} cannot have a destination")

    @property
    def is_load(self) -> bool:
        return self.kind is OpKind.LOAD

    @property
    def is_store(self) -> bool:
        return self.kind is OpKind.STORE

    @property
    def stored_value(self) -> Operand:
        if not self.is_store:
            raise ValueError("stored_value on non-store")
        return self.srcs[0]

    def registers_read(self) -> tuple[VirtualRegister, ...]:
        return tuple(s for s in self.srcs if isinstance(s, VirtualRegister))

    def with_srcs(self, srcs: tuple[Operand, ...]) -> Operation:
        return replace(self, srcs=srcs, uid=_next_op_id())

    def mnemonic(self) -> str:
        name = self.kind.value
        if self.is_vector:
            name = "v" + name
        return name

    def __str__(self) -> str:
        parts = [self.mnemonic(), str(self.dtype)]
        text = f"{parts[0]}.{parts[1]}"
        if self.dest is not None:
            text = f"{self.dest} = {text}"
        if self.kind.is_memory:
            text += f" {self.array}{self.subscript}"
        if self.srcs:
            text += " " + ", ".join(str(s) for s in self.srcs)
        return text

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Operation) and other.uid == self.uid
