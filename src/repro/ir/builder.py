"""Fluent construction of loop IR.

:class:`LoopBuilder` is the programmatic frontend: the loop DSL parser
lowers onto it, the workload kernels use it directly, and tests use it to
construct precise scenarios.  It enforces single assignment and type
agreement at construction time so that downstream passes can assume a
well-formed loop.
"""

from __future__ import annotations

import itertools

from repro.ir.loop import ArrayInfo, CarriedScalar, Loop
from repro.ir.operations import Operation, OpKind
from repro.ir.subscripts import AffineExpr, Subscript
from repro.ir.types import ScalarType
from repro.ir.values import Operand, VirtualRegister


class LoopBuilder:
    """Builds a :class:`~repro.ir.loop.Loop` one operation at a time."""

    def __init__(self, name: str):
        self.name = name
        self._body: list[Operation] = []
        self._arrays: dict[str, ArrayInfo] = {}
        self._carried: dict[str, CarriedScalar] = {}
        self._live_out: list[VirtualRegister] = []
        self._symbols: dict[str, int] = {}
        self._defined: set[str] = set()
        self._temp_ids = itertools.count()

    # ------------------------------------------------------------------
    # Declarations

    def array(
        self,
        name: str,
        dtype: ScalarType = ScalarType.F64,
        dim_sizes: tuple[int, ...] = (1024,),
        alignment_offset: int = 0,
    ) -> str:
        if name in self._arrays:
            raise ValueError(f"array {name!r} already declared")
        self._arrays[name] = ArrayInfo(name, dtype, dim_sizes, alignment_offset)
        return name

    def carried(
        self, name: str, init: int | float, dtype: ScalarType = ScalarType.F64
    ) -> VirtualRegister:
        """Declare a loop-carried scalar; returns its entry register."""
        if name in self._carried:
            raise ValueError(f"carried scalar {name!r} already declared")
        entry = VirtualRegister(name, dtype)
        # Until carry() is called the scalar carries itself (constant).
        self._carried[name] = CarriedScalar(entry, entry, init)
        return entry

    def carry(self, name: str, exit_value: Operand) -> None:
        """Set the value carried into the next iteration for ``name``."""
        if name not in self._carried:
            raise ValueError(f"carried scalar {name!r} not declared")
        entry = self._carried[name].entry
        if exit_value.type != entry.type:
            raise TypeError(
                f"carried scalar {name!r} has type {entry.type}, "
                f"exit value has {exit_value.type}"
            )
        self._carried[name] = CarriedScalar(entry, exit_value, self._carried[name].init)

    def live_out(self, *regs: VirtualRegister) -> None:
        self._live_out.extend(regs)

    def bind_symbol(self, name: str, value: int) -> None:
        """Default interpreter binding for a symbolic subscript term."""
        self._symbols[name] = value

    # ------------------------------------------------------------------
    # Subscript helpers

    @staticmethod
    def idx(coeff: int = 1, offset: int = 0, **symbols: int) -> Subscript:
        return Subscript.linear(coeff, offset, **symbols)

    @staticmethod
    def idx2(outer: AffineExpr, inner: AffineExpr) -> Subscript:
        return Subscript.of(outer, inner)

    @staticmethod
    def aff(coeff: int = 0, offset: int = 0, **symbols: int) -> AffineExpr:
        return AffineExpr.of(coeff, offset, **symbols)

    # ------------------------------------------------------------------
    # Operations

    def _fresh(self, dtype: ScalarType, stem: str = "t") -> VirtualRegister:
        return VirtualRegister(f"{stem}{next(self._temp_ids)}", dtype)

    def _emit(self, op: Operation) -> Operation:
        if op.dest is not None:
            if op.dest.name in self._defined:
                raise ValueError(f"register {op.dest} assigned more than once")
            if op.dest.name in self._carried:
                raise ValueError(
                    f"register {op.dest} is a carried-scalar entry; "
                    "use carry() to update it"
                )
            self._defined.add(op.dest.name)
        self._body.append(op)
        return op

    def load(
        self,
        array: str,
        subscript: Subscript,
        name: str | None = None,
    ) -> VirtualRegister:
        info = self._require_array(array, subscript)
        dest = (
            VirtualRegister(name, info.dtype)
            if name
            else self._fresh(info.dtype)
        )
        self._emit(
            Operation(
                OpKind.LOAD, info.dtype, dest=dest, array=array, subscript=subscript
            )
        )
        return dest

    def store(self, array: str, subscript: Subscript, value: Operand) -> None:
        info = self._require_array(array, subscript)
        if value.type != info.dtype:
            raise TypeError(
                f"store of {value.type} value into {info.dtype} array {array!r}"
            )
        self._emit(
            Operation(
                OpKind.STORE,
                info.dtype,
                srcs=(value,),
                array=array,
                subscript=subscript,
            )
        )

    def _binary(
        self, kind: OpKind, a: Operand, b: Operand, name: str | None
    ) -> VirtualRegister:
        if a.type != b.type:
            raise TypeError(f"{kind.value} operand types differ: {a.type} vs {b.type}")
        if not isinstance(a.type, ScalarType):
            raise TypeError("builder emits scalar operations only")
        dest = VirtualRegister(name, a.type) if name else self._fresh(a.type)
        self._emit(Operation(kind, a.type, dest=dest, srcs=(a, b)))
        return dest

    def _unary(self, kind: OpKind, a: Operand, name: str | None) -> VirtualRegister:
        if not isinstance(a.type, ScalarType):
            raise TypeError("builder emits scalar operations only")
        dest = VirtualRegister(name, a.type) if name else self._fresh(a.type)
        self._emit(Operation(kind, a.type, dest=dest, srcs=(a,)))
        return dest

    def add(self, a: Operand, b: Operand, name: str | None = None) -> VirtualRegister:
        return self._binary(OpKind.ADD, a, b, name)

    def sub(self, a: Operand, b: Operand, name: str | None = None) -> VirtualRegister:
        return self._binary(OpKind.SUB, a, b, name)

    def mul(self, a: Operand, b: Operand, name: str | None = None) -> VirtualRegister:
        return self._binary(OpKind.MUL, a, b, name)

    def div(self, a: Operand, b: Operand, name: str | None = None) -> VirtualRegister:
        return self._binary(OpKind.DIV, a, b, name)

    def minimum(self, a: Operand, b: Operand, name: str | None = None) -> VirtualRegister:
        return self._binary(OpKind.MIN, a, b, name)

    def maximum(self, a: Operand, b: Operand, name: str | None = None) -> VirtualRegister:
        return self._binary(OpKind.MAX, a, b, name)

    def neg(self, a: Operand, name: str | None = None) -> VirtualRegister:
        return self._unary(OpKind.NEG, a, name)

    def absolute(self, a: Operand, name: str | None = None) -> VirtualRegister:
        return self._unary(OpKind.ABS, a, name)

    def sqrt(self, a: Operand, name: str | None = None) -> VirtualRegister:
        return self._unary(OpKind.SQRT, a, name)

    def copy(self, a: Operand, name: str | None = None) -> VirtualRegister:
        return self._unary(OpKind.COPY, a, name)

    def cvt(
        self, a: Operand, to: ScalarType, name: str | None = None
    ) -> VirtualRegister:
        dest = VirtualRegister(name, to) if name else self._fresh(to)
        self._emit(Operation(OpKind.CVT, to, dest=dest, srcs=(a,)))
        return dest

    # ------------------------------------------------------------------

    def _require_array(self, array: str, subscript: Subscript) -> ArrayInfo:
        if array not in self._arrays:
            raise ValueError(f"array {array!r} not declared")
        info = self._arrays[array]
        if subscript.rank != len(info.dim_sizes):
            raise ValueError(
                f"array {array!r} has rank {len(info.dim_sizes)}, "
                f"subscript has rank {subscript.rank}"
            )
        return info

    def build(self) -> Loop:
        from repro.ir.verifier import verify_loop

        loop = Loop(
            name=self.name,
            body=tuple(self._body),
            arrays=dict(self._arrays),
            carried=tuple(self._carried.values()),
            live_out=tuple(dict.fromkeys(self._live_out)),
            symbols=dict(self._symbols),
        )
        verify_loop(loop)
        return loop
