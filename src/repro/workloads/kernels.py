"""Hand-written signature kernels.

These are the classic loop shapes the paper's benchmarks are built from:
dot products and other reductions, SAXPY-style streaming updates, stencil
relaxations (tomcatv/swim/mgrid), strided "complex arithmetic" loops
(nasa7), and first-order recurrences.  They are used directly by the
examples and tests, and the synthetic SPEC corpus draws on the same
shapes through the generator.
"""

from __future__ import annotations

from repro.ir.builder import LoopBuilder
from repro.ir.loop import Loop
from repro.ir.types import ScalarType
from repro.ir.values import const_f64


def dot_product(n: int = 1024) -> Loop:
    """``s += x[i] * y[i]`` — Figure 1's motivating example.  The
    floating-point reduction is not reorderable, so the add stays scalar."""
    b = LoopBuilder("dot_product")
    b.array("x", dim_sizes=(n,))
    b.array("y", dim_sizes=(n,))
    s = b.carried("s", 0.0)
    xi = b.load("x", b.idx(), name="xi")
    yi = b.load("y", b.idx(), name="yi")
    t = b.mul(xi, yi, name="t")
    s2 = b.add(s, t, name="s2")
    b.carry("s", s2)
    b.live_out(s2)
    return b.build()


def saxpy(n: int = 1024) -> Loop:
    """``y[i] = a*x[i] + y[i]`` with a loop-invariant scalar ``a``."""
    b = LoopBuilder("saxpy")
    b.array("x", dim_sizes=(n,))
    b.array("y", dim_sizes=(n,))
    a = b.carried("a", 2.5)
    xi = b.load("x", b.idx(), name="xi")
    yi = b.load("y", b.idx(), name="yi")
    t = b.mul(a, xi, name="t")
    u = b.add(t, yi, name="u")
    b.store("y", b.idx(), u)
    return b.build()


def vector_scale(n: int = 1024) -> Loop:
    """``z[i] = x[i] * c`` — fully parallel, memory bound."""
    b = LoopBuilder("vector_scale")
    b.array("x", dim_sizes=(n,))
    b.array("z", dim_sizes=(n,))
    xi = b.load("x", b.idx(), name="xi")
    t = b.mul(xi, const_f64(1.5), name="t")
    b.store("z", b.idx(), t)
    return b.build()


def stencil3(n: int = 1024) -> Loop:
    """Three-point stencil ``y[i] = c0*x[i-1] + c1*x[i] + c2*x[i+1]``;
    the offset references exercise the misalignment machinery."""
    b = LoopBuilder("stencil3")
    b.array("x", dim_sizes=(n + 2,))
    b.array("y", dim_sizes=(n + 2,))
    xm = b.load("x", b.idx(offset=0), name="xm")
    xc = b.load("x", b.idx(offset=1), name="xc")
    xp = b.load("x", b.idx(offset=2), name="xp")
    t0 = b.mul(xm, const_f64(0.25), name="t0")
    t1 = b.mul(xc, const_f64(0.5), name="t1")
    t2 = b.mul(xp, const_f64(0.25), name="t2")
    u = b.add(t0, t1, name="u")
    v = b.add(u, t2, name="v")
    b.store("y", b.idx(offset=1), v)
    return b.build()


def relaxation(n: int = 1024) -> Loop:
    """A tomcatv-flavored kernel: heavy floating-point work per point with
    neighbor loads — the shape where selective vectorization shines."""
    b = LoopBuilder("relaxation")
    b.array("x", dim_sizes=(n + 2,))
    b.array("y", dim_sizes=(n + 2,))
    b.array("r", dim_sizes=(n + 2,))
    xm = b.load("x", b.idx(offset=0), name="xm")
    xc = b.load("x", b.idx(offset=1), name="xc")
    xp = b.load("x", b.idx(offset=2), name="xp")
    yc = b.load("y", b.idx(offset=1), name="yc")
    dxx = b.sub(b.add(xm, xp, name="sxx"), b.mul(xc, const_f64(2.0), name="x2"), name="dxx")
    a = b.mul(dxx, dxx, name="a")
    bb = b.mul(a, const_f64(0.35), name="bb")
    c = b.add(bb, yc, name="c")
    d = b.mul(c, c, name="d")
    e = b.add(d, a, name="e")
    f = b.mul(e, const_f64(0.125), name="f")
    g = b.sub(f, xc, name="g")
    h = b.mul(g, const_f64(0.9), name="h")
    b.store("r", b.idx(offset=1), h)
    return b.build()


def shallow_water(n: int = 1024) -> Loop:
    """A swim-flavored update: several arrays, stencil reads, two stores."""
    b = LoopBuilder("shallow_water")
    for name in ("u", "v", "p", "unew", "pnew"):
        b.array(name, dim_sizes=(n + 2,))
    uc = b.load("u", b.idx(offset=1), name="uc")
    up = b.load("u", b.idx(offset=2), name="up")
    vc = b.load("v", b.idx(offset=1), name="vc")
    pc = b.load("p", b.idx(offset=1), name="pc")
    pp = b.load("p", b.idx(offset=2), name="pp")
    cu = b.mul(b.add(pc, pp, name="psum"), uc, name="cu")
    z = b.mul(b.sub(up, uc, name="du"), vc, name="z")
    h = b.add(b.mul(uc, uc, name="u2"), pc, name="h")
    un = b.add(cu, z, name="un")
    pn = b.sub(h, b.mul(un, const_f64(0.05), name="damp"), name="pn")
    b.store("unew", b.idx(offset=1), un)
    b.store("pnew", b.idx(offset=1), pn)
    return b.build()


def mgrid_resid(n: int = 1024) -> Loop:
    """mgrid's residual: ``r[i] = v[i] - a0*u[i] - a1*(u[i-1]+u[i+1])``."""
    b = LoopBuilder("mgrid_resid")
    b.array("u", dim_sizes=(n + 2,))
    b.array("v", dim_sizes=(n + 2,))
    b.array("r", dim_sizes=(n + 2,))
    um = b.load("u", b.idx(offset=0), name="um")
    uc = b.load("u", b.idx(offset=1), name="uc")
    up = b.load("u", b.idx(offset=2), name="up")
    vc = b.load("v", b.idx(offset=1), name="vc")
    t0 = b.mul(uc, const_f64(-1.0), name="t0")
    t1 = b.mul(b.add(um, up, name="usum"), const_f64(0.5), name="t1")
    t2 = b.sub(vc, t0, name="t2")
    t3 = b.sub(t2, t1, name="t3")
    b.store("r", b.idx(offset=1), t3)
    return b.build()


def complex_multiply(n: int = 512) -> Loop:
    """nasa7-flavored: interleaved complex arrays give stride-2 memory
    references, so the loads and stores are *not* vectorizable while the
    arithmetic is — the case where full vectorization buys only transfer
    traffic."""
    b = LoopBuilder("complex_multiply")
    b.array("a", dim_sizes=(2 * n,))
    b.array("bv", dim_sizes=(2 * n,))
    b.array("c", dim_sizes=(2 * n,))
    ar = b.load("a", b.idx(coeff=2, offset=0), name="ar")
    ai = b.load("a", b.idx(coeff=2, offset=1), name="ai")
    br = b.load("bv", b.idx(coeff=2, offset=0), name="br")
    bi = b.load("bv", b.idx(coeff=2, offset=1), name="bi")
    rr = b.sub(b.mul(ar, br, name="p0"), b.mul(ai, bi, name="p1"), name="rr")
    ri = b.add(b.mul(ar, bi, name="p2"), b.mul(ai, br, name="p3"), name="ri")
    b.store("c", b.idx(coeff=2, offset=0), rr)
    b.store("c", b.idx(coeff=2, offset=1), ri)
    return b.build()


def first_order_recurrence(n: int = 1024) -> Loop:
    """``y[i] = a*y[i-1] + x[i]`` — a true loop-carried memory recurrence;
    nothing here can be vectorized."""
    b = LoopBuilder("first_order_recurrence")
    b.array("x", dim_sizes=(n + 1,))
    b.array("y", dim_sizes=(n + 1,))
    ym = b.load("y", b.idx(offset=0), name="ym")
    xi = b.load("x", b.idx(offset=1), name="xi")
    t = b.mul(ym, const_f64(0.5), name="t")
    u = b.add(t, xi, name="u")
    b.store("y", b.idx(offset=1), u)
    return b.build()


def sum_and_scale(n: int = 1024) -> Loop:
    """Mixed loop: a reduction (serial) plus an independent data-parallel
    update — the canonical selective-vectorization opportunity."""
    b = LoopBuilder("sum_and_scale")
    b.array("x", dim_sizes=(n,))
    b.array("z", dim_sizes=(n,))
    s = b.carried("s", 0.0)
    xi = b.load("x", b.idx(), name="xi")
    sq = b.mul(xi, xi, name="sq")
    t = b.mul(sq, const_f64(0.01), name="t")
    u = b.add(t, xi, name="u")
    b.store("z", b.idx(), u)
    s2 = b.add(s, sq, name="s2")
    b.carry("s", s2)
    b.live_out(s2)
    return b.build()


def max_abs(n: int = 1024) -> Loop:
    """``m = max(m, |x[i]|)`` — a max reduction (serial chain) feeding off
    a vectorizable abs."""
    b = LoopBuilder("max_abs")
    b.array("x", dim_sizes=(n,))
    m = b.carried("m", 0.0)
    xi = b.load("x", b.idx(), name="xi")
    a = b.absolute(xi, name="a")
    m2 = b.maximum(m, a, name="m2")
    b.carry("m", m2)
    b.live_out(m2)
    return b.build()


def shift_by_vector_length(n: int = 1024, shift: int = 4) -> Loop:
    """``a[i+shift] = a[i] * c`` — a dependence cycle whose distance
    permits vectorization when ``shift >= VL`` (paper Section 3)."""
    b = LoopBuilder("shift_by_vl")
    b.array("a", dim_sizes=(n + shift,))
    t = b.load("a", b.idx(), name="t")
    u = b.mul(t, const_f64(0.99), name="u")
    b.store("a", b.idx(offset=shift), u)
    return b.build()


def integer_kernel(n: int = 1024) -> Loop:
    """Integer streaming update — exercises the int register file and the
    shared int/fp vector unit."""
    b = LoopBuilder("integer_kernel")
    b.array("x", dim_sizes=(n,), dtype=ScalarType.I64)
    b.array("z", dim_sizes=(n,), dtype=ScalarType.I64)
    from repro.ir.values import const_i64

    xi = b.load("x", b.idx(), name="xi")
    t = b.mul(xi, const_i64(3), name="t")
    u = b.add(t, const_i64(7), name="u")
    b.store("z", b.idx(), u)
    return b.build()


def matvec_row(n: int = 256) -> Loop:
    """One row of a matrix-vector product: ``s += a(j, i) * x(i)`` with
    the row index ``j`` a symbolic loop invariant — the inner loop of the
    classic dense kernel.  The reduction serializes; the loads and the
    multiply are data parallel."""
    b = LoopBuilder("matvec_row")
    b.bind_symbol("j", 5)
    b.array("a", dim_sizes=(64, n))
    b.array("x", dim_sizes=(n,))
    s = b.carried("s", 0.0)
    aji = b.load("a", b.idx2(b.aff(j=1), b.aff(1, 0)), name="aji")
    xi = b.load("x", b.idx(), name="xi")
    t = b.mul(aji, xi, name="t")
    s2 = b.add(s, t, name="s2")
    b.carry("s", s2)
    b.live_out(s2)
    return b.build()


def stencil2d_row(n: int = 256) -> Loop:
    """One row of a five-point 2D stencil: reads the row above, the row
    below, and three neighbors in the current row of a 2D array, writing
    a second array — the inner loop of mgrid/swim-style relaxations."""
    b = LoopBuilder("stencil2d_row")
    b.bind_symbol("j", 7)
    b.array("u", dim_sizes=(64, n + 2))
    b.array("v", dim_sizes=(64, n + 2))
    up = b.load("u", b.idx2(b.aff(offset=-1, j=1), b.aff(1, 1)), name="up")
    dn = b.load("u", b.idx2(b.aff(offset=1, j=1), b.aff(1, 1)), name="dn")
    lf = b.load("u", b.idx2(b.aff(j=1), b.aff(1, 0)), name="lf")
    ct = b.load("u", b.idx2(b.aff(j=1), b.aff(1, 1)), name="ct")
    rt = b.load("u", b.idx2(b.aff(j=1), b.aff(1, 2)), name="rt")
    ring = b.add(b.add(up, dn, name="vsum"), b.add(lf, rt, name="hsum"), name="ring")
    t = b.sub(ring, b.mul(ct, const_f64(4.0), name="c4"), name="t")
    out = b.mul(t, const_f64(0.25), name="out")
    b.store("v", b.idx2(b.aff(j=1), b.aff(1, 1)), out)
    return b.build()


def tridiag_forward(n: int = 1024) -> Loop:
    """Forward elimination of a tridiagonal solve:
    ``x[i] = d[i] - l[i] * x[i-1]`` — a first-order recurrence with a
    multiply on the cycle; completely serial, and the divide-free inner
    loop of many implicit solvers (apsi, turb3d)."""
    b = LoopBuilder("tridiag_forward")
    b.array("d", dim_sizes=(n + 1,))
    b.array("lo", dim_sizes=(n + 1,))
    b.array("xs", dim_sizes=(n + 1,))
    xm = b.load("xs", b.idx(offset=0), name="xm")
    li = b.load("lo", b.idx(offset=1), name="li")
    di = b.load("d", b.idx(offset=1), name="di")
    t = b.mul(li, xm, name="t")
    u = b.sub(di, t, name="u")
    b.store("xs", b.idx(offset=1), u)
    return b.build()


ALL_KERNELS = {
    "dot_product": dot_product,
    "saxpy": saxpy,
    "vector_scale": vector_scale,
    "stencil3": stencil3,
    "relaxation": relaxation,
    "shallow_water": shallow_water,
    "mgrid_resid": mgrid_resid,
    "complex_multiply": complex_multiply,
    "first_order_recurrence": first_order_recurrence,
    "sum_and_scale": sum_and_scale,
    "max_abs": max_abs,
    "shift_by_vl": shift_by_vector_length,
    "integer_kernel": integer_kernel,
    "matvec_row": matvec_row,
    "stencil2d_row": stencil2d_row,
    "tridiag_forward": tridiag_forward,
}
