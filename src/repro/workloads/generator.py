"""Seeded loop generation.

The synthetic SPEC corpus needs many loops per benchmark (Table 3 counts
range from 6 to 133).  Each generator below produces one *archetype* — a
loop shape whose interaction with the machine is understood — with sizes
and coefficients drawn from a seeded RNG, so the corpus is deterministic
and its aggregate behavior is controlled by the archetype mix.

Archetypes:

* ``fp_chain``      — long floating-point chains, few memory refs: the
                      fp units bound the scalar schedule and selective
                      vectorization can split the work (big wins).
* ``stencil``       — neighbor loads + moderate fp: memory/merge bound.
* ``memory_bound``  — streaming copies/updates with light compute.
* ``reduction``     — a serial reduction fed by parallel work.
* ``strided``       — stride-2 (complex-arithmetic) memory: loads and
                      stores are not vectorizable, arithmetic is.
* ``recurrence``    — first-order memory recurrence: fully serial.
* ``mixed``         — a reduction plus an independent parallel update.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ir.builder import LoopBuilder
from repro.ir.loop import Loop
from repro.ir.values import Operand, const_f64

ARRAY_ELEMS = 4608  # generous bound for interpreter trip counts + offsets


def _coeff(rng: random.Random) -> float:
    return round(rng.uniform(-1.5, 1.5), 3) or 0.5


def gen_fp_chain(rng: random.Random, name: str) -> Loop:
    """Load a few streams, run a long fp chain, store the result."""
    n_streams = rng.randint(1, 3)
    chain_len = rng.randint(6, 14)
    b = LoopBuilder(name)
    loads = []
    for k in range(n_streams):
        b.array(f"x{k}", dim_sizes=(ARRAY_ELEMS,))
        loads.append(b.load(f"x{k}", b.idx(), name=f"v{k}"))
    b.array("out", dim_sizes=(ARRAY_ELEMS,))
    # Fold every stream in first (no dead loads), then grow the chain.
    acc = loads[0]
    for k, v in enumerate(loads[1:]):
        acc = b.add(acc, v, name=f"in{k}")
    values = [*loads, acc]
    for k in range(chain_len):
        other = values[rng.randrange(len(values))]
        if rng.random() < 0.5:
            acc = b.mul(acc, other, name=f"c{k}")
        else:
            acc = b.add(acc, other, name=f"c{k}")
        values.append(acc)
    b.store("out", b.idx(), acc)
    return b.build()


def gen_stencil(rng: random.Random, name: str) -> Loop:
    """Weighted neighbor sum with a little extra arithmetic."""
    taps = rng.randint(3, 5)
    b = LoopBuilder(name)
    b.array("x", dim_sizes=(ARRAY_ELEMS,))
    b.array("y", dim_sizes=(ARRAY_ELEMS,))
    acc: Operand | None = None
    for t in range(taps):
        v = b.load("x", b.idx(offset=t), name=f"x{t}")
        w = b.mul(v, const_f64(_coeff(rng)), name=f"w{t}")
        acc = w if acc is None else b.add(acc, w, name=f"s{t}")
    assert acc is not None
    for k in range(rng.randint(0, 3)):
        acc = b.mul(acc, acc, name=f"e{k}")
    b.store("y", b.idx(offset=taps // 2), acc)
    return b.build()


def gen_memory_bound(rng: random.Random, name: str) -> Loop:
    """Several streams in, one or two light ops, streams out."""
    n_in = rng.randint(2, 4)
    n_out = rng.randint(1, 2)
    b = LoopBuilder(name)
    values = []
    for k in range(n_in):
        b.array(f"in{k}", dim_sizes=(ARRAY_ELEMS,))
        values.append(b.load(f"in{k}", b.idx(), name=f"v{k}"))
    combined = values[0]
    for k, v in enumerate(values[1:]):
        combined = b.add(combined, v, name=f"a{k}")
    for k in range(n_out):
        b.array(f"out{k}", dim_sizes=(ARRAY_ELEMS,))
        result = (
            combined
            if k == 0
            else b.mul(combined, const_f64(_coeff(rng)), name=f"o{k}")
        )
        b.store(f"out{k}", b.idx(), result)
    return b.build()


def gen_copy_like(rng: random.Random, name: str) -> Loop:
    """A tiny streaming loop (copy / scale / two-input add).  Resource
    limited — the load/store units bound it — but too small for selective
    vectorization to improve: the realignment merges eat exactly what
    vector memory saves.  Real benchmarks are full of these."""
    b = LoopBuilder(name)
    b.array("src", dim_sizes=(ARRAY_ELEMS,))
    b.array("dst", dim_sizes=(ARRAY_ELEMS,))
    v = b.load("src", b.idx(), name="v")
    shape = rng.randrange(3)
    if shape == 0:
        result = v  # plain copy
    elif shape == 1:
        result = b.mul(v, const_f64(_coeff(rng)), name="sc")
    else:
        b.array("src2", dim_sizes=(ARRAY_ELEMS,))
        w = b.load("src2", b.idx(), name="w")
        result = b.add(v, w, name="sum")
    b.store("dst", b.idx(), result)
    return b.build()


def gen_reduction(rng: random.Random, name: str) -> Loop:
    """A serial fp reduction over a vectorizable expression."""
    b = LoopBuilder(name)
    b.array("x", dim_sizes=(ARRAY_ELEMS,))
    b.array("y", dim_sizes=(ARRAY_ELEMS,))
    s = b.carried("s", 0.0)
    xi = b.load("x", b.idx(), name="xi")
    yi = b.load("y", b.idx(), name="yi")
    expr = b.mul(xi, yi, name="p")
    for k in range(rng.randint(0, 3)):
        expr = b.add(expr, xi if rng.random() < 0.5 else yi, name=f"q{k}")
    s2 = b.add(s, expr, name="s2")
    b.carry("s", s2)
    b.live_out(s2)
    return b.build()


def gen_strided(rng: random.Random, name: str) -> Loop:
    """Complex-arithmetic shape: stride-2 references, parallel fp ops."""
    b = LoopBuilder(name)
    b.array("a", dim_sizes=(2 * ARRAY_ELEMS,))
    b.array("c", dim_sizes=(2 * ARRAY_ELEMS,))
    ar = b.load("a", b.idx(coeff=2, offset=0), name="ar")
    ai = b.load("a", b.idx(coeff=2, offset=1), name="ai")
    rr = b.sub(b.mul(ar, ar, name="p0"), b.mul(ai, ai, name="p1"), name="rr")
    ri = b.mul(b.mul(ar, ai, name="p2"), const_f64(2.0), name="ri")
    extra = rr
    for k in range(rng.randint(0, 4)):
        extra = b.add(b.mul(extra, const_f64(_coeff(rng)), name=f"m{k}"), ri, name=f"e{k}")
    b.store("c", b.idx(coeff=2, offset=0), extra)
    b.store("c", b.idx(coeff=2, offset=1), ri)
    return b.build()


def gen_recurrence(rng: random.Random, name: str) -> Loop:
    """First-order recurrence through memory: nothing vectorizes."""
    b = LoopBuilder(name)
    b.array("x", dim_sizes=(ARRAY_ELEMS,))
    b.array("y", dim_sizes=(ARRAY_ELEMS,))
    ym = b.load("y", b.idx(offset=0), name="ym")
    xi = b.load("x", b.idx(offset=1), name="xi")
    t = b.mul(ym, const_f64(0.5), name="t")
    u = b.add(t, xi, name="u")
    for k in range(rng.randint(0, 2)):
        u = b.mul(u, const_f64(0.99), name=f"d{k}")
    b.store("y", b.idx(offset=1), u)
    return b.build()


def gen_mixed(rng: random.Random, name: str) -> Loop:
    """A reduction plus an independent data-parallel update — distribution
    splits it; selective vectorization keeps it whole."""
    b = LoopBuilder(name)
    b.array("x", dim_sizes=(ARRAY_ELEMS,))
    b.array("z", dim_sizes=(ARRAY_ELEMS,))
    s = b.carried("s", 0.0)
    xi = b.load("x", b.idx(), name="xi")
    sq = b.mul(xi, xi, name="sq")
    par = sq
    for k in range(rng.randint(1, 5)):
        par = b.add(b.mul(par, const_f64(_coeff(rng)), name=f"m{k}"), xi, name=f"p{k}")
    b.store("z", b.idx(), par)
    s2 = b.add(s, sq, name="s2")
    b.carry("s", s2)
    b.live_out(s2)
    return b.build()


def gen_interleaved(rng: random.Random, name: str) -> Loop:
    """Parallel compute segments chained through strided (complex-layout)
    memory — the nasa7/apsi kernel shape.  Each stage loads a stride-2
    element written by the previous stage, so loop distribution shatters
    the loop into ``2*stages + 1`` pieces (scalar gather, vector compute,
    scalar scatter, ...) with expansion traffic between every pair, while
    selective vectorization schedules the whole loop at once."""
    return _interleaved(rng, name, rng.randint(3, 5), max_extra=3)


def gen_interleaved_deep(rng: random.Random, name: str) -> Loop:
    """A long-body variant of ``interleaved`` modeling nasa7-style kernels
    (vpenta, gmtry): many alternating gather/compute/scatter segments with
    little arithmetic per segment, so the loop is bound by the strided
    memory traffic (which selective vectorization cannot help) and
    distribution produces a dozen or more loops."""
    return _interleaved(rng, name, rng.randint(6, 9), max_extra=1)


def _interleaved(rng: random.Random, name: str, stages: int, max_extra: int) -> Loop:
    b = LoopBuilder(name)
    b.array("x0", dim_sizes=(2 * ARRAY_ELEMS,))
    prev = b.load("x0", b.idx(coeff=2, offset=0), name="in0")
    for s in range(stages):
        # Parallel segment (vectorizable arithmetic).
        q = b.mul(prev, prev, name=f"p{s}")
        for k in range(rng.randint(0, max_extra)):
            q = b.add(
                b.mul(q, const_f64(_coeff(rng)), name=f"m{s}_{k}"),
                prev,
                name=f"a{s}_{k}",
            )
        # Strided scatter, then the next stage gathers what was written.
        b.array(f"y{s}", dim_sizes=(2 * ARRAY_ELEMS,))
        b.store(f"y{s}", b.idx(coeff=2, offset=0), q)
        prev = b.load(f"y{s}", b.idx(coeff=2, offset=0), name=f"in{s + 1}")
    b.array("out", dim_sizes=(2 * ARRAY_ELEMS,))
    b.store("out", b.idx(coeff=2, offset=1), prev)
    return b.build()


GENERATORS = {
    "fp_chain": gen_fp_chain,
    "interleaved": gen_interleaved,
    "interleaved_deep": gen_interleaved_deep,
    "copy_like": gen_copy_like,
    "stencil": gen_stencil,
    "memory_bound": gen_memory_bound,
    "reduction": gen_reduction,
    "strided": gen_strided,
    "recurrence": gen_recurrence,
    "mixed": gen_mixed,
}


def generate(archetype: str, seed: int, name: str | None = None) -> Loop:
    """Generate one loop of the given archetype, deterministically."""
    if archetype not in GENERATORS:
        raise KeyError(f"unknown archetype {archetype!r}")
    rng = random.Random(seed)
    return GENERATORS[archetype](rng, name or f"{archetype}_{seed}")


# ----------------------------------------------------------------------
# Corpus-scale generation (the sweep substrate)


@dataclass(frozen=True)
class CorpusSpec:
    """A deterministic description of a generated loop corpus.

    The plan drawn from a spec is a pure function of its fields: the
    same spec always names the same loops with the same per-loop seeds,
    so shards of a sweep can each materialize only their slice and a
    resumed run regenerates exactly the loops the interrupted one would
    have compiled.

    ``archetypes`` restricts (and orders) the generator mix; empty means
    every archetype in :data:`GENERATORS` definition order.  ``weights``
    maps archetype name to a relative draw weight (unlisted archetypes
    draw at weight 1.0), steering the aggregate shape of the corpus —
    e.g. a memory-bound corpus via ``{"memory_bound": 5.0}``.
    """

    size: int
    seed: int = 0
    archetypes: tuple[str, ...] = ()
    weights: dict[str, float] = field(default_factory=dict)
    trip_counts: tuple[int, int] = (16, 256)
    name_prefix: str = "sweep"

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("corpus size must be >= 1")
        names = self.archetypes or tuple(GENERATORS)
        for name in names:
            if name not in GENERATORS:
                raise KeyError(f"unknown archetype {name!r}")
        for name in self.weights:
            if name not in names:
                raise KeyError(
                    f"weight for archetype {name!r} outside the mix"
                )
        lo, hi = self.trip_counts
        if not (1 <= lo <= hi):
            raise ValueError(f"bad trip-count range {self.trip_counts!r}")

    def mix(self) -> tuple[tuple[str, ...], tuple[float, ...]]:
        """(archetype names, draw weights), in a stable order."""
        names = self.archetypes or tuple(GENERATORS)
        return names, tuple(float(self.weights.get(n, 1.0)) for n in names)

    def to_dict(self) -> dict:
        """JSON-stable form (manifest headers, run-record configs)."""
        names, weights = self.mix()
        return {
            "size": self.size,
            "seed": self.seed,
            "archetypes": list(names),
            "weights": {n: w for n, w in zip(names, weights)},
            "trip_counts": list(self.trip_counts),
            "name_prefix": self.name_prefix,
        }

    @classmethod
    def from_dict(cls, document: dict) -> "CorpusSpec":
        return cls(
            size=int(document["size"]),
            seed=int(document.get("seed", 0)),
            archetypes=tuple(document.get("archetypes") or ()),
            weights=dict(document.get("weights") or {}),
            trip_counts=tuple(document.get("trip_counts") or (16, 256)),
            name_prefix=str(document.get("name_prefix", "sweep")),
        )


@dataclass(frozen=True)
class CorpusItem:
    """One planned loop: everything needed to materialize it anywhere."""

    index: int
    archetype: str
    loop_seed: int
    trip_count: int
    name: str

    def materialize(self) -> Loop:
        return generate(self.archetype, self.loop_seed, self.name)


def corpus_plan(spec: CorpusSpec) -> list[CorpusItem]:
    """The full, deterministic draw plan of a corpus.

    One RNG seeded by ``spec.seed`` drives every draw in index order, so
    item ``i`` is identical no matter which slice of the plan a shard
    materializes.
    """
    names, weights = spec.mix()
    lo, hi = spec.trip_counts
    rng = random.Random(spec.seed)
    items: list[CorpusItem] = []
    for i in range(spec.size):
        archetype = rng.choices(names, weights)[0]
        loop_seed = rng.randrange(1 << 30)
        trip = rng.randint(lo, hi)
        items.append(
            CorpusItem(
                index=i,
                archetype=archetype,
                loop_seed=loop_seed,
                trip_count=trip,
                name=f"{spec.name_prefix}{i:06d}_{archetype}",
            )
        )
    return items
