"""The synthetic SPEC FP corpus.

The paper evaluates nine SPEC 92/95/2000 floating-point benchmarks
compiled from Fortran sources through SUIF and Trimaran.  Neither the
sources-through-SUIF path nor SPEC's training inputs are available here,
so each benchmark is replaced by a *synthetic corpus of loops* whose
structure reproduces what drives the paper's results:

* the number of modulo-scheduled loops per benchmark matches Table 3
  (e.g. wave5 has 133, tomcatv 6);
* the archetype mix controls how many loops selective vectorization can
  improve (fp-heavy chains and stencils benefit; recurrences, strided
  complex arithmetic, and reductions do not);
* per-benchmark trip-count ranges model the paper's observations (e.g.
  turb3d's critical loops have low iteration counts, which is why its
  tighter schedules lose to pipeline fill/drain overhead);
* invocation weights emphasize the archetypes that dominate each
  benchmark's profile (nasa7's time goes to strided complex kernels);
* a serial fraction models time outside the compiled loops (the Amdahl
  term that keeps whole-benchmark speedups modest).

Everything is seeded: the corpus is identical on every run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from dataclasses import replace as dc_replace

from repro.ir.loop import Loop
from repro.workloads.generator import GENERATORS, generate


@dataclass(frozen=True)
class WorkloadLoop:
    """One loop instance with its dynamic profile."""

    loop: Loop
    archetype: str
    trip_count: int
    invocations: int


@dataclass
class Benchmark:
    """A synthetic benchmark: loops plus a serial (non-loop) fraction."""

    name: str
    loops: list[WorkloadLoop]
    serial_fraction: float

    @property
    def loop_count(self) -> int:
        return len(self.loops)


@dataclass(frozen=True)
class BenchmarkProfile:
    """Declarative recipe for one benchmark."""

    name: str
    seed: int
    archetype_counts: dict[str, int]
    trip_range: tuple[int, int]
    serial_fraction: float
    # archetype -> relative invocation weight (default 1.0)
    emphasis: dict[str, float] = field(default_factory=dict)


# Loop counts per benchmark match Table 3.  Archetype mixes are chosen so
# the fraction of loops selective vectorization improves tracks the
# paper's per-benchmark "Better" percentages, and emphasis/trip settings
# shape the whole-benchmark speedups of Table 2.
PROFILES: dict[str, BenchmarkProfile] = {
    p.name: p
    for p in (
        BenchmarkProfile(
            name="093.nasa7",
            seed=9307,
            archetype_counts={
                "interleaved_deep": 8,
                "interleaved": 4,
                "strided": 7,
                "fp_chain": 3,
                "copy_like": 8,
                "reduction": 3,
                "recurrence": 4,
            },
            trip_range=(30, 80),
            serial_fraction=0.04,
            emphasis={
                "interleaved_deep": 8.0,
                "interleaved": 2.0,
                "strided": 3.0,
                "copy_like": 0.3,
            },
        ),
        BenchmarkProfile(
            name="101.tomcatv",
            seed=10195,
            archetype_counts={
                "fp_chain": 3,
                "stencil": 2,
                "copy_like": 1,
                "mixed": 2,
                "reduction": 1,
            },
            trip_range=(200, 260),
            serial_fraction=0.05,
            emphasis={"fp_chain": 2.0, "stencil": 4.0, "mixed": 2.0, "copy_like": 0.3},
        ),
        BenchmarkProfile(
            name="103.su2cor",
            seed=10392,
            archetype_counts={
                "fp_chain": 10,
                "stencil": 9,
                "interleaved": 6,
                "strided": 5,
                "memory_bound": 4,
                "copy_like": 4,
                "reduction": 5,
                "recurrence": 3,
            },
            trip_range=(40, 90),
            serial_fraction=0.12,
            emphasis={"interleaved": 3.0, "copy_like": 0.3},
        ),
        BenchmarkProfile(
            name="104.hydro2d",
            seed=10492,
            archetype_counts={
                "stencil": 8,
                "fp_chain": 4,
                "interleaved": 6,
                "strided": 8,
                "memory_bound": 9,
                "copy_like": 32,
                "reduction": 10,
                "recurrence": 16,
            },
            trip_range=(60, 120),
            serial_fraction=0.25,
            emphasis={"recurrence": 2.0, "copy_like": 0.5},
        ),
        BenchmarkProfile(
            name="125.turb3d",
            seed=12595,
            archetype_counts={
                "fp_chain": 2,
                "interleaved": 2,
                "interleaved_deep": 2,
                "strided": 1,
                "copy_like": 5,
                "reduction": 3,
                "recurrence": 2,
            },
            trip_range=(4, 8),
            serial_fraction=0.10,
            emphasis={
                "fp_chain": 3.0,
                "interleaved": 3.0,
                "interleaved_deep": 4.0,
                "copy_like": 0.3,
            },
        ),
        BenchmarkProfile(
            name="146.wave5",
            seed=14695,
            archetype_counts={
                "stencil": 20,
                "fp_chain": 16,
                "interleaved": 10,
                "strided": 15,
                "memory_bound": 16,
                "copy_like": 56,
                "mixed": 8,
                "reduction": 28,
                "recurrence": 24,
            },
            trip_range=(20, 70),
            serial_fraction=0.30,
            emphasis={
                "reduction": 1.5,
                "recurrence": 1.5,
                "interleaved": 2.0,
                "copy_like": 0.25,
            },
        ),
        BenchmarkProfile(
            name="171.swim",
            seed=17100,
            archetype_counts={
                "stencil": 4,
                "memory_bound": 4,
                "copy_like": 6,
                "reduction": 3,
                "recurrence": 3,
            },
            trip_range=(300, 500),
            serial_fraction=0.18,
            emphasis={"stencil": 4.0, "copy_like": 0.3},
        ),
        BenchmarkProfile(
            name="172.mgrid",
            seed=17200,
            archetype_counts={
                "stencil": 5,
                "fp_chain": 3,
                "interleaved": 2,
                "memory_bound": 2,
                "copy_like": 4,
                "mixed": 6,
            },
            trip_range=(60, 130),
            serial_fraction=0.06,
            emphasis={
                "stencil": 2.0,
                "fp_chain": 2.0,
                "mixed": 3.0,
                "copy_like": 0.3,
            },
        ),
        BenchmarkProfile(
            name="301.apsi",
            seed=30100,
            archetype_counts={
                "stencil": 6,
                "fp_chain": 3,
                "interleaved": 6,
                "strided": 8,
                "memory_bound": 5,
                "copy_like": 33,
                "reduction": 15,
                "recurrence": 15,
            },
            trip_range=(25, 60),
            serial_fraction=0.35,
            emphasis={"interleaved": 4.0, "strided": 3.0, "copy_like": 0.4},
        ),
    )
}

BENCHMARK_NAMES = tuple(PROFILES)


def build_benchmark(name: str) -> Benchmark:
    """Materialize a benchmark's loop corpus deterministically."""
    profile = PROFILES[name]
    rng = random.Random(profile.seed)
    loops: list[WorkloadLoop] = []
    index = 0
    for archetype in sorted(profile.archetype_counts):
        count = profile.archetype_counts[archetype]
        if archetype not in GENERATORS:
            raise KeyError(f"unknown archetype {archetype!r} in {name}")
        weight = profile.emphasis.get(archetype, 1.0)
        for _ in range(count):
            loop_seed = rng.randrange(1 << 30)
            loop = generate(archetype, loop_seed, f"{name}.L{index}")
            trip = rng.randint(*profile.trip_range)
            invocations = max(1, round(rng.randint(2, 12) * weight))
            loop = dc_replace(loop, trip_count=trip)
            loops.append(WorkloadLoop(loop, archetype, trip, invocations))
            index += 1
    return Benchmark(name=name, loops=loops, serial_fraction=profile.serial_fraction)


def build_suite(names: tuple[str, ...] = BENCHMARK_NAMES) -> list[Benchmark]:
    return [build_benchmark(name) for name in names]
