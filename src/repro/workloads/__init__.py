"""Workloads: signature kernels, the seeded loop generator, and the
synthetic SPEC FP corpus."""

from repro.workloads.generator import GENERATORS, generate
from repro.workloads.kernels import ALL_KERNELS
from repro.workloads.livermore import LIVERMORE_KERNELS
from repro.workloads.spec import (
    BENCHMARK_NAMES,
    PROFILES,
    Benchmark,
    BenchmarkProfile,
    WorkloadLoop,
    build_benchmark,
    build_suite,
)

__all__ = [
    "ALL_KERNELS",
    "LIVERMORE_KERNELS",
    "BENCHMARK_NAMES",
    "Benchmark",
    "BenchmarkProfile",
    "GENERATORS",
    "PROFILES",
    "WorkloadLoop",
    "build_benchmark",
    "build_suite",
    "generate",
]
