"""Livermore loop kernels.

The Livermore Fortran Kernels are the classic compiler-benchmark loop
suite; the subset below is exactly the kernels expressible in this IR
(single innermost counted loop, no control flow, the available operation
set).  They make good demonstration and stress inputs because their
vectorization characters span the whole spectrum: fully parallel (K1,
K7, K12), reductions (K3), and tight recurrences (K5, K11).

Numbering follows the original suite.
"""

from __future__ import annotations

from repro.ir.builder import LoopBuilder
from repro.ir.loop import Loop


def k1_hydro(n: int = 1024) -> Loop:
    """Kernel 1 — hydro fragment:
    ``x[i] = q + y[i] * (r*z[i+10] + t*z[i+11])``.  Fully parallel."""
    b = LoopBuilder("livermore_k1")
    b.array("x", dim_sizes=(n + 12,))
    b.array("y", dim_sizes=(n + 12,))
    b.array("z", dim_sizes=(n + 12,))
    q = b.carried("q", 0.5)
    r = b.carried("r", 0.25)
    t = b.carried("t", 0.125)
    z10 = b.load("z", b.idx(offset=10), name="z10")
    z11 = b.load("z", b.idx(offset=11), name="z11")
    yi = b.load("y", b.idx(), name="yi")
    inner = b.add(b.mul(r, z10, name="rz"), b.mul(t, z11, name="tz"), name="inner")
    xi = b.add(q, b.mul(yi, inner, name="yinner"), name="xi")
    b.store("x", b.idx(), xi)
    return b.build()


def k3_inner_product(n: int = 1024) -> Loop:
    """Kernel 3 — inner product: ``q += z[i] * x[i]``.  A reduction."""
    b = LoopBuilder("livermore_k3")
    b.array("z", dim_sizes=(n,))
    b.array("x", dim_sizes=(n,))
    q = b.carried("q", 0.0)
    zi = b.load("z", b.idx(), name="zi")
    xi = b.load("x", b.idx(), name="xi")
    q2 = b.add(q, b.mul(zi, xi, name="p"), name="q2")
    b.carry("q", q2)
    b.live_out(q2)
    return b.build()


def k5_tridiag(n: int = 1024) -> Loop:
    """Kernel 5 — tri-diagonal elimination, below diagonal:
    ``x[i] = z[i] * (y[i] - x[i-1])``.  A first-order recurrence; nothing
    on the cycle vectorizes."""
    b = LoopBuilder("livermore_k5")
    b.array("x", dim_sizes=(n + 1,))
    b.array("y", dim_sizes=(n + 1,))
    b.array("z", dim_sizes=(n + 1,))
    xm = b.load("x", b.idx(offset=0), name="xm")
    yi = b.load("y", b.idx(offset=1), name="yi")
    zi = b.load("z", b.idx(offset=1), name="zi")
    xi = b.mul(zi, b.sub(yi, xm, name="d"), name="xi")
    b.store("x", b.idx(offset=1), xi)
    return b.build()


def k7_equation_of_state(n: int = 1024) -> Loop:
    """Kernel 7 — equation of state fragment: a deep, fully parallel
    floating-point expression — the selective-vectorization sweet spot."""
    b = LoopBuilder("livermore_k7")
    b.array("x", dim_sizes=(n + 6,))
    b.array("y", dim_sizes=(n + 6,))
    b.array("u", dim_sizes=(n + 6,))
    r = b.carried("r", 0.5)
    t = b.carried("t", 0.25)
    u0 = b.load("u", b.idx(offset=0), name="u0")
    u1 = b.load("u", b.idx(offset=1), name="u1")
    u2 = b.load("u", b.idx(offset=2), name="u2")
    u3 = b.load("u", b.idx(offset=3), name="u3")
    u4 = b.load("u", b.idx(offset=4), name="u4")
    u5 = b.load("u", b.idx(offset=5), name="u5")
    yi = b.load("y", b.idx(), name="yi")
    e1 = b.add(u1, b.mul(r, b.add(u2, b.mul(t, u3, name="tu3"), name="i1"), name="ri"), name="e1")
    e2 = b.add(u4, b.mul(r, b.add(u5, b.mul(t, e1, name="te"), name="i2"), name="ro"), name="e2")
    xi = b.add(u0, b.mul(yi, e2, name="ye"), name="xi")
    b.store("x", b.idx(), xi)
    return b.build()


def k11_first_sum(n: int = 1024) -> Loop:
    """Kernel 11 — first sum (prefix sum): ``x[i] = x[i-1] + y[i]``.
    The canonical serial scan."""
    b = LoopBuilder("livermore_k11")
    b.array("x", dim_sizes=(n + 1,))
    b.array("y", dim_sizes=(n + 1,))
    xm = b.load("x", b.idx(offset=0), name="xm")
    yi = b.load("y", b.idx(offset=1), name="yi")
    xi = b.add(xm, yi, name="xi")
    b.store("x", b.idx(offset=1), xi)
    return b.build()


def k12_first_difference(n: int = 1024) -> Loop:
    """Kernel 12 — first difference: ``x[i] = y[i+1] - y[i]``.  Fully
    parallel, memory bound."""
    b = LoopBuilder("livermore_k12")
    b.array("x", dim_sizes=(n + 1,))
    b.array("y", dim_sizes=(n + 1,))
    y0 = b.load("y", b.idx(offset=0), name="y0")
    y1 = b.load("y", b.idx(offset=1), name="y1")
    xi = b.sub(y1, y0, name="xi")
    b.store("x", b.idx(), xi)
    return b.build()


def k10_difference_predictors(n: int = 1024) -> Loop:
    """Kernel 10 — difference predictors: a cascade of running
    differences through ten columns of a 2D array, all parallel across
    ``i`` (the original's serial dimension is the column index, which is
    unrolled here)."""
    b = LoopBuilder("livermore_k10")
    cols = 12
    b.array("px", dim_sizes=(cols, n))
    b.array("cx", dim_sizes=(n,))
    br = b.load("cx", b.idx(), name="br")
    prev = br
    for c in range(4, 10):
        pc = b.load("px", b.idx2(b.aff(offset=c), b.aff(1, 0)), name=f"p{c}")
        diff = b.sub(prev, pc, name=f"d{c}")
        b.store("px", b.idx2(b.aff(offset=c - 4), b.aff(1, 0)), diff)
        prev = diff
    return b.build()


LIVERMORE_KERNELS = {
    "k1_hydro": k1_hydro,
    "k3_inner_product": k3_inner_product,
    "k5_tridiag": k5_tridiag,
    "k7_equation_of_state": k7_equation_of_state,
    "k10_difference_predictors": k10_difference_predictors,
    "k11_first_sum": k11_first_sum,
    "k12_first_difference": k12_first_difference,
}
