"""Dataflow optimizations applied before vectorization."""

from repro.opt.pass_manager import MAX_PIPELINE_ROUNDS, optimize_loop
from repro.opt.passes import (
    STANDARD_PASSES,
    algebraic_simplification,
    common_subexpression_elimination,
    constant_propagation,
    copy_propagation,
    dead_code_elimination,
    loop_invariant_code_motion,
)

__all__ = [
    "MAX_PIPELINE_ROUNDS",
    "STANDARD_PASSES",
    "algebraic_simplification",
    "common_subexpression_elimination",
    "constant_propagation",
    "copy_propagation",
    "dead_code_elimination",
    "loop_invariant_code_motion",
    "optimize_loop",
]
