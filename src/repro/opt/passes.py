"""Scalar dataflow optimizations.

The paper applies a suite of standard optimizations before vectorization:
register promotion, common subexpression elimination, copy propagation,
constant propagation, dead code elimination, induction variable
optimization, and loop-invariant code motion.  These are the equivalents
for our IR (induction/addressing optimization happens structurally during
lowering, which materializes one pointer bump per array — the base+offset
end state the paper's unrolling achieves).

Each pass takes and returns a verified :class:`~repro.ir.loop.Loop`.
"""

from __future__ import annotations

from dataclasses import replace

from repro.interp.interpreter import _binary, _unary
from repro.ir.loop import Loop
from repro.ir.operations import Operation, OpKind
from repro.ir.values import Constant, Operand, VirtualRegister
from repro.opt.rewrite import rewrite_loop


def constant_propagation(loop: Loop) -> Loop:
    """Fold operations whose sources are all constants and propagate the
    results into their consumers."""
    mapping: dict[VirtualRegister, Operand] = {}
    body: list[Operation] = []
    for op in loop.body:
        srcs = tuple(
            mapping.get(s, s) if isinstance(s, VirtualRegister) else s
            for s in op.srcs
        )
        foldable = (
            op.kind.is_arith
            and op.kind is not OpKind.COPY
            and op.dest is not None
            and not op.is_vector
            and srcs
            and all(isinstance(s, Constant) for s in srcs)
        )
        if foldable:
            values = [s.value for s in srcs]  # type: ignore[union-attr]
            try:
                if len(values) == 2:
                    result = _binary(op.kind, op.dtype, values[0], values[1])
                else:
                    result = _unary(op.kind, op.dtype, values[0])
            except Exception:
                body.append(op if srcs == op.srcs else replace(op, srcs=srcs))
                continue
            if op.dtype.is_float:
                result = float(result)
            mapping[op.dest] = Constant(result, op.dtype)
            continue
        body.append(op if srcs == op.srcs else replace(op, srcs=srcs))
    return rewrite_loop(loop, body, mapping)


def copy_propagation(loop: Loop) -> Loop:
    """Replace uses of ``copy`` results with the copied value; drop the
    copies that become dead."""
    mapping: dict[VirtualRegister, Operand] = {}
    body: list[Operation] = []
    for op in loop.body:
        if (
            op.kind is OpKind.COPY
            and not op.is_vector
            and op.dest is not None
        ):
            mapping[op.dest] = op.srcs[0]
            continue
        body.append(op)
    return rewrite_loop(loop, body, mapping)


def algebraic_simplification(loop: Loop) -> Loop:
    """Identity/absorbing-element simplifications: ``x*1``, ``x+0``,
    ``x-0``, ``x/1`` collapse to the operand; ``x*2.0`` becomes ``x+x``
    (exact in IEEE arithmetic)."""
    mapping: dict[VirtualRegister, Operand] = {}
    body: list[Operation] = []

    def is_const(s: Operand, value: float) -> bool:
        return isinstance(s, Constant) and float(s.value) == value

    for op in loop.body:
        if op.dest is not None and op.kind.is_arith and not op.is_vector:
            a = op.srcs[0] if op.srcs else None
            b = op.srcs[1] if len(op.srcs) > 1 else None
            if op.kind is OpKind.MUL and b is not None:
                if is_const(b, 1.0):
                    mapping[op.dest] = a
                    continue
                if is_const(a, 1.0):
                    mapping[op.dest] = b
                    continue
                if is_const(b, 2.0) and op.dtype.is_float:
                    body.append(
                        replace(op, kind=OpKind.ADD, srcs=(a, a))
                    )
                    continue
            if op.kind is OpKind.ADD and b is not None:
                if is_const(b, 0.0):
                    mapping[op.dest] = a
                    continue
                if is_const(a, 0.0):
                    mapping[op.dest] = b
                    continue
            if op.kind is OpKind.SUB and b is not None and is_const(b, 0.0):
                mapping[op.dest] = a
                continue
            if op.kind is OpKind.DIV and b is not None and is_const(b, 1.0):
                mapping[op.dest] = a
                continue
        body.append(op)
    return rewrite_loop(loop, body, mapping)


def common_subexpression_elimination(loop: Loop) -> Loop:
    """Reuse earlier identical pure computations and redundant loads.

    Loads are value-numbered too; any store to the same array kills its
    loads (subscript-insensitive, conservative).  Commutative operands
    are normalized so ``a+b`` matches ``b+a``.
    """
    mapping: dict[VirtualRegister, Operand] = {}
    available: dict[object, VirtualRegister] = {}
    body: list[Operation] = []

    def operand_key(s: Operand) -> object:
        s = mapping.get(s, s) if isinstance(s, VirtualRegister) else s
        if isinstance(s, Constant):
            return ("const", s.type, s.value)
        return ("reg", s.name)

    for op in loop.body:
        if op.is_store:
            body.append(op)
            # Kill loads from this array.
            for key in [k for k in available if k[0] == "load" and k[1] == op.array]:
                del available[key]
            continue
        if op.dest is None or op.kind.is_overhead or op.is_vector:
            body.append(op)
            continue
        if op.is_load:
            key: object = ("load", op.array, op.subscript)
        elif op.kind.is_arith:
            srcs = [operand_key(s) for s in op.srcs]
            if op.kind.is_commutative:
                srcs = sorted(srcs, key=repr)
            key = ("arith", op.kind, op.dtype, tuple(srcs))
        else:
            body.append(op)
            continue
        if key in available:
            mapping[op.dest] = available[key]
            continue
        available[key] = op.dest
        body.append(op)
    return rewrite_loop(loop, body, mapping)


def dead_code_elimination(loop: Loop) -> Loop:
    """Drop operations whose results are never observed.  Roots: stores,
    live-outs, carried exits, and overhead operations."""
    live: set[VirtualRegister] = set(loop.live_out)
    for c in loop.carried:
        if isinstance(c.exit, VirtualRegister):
            live.add(c.exit)
    needed: list[Operation] = []
    for op in reversed(loop.body):
        keep = (
            op.is_store
            or op.kind.is_overhead
            or (op.dest is not None and op.dest in live)
        )
        if keep:
            needed.append(op)
            live.update(op.registers_read())
    return rewrite_loop(loop, list(reversed(needed)))


def loop_invariant_code_motion(loop: Loop) -> Loop:
    """Hoist pure computations whose operands are loop-invariant, and
    loads with loop-invariant subscripts from arrays the loop never
    stores to, into the preheader."""
    stored_arrays = {op.array for op in loop.body if op.is_store}
    constant_entries = {c.entry for c in loop.carried if c.exit == c.entry}
    invariant: set[VirtualRegister] = set(constant_entries)
    for op in loop.preheader:
        if op.dest is not None:
            invariant.add(op.dest)

    hoisted: list[Operation] = []
    body: list[Operation] = []
    changed = True
    remaining = list(loop.body)
    # Iterate to closure: hoisting one op can make its consumers invariant.
    while changed:
        changed = False
        kept: list[Operation] = []
        for op in remaining:
            operands_invariant = all(
                isinstance(s, Constant) or s in invariant for s in op.srcs
            )
            if (
                op.kind.is_arith
                and not op.is_vector
                and op.dest is not None
                and operands_invariant
            ):
                hoisted.append(op)
                invariant.add(op.dest)
                changed = True
                continue
            if (
                op.is_load
                and not op.is_vector
                and op.subscript is not None
                and op.subscript.is_loop_invariant
                and op.array not in stored_arrays
                and op.dest is not None
            ):
                hoisted.append(op)
                invariant.add(op.dest)
                changed = True
                continue
            kept.append(op)
        remaining = kept
    body = remaining
    return rewrite_loop(loop, body, extra_preheader=hoisted)


STANDARD_PASSES = (
    constant_propagation,
    copy_propagation,
    algebraic_simplification,
    common_subexpression_elimination,
    loop_invariant_code_motion,
    dead_code_elimination,
)
