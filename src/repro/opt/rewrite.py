"""Shared rewriting machinery for the optimization passes.

Passes are functional: they produce a new :class:`~repro.ir.loop.Loop`.
The helpers here apply operand substitutions consistently across the
body, carried exits, and live-outs, keeping the result verifier-clean.
"""

from __future__ import annotations

from dataclasses import replace

from repro.ir.loop import CarriedScalar, Loop
from repro.ir.operations import Operation
from repro.ir.values import Operand, VirtualRegister


def substitute_operand(
    operand: Operand, mapping: dict[VirtualRegister, Operand]
) -> Operand:
    seen: set[VirtualRegister] = set()
    while isinstance(operand, VirtualRegister) and operand in mapping:
        if operand in seen:
            raise ValueError(f"cyclic substitution through {operand}")
        seen.add(operand)
        operand = mapping[operand]
    return operand


def rewrite_loop(
    loop: Loop,
    body: list[Operation],
    mapping: dict[VirtualRegister, Operand] | None = None,
    extra_preheader: list[Operation] | None = None,
) -> Loop:
    """Rebuild ``loop`` with a new body, applying ``mapping`` to every
    operand position (body sources, carried exits, live-outs)."""
    mapping = mapping or {}

    def fix(op: Operation) -> Operation:
        new_srcs = tuple(substitute_operand(s, mapping) for s in op.srcs)
        if new_srcs != op.srcs:
            return replace(op, srcs=new_srcs)
        return op

    new_body = tuple(fix(op) for op in body)
    new_preheader = tuple(loop.preheader) + tuple(extra_preheader or ())
    new_carried = []
    for c in loop.carried:
        exit_value = substitute_operand(c.exit, mapping)
        new_carried.append(CarriedScalar(c.entry, exit_value, c.init))

    new_live_out = []
    for reg in loop.live_out:
        value = substitute_operand(reg, mapping)
        if isinstance(value, VirtualRegister):
            new_live_out.append(value)
        else:
            # A live-out folded to a constant no longer needs a register.
            continue

    result = Loop(
        name=loop.name,
        body=new_body,
        arrays=dict(loop.arrays),
        carried=tuple(new_carried),
        live_out=tuple(dict.fromkeys(new_live_out)),
        preheader=new_preheader,
        increment=loop.increment,
        symbols=dict(loop.symbols),
    )
    from repro.ir.verifier import verify_loop

    verify_loop(result)
    return result
