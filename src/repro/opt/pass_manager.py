"""Pass manager: run the standard optimization pipeline to fixpoint."""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.ir.loop import Loop
from repro.opt.passes import STANDARD_PASSES

LoopPass = Callable[[Loop], Loop]

MAX_PIPELINE_ROUNDS = 8


def _fingerprint(loop: Loop) -> tuple:
    return (
        tuple(
            (op.kind, op.dtype, op.dest, op.srcs, op.array, op.subscript)
            for op in loop.body
        ),
        tuple(
            (op.kind, op.dtype, op.dest, op.srcs, op.array, op.subscript)
            for op in loop.preheader
        ),
        tuple((c.entry, c.exit, c.init) for c in loop.carried),
        loop.live_out,
    )


def optimize_loop(
    loop: Loop,
    passes: Sequence[LoopPass] = STANDARD_PASSES,
    max_rounds: int = MAX_PIPELINE_ROUNDS,
) -> Loop:
    """Apply the pass pipeline repeatedly until nothing changes."""
    current = loop
    previous = None
    for _ in range(max_rounds):
        previous = _fingerprint(current)
        for p in passes:
            current = p(current)
        if _fingerprint(current) == previous:
            break
    return current
