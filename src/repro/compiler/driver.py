"""End-to-end compilation driver (the paper's Figure 3 flow).

``compile_loop`` takes a source loop and a strategy and runs dependence
analysis, (selective) vectorization, loop transformation, modulo
scheduling, and register allocation, producing a :class:`CompiledLoop`
that can report timing for any trip count and execute functionally for
semantics verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dependence.analysis import analyze_loop
from repro.interp.interpreter import run_loop
from repro.interp.memory import MemoryImage
from repro.ir.loop import Loop
from repro.machine.machine import MachineDescription
from repro.observability.recorder import active_recorder, maybe_span
from repro.pipeline.list_schedule import list_schedule_length
from repro.pipeline.scheduler import ModuloSchedule, modulo_schedule
from repro.regalloc.allocator import AllocationResult, allocate_kernel
from repro.simulate.timing import UnitTiming, aggregate_cycles
from repro.vectorize.communication import Side
from repro.vectorize.full import full_assignment
from repro.vectorize.partition import (
    PartitionConfig,
    PartitionResult,
    partition_operations,
)
from repro.vectorize.traditional import distribute_loop
from repro.vectorize.transform import TransformResult, transform_loop
from repro.compiler.strategies import Strategy

MAX_ALLOCATION_RETRIES = 3


class RegisterAllocationError(RuntimeError):
    """Register allocation failed after every retry and no spill could
    relieve the pressure."""


@dataclass
class CompiledUnit:
    """One scheduled loop (a distributed piece, or the whole loop)."""

    transform: TransformResult
    schedule: ModuloSchedule
    allocation: AllocationResult
    timing: UnitTiming

    @property
    def ii(self) -> int:
        return self.schedule.ii

    @property
    def factor(self) -> int:
        return self.transform.factor


@dataclass
class ExecutionResult:
    """Functional outcome of one compiled-loop invocation."""

    live_outs: dict[str, object] = field(default_factory=dict)
    carried: dict[str, object] = field(default_factory=dict)


@dataclass
class CompiledLoop:
    """A loop compiled under one strategy."""

    source: Loop
    machine: MachineDescription
    strategy: Strategy
    units: list[CompiledUnit]
    partition: PartitionResult | None = None
    # Translation-validation telemetry (populated by run_translation_checks).
    check_ms: float = 0.0
    check_findings: int = 0

    def invocation_cycles(self, trip_count: int) -> int:
        return aggregate_cycles([u.timing for u in self.units], trip_count)

    def ii_per_iteration(self) -> float:
        """Steady-state initiation interval per original iteration,
        aggregated across distributed loops."""
        return sum(u.ii / u.factor for u in self.units)

    def res_mii_per_iteration(self) -> float:
        return sum(u.schedule.res_mii / u.factor for u in self.units)

    def rec_mii_per_iteration(self) -> float:
        return sum(u.schedule.rec_mii / u.factor for u in self.units)

    @property
    def is_resource_limited(self) -> bool:
        """True when no unit's II is pinned by a recurrence — the class of
        loops Table 3 reports on."""
        return all(u.schedule.res_mii >= u.schedule.rec_mii for u in self.units)

    @property
    def n_vector_ops(self) -> int:
        return sum(u.transform.n_vector_ops for u in self.units)

    @property
    def n_transfers(self) -> int:
        return sum(u.transform.n_transfers for u in self.units)

    # ------------------------------------------------------------------

    def execute(
        self,
        memory: MemoryImage,
        trip_count: int,
        symbols: dict[str, int] | None = None,
    ) -> ExecutionResult:
        """Run the compiled loop functionally (distribution order for
        traditional vectorization: each unit covers all iterations before
        the next starts)."""
        result = ExecutionResult()
        for c in self.source.carried:
            result.carried[c.entry.name] = c.init
        for unit in self.units:
            tr = unit.transform
            factor = tr.factor
            main_iters = trip_count // factor
            residual = trip_count % factor

            def carried_init_for(loop: Loop) -> dict[str, object]:
                names = {c.entry.name for c in loop.carried}
                return {
                    name: value
                    for name, value in result.carried.items()
                    if name in names
                }

            if main_iters > 0:
                pre_carried = dict(result.carried)
                run = run_loop(
                    tr.loop,
                    memory,
                    0,
                    main_iters,
                    symbols,
                    carried_init=carried_init_for(tr.loop),
                )
                result.carried.update(run.carried)
                # Fold vectorized reductions: combine the partial-sum lanes
                # with the value the scalar held before the loop.
                for entry_name, (kind, acc_name) in tr.reduction_combines.items():
                    from repro.vectorize.reduction import combine_lanes

                    lanes = run.carried[acc_name]
                    init = pre_carried.get(entry_name)
                    result.carried[entry_name] = combine_lanes(kind, lanes, init)
                    result.carried.pop(acc_name, None)
                for name, spec in tr.liveout_map.items():
                    if spec.combine is not None:
                        result.live_outs[name] = result.carried[spec.combine_entry]
                    else:
                        result.live_outs[name] = run.value_of(
                            spec.register, spec.lane
                        )
            if residual > 0:
                cleanup = tr.cleanup if factor > 1 else tr.loop
                cleanup_map = (
                    tr.cleanup_liveout_map if factor > 1 else tr.liveout_map
                )
                assert cleanup is not None and cleanup_map is not None
                run = run_loop(
                    cleanup,
                    memory,
                    main_iters * factor,
                    residual,
                    symbols,
                    carried_init=carried_init_for(cleanup),
                )
                result.carried.update(run.carried)
                for name, spec in cleanup_map.items():
                    result.live_outs[name] = run.value_of(spec.register, spec.lane)
        return result


# ----------------------------------------------------------------------


def _overflowing_files(allocation: AllocationResult) -> dict[str, list[int]]:
    return {
        p.file: [p.max_live, p.capacity]
        for p in allocation.pressures.values()
        if not p.fits
    }


def _compile_unit(
    transform: TransformResult,
    machine: MachineDescription,
) -> CompiledUnit:
    rec = active_recorder()
    with maybe_span(
        rec, "compile_unit", loop=transform.loop.name, factor=transform.factor
    ):
        with maybe_span(rec, "dependence", loop=transform.loop.name):
            dep = analyze_loop(transform.loop, machine.vector_length)
        min_ii: int | None = None
        for attempt in range(MAX_ALLOCATION_RETRIES + 1):
            schedule = modulo_schedule(
                transform.loop, dep.graph, machine, min_ii=min_ii
            )
            allocation = allocate_kernel(schedule, dep.graph)
            if allocation.ok or attempt == MAX_ALLOCATION_RETRIES:
                break
            # Register pressure exceeded a file: retry at a longer II, which
            # shortens cross-stage lifetimes.
            min_ii = schedule.ii + 1
            if rec is not None:
                rec.count("regalloc.retries")
                rec.event(
                    "regalloc.retry",
                    loop=transform.loop.name,
                    attempt=attempt + 1,
                    ii=schedule.ii,
                    next_min_ii=min_ii,
                    overflow=_overflowing_files(allocation),
                )

        if not allocation.ok:
            # Last resort: spill the longest-lived values to memory and
            # recompile.  The spill traffic competes for the load/store units,
            # so the schedule is redone from scratch.
            from dataclasses import replace as dc_replace

            from repro.regalloc.spill import spill_for_pressure

            with maybe_span(rec, "spill", loop=transform.loop.name):
                spilled = spill_for_pressure(
                    transform.loop, schedule, dep.graph, allocation
                )
            if spilled is None:
                raise RegisterAllocationError(
                    f"register allocation for loop {transform.loop.name!r} "
                    f"failed at II={schedule.ii} after "
                    f"{MAX_ALLOCATION_RETRIES} II retries, and no value is "
                    f"spillable; over-capacity files (max_live/capacity): "
                    f"{_overflowing_files(allocation)}"
                )
            if rec is not None:
                rec.count("regalloc.spill_rounds")
                rec.event(
                    "regalloc.spill",
                    loop=transform.loop.name,
                    ii=schedule.ii,
                    overflow=_overflowing_files(allocation),
                )
            transform = dc_replace(transform, loop=spilled)
            dep = analyze_loop(spilled, machine.vector_length)
            schedule = modulo_schedule(spilled, dep.graph, machine)
            allocation = allocate_kernel(schedule, dep.graph)

        cleanup_cycles = 0
        if transform.cleanup is not None:
            with maybe_span(rec, "cleanup_schedule", loop=transform.loop.name):
                cdep = analyze_loop(transform.cleanup, machine.vector_length)
                cleanup_cycles = list_schedule_length(
                    transform.cleanup, cdep.graph, machine
                )

        timing = UnitTiming(
            ii=schedule.ii,
            stages=schedule.stage_count,
            factor=transform.factor,
            cleanup_cycles=cleanup_cycles,
            preheader_cycles=len(transform.loop.preheader),
        )
        if rec is not None:
            rec.event(
                "unit.compiled",
                loop=transform.loop.name,
                ii=schedule.ii,
                res_mii=schedule.res_mii,
                rec_mii=schedule.rec_mii,
                stages=schedule.stage_count,
                factor=transform.factor,
                allocation_ok=allocation.ok,
            )
        return CompiledUnit(
            transform=transform,
            schedule=schedule,
            allocation=allocation,
            timing=timing,
        )


def check_env_enabled() -> bool:
    """Whether ``REPRO_CHECK`` requests in-process translation validation."""
    import os

    return os.environ.get("REPRO_CHECK", "") not in ("", "0")


def run_translation_checks(
    compiled: CompiledLoop, *, raise_on_error: bool = False
):
    """Run the translation-validation checkers over ``compiled``.

    Observe-only with respect to compilation state: the checkers read
    the units, they never mutate them.  Records wall-time and finding
    count on the compiled loop for telemetry, and optionally raises
    :class:`~repro.check.TranslationValidationError` on any ERROR.
    """
    import time

    from repro.check import TranslationValidationError, run_all_checks

    start = time.perf_counter()
    report = run_all_checks(compiled)
    compiled.check_ms = (time.perf_counter() - start) * 1000.0
    compiled.check_findings = len(report.findings)
    if raise_on_error and not report.ok:
        raise TranslationValidationError(report)
    return report


def compile_loop(
    loop: Loop,
    machine: MachineDescription,
    strategy: Strategy,
    partition_config: PartitionConfig | None = None,
    baseline_unroll: int | None = None,
    optimize: bool = False,
    allow_reassociation: bool = False,
) -> CompiledLoop:
    """Compile ``loop`` under ``strategy`` for ``machine``; with
    ``REPRO_CHECK`` set, validate the result in-process and raise on
    any ERROR finding.  See :func:`_compile_loop` for the parameters."""
    compiled = _compile_loop(
        loop,
        machine,
        strategy,
        partition_config=partition_config,
        baseline_unroll=baseline_unroll,
        optimize=optimize,
        allow_reassociation=allow_reassociation,
    )
    if check_env_enabled():
        run_translation_checks(compiled, raise_on_error=True)
    return compiled


def _compile_loop(
    loop: Loop,
    machine: MachineDescription,
    strategy: Strategy,
    partition_config: PartitionConfig | None = None,
    baseline_unroll: int | None = None,
    optimize: bool = False,
    allow_reassociation: bool = False,
) -> CompiledLoop:
    """Compile ``loop`` under ``strategy`` for ``machine``.

    ``optimize`` runs the standard dataflow pipeline (constant/copy
    propagation, CSE, LICM, DCE) before vectorization, as the paper does;
    the workload kernels are already in optimized form, so it defaults
    off there.

    ``allow_reassociation`` enables the Section 6 extension: floating
    point reductions may be computed as per-lane partial accumulations
    (reordering the operations), letting otherwise serial reduction loops
    vectorize fully.
    """
    rec = active_recorder()
    with maybe_span(
        rec,
        "compile_loop",
        loop=loop.name,
        strategy=strategy.value,
        machine=machine.name,
    ):
        if optimize:
            from repro.opt.pass_manager import optimize_loop

            with maybe_span(rec, "optimize", loop=loop.name):
                loop = optimize_loop(loop)
        vl = machine.vector_length
        with maybe_span(rec, "dependence", loop=loop.name):
            dep = analyze_loop(loop, vl)

        if strategy is Strategy.BASELINE:
            factor = baseline_unroll if baseline_unroll is not None else vl
            assignment = {op.uid: Side.SCALAR for op in loop.body}
            with maybe_span(rec, "transform", loop=loop.name):
                tr = transform_loop(
                    dep, machine, assignment, factor, suffix=".base"
                )
            return CompiledLoop(
                loop, machine, strategy, [_compile_unit(tr, machine)]
            )

        if strategy is Strategy.FULL:
            assignment = full_assignment(dep)
            factor = vl
            with maybe_span(rec, "transform", loop=loop.name):
                tr = transform_loop(
                    dep, machine, assignment, factor, suffix=".full"
                )
            return CompiledLoop(
                loop, machine, strategy, [_compile_unit(tr, machine)]
            )

        if strategy is Strategy.SELECTIVE:
            if allow_reassociation:
                from repro.vectorize.reduction import vectorize_reduction_loop

                tr_red = vectorize_reduction_loop(dep, machine)
                if tr_red is not None:
                    return CompiledLoop(
                        loop, machine, strategy, [_compile_unit(tr_red, machine)]
                    )
            partition = partition_operations(dep, machine, partition_config)
            with maybe_span(rec, "transform", loop=loop.name):
                tr = transform_loop(
                    dep, machine, partition.assignment, vl, suffix=".sel"
                )
            return CompiledLoop(
                loop,
                machine,
                strategy,
                [_compile_unit(tr, machine)],
                partition=partition,
            )

        assert strategy is Strategy.TRADITIONAL
        units: list[CompiledUnit] = []
        for dist in distribute_loop(dep, machine):
            sub_dep = analyze_loop(dist.loop, vl)
            if dist.vector:
                assignment = {
                    op.uid: (
                        Side.VECTOR
                        if sub_dep.is_vectorizable(op)
                        else Side.SCALAR
                    )
                    for op in dist.loop.body
                }
                factor = vl
            else:
                assignment = {op.uid: Side.SCALAR for op in dist.loop.body}
                factor = 1
            with maybe_span(rec, "transform", loop=dist.loop.name):
                tr = transform_loop(
                    sub_dep, machine, assignment, factor, suffix=".trad"
                )
            units.append(_compile_unit(tr, machine))
        return CompiledLoop(loop, machine, strategy, units)


# ----------------------------------------------------------------------
# Strategy comparison (the --explain entry point)


def compare_strategies(
    loop: Loop,
    machine: MachineDescription,
    strategies: tuple[Strategy, ...] | None = None,
    optimize: bool = False,
) -> dict[str, CompiledLoop]:
    """Compile ``loop`` under every strategy and remark on the outcome.

    Returns ``{strategy value: CompiledLoop}``.  With a recorder active,
    emits one ``strategy`` remark per strategy (its steady-state cost and
    what it spent to get there) plus a verdict remark explaining why the
    winner won — the Figure 1 / Table 2 argument, per loop.
    """
    from repro.compiler.strategies import ALL_STRATEGIES

    strategies = strategies or ALL_STRATEGIES
    compiled = {
        s.value: compile_loop(loop, machine, s, optimize=optimize)
        for s in strategies
    }
    rec = active_recorder()
    if rec is not None:
        _emit_strategy_remarks(rec, loop, compiled)
    return compiled


def _strategy_shape(c: CompiledLoop) -> str:
    """One-phrase structural summary of a compiled strategy."""
    parts = [f"{len(c.units)} loop(s)"]
    parts.append(f"{c.n_vector_ops} vector op(s)")
    if c.n_transfers:
        parts.append(f"{c.n_transfers} transfer(s)")
    parts.append(
        "resource-limited" if c.is_resource_limited else "recurrence-limited"
    )
    return ", ".join(parts)


def _emit_strategy_remarks(
    rec, loop: Loop, compiled: dict[str, CompiledLoop]
) -> None:
    per_iter = {label: c.ii_per_iteration() for label, c in compiled.items()}
    best = min(per_iter, key=per_iter.get)
    for label, c in compiled.items():
        rec.remark(
            "driver",
            loop.name,
            "strategy-cost",
            f"{label}: II/iteration {per_iter[label]:.2f} "
            f"({_strategy_shape(c)})",
            strategy=label,
            ii_per_iteration=per_iter[label],
            res_mii_per_iteration=c.res_mii_per_iteration(),
            rec_mii_per_iteration=c.rec_mii_per_iteration(),
            units=len(c.units),
            vector_ops=c.n_vector_ops,
            transfers=c.n_transfers,
            resource_limited=c.is_resource_limited,
        )
    if "selective" not in per_iter:
        return
    sel = per_iter["selective"]
    rivals = {k: v for k, v in per_iter.items() if k != "selective"}
    if not rivals:
        return
    best_rival = min(rivals, key=rivals.get)
    margin = rivals[best_rival] - sel
    if margin > 1e-9:
        verdict, vs = "selective-won", f"beats {best_rival}"
    elif margin < -1e-9:
        verdict, vs = "selective-lost", f"loses to {best_rival}"
    else:
        verdict, vs = "selective-tied", f"ties {best_rival}"
    explanation = []
    if "full" in compiled:
        full = compiled["full"]
        selc = compiled["selective"]
        kept_scalar = full.n_vector_ops - selc.n_vector_ops
        if kept_scalar > 0:
            explanation.append(
                f"kept {kept_scalar} op(s) scalar "
                f"(saving {max(0, full.n_transfers - selc.n_transfers)} "
                "transfer(s))"
            )
    if "traditional" in compiled and len(compiled["traditional"].units) > 1:
        explanation.append(
            "avoided distributing the loop into "
            f"{len(compiled['traditional'].units)} pieces"
        )
    rec.remark(
        "driver",
        loop.name,
        verdict,
        f"selective ({sel:.2f} II/iteration) {vs} "
        f"({rivals[best_rival]:.2f})"
        + (": " + "; ".join(explanation) if explanation else ""),
        selective=sel,
        best_rival=best_rival,
        best_rival_ii=rivals[best_rival],
        winner=best,
    )
