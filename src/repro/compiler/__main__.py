"""Command-line compiler driver.

Compile a loop written in the DSL and inspect every stage::

    python -m repro.compiler path/to/kernel.loop
    python -m repro.compiler kernel.loop --strategy selective --schedule
    python -m repro.compiler kernel.loop --machine toy --all --trip 100
    echo 'array x(64) ...' | python -m repro.compiler - --partition

Options select what is printed: the (optimized) IR, the dependence
analysis, the partition, the transformed loop, the kernel schedule, the
unrolled pipeline, timing, and a functional run.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.compiler.service import (
    CompileRequest,
    compile_one,
    effort_counters,
)
from repro.compiler.strategies import ALL_STRATEGIES, Strategy
from repro.dependence.analysis import analyze_loop
from repro.frontend import parse_loop
from repro.interp.memory import memory_for_loop
from repro.machine.configs import MACHINE_FACTORIES as MACHINES
from repro.machine.configs import machine_by_name
from repro.observability import (
    recording,
    render_stats_table,
    write_trace,
)
from repro.pipeline.kernel import kernel_listing, pipeline_listing
from repro.vectorize.communication import Side


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.compiler",
        description="Compile a DSL loop and inspect the pipeline stages.",
    )
    parser.add_argument("source", help="DSL file, or '-' for stdin")
    parser.add_argument(
        "--machine", choices=sorted(MACHINES), default="paper"
    )
    parser.add_argument(
        "--strategy",
        choices=[s.value for s in ALL_STRATEGIES],
        default="selective",
    )
    parser.add_argument("--trip", type=int, default=200, help="trip count for timing/run")
    parser.add_argument("--optimize", action="store_true", help="run dataflow opts first")
    parser.add_argument("--ir", action="store_true", help="print the source IR")
    parser.add_argument("--deps", action="store_true", help="print dependence verdicts")
    parser.add_argument("--partition", action="store_true", help="print the partition")
    parser.add_argument("--transformed", action="store_true", help="print transformed loop(s)")
    parser.add_argument("--schedule", action="store_true", help="print kernel schedule(s)")
    parser.add_argument("--pipeline", action="store_true", help="print the unrolled pipeline")
    parser.add_argument("--run", action="store_true", help="execute functionally")
    parser.add_argument("--all", action="store_true", help="print everything")
    parser.add_argument(
        "--explain",
        action="store_true",
        help="compile under every strategy and print the II provenance "
        "report: MII bounds with pressure tables and critical cycles, "
        "partition reason codes, reservation tables, strategy verdicts",
    )
    parser.add_argument(
        "--oracle",
        nargs="?",
        const="default",
        default=None,
        metavar="NODES",
        help="certify the compiled result against the exact-optimality "
        "oracle (branch-and-bound partition + exhaustive modulo "
        "schedule); optional NODES overrides the search-node budget "
        "(default: REPRO_ORACLE_BUDGET, then 200000). Combines with "
        "--explain to add a certification section to the report",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="run translation validation over the compiled result (the "
        "independent stage checkers re-derive every dependence, "
        "resource, and allocation obligation) and exit nonzero on any "
        "ERROR finding. With --explain, adds a validation section",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print phase timings, search counters, and events after compiling",
    )
    parser.add_argument(
        "--trace-json",
        metavar="PATH",
        help="write a machine-readable JSON trace of the compilation",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="profile the compilation: a call tree of per-phase wall time "
        "and deterministic effort counters (covers --check and --oracle "
        "phases too). With PATH, write the profile JSON for "
        "python -m repro.profiling; without, print the tree",
    )
    parser.add_argument(
        "--ledger",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help="append this compilation to the run ledger (directory: DIR, "
        "else the REPRO_LEDGER environment variable, else .repro-ledger); "
        "setting REPRO_LEDGER alone also enables recording",
    )
    parser.add_argument(
        "--run-label",
        default="",
        metavar="LABEL",
        help="free-form label stamped on the ledger record",
    )
    return parser


def _append_ledger_record(
    args: argparse.Namespace,
    loop,
    strategy: Strategy,
    compiled,
    check_report,
    *,
    wall_s: float,
) -> None:
    """Record this single-loop compilation in the run ledger.  The
    record shares the evaluation harness's shape, so the dashboard
    queries treat ad-hoc compiles and full-corpus runs uniformly."""
    from repro.ledger import Ledger, RunRecord
    from repro.ledger.record import (
        current_git_sha,
        digest_of,
        new_run_id,
        utc_now_iso,
    )

    bench = (
        "stdin" if args.source == "-" else os.path.basename(args.source)
    )
    effort = effort_counters(compiled)
    check = None
    if check_report is not None:
        check = {
            "units": 1,
            "errors": len(check_report.errors()),
            "findings": len(check_report.findings),
        }
    config = {
        "source": args.source,
        "machine": args.machine,
        "strategy": strategy.value,
        "trip": args.trip,
        "optimize": bool(args.optimize),
    }
    loops = {
        bench: {
            loop.name: {
                strategy.value: {
                    "ii": round(compiled.ii_per_iteration(), 6)
                }
            }
        }
    }
    created_at = utc_now_iso()
    record = RunRecord(
        run_id=new_run_id(created_at),
        created_at=created_at,
        label=args.run_label,
        git_sha=current_git_sha(),
        config=config,
        config_digest=digest_of(config),
        corpus_digest=digest_of({bench: [loop.name]}),
        experiments={
            "compile": {
                bench: {
                    "ii_per_iteration": round(
                        compiled.ii_per_iteration(), 6
                    ),
                    "cycles": compiled.invocation_cycles(args.trip),
                }
            }
        },
        loops=loops,
        effort=effort,
        wall_s=round(wall_s, 3),
        check=check,
        profile=args.profile if args.profile not in (None, "-") else None,
    )
    ledger = Ledger(
        args.ledger or os.environ.get("REPRO_LEDGER") or Ledger().root
    )
    ledger.append(record)
    print(f"recorded run {record.run_id} in {ledger.runs_path}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.all:
        for flag in ("ir", "deps", "partition", "transformed", "schedule", "run"):
            setattr(args, flag, True)

    source = (
        sys.stdin.read()
        if args.source == "-"
        else open(args.source, encoding="utf-8").read()
    )
    loop = parse_loop(source)
    machine = machine_by_name(args.machine)
    strategy = Strategy(args.strategy)

    oracle_budget = None
    if args.oracle is not None:
        from repro.oracle import OracleBudget

        nodes = None if args.oracle == "default" else int(args.oracle)
        oracle_budget = OracleBudget.from_env(override_nodes=nodes)

    if args.explain:
        from repro.compiler.explain import explain_loop

        print(
            explain_loop(
                loop,
                machine,
                optimize=args.optimize,
                trip_count=args.trip,
                oracle_budget=oracle_budget,
                check=args.check,
            )
        )
        return 0

    if args.ir:
        print(loop)
        print()

    if args.deps:
        dep = analyze_loop(loop, machine.vector_length)
        print("dependence analysis:")
        for op in loop.body:
            verdict = "vectorizable" if dep.is_vectorizable(op) else "serial"
            print(f"  [{verdict:>12}] {op}")
        print()

    def certify(compiled):
        if oracle_budget is None:
            return None
        from repro.oracle.gap import certify_compiled

        return certify_compiled(loop, machine, compiled, budget=oracle_budget)

    def compile_and_analyze():
        """Compile, certify, and validate — one unit so the whole
        pipeline lands inside a single recording scope and the profile
        attributes the --oracle and --check phases too."""
        compiled = compile_one(
            CompileRequest(
                loop=loop,
                machine=machine,
                strategy=strategy,
                optimize=args.optimize,
            )
        ).compiled
        certificate = certify(compiled)
        check_report = None
        if args.check:
            from repro.compiler.driver import run_translation_checks

            check_report = run_translation_checks(compiled)
        return compiled, certificate, check_report

    recorder = None
    compile_start = time.perf_counter()
    if args.stats or args.trace_json or args.profile is not None:
        with recording() as recorder:
            compiled, certificate, check_report = compile_and_analyze()
    else:
        compiled, certificate, check_report = compile_and_analyze()
    compile_wall_s = time.perf_counter() - compile_start

    if args.partition and compiled.partition is not None:
        p = compiled.partition
        print(
            f"partition: cost {p.cost} (all-scalar {p.scalar_cost}), "
            f"{p.iterations} KL iterations, trace {p.history}"
        )
        for op in loop.body:
            side = p.assignment.get(op.uid)
            tag = "VECTOR" if side is Side.VECTOR else "scalar"
            print(f"  [{tag}] {op}")
        print()

    if args.transformed:
        for unit in compiled.units:
            print(unit.transform.loop)
            print()

    if args.schedule:
        for unit in compiled.units:
            print(kernel_listing(unit.schedule))
            pressures = {
                f: p.max_live for f, p in unit.allocation.pressures.items()
            }
            print(f"  register pressure: {pressures}")
            print()

    if args.pipeline:
        for unit in compiled.units:
            print(pipeline_listing(unit.schedule, min(6, max(2, args.trip))))
            print()

    print(
        f"{strategy.value} on {machine.name}: II/iteration = "
        f"{compiled.ii_per_iteration():.2f}, "
        f"{compiled.invocation_cycles(args.trip)} cycles for "
        f"{args.trip} iterations"
    )

    if certificate is not None:
        from repro.oracle.gap import render_certificate

        print()
        print(render_certificate(certificate))

    check_failed = False
    if check_report is not None:
        print()
        print(check_report.render_text())
        check_failed = not check_report.ok

    if args.run:
        memory = memory_for_loop(loop, seed=42)
        result = compiled.execute(memory, args.trip)
        for name, value in sorted(result.carried.items()):
            print(f"  carried {name} = {value}")
        for name, value in sorted(result.live_outs.items()):
            print(f"  result {name} = {value}")

    if recorder is not None:
        if args.stats:
            print()
            print(render_stats_table(recorder))
        if args.trace_json:
            write_trace(recorder, args.trace_json)
            print(f"\nwrote trace to {args.trace_json}")
        if args.profile is not None:
            from repro.profiling import Profile, render_tree, write_profile

            profile = Profile.from_recorder(recorder)
            if args.profile == "-":
                print()
                print(render_tree(profile, counters=True))
            else:
                write_profile(profile, args.profile)
                print(f"\nwrote profile to {args.profile}")

    if args.ledger is not None or os.environ.get("REPRO_LEDGER"):
        _append_ledger_record(
            args,
            loop,
            strategy,
            compiled,
            check_report,
            wall_s=compile_wall_s,
        )
    return 1 if check_failed else 0


if __name__ == "__main__":
    sys.exit(main())
