"""End-to-end compilation: strategies and driver."""

from repro.compiler.driver import (
    CompiledLoop,
    CompiledUnit,
    ExecutionResult,
    compile_loop,
)
from repro.compiler.strategies import ALL_STRATEGIES, Strategy

__all__ = [
    "ALL_STRATEGIES",
    "CompiledLoop",
    "CompiledUnit",
    "ExecutionResult",
    "Strategy",
    "compile_loop",
]
