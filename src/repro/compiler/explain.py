"""Schedule explainability — the ``--explain`` rendering pipeline.

``explain_loop`` compiles one loop under every strategy inside a scoped
recording session and assembles a self-contained report answering the
paper's central question for that loop: *why did the II come out the way
it did?*  For each strategy it shows

* the ResMII bound with its per-resource pressure table and bottleneck,
* the RecMII bound with the critical recurrence cycle (op uids),
* the per-operation partition remarks (reason codes) for selective,
* the ASCII modulo reservation table of the final kernel,

and closes with the strategy-comparison verdict remarks.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from repro.compiler.driver import CompiledLoop, compare_strategies
from repro.compiler.strategies import ALL_STRATEGIES, Strategy
from repro.ir.loop import Loop
from repro.ir.printer import format_loop
from repro.machine.machine import MachineDescription
from repro.observability.recorder import Recorder, recording
from repro.pipeline.mii import RecMII, ResMII
from repro.pipeline.reservation import render_reservation_table


def _render_res_bound(res: ResMII | int, indent: str) -> list[str]:
    lines = [f"{indent}ResMII {int(res)}"]
    if isinstance(res, ResMII) and res.pressure:
        lines[-1] += " — pressure table (busy cycles per resource instance):"
        for inst, weight in res.pressure_rows():
            mark = "  <- bottleneck" if inst == res.bottleneck else ""
            lines.append(f"{indent}  {inst:<10} {weight:>3}{mark}")
    return lines


def _render_rec_bound(
    rec_bound: RecMII | int, ops: dict[int, object], indent: str
) -> list[str]:
    line = f"{indent}RecMII {int(rec_bound)}"
    if isinstance(rec_bound, RecMII) and rec_bound.cycle:
        line += (
            f" — critical cycle {rec_bound.describe_cycle(ops)} "
            f"(delay {rec_bound.cycle_delay} / "
            f"distance {rec_bound.cycle_distance})"
        )
    else:
        line += " — no recurrence constrains this loop"
    return [line]


def _render_strategy(
    label: str, compiled: CompiledLoop, recorder: Recorder
) -> list[str]:
    lines = [
        f"== strategy {label}: II/iteration = "
        f"{compiled.ii_per_iteration():.2f} =="
    ]
    partition_remarks = recorder.events.remarks_for(
        loop=compiled.source.name, pass_name="partition"
    )
    if label == Strategy.SELECTIVE.value and partition_remarks:
        lines.append("  partition decisions:")
        for r in partition_remarks:
            lines.append(f"    [{r.reason}] {r.message}")
    for unit in compiled.units:
        schedule = unit.schedule
        ops = {op.uid: op for op in unit.transform.loop.body}
        lines.append(
            f"  unit {unit.transform.loop.name}: II={schedule.ii}, "
            f"{schedule.stage_count} stages, factor {unit.factor}"
        )
        lines += _render_res_bound(schedule.res_mii, "    ")
        lines += _render_rec_bound(schedule.rec_mii, ops, "    ")
        for r in recorder.events.remarks_for(
            loop=unit.transform.loop.name, pass_name="scheduler"
        ):
            lines.append(f"    [{r.reason}] {r.message}")
        lines += [
            "    " + row
            for row in render_reservation_table(schedule).splitlines()
        ]
    return lines


def render_explanation(
    loop: Loop,
    compiled: dict[str, CompiledLoop],
    recorder: Recorder,
) -> str:
    """Assemble the full --explain report from an explained compilation."""
    sections: list[str] = [format_loop(loop), ""]
    for label, c in compiled.items():
        sections += _render_strategy(label, c, recorder)
        sections.append("")
    certificates = recorder.events.remarks_for(
        loop=loop.name, pass_name="oracle"
    )
    if certificates:
        sections.append("== optimality certificates ==")
        for r in certificates:
            sections.append(f"  [{r.reason}] {r.message}")
        sections.append("")
    validations = recorder.events.remarks_for(
        loop=loop.name, pass_name="check"
    )
    if validations:
        sections.append("== validation ==")
        for r in validations:
            sections.append(f"  [{r.reason}] {r.message}")
        sections.append("")
    verdicts = recorder.events.remarks_for(loop=loop.name, pass_name="driver")
    if verdicts:
        sections.append("== strategy comparison ==")
        for r in verdicts:
            sections.append(f"  [{r.reason}] {r.message}")
    return "\n".join(sections)


def explain_loop(
    loop: Loop,
    machine: MachineDescription,
    strategies: tuple[Strategy, ...] | None = None,
    optimize: bool = False,
    trip_count: int | None = None,
    oracle_budget=None,
    check: bool = False,
) -> str:
    """Compile ``loop`` under every strategy and explain the outcome.

    With ``oracle_budget`` (an :class:`repro.oracle.OracleBudget`), the
    exact-optimality oracle certifies the selective compilation and the
    report grows an "optimality certificates" section.  With ``check``,
    translation validation runs over every strategy's result and the
    report grows a "validation" section.
    """
    if trip_count is not None and loop.trip_count is None:
        loop = dc_replace(loop, trip_count=trip_count)
    with recording() as recorder:
        compiled = compare_strategies(
            loop, machine, strategies or ALL_STRATEGIES, optimize=optimize
        )
        if oracle_budget is not None:
            from repro.oracle.gap import certify_compiled

            selective = compiled.get(Strategy.SELECTIVE.value)
            if selective is not None:
                certify_compiled(
                    loop, machine, selective, budget=oracle_budget
                )
        if check:
            from repro.compiler.driver import run_translation_checks

            for c in compiled.values():
                run_translation_checks(c)
    return render_explanation(loop, compiled, recorder)
