"""The pure compile entry point every caller shares.

Historically the compile-request path was split: the evaluation
harness carried its own ``(loop, machine, strategy, partition_config)``
tuples into pool workers, the sweep runner called
:func:`~repro.compiler.driver.compile_loop` directly, and the CLI did
the same with a different knob subset.  :class:`CompileRequest` names
that input once — everything that determines a compilation's output —
and :func:`compile_one` is the single function the CLI, the
:class:`~repro.evaluation.experiments.Evaluator`, the sweep runner,
and the compile server all call.

``compile_one`` is *pure* in the sense the serving layer needs: its
result is a deterministic function of the request (plus the compiler
source itself, which the cache key's code version covers), so results
keyed by :meth:`CompileRequest.cache_key` can be deduplicated
in-flight, batched across callers, and persisted in a shared artifact
store without changing any answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.driver import CompiledLoop, compile_loop
from repro.compiler.strategies import Strategy
from repro.ir.loop import Loop
from repro.machine.machine import MachineDescription
from repro.vectorize.partition import PartitionConfig


@dataclass(frozen=True)
class CompileRequest:
    """One compile invocation's full input."""

    loop: Loop
    machine: MachineDescription
    strategy: Strategy
    partition_config: PartitionConfig | None = None
    baseline_unroll: int | None = None
    optimize: bool = False
    allow_reassociation: bool = False

    def cache_key(self) -> str:
        """The PR 3 content-addressed key: canonical loop + machine +
        strategy + knobs + compiler code version."""
        from repro.evaluation.compile_cache import cache_key

        return cache_key(
            self.loop,
            self.machine,
            self.strategy,
            partition_config=self.partition_config,
            baseline_unroll=self.baseline_unroll,
            optimize=self.optimize,
            allow_reassociation=self.allow_reassociation,
        )


def effort_counters(compiled: CompiledLoop) -> dict[str, int]:
    """The deterministic effort one compiled loop carries.

    These counters ride on the compiled object itself, so they are
    identical whether the loop was compiled in-process, in a pool
    worker, behind the compile server, or served from the artifact
    store."""
    effort = {
        "sched_attempts": sum(u.schedule.attempts for u in compiled.units)
    }
    if compiled.partition is not None:
        effort["kl_iterations"] = compiled.partition.iterations
        effort["kl_probes"] = compiled.partition.n_probes
        effort["kl_probe_cache_hits"] = compiled.partition.n_probe_cache_hits
        effort["kl_bin_packs"] = compiled.partition.n_bin_packs
        effort["kl_repacks"] = compiled.partition.n_repacks
        effort["kl_pack_steps"] = compiled.partition.n_pack_steps
    return effort


@dataclass
class CompiledLoopPayload:
    """One compilation's result, paired with a JSON-able summary.

    ``compiled`` is the full in-process object (what the Evaluator and
    the tables consume); :meth:`summary` is the wire shape the compile
    server answers with and the load generator aggregates — nothing in
    it depends on how the result was obtained."""

    request: CompileRequest
    compiled: CompiledLoop

    def summary(self) -> dict:
        compiled = self.compiled
        return {
            "loop": compiled.source.name,
            "machine": compiled.machine.name,
            "strategy": compiled.strategy.value,
            "ii": compiled.ii_per_iteration(),
            "res_mii": compiled.res_mii_per_iteration(),
            "rec_mii": compiled.rec_mii_per_iteration(),
            "units": [
                {
                    "name": u.transform.loop.name,
                    "ii": u.ii,
                    "factor": u.factor,
                    "stages": u.schedule.stage_count,
                    "res_mii": int(u.schedule.res_mii),
                    "rec_mii": int(u.schedule.rec_mii),
                }
                for u in compiled.units
            ],
            "n_vector_ops": compiled.n_vector_ops,
            "n_transfers": compiled.n_transfers,
            "resource_limited": compiled.is_resource_limited,
            "effort": effort_counters(compiled),
        }


def compile_one(request: CompileRequest) -> CompiledLoopPayload:
    """Compile one request; the shared pure entry point.

    Exactly :func:`~repro.compiler.driver.compile_loop` with the
    request's knobs — bit-identical to what every caller produced
    before the extraction (the ``dashboard compare --fail-on-exact``
    gate holds across it)."""
    compiled = compile_loop(
        request.loop,
        request.machine,
        request.strategy,
        partition_config=request.partition_config,
        baseline_unroll=request.baseline_unroll,
        optimize=request.optimize,
        allow_reassociation=request.allow_reassociation,
    )
    return CompiledLoopPayload(request=request, compiled=compiled)
