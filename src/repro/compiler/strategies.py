"""The four compilation strategies the paper compares.

* ``BASELINE`` — modulo scheduling alone, with the loop unrolled by the
  vector length to amortize loop overhead and address arithmetic (the
  paper's baseline; Figure 1 uses unroll 1).
* ``TRADITIONAL`` — Allen-Kennedy vectorization: loop distribution with
  typed fusion and scalar expansion; every distributed loop is modulo
  scheduled.
* ``FULL`` — vectorize all (non-isolated) data-parallel operations but
  keep the loop intact, replicating scalar work by the vector length.
* ``SELECTIVE`` — the paper's contribution: Kernighan-Lin partitioning
  over the resource bins, then the same transformation engine.
"""

from __future__ import annotations

import enum


class Strategy(enum.Enum):
    BASELINE = "baseline"
    TRADITIONAL = "traditional"
    FULL = "full"
    SELECTIVE = "selective"

    def __str__(self) -> str:
        return self.value


ALL_STRATEGIES = (
    Strategy.BASELINE,
    Strategy.TRADITIONAL,
    Strategy.FULL,
    Strategy.SELECTIVE,
)
