"""Tarjan's strongly connected components, iterative formulation.

The paper identifies dependence cycles with Tarjan's algorithm [36]; we do
the same.  The iterative version avoids Python's recursion limit on the
larger generated loops.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence


def tarjan_sccs(
    nodes: Iterable[int],
    successors: Callable[[int], Iterable[int]],
) -> list[list[int]]:
    """Strongly connected components in reverse topological order.

    Each returned component lists node ids in discovery order.  Components
    appear callees-first: every edge leaving a component points to a
    component that occurs *earlier* in the returned list.
    """
    index: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        # Explicit DFS stack: (node, iterator over successors).
        work: list[tuple[int, object]] = [(root, iter(successors(root)))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)

        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:  # type: ignore[union-attr]
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(successors(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[int] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == node:
                        break
                component.reverse()
                sccs.append(component)

    return sccs


def condensation_order(
    sccs: Sequence[Sequence[int]],
    successors: Callable[[int], Iterable[int]],
) -> list[int]:
    """Indices of ``sccs`` in topological (sources-first) order.

    Tarjan emits components in reverse topological order, so this is just
    the reversed index sequence; exposed as a named helper for clarity at
    call sites that emit distributed loops.
    """
    return list(range(len(sccs)))[::-1]


def scc_membership(sccs: Sequence[Sequence[int]]) -> dict[int, int]:
    member: dict[int, int] = {}
    for i, comp in enumerate(sccs):
        for node in comp:
            member[node] = i
    return member
