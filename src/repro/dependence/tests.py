"""Array subscript dependence tests.

Implements the classic single-loop dependence tests from the vectorizing
compiler literature (Allen & Kennedy): ZIV, strong SIV (exact distance),
and the GCD test for the general case, with an optional Banerjee-style
bounds refinement when the trip count is known.

A test between two references answers the question: do iterations ``i1``
(executing reference 1) and ``i2`` (executing reference 2) ever touch the
same element, and if so what is the iteration distance ``d = i2 - i1``?

Results are one of:

* :data:`INDEPENDENT` — no pair of iterations conflicts.
* :class:`Distance` — conflicts exactly at distance ``d``.
* :data:`UNKNOWN` — conflicts may occur at unknown (possibly all) distances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ir.subscripts import AffineExpr, Subscript


@dataclass(frozen=True)
class Independent:
    def __str__(self) -> str:
        return "independent"


@dataclass(frozen=True)
class Unknown:
    def __str__(self) -> str:
        return "unknown"


@dataclass(frozen=True)
class Distance:
    """Dependence exactly at iteration distance ``d = i2 - i1``.

    Positive: reference 2 touches the location ``d`` iterations after
    reference 1.  Negative: the conflict runs the other way.
    """

    d: int

    def __str__(self) -> str:
        return f"distance({self.d})"


DimResult = Independent | Unknown | Distance

INDEPENDENT = Independent()
UNKNOWN = Unknown()


def test_dimension(
    e1: AffineExpr,
    e2: AffineExpr,
    trip_count: int | None = None,
) -> DimResult:
    """Dependence test for one subscript dimension."""
    if not e1.symbols_match(e2):
        # Different loop-invariant symbolic parts: could be anything.
        return UNKNOWN

    c1, o1 = e1.coeff, e1.offset
    c2, o2 = e2.coeff, e2.offset

    if c1 == 0 and c2 == 0:
        # ZIV: both references hit a fixed element.
        return UNKNOWN if o1 == o2 else INDEPENDENT

    if c1 == c2:
        # Strong SIV: c*(i1 - i2) = o2 - o1 -> exact distance.
        delta = o1 - o2
        if delta % c1 != 0:
            return INDEPENDENT
        d = delta // c1
        if trip_count is not None and abs(d) >= trip_count:
            return INDEPENDENT
        return Distance(d)

    # General case: c1*i1 + o1 = c2*i2 + o2 has integer solutions iff
    # gcd(c1, c2) divides (o2 - o1).
    g = math.gcd(abs(c1), abs(c2))
    if g == 0:
        return INDEPENDENT  # unreachable: both coeffs zero handled above
    if (o2 - o1) % g != 0:
        return INDEPENDENT
    if trip_count is not None and _banerjee_infeasible(c1, o1, c2, o2, trip_count):
        return INDEPENDENT
    return UNKNOWN


def _banerjee_infeasible(
    c1: int, o1: int, c2: int, o2: int, trip_count: int
) -> bool:
    """Banerjee bounds check: is ``c1*i1 - c2*i2 = o2 - o1`` infeasible for
    ``0 <= i1, i2 < trip_count``?"""
    hi = trip_count - 1

    # max/min of c*i over [0, hi]
    def cmax(c: int) -> int:
        return c * hi if c > 0 else 0

    def cmin(c: int) -> int:
        return c * hi if c < 0 else 0

    target = o2 - o1
    lo = cmin(c1) - cmax(c2)
    up = cmax(c1) - cmin(c2)
    return not (lo <= target <= up)


def test_subscripts(
    s1: Subscript,
    s2: Subscript,
    trip_count: int | None = None,
) -> DimResult:
    """Combine per-dimension tests into a whole-reference result.

    A conflict requires every dimension to conflict for the *same* pair of
    iterations, so exact distances from different dimensions must agree;
    any independent dimension proves independence.
    """
    if s1.rank != s2.rank:
        raise ValueError("subscript ranks differ for references to the same array")

    exact: int | None = None
    saw_unknown = False
    for e1, e2 in zip(s1.dims, s2.dims):
        result = test_dimension(e1, e2, trip_count)
        if isinstance(result, Independent):
            return INDEPENDENT
        if isinstance(result, Distance):
            if exact is None:
                exact = result.d
            elif exact != result.d:
                return INDEPENDENT
        else:
            saw_unknown = True

    if exact is not None:
        return Distance(exact)
    assert saw_unknown
    return UNKNOWN
