"""Loop dependence analysis and vectorizability.

Builds the dependence graph for a loop (register flow, loop-carried
scalars, and memory dependences from the subscript tests), finds strongly
connected components with Tarjan's algorithm, and classifies each
operation as vectorizable or not for a given vector length.

Following the paper (Section 3): an operation is vectorizable when it does
not lie on a dependence cycle, *except* that cycles whose total carried
distance is at least the vector length do not prevent vectorization (the
``a[i+4] = a[i]`` case).  Memory operations must additionally be
unit-stride — the modeled machines have no scatter/gather.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dependence.graph import DepEdge, DependenceGraph, DepKind, Via
from repro.dependence.scc import scc_membership, tarjan_sccs
from repro.dependence.tests import Distance, Independent, test_subscripts
from repro.ir.loop import Loop
from repro.ir.operations import Operation, OpKind
from repro.ir.values import VirtualRegister

_VECTORIZABLE_KINDS = frozenset(
    {
        OpKind.ADD,
        OpKind.SUB,
        OpKind.MUL,
        OpKind.DIV,
        OpKind.NEG,
        OpKind.ABS,
        OpKind.MIN,
        OpKind.MAX,
        OpKind.SQRT,
        OpKind.COPY,
        OpKind.CVT,
        OpKind.LOAD,
        OpKind.STORE,
    }
)


@dataclass
class LoopDependence:
    """The result of dependence analysis on one loop."""

    loop: Loop
    graph: DependenceGraph
    sccs: list[list[int]]
    scc_of: dict[int, int]
    vectorizable: set[int]
    vector_length: int

    def is_vectorizable(self, op: Operation) -> bool:
        return op.uid in self.vectorizable

    def in_cycle(self, uid: int) -> bool:
        scc = self.sccs[self.scc_of[uid]]
        if len(scc) > 1:
            return True
        return any(e.dst == uid for e in self.graph.successors(uid))

    def register_flow_edges(self) -> list[DepEdge]:
        return [
            e
            for e in self.graph.edges
            if e.kind is DepKind.FLOW and e.via in (Via.REGISTER, Via.CARRIED)
        ]


def build_dependence_graph(loop: Loop, trip_count: int | None = None) -> DependenceGraph:
    graph = DependenceGraph()
    for op in loop.body:
        graph.add_op(op)

    _add_register_edges(loop, graph)
    _add_memory_edges(loop, graph, trip_count)
    _add_overhead_edges(loop, graph)
    return graph


def _add_overhead_edges(loop: Loop, graph: DependenceGraph) -> None:
    """Sequencing for loop-control operations: pointer bumps and the
    induction increment chain themselves across iterations; the loop-back
    branch consumes the incremented induction variable."""
    ivinc: Operation | None = None
    for op in loop.body:
        if op.kind in (OpKind.BUMP, OpKind.IVINC):
            graph.add_edge(
                DepEdge(op.uid, op.uid, DepKind.FLOW, Via.CONTROL, 1)
            )
            if op.kind is OpKind.IVINC:
                ivinc = op
        elif op.kind is OpKind.CBR and ivinc is not None:
            graph.add_edge(
                DepEdge(ivinc.uid, op.uid, DepKind.FLOW, Via.CONTROL, 0)
            )


def _add_register_edges(loop: Loop, graph: DependenceGraph) -> None:
    def_of: dict[VirtualRegister, Operation] = {}
    for op in loop.body:
        if op.dest is not None:
            def_of[op.dest] = op

    carried_exit_def: dict[VirtualRegister, Operation] = {}
    for c in loop.carried:
        if isinstance(c.exit, VirtualRegister) and c.exit in def_of:
            carried_exit_def[c.entry] = def_of[c.exit]

    for op in loop.body:
        for src in op.registers_read():
            producer = def_of.get(src)
            if producer is not None and producer.uid != op.uid:
                graph.add_edge(
                    DepEdge(producer.uid, op.uid, DepKind.FLOW, Via.REGISTER, 0)
                )
                continue
            carried_producer = carried_exit_def.get(src)
            if carried_producer is not None:
                graph.add_edge(
                    DepEdge(
                        carried_producer.uid, op.uid, DepKind.FLOW, Via.CARRIED, 1
                    )
                )


def _memory_dep_kind(src: Operation, dst: Operation) -> DepKind:
    if src.is_store and dst.is_load:
        return DepKind.FLOW
    if src.is_load and dst.is_store:
        return DepKind.ANTI
    return DepKind.OUTPUT


def memory_lane_subscripts(op: Operation) -> list:
    """The subscripts of every element a memory operation touches.

    Vector memory operations span ``VL`` consecutive innermost elements
    starting at their subscript; dependence tests must consider the whole
    span, not just the first lane.
    """
    assert op.subscript is not None
    if not op.is_vector:
        return [op.subscript]
    ty = op.dest.type if op.is_load else op.stored_value.type
    length = getattr(ty, "length", 1)
    return [op.subscript.plus_innermost(l) for l in range(length)]


def _pairwise_distances(
    a: Operation, b: Operation, trip_count: int | None
) -> tuple[set[int], bool]:
    """(exact distances, any-unknown) across all lane pairs of a and b."""
    distances: set[int] = set()
    unknown = False
    for sa in memory_lane_subscripts(a):
        for sb in memory_lane_subscripts(b):
            result = test_subscripts(sa, sb, trip_count)
            if isinstance(result, Independent):
                continue
            if isinstance(result, Distance):
                distances.add(result.d)
            else:
                unknown = True
    return distances, unknown


def _add_memory_edges(
    loop: Loop, graph: DependenceGraph, trip_count: int | None
) -> None:
    mem_ops = [op for op in loop.body if op.kind.is_memory]
    for i, a in enumerate(mem_ops):
        for b in mem_ops[i:]:
            if a.array != b.array:
                continue
            if a.is_load and b.is_load:
                continue
            distances, unknown = _pairwise_distances(a, b, trip_count)
            if unknown:
                # Conservative cycle that serializes the pair.
                if a.uid == b.uid:
                    graph.add_edge(
                        DepEdge(
                            a.uid,
                            a.uid,
                            _memory_dep_kind(a, a),
                            Via.MEMORY,
                            1,
                            exact=False,
                        )
                    )
                else:
                    graph.add_edge(
                        DepEdge(
                            a.uid,
                            b.uid,
                            _memory_dep_kind(a, b),
                            Via.MEMORY,
                            0,
                            exact=False,
                        )
                    )
                    graph.add_edge(
                        DepEdge(
                            b.uid,
                            a.uid,
                            _memory_dep_kind(b, a),
                            Via.MEMORY,
                            1,
                            exact=False,
                        )
                    )
                continue
            for d in sorted(distances):
                if a.uid == b.uid:
                    if d > 0:
                        graph.add_edge(
                            DepEdge(
                                a.uid, a.uid, _memory_dep_kind(a, a), Via.MEMORY, d
                            )
                        )
                    continue
                if d > 0:
                    graph.add_edge(
                        DepEdge(a.uid, b.uid, _memory_dep_kind(a, b), Via.MEMORY, d)
                    )
                elif d < 0:
                    graph.add_edge(
                        DepEdge(b.uid, a.uid, _memory_dep_kind(b, a), Via.MEMORY, -d)
                    )
                else:
                    # Same iteration: ordered by position in the body.
                    graph.add_edge(
                        DepEdge(a.uid, b.uid, _memory_dep_kind(a, b), Via.MEMORY, 0)
                    )


def _scc_safe_for_vectorization(
    graph: DependenceGraph, members: set[int], vector_length: int
) -> bool:
    """Can operations inside this dependence cycle be vectorized?

    Sound criterion (covers the paper's ``a[i+4] = a[i]`` example): every
    loop-carried edge within the SCC must have an exact distance of at
    least the vector length.  Then each carried dependence still spans at
    least one *transformed* iteration after widening by ``VL``, and the
    zero-distance edges inside the SCC follow body order, so emitting the
    component's operations in program order preserves all dependences.
    """
    for uid in members:
        for edge in graph.successors(uid):
            if edge.dst not in members:
                continue
            if not edge.exact:
                return False
            if 1 <= edge.distance < vector_length:
                return False
    return True


def analyze_loop(
    loop: Loop,
    vector_length: int,
    trip_count: int | None = None,
) -> LoopDependence:
    """Full dependence analysis of ``loop`` for a given vector length."""
    graph = build_dependence_graph(loop, trip_count)
    sccs = tarjan_sccs(
        graph.node_ids(), lambda n: (e.dst for e in graph.successors(n))
    )
    scc_of = scc_membership(sccs)

    scc_safe: dict[int, bool] = {}
    vectorizable: set[int] = set()
    for op in loop.body:
        if op.kind not in _VECTORIZABLE_KINDS:
            continue
        if op.kind.is_memory:
            assert op.subscript is not None
            if not op.subscript.is_unit_stride:
                continue
        scc_index = scc_of[op.uid]
        members = set(sccs[scc_index])
        on_cycle = len(members) > 1 or any(
            e.dst == op.uid for e in graph.successors(op.uid)
        )
        if on_cycle:
            if scc_index not in scc_safe:
                scc_safe[scc_index] = _scc_safe_for_vectorization(
                    graph, members, vector_length
                )
            if not scc_safe[scc_index]:
                continue
        vectorizable.add(op.uid)

    return LoopDependence(
        loop=loop,
        graph=graph,
        sccs=sccs,
        scc_of=scc_of,
        vectorizable=vectorizable,
        vector_length=vector_length,
    )
