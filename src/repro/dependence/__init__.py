"""Dependence analysis: subscript tests, dependence graph, SCCs,
vectorizability classification."""

from repro.dependence.analysis import (
    LoopDependence,
    analyze_loop,
    build_dependence_graph,
)
from repro.dependence.graph import DepEdge, DependenceGraph, DepKind, Via
from repro.dependence.scc import scc_membership, tarjan_sccs
from repro.dependence.tests import (
    INDEPENDENT,
    UNKNOWN,
    DimResult,
    Distance,
    Independent,
    Unknown,
    test_dimension,
    test_subscripts,
)

__all__ = [
    "INDEPENDENT",
    "UNKNOWN",
    "DepEdge",
    "DependenceGraph",
    "DepKind",
    "DimResult",
    "Distance",
    "Independent",
    "LoopDependence",
    "Unknown",
    "Via",
    "analyze_loop",
    "build_dependence_graph",
    "scc_membership",
    "tarjan_sccs",
    "test_dimension",
    "test_subscripts",
]
