"""Dependence graph over loop operations.

Nodes are operation uids; edges carry a dependence kind (flow / anti /
output), the channel the dependence travels through (register, memory, or
a loop-carried scalar), and an iteration distance.  ``exact=False`` marks
conservative edges produced when the subscript tests could not pin a
distance: such an edge stands for dependences at its distance *and all
larger distances*, and is always paired with a reverse edge so the pair
forms a cycle that blocks both vectorization and reordering.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field

from repro.ir.operations import Operation


class DepKind(enum.Enum):
    FLOW = "flow"
    ANTI = "anti"
    OUTPUT = "output"
    CONTROL = "control"


class Via(enum.Enum):
    REGISTER = "register"
    MEMORY = "memory"
    CARRIED = "carried"
    CONTROL = "control"


@dataclass(frozen=True)
class DepEdge:
    src: int
    dst: int
    kind: DepKind
    via: Via
    distance: int
    exact: bool = True

    @property
    def is_loop_carried(self) -> bool:
        return self.distance > 0

    def __str__(self) -> str:
        star = "" if self.exact else "*"
        return (
            f"{self.src} -> {self.dst} [{self.kind.value}/{self.via.value}, "
            f"d={self.distance}{star}]"
        )


@dataclass
class DependenceGraph:
    """Operations plus dependence edges, with adjacency maps."""

    ops: dict[int, Operation] = field(default_factory=dict)
    edges: list[DepEdge] = field(default_factory=list)
    _succ: dict[int, list[DepEdge]] = field(default_factory=lambda: defaultdict(list))
    _pred: dict[int, list[DepEdge]] = field(default_factory=lambda: defaultdict(list))

    def add_op(self, op: Operation) -> None:
        self.ops[op.uid] = op

    def add_edge(self, edge: DepEdge) -> None:
        if edge.src not in self.ops or edge.dst not in self.ops:
            raise KeyError(f"edge {edge} references unknown operation")
        if edge.distance < 0:
            raise ValueError(f"edge {edge} has negative distance")
        self.edges.append(edge)
        self._succ[edge.src].append(edge)
        self._pred[edge.dst].append(edge)

    def successors(self, uid: int) -> list[DepEdge]:
        return self._succ.get(uid, [])

    def predecessors(self, uid: int) -> list[DepEdge]:
        return self._pred.get(uid, [])

    def node_ids(self) -> list[int]:
        return list(self.ops.keys())

    def intra_iteration_edges(self) -> list[DepEdge]:
        return [e for e in self.edges if e.distance == 0]

    def __len__(self) -> int:
        return len(self.ops)

    def __str__(self) -> str:
        lines = [f"dependence graph: {len(self.ops)} ops, {len(self.edges)} edges"]
        for e in self.edges:
            lines.append(f"  {e}")
        return "\n".join(lines)
