"""The invariant rule engine: stable ids over zone-classified functions.

Rule families (each finding carries the zone that made it applicable
and the call chain from the zone seed):

* ``D-*`` determinism over the ``deterministic-core`` zone —
  D-WALLCLOCK (wall-clock reads), D-RNG (unseeded/global RNG),
  D-SETITER (unordered set iteration / order-leaking conversion),
  D-DICTPOP (``dict.popitem()`` / argless ``set.pop()``), D-ENV
  (environment-dependent values);
* ``A-*`` async safety over the ``async-handler`` zone — A-BLOCKING
  (subprocess, ``time.sleep``, sync file IO on the event loop),
  A-AWAIT-LOCK (blocking ``.result()`` / ``.acquire()`` waits);
* ``F-*`` filesystem atomicity over the ``shared-filesystem-writer``
  zone — F-ATOMIC (plain write bypassing tempfile+``os.replace``),
  F-APPEND (buffered append bypassing the single-``O_APPEND``-write
  protocol);
* ``K-*`` fork safety over modules containing ``fork-worker``
  functions — K-FORK-STATE (mutated module-level mutable state
  captured across the fork), K-FORK-LOCK (module-level locks).

Every rule is exercised by a fixture pair in
``tests/data/analysis_fixtures`` — a minimal violation it must fire
on and a compliant twin it must stay silent on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.callgraph import MODULE_BODY, CallGraph, FunctionInfo
from repro.analysis.findings import AnalysisFinding, Severity
from repro.analysis.zones import Zone, ZoneMap, zone_trace

#: Wall-clock reads (monotonic clocks included: their *values* differ
#: across runs, so any use in a digested/counted path breaks equality).
WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Module-level (global, unseeded) RNG entry points and other
#: nondeterministic value sources.
GLOBAL_RNG_CALLS = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.choice",
        "random.choices",
        "random.shuffle",
        "random.sample",
        "random.uniform",
        "random.gauss",
        "random.getrandbits",
        "random.seed",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbelow",
    }
)

#: Calls that block the event loop outright.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.system",
        "os.popen",
        "os.wait",
        "os.waitpid",
        "socket.create_connection",
        "shutil.copy",
        "shutil.copytree",
        "shutil.rmtree",
    }
)

#: Sync file IO that must be offloaded (``asyncio.to_thread`` /
#: ``run_in_executor``) rather than run on the loop.
BLOCKING_FILE_CALLS = frozenset(
    {"open", "io.open", "os.fdopen", "os.replace", "os.rename", "os.fsync"}
)

#: Blocking-wait attribute patterns (unknown receiver).
BLOCKING_WAIT_ATTRS = frozenset({"*.result", "*.acquire"})


@dataclass(frozen=True)
class RuleSpec:
    """One rule's identity and documentation."""

    id: str
    zone: Zone
    severity: Severity
    invariant: str


RULES: dict[str, RuleSpec] = {
    spec.id: spec
    for spec in (
        RuleSpec(
            "D-WALLCLOCK",
            Zone.DETERMINISTIC_CORE,
            Severity.ERROR,
            "no wall-clock reads in effort-counted / digested paths",
        ),
        RuleSpec(
            "D-RNG",
            Zone.DETERMINISTIC_CORE,
            Severity.ERROR,
            "no unseeded or module-global RNG in deterministic paths",
        ),
        RuleSpec(
            "D-SETITER",
            Zone.DETERMINISTIC_CORE,
            Severity.ERROR,
            "no unordered set iteration order leaking into results",
        ),
        RuleSpec(
            "D-DICTPOP",
            Zone.DETERMINISTIC_CORE,
            Severity.ERROR,
            "no arbitrary-element removal (dict.popitem / argless set.pop)",
        ),
        RuleSpec(
            "D-ENV",
            Zone.DETERMINISTIC_CORE,
            Severity.ERROR,
            "no environment-dependent values in deterministic paths",
        ),
        RuleSpec(
            "A-BLOCKING",
            Zone.ASYNC_HANDLER,
            Severity.ERROR,
            "no blocking calls (subprocess, sleep, sync file IO) on the event loop",
        ),
        RuleSpec(
            "A-AWAIT-LOCK",
            Zone.ASYNC_HANDLER,
            Severity.ERROR,
            "no blocking waits (.result() / .acquire()) inside coroutine-reachable code",
        ),
        RuleSpec(
            "F-ATOMIC",
            Zone.SHARED_FS,
            Severity.ERROR,
            "shared-file writes go through tempfile + os.replace",
        ),
        RuleSpec(
            "F-APPEND",
            Zone.SHARED_FS,
            Severity.ERROR,
            "shared-file appends are a single O_APPEND write, never buffered 'a' mode",
        ),
        RuleSpec(
            "K-FORK-STATE",
            Zone.FORK_WORKER,
            Severity.ERROR,
            "no mutated module-level state captured across ProcessPoolExecutor forks",
        ),
        RuleSpec(
            "K-FORK-LOCK",
            Zone.FORK_WORKER,
            Severity.ERROR,
            "no module-level locks captured across ProcessPoolExecutor forks",
        ),
    )
}


def run_rules(graph: CallGraph, zone_map: ZoneMap) -> list[AnalysisFinding]:
    """Apply every rule to every zone-classified function."""
    findings: list[AnalysisFinding] = []
    for key in sorted(graph.functions):
        info = graph.functions[key]
        zones = zone_map.zones.get(key, {})
        if Zone.DETERMINISTIC_CORE in zones:
            findings += _determinism_rules(info, graph, zone_map)
        if Zone.ASYNC_HANDLER in zones:
            findings += _async_rules(info, graph, zone_map)
        if Zone.SHARED_FS in zones:
            findings += _filesystem_rules(info, graph, zone_map)
    findings += _fork_rules(graph, zone_map)
    return findings


def _finding(
    rule: str,
    info: FunctionInfo,
    line: int,
    col: int,
    message: str,
    graph: CallGraph,
    zone_map: ZoneMap,
) -> AnalysisFinding:
    spec = RULES[rule]
    return AnalysisFinding(
        rule=rule,
        severity=spec.severity,
        module=info.module,
        function=info.qualname,
        path=info.path,
        line=line,
        col=col,
        zone=spec.zone.value,
        message=message,
        trace=zone_trace(zone_map, graph, info.key, spec.zone),
    )


def _determinism_rules(
    info: FunctionInfo, graph: CallGraph, zone_map: ZoneMap
) -> list[AnalysisFinding]:
    findings = []
    for call in info.external_calls:
        if call.name in WALLCLOCK_CALLS:
            findings.append(
                _finding(
                    "D-WALLCLOCK",
                    info,
                    call.line,
                    call.col,
                    f"wall-clock read {call.name}() in a deterministic path",
                    graph,
                    zone_map,
                )
            )
        if call.name in GLOBAL_RNG_CALLS:
            findings.append(
                _finding(
                    "D-RNG",
                    info,
                    call.line,
                    call.col,
                    f"module-global RNG call {call.name}()",
                    graph,
                    zone_map,
                )
            )
        if call.name in ("random.Random", "random.SystemRandom") and call.nargs == 0:
            findings.append(
                _finding(
                    "D-RNG",
                    info,
                    call.line,
                    call.col,
                    f"unseeded {call.name}() — seed it from the request/config",
                    graph,
                    zone_map,
                )
            )
        if call.name == "*.popitem":
            findings.append(
                _finding(
                    "D-DICTPOP",
                    info,
                    call.line,
                    call.col,
                    "dict.popitem() removes in LIFO/arbitrary order",
                    graph,
                    zone_map,
                )
            )
    for fact in info.facts:
        if fact.kind == "set-iteration":
            findings.append(
                _finding(
                    "D-SETITER", info, fact.line, fact.col, fact.detail, graph, zone_map
                )
            )
        elif fact.kind == "set-pop":
            findings.append(
                _finding(
                    "D-DICTPOP", info, fact.line, fact.col, fact.detail, graph, zone_map
                )
            )
        elif fact.kind == "env-read":
            name = f" ({fact.detail})" if fact.detail else ""
            findings.append(
                _finding(
                    "D-ENV",
                    info,
                    fact.line,
                    fact.col,
                    f"environment read{name} feeds a deterministic path",
                    graph,
                    zone_map,
                )
            )
    return findings


def _async_rules(
    info: FunctionInfo, graph: CallGraph, zone_map: ZoneMap
) -> list[AnalysisFinding]:
    findings = []
    for call in info.external_calls:
        if call.name in BLOCKING_CALLS or call.name in BLOCKING_FILE_CALLS:
            findings.append(
                _finding(
                    "A-BLOCKING",
                    info,
                    call.line,
                    call.col,
                    f"blocking call {call.name}() reachable from a coroutine "
                    "— offload via asyncio.to_thread / run_in_executor",
                    graph,
                    zone_map,
                )
            )
        if call.name in BLOCKING_WAIT_ATTRS:
            findings.append(
                _finding(
                    "A-AWAIT-LOCK",
                    info,
                    call.line,
                    call.col,
                    f"blocking wait {call.name}() on the event loop — await it instead",
                    graph,
                    zone_map,
                )
            )
    return findings


def _filesystem_rules(
    info: FunctionInfo, graph: CallGraph, zone_map: ZoneMap
) -> list[AnalysisFinding]:
    findings = []
    has_replace = any(f.kind == "os-replace" for f in info.facts)
    for fact in info.facts:
        if fact.kind == "open-write" and not has_replace:
            findings.append(
                _finding(
                    "F-ATOMIC",
                    info,
                    fact.line,
                    fact.col,
                    f"plain write (mode {fact.detail!r}) into a shared directory "
                    "without tempfile + os.replace in the same function",
                    graph,
                    zone_map,
                )
            )
        elif fact.kind == "open-append":
            findings.append(
                _finding(
                    "F-APPEND",
                    info,
                    fact.line,
                    fact.col,
                    f"buffered append (mode {fact.detail!r}) can tear — use a "
                    "single os.write on an O_APPEND fd",
                    graph,
                    zone_map,
                )
            )
    return findings


def _fork_rules(graph: CallGraph, zone_map: ZoneMap) -> list[AnalysisFinding]:
    """K-* rules are module-scoped: a module owning any fork-worker
    function must not carry mutated module state or locks."""
    findings = []
    fork_modules: dict[str, str] = {}
    for key in zone_map.members(Zone.FORK_WORKER):
        module = key.split(":", 1)[0]
        fork_modules.setdefault(module, key)
    for module in sorted(fork_modules):
        facts = graph.module_facts.get(module)
        body = graph.functions.get(f"{module}:{MODULE_BODY}")
        if facts is None or body is None:
            continue
        witness = fork_modules[module]
        for name in sorted(facts.mutable_globals):
            line, col, kind = facts.mutable_globals[name]
            if name not in facts.mutated_names:
                continue  # read-only lookup tables are fork-safe
            findings.append(
                AnalysisFinding(
                    rule="K-FORK-STATE",
                    severity=RULES["K-FORK-STATE"].severity,
                    module=module,
                    function=MODULE_BODY,
                    path=body.path,
                    line=line,
                    col=col,
                    zone=Zone.FORK_WORKER.value,
                    message=f"module-level mutable {kind} {name!r} is mutated and "
                    f"captured across the fork boundary (worker: {witness})",
                    trace=zone_trace(zone_map, graph, witness, Zone.FORK_WORKER),
                )
            )
        for name in sorted(facts.lock_globals):
            line, col = facts.lock_globals[name]
            findings.append(
                AnalysisFinding(
                    rule="K-FORK-LOCK",
                    severity=RULES["K-FORK-LOCK"].severity,
                    module=module,
                    function=MODULE_BODY,
                    path=body.path,
                    line=line,
                    col=col,
                    zone=Zone.FORK_WORKER.value,
                    message=f"module-level lock {name!r} captured across the fork "
                    f"boundary can deadlock children (worker: {witness})",
                    trace=zone_trace(zone_map, graph, witness, Zone.FORK_WORKER),
                )
            )
    return findings


RuleFn = Callable[[CallGraph, ZoneMap], list[AnalysisFinding]]
