"""Orchestration: discover -> call graph -> zones -> rules -> baseline.

:func:`analyze_tree` is the one entry point the CLI, the tests, and CI
share.  :func:`default_config` encodes the repro tree's own zone seeds:

* the deterministic core is rooted at the pure compile entry point
  (:func:`repro.compiler.service.compile_one`), cache-key construction,
  ledger content digests, and the canonical BENCH payload builders —
  plus every detected ``CompileTelemetry`` effort-counter mutator;
* the async zone is everything coroutine-shaped under ``repro.serve``;
* the shared-filesystem zone is the modules owning on-disk protocols
  shared between processes (compile cache, artifact store, ledger,
  sweep manifest/shards, BENCH artifacts);
* the fork zone is discovered, not configured (pool submissions).

The zone-map artifact (:func:`zone_map_payload`) is machine-readable
and canonical (sorted keys) so tests can assert zone membership — in
particular that every effort-counter mutator is deterministic-core —
and future PRs can diff zone drift in review.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace
from pathlib import Path

import repro
from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.findings import AnalysisFinding, Severity, sort_findings
from repro.analysis.modules import ModuleInfo, discover_modules
from repro.analysis.rules import RULES, run_rules
from repro.analysis.zones import Zone, ZoneMap, ZoneSeeds, classify_zones

ZONE_MAP_VERSION = 1

#: ``CompileTelemetry`` fields that are deterministic effort (the
#: wall/circumstance fields — wall_ms, check_ms, cache_hits,
#: cache_misses — are excluded on purpose: mutating those is not a
#: determinism obligation).
EFFORT_FIELDS = (
    "kl_iterations",
    "kl_probes",
    "kl_probe_cache_hits",
    "kl_bin_packs",
    "kl_repacks",
    "kl_pack_steps",
    "sched_attempts",
)


@dataclass(frozen=True)
class AnalysisConfig:
    """Everything that parameterizes one analysis run."""

    root: str
    package: str
    deterministic_seeds: tuple[str, ...] = ()
    effort_fields: tuple[str, ...] = EFFORT_FIELDS
    async_module_prefixes: tuple[str, ...] = ()
    shared_fs_modules: tuple[str, ...] = ()

    def seeds(self) -> ZoneSeeds:
        return ZoneSeeds(
            deterministic=self.deterministic_seeds,
            effort_fields=self.effort_fields,
            async_module_prefixes=self.async_module_prefixes,
            shared_fs_modules=self.shared_fs_modules,
        )


def repo_root() -> Path:
    """The repository root, derived from the installed source tree."""
    return Path(repro.__file__).resolve().parents[2]


def default_config() -> AnalysisConfig:
    """The repro tree's own invariant surface."""
    return AnalysisConfig(
        root=str(Path(repro.__file__).resolve().parent),
        package="repro",
        deterministic_seeds=(
            # The pure compile function and its wire shape.
            "repro.compiler.service:compile_one",
            "repro.compiler.service:CompiledLoopPayload.summary",
            "repro.compiler.service:effort_counters",
            # Content-addressed cache keys.
            "repro.compiler.service:CompileRequest.cache_key",
            "repro.evaluation.compile_cache:cache_key",
            # Cross-run equality: ledger digests and comparable views.
            "repro.ledger.record:RunRecord.content_digest",
            "repro.ledger.record:RunRecord.comparable_dict",
            # Canonical BENCH payload construction.
            "repro.evaluation.bench_io:telemetry_payload",
            "repro.evaluation.bench_io:compile_perf_payload",
            "repro.evaluation.bench_io:payload_for",
            "repro.evaluation.bench_io:canonicalize_payload",
        ),
        async_module_prefixes=("repro.serve",),
        shared_fs_modules=(
            "repro.evaluation.compile_cache",
            "repro.evaluation.bench_io",
            "repro.ledger.store",
            "repro.serve.store",
            "repro.sweep.manifest",
            "repro.sweep.runner",
        ),
    )


def default_baseline_path() -> Path:
    return repo_root() / "analysis" / "baseline.json"


@dataclass
class AnalysisResult:
    """One tree-wide analysis run."""

    config: AnalysisConfig
    modules: list[ModuleInfo]
    graph: CallGraph
    zone_map: ZoneMap
    findings: list[AnalysisFinding]  # all, pre-baseline, sorted
    unbaselined: list[AnalysisFinding]
    baselined: list[tuple[AnalysisFinding, BaselineEntry]]
    stale_entries: list[BaselineEntry]
    baseline_path: str = ""

    @property
    def function_count(self) -> int:
        return len(self.graph.functions)

    def gate_failures(self, fail_on: str) -> list[AnalysisFinding]:
        """Unbaselined findings at or above the gating severity."""
        if fail_on == "never":
            return []
        threshold = Severity(fail_on).rank
        return [f for f in self.unbaselined if f.severity.rank <= threshold]

    def summary(self, fail_on: str = "error") -> str:
        failures = self.gate_failures(fail_on)
        status = "OK" if not failures else "FAIL"
        return (
            f"analysis gate: {status} ({len(failures)} unbaselined finding(s) "
            f"at --fail-on {fail_on}; {len(self.baselined)} baselined, "
            f"{len(self.stale_entries)} stale baseline entr(ies), "
            f"{len(self.modules)} modules, {self.function_count} functions)"
        )

    def to_json(self) -> dict[str, object]:
        return {
            "summary": {
                "modules": len(self.modules),
                "functions": self.function_count,
                "findings": len(self.findings),
                "unbaselined": len(self.unbaselined),
                "baselined": len(self.baselined),
                "stale_baseline_entries": len(self.stale_entries),
            },
            "unbaselined": [f.to_json() for f in self.unbaselined],
            "baselined": [
                {"finding": f.to_json(), "reason": e.reason}
                for f, e in self.baselined
            ],
            "stale_baseline_entries": [e.to_json() for e in self.stale_entries],
        }


def analyze_tree(
    config: AnalysisConfig | None = None,
    baseline: Baseline | None = None,
    modules: list[ModuleInfo] | None = None,
) -> AnalysisResult:
    """Run the whole pipeline; ``modules`` override supports the
    discovery-order-independence property test."""
    if config is None:
        config = default_config()
    if modules is None:
        modules = discover_modules(config.root, config.package)
    graph = build_call_graph(modules)
    zone_map = classify_zones(graph, config.seeds())
    findings = sort_findings(run_rules(graph, zone_map))
    if baseline is None:
        baseline = Baseline.empty()
    unbaselined, baselined, stale = baseline.apply(findings)
    return AnalysisResult(
        config=config,
        modules=sorted(modules, key=lambda m: m.name),
        graph=graph,
        zone_map=zone_map,
        findings=findings,
        unbaselined=unbaselined,
        baselined=baselined,
        stale_entries=stale,
        baseline_path=baseline.path,
    )


def zone_map_payload(result: AnalysisResult) -> dict[str, object]:
    """The machine-readable zone map artifact (canonical ordering)."""
    zones: dict[str, dict[str, object]] = {}
    for key in sorted(result.zone_map.zones):
        memberships = result.zone_map.zones[key]
        zones[key] = {
            "zones": sorted(z.value for z in memberships),
            "reasons": {z.value: memberships[z] for z in sorted(memberships, key=lambda z: z.value)},
        }
    return {
        "version": ZONE_MAP_VERSION,
        "package": result.config.package,
        "effort_fields": list(result.config.effort_fields),
        "effort_mutators": list(result.zone_map.effort_mutators),
        "functions": zones,
    }


def write_zone_map(result: AnalysisResult, path: str | os.PathLike[str]) -> None:
    payload = zone_map_payload(result)
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def config_for_fixture(root: str | os.PathLike[str], package: str, **overrides: object) -> AnalysisConfig:
    """A config rooted at a test fixture tree (helper for the fixture
    twins in ``tests/test_analysis.py``)."""
    base = AnalysisConfig(root=str(root), package=package)
    return replace(base, **overrides)  # type: ignore[arg-type]
