"""Source discovery and AST parsing for the invariant analyzer.

Walks a package root, parses every ``*.py`` file, and returns
:class:`ModuleInfo` records sorted by dotted module name — the analyzer
is deterministic and independent of filesystem enumeration order by
construction (and tested to be, in ``tests/test_analysis.py``).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from pathlib import Path


@dataclass
class ModuleInfo:
    """One parsed source module."""

    name: str  # dotted module name, e.g. "repro.compiler.driver"
    path: str  # file path as given (repo-relative when possible)
    tree: ast.Module

    @property
    def package(self) -> str:
        """The package the module lives in (its own name for ``__init__``)."""
        if self.path.endswith("__init__.py"):
            return self.name
        return self.name.rpartition(".")[0]


def module_name_for(path: Path, root: Path, package: str) -> str:
    """Dotted module name of ``path`` under ``root`` named ``package``."""
    rel = path.relative_to(root)
    parts = list(rel.parts)
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join([package, *parts]) if parts else package


def discover_modules(root: str | os.PathLike[str], package: str) -> list[ModuleInfo]:
    """Parse every ``*.py`` under ``root`` as modules of ``package``.

    Files that fail to parse raise — the analyzer refuses to silently
    skip source it cannot see.  The result is sorted by module name.
    """
    root_path = Path(root)
    modules: list[ModuleInfo] = []
    for path in sorted(root_path.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        modules.append(
            ModuleInfo(
                name=module_name_for(path, root_path, package),
                path=_display_path(path),
                tree=tree,
            )
        )
    modules.sort(key=lambda m: m.name)
    return modules


def _display_path(path: Path) -> str:
    """Prefer a cwd-relative path so findings render as clickable repo
    paths; fall back to the absolute path outside the repo."""
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)
