"""Findings model for the invariant static analyzer.

An :class:`AnalysisFinding` is one violated (or deliberately waived)
codebase obligation: a stable rule id (``D-WALLCLOCK``, ``F-ATOMIC``,
...), the function it lands in, a precise source span, the zone that
made the rule applicable, and the call chain that put the function in
that zone.  Mirrors :class:`repro.check.findings.CheckFinding` — the
translation-validation findings model — so both gates read the same
way in review.

Severity policy:

* ``ERROR`` — the invariant is violated; the finding must be fixed or
  explicitly baselined with a reason (``--fail-on error`` gates CI).
* ``WARNING`` — suspicious but not provably a violation; reported,
  never fatal by default.
* ``INFO`` — ground the analyzer skipped (reported for transparency).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class AnalysisFinding:
    """One rule violation at one source span."""

    rule: str  # stable rule id, e.g. "D-WALLCLOCK"
    severity: Severity
    module: str  # dotted module name, e.g. "repro.compiler.driver"
    function: str  # qualname within the module ("<module>" for module level)
    path: str  # file path, repo-relative when possible
    line: int
    col: int
    zone: str  # the zone that made the rule applicable
    message: str
    trace: tuple[str, ...] = ()  # call chain from the zone seed to here

    @property
    def baseline_key(self) -> tuple[str, str, str]:
        """The line-insensitive identity a baseline entry matches on."""
        return (self.rule, self.module, self.function)

    def render(self) -> str:
        head = (
            f"[{self.severity.value.upper()} {self.rule}] "
            f"{self.path}:{self.line}:{self.col} "
            f"{self.module}:{self.function} ({self.zone}): {self.message}"
        )
        if self.trace:
            head += f"\n    via {' -> '.join(self.trace)}"
        return head

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "module": self.module,
            "function": self.function,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "zone": self.zone,
            "message": self.message,
            "trace": list(self.trace),
        }


def sort_findings(findings: list[AnalysisFinding]) -> list[AnalysisFinding]:
    """Canonical finding order: location first, then rule id.

    Sorting is what makes analyzer output independent of file-discovery
    order — the hypothesis test in ``tests/test_analysis.py`` holds the
    whole pipeline to that.
    """
    return sorted(
        findings,
        key=lambda f: (f.module, f.path, f.line, f.col, f.rule, f.function),
    )
