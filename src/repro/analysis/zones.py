"""Taint-style zone classification over the call graph.

A *zone* is a region of the codebase carrying an obligation:

* ``deterministic-core`` — everything reachable from the configured
  determinism seeds (the pure compile entry point, cache-key and
  content-digest construction, canonical BENCH payload builders) plus
  every function that mutates a ``CompileTelemetry`` effort counter.
  Obligation: no wall clock, no unseeded RNG, no set-order leaks, no
  env-dependent values — the ``D-*`` rules.
* ``async-handler`` — every coroutine defined in the configured async
  modules (``repro.serve``) plus the sync functions they call
  directly.  Obligation: no blocking calls on the event loop — the
  ``A-*`` rules.  Function refs dispatched via ``asyncio.to_thread`` /
  ``run_in_executor`` are *not* call edges, so offloaded work stays
  out of this zone by construction.
* ``fork-worker`` — functions submitted to a worker pool plus their
  callees; their *modules* must not rely on mutable module-level state
  or locks across the fork boundary — the ``K-*`` rules.
* ``shared-filesystem-writer`` — functions in the modules that own the
  shared on-disk protocols (compile cache, artifact store, ledger,
  sweep manifest, BENCH artifacts).  Obligation: every write is
  tempfile+``os.replace`` or a single ``O_APPEND`` write — the ``F-*``
  rules.

Classification is by BFS reachability over internal call edges, and
each membership records *why* (seed kind, or the immediate caller that
pulled the function in) so findings can print the chain and the zone
map artifact stays reviewable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.callgraph import MODULE_BODY, CallGraph, FuncKey


class Zone(enum.Enum):
    DETERMINISTIC_CORE = "deterministic-core"
    ASYNC_HANDLER = "async-handler"
    FORK_WORKER = "fork-worker"
    SHARED_FS = "shared-filesystem-writer"


@dataclass(frozen=True)
class ZoneSeeds:
    """Where each zone starts; see :class:`repro.analysis.runner.AnalysisConfig`."""

    deterministic: tuple[FuncKey, ...] = ()
    effort_fields: tuple[str, ...] = ()
    async_module_prefixes: tuple[str, ...] = ()
    shared_fs_modules: tuple[str, ...] = ()


@dataclass
class ZoneMap:
    """function key -> zones (+ the reason for each membership)."""

    zones: dict[FuncKey, dict[Zone, str]] = field(default_factory=dict)
    #: zone -> parent map from the BFS (for building traces)
    parents: dict[Zone, dict[FuncKey, FuncKey | None]] = field(default_factory=dict)
    #: functions detected as effort-counter mutators (determinism seeds)
    effort_mutators: tuple[FuncKey, ...] = ()

    def members(self, zone: Zone) -> list[FuncKey]:
        return sorted(k for k, zs in self.zones.items() if zone in zs)

    def in_zone(self, key: FuncKey, zone: Zone) -> bool:
        return zone in self.zones.get(key, {})

    def _mark(self, key: FuncKey, zone: Zone, reason: str) -> None:
        self.zones.setdefault(key, {}).setdefault(zone, reason)


def classify_zones(graph: CallGraph, seeds: ZoneSeeds) -> ZoneMap:
    """Classify every function in the graph into its zones."""
    zone_map = ZoneMap()

    # --- deterministic-core: configured seeds + effort mutators -------
    mutators = sorted(
        info.key
        for info in graph.functions.values()
        if info.qualname != MODULE_BODY
        and any(f in info.attr_stores for f in seeds.effort_fields)
    )
    zone_map.effort_mutators = tuple(mutators)
    det_seeds = sorted(set(seeds.deterministic) | set(mutators))
    det_parent = graph.reachable(det_seeds)
    zone_map.parents[Zone.DETERMINISTIC_CORE] = det_parent
    for key, parent in sorted(det_parent.items()):
        if parent is None:
            reason = (
                "seed:effort-mutator"
                if key in mutators and key not in seeds.deterministic
                else "seed:configured"
            )
        else:
            reason = f"called from {parent}"
        zone_map._mark(key, Zone.DETERMINISTIC_CORE, reason)

    # --- async-handler: coroutines in async modules + sync callees ----
    async_seeds = sorted(
        info.key
        for info in graph.functions.values()
        if info.is_async
        and any(
            info.module == p or info.module.startswith(p + ".")
            for p in seeds.async_module_prefixes
        )
    )
    async_parent = graph.reachable(async_seeds)
    zone_map.parents[Zone.ASYNC_HANDLER] = async_parent
    for key, parent in sorted(async_parent.items()):
        reason = "seed:coroutine" if parent is None else f"called from {parent}"
        zone_map._mark(key, Zone.ASYNC_HANDLER, reason)

    # --- fork-worker: submitted refs + callees ------------------------
    fork_seeds = sorted(
        {ref for info in graph.functions.values() for ref in info.submitted}
        & set(graph.functions)
    )
    fork_parent = graph.reachable(fork_seeds)
    zone_map.parents[Zone.FORK_WORKER] = fork_parent
    for key, parent in sorted(fork_parent.items()):
        reason = "seed:pool-submitted" if parent is None else f"called from {parent}"
        zone_map._mark(key, Zone.FORK_WORKER, reason)

    # --- shared-filesystem-writer: whole configured modules -----------
    shared = set(seeds.shared_fs_modules)
    for key, info in sorted(graph.functions.items()):
        if info.module in shared:
            zone_map._mark(key, Zone.SHARED_FS, "seed:shared-fs-module")

    return zone_map


def zone_trace(zone_map: ZoneMap, graph: CallGraph, key: FuncKey, zone: Zone) -> tuple[str, ...]:
    """The seed -> ... -> function chain that put ``key`` in ``zone``."""
    parent = zone_map.parents.get(zone)
    if parent is None or key not in parent:
        return ()
    return graph.trace(parent, key)
