"""Invariant static analysis over the repro source tree itself.

The reproduction's core guarantee — bit-identical results across
serial, parallel, cached, served, and sharded execution — rests on
conventions the code is merely trusted to follow: no wall clock or
unseeded RNG in effort-counted paths, tempfile+``os.replace`` or a
single ``O_APPEND`` write for every shared file, no blocking calls
inside ``repro.serve`` coroutines, no set-iteration order leaking into
cache keys or digests.  :mod:`repro.check` (PR 5) validates compiler
*outputs*; this package validates the *codebase*: a call-graph-aware
analyzer over the repo's own Python AST that re-derives those
concurrency/determinism obligations independently, in the same
stable-rule-id style.

Layers:

* :mod:`repro.analysis.modules` — source discovery and AST parsing
  (deterministic, sorted by module name);
* :mod:`repro.analysis.callgraph` — per-function call extraction with
  best-effort resolution of internal calls, external (stdlib) calls,
  and function references submitted to worker pools;
* :mod:`repro.analysis.zones` — taint-style classification of
  functions into zones (``deterministic-core``, ``async-handler``,
  ``fork-worker``, ``shared-filesystem-writer``) by reachability from
  configured seeds;
* :mod:`repro.analysis.rules` — the rule engine: ``D-*`` determinism,
  ``A-*`` async safety, ``F-*`` filesystem atomicity, ``K-*`` fork
  safety, each with a stable id and per-finding source spans;
* :mod:`repro.analysis.baseline` — the checked-in exception list
  (``analysis/baseline.json``): every deliberate violation is explicit,
  justified with a reason string, and diffed in review;
* :mod:`repro.analysis.runner` — orchestration plus the machine-
  readable zone-map artifact;
* ``python -m repro.analysis`` — the CLI and CI gate
  (``--fail-on error`` with zero unbaselined findings).
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.callgraph import CallGraph, FunctionInfo, build_call_graph
from repro.analysis.findings import AnalysisFinding, Severity
from repro.analysis.modules import ModuleInfo, discover_modules
from repro.analysis.rules import RULES, RuleSpec
from repro.analysis.runner import (
    AnalysisConfig,
    AnalysisResult,
    analyze_tree,
    default_config,
    zone_map_payload,
)
from repro.analysis.zones import Zone, ZoneMap, classify_zones

__all__ = [
    "AnalysisConfig",
    "AnalysisFinding",
    "AnalysisResult",
    "Baseline",
    "BaselineEntry",
    "CallGraph",
    "FunctionInfo",
    "ModuleInfo",
    "RULES",
    "RuleSpec",
    "Severity",
    "Zone",
    "ZoneMap",
    "analyze_tree",
    "build_call_graph",
    "classify_zones",
    "default_config",
    "discover_modules",
    "zone_map_payload",
]
