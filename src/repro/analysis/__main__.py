"""``python -m repro.analysis`` — the invariant-analysis CLI and CI gate.

Examples::

    # Tree-wide sweep against the checked-in baseline (the CI gate):
    python -m repro.analysis --fail-on error

    # Everything, including baselined findings with their reasons:
    python -m repro.analysis --show-baselined

    # Machine-readable output plus the zone-map artifact:
    python -m repro.analysis --format json --zone-map zones.json

Exit codes: 0 = gate passed, 1 = unbaselined findings at/above
``--fail-on``, 2 = usage or baseline-file error.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.runner import (
    AnalysisResult,
    analyze_tree,
    default_baseline_path,
    default_config,
    write_zone_map,
)
from repro.analysis.rules import RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="invariant static analysis over the repro source tree",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file of justified waivers "
        "(default: <repo>/analysis/baseline.json when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline; report every finding as unbaselined",
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning", "info", "never"),
        default="error",
        help="exit nonzero when unbaselined findings at/above this "
        "severity exist (default: error)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="also print baselined findings with their waiver reasons",
    )
    parser.add_argument(
        "--zone-map",
        metavar="PATH",
        default=None,
        help="write the machine-readable zone map artifact to PATH",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    return parser


def _render_text(result: AnalysisResult, args: argparse.Namespace) -> str:
    lines = [
        f"repro invariant analysis: {len(result.modules)} modules, "
        f"{result.function_count} functions"
    ]
    for finding in result.unbaselined:
        lines.append(finding.render())
    if args.show_baselined:
        for finding, entry in result.baselined:
            lines.append(f"{finding.render()}\n    baselined: {entry.reason}")
    elif result.baselined:
        lines.append(
            f"{len(result.baselined)} baselined finding(s) suppressed "
            f"({result.baseline_path or 'baseline'}; --show-baselined to list)"
        )
    for entry in result.stale_entries:
        lines.append(
            f"[STALE BASELINE] {entry.rule} {entry.module}:{entry.function} "
            f"no longer matches any finding — remove it ({entry.reason})"
        )
    lines.append(result.summary(args.fail_on))
    return "\n".join(lines)


def _list_rules() -> str:
    lines = ["rule          zone                       severity  invariant"]
    for rule_id in sorted(RULES):
        spec = RULES[rule_id]
        lines.append(
            f"{rule_id:<13} {spec.zone.value:<26} {spec.severity.value:<9} "
            f"{spec.invariant}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0

    baseline = Baseline.empty()
    if not args.no_baseline:
        path = args.baseline
        if path is None:
            default = default_baseline_path()
            path = str(default) if default.exists() else None
        if path is not None:
            try:
                baseline = Baseline.load(path)
            except (OSError, BaselineError, json.JSONDecodeError) as exc:
                print(f"error: cannot load baseline: {exc}", file=sys.stderr)
                return 2

    result = analyze_tree(config=default_config(), baseline=baseline)

    if args.zone_map:
        write_zone_map(result, args.zone_map)

    if args.format == "json":
        print(json.dumps(result.to_json(), indent=2, sort_keys=True))
    else:
        print(_render_text(result, args))

    return 1 if result.gate_failures(args.fail_on) else 0


if __name__ == "__main__":
    sys.exit(main())
