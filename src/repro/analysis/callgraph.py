"""Per-function call extraction and a best-effort internal call graph.

For every function (including methods and nested functions, addressed
as ``module:Qual.name``) the extractor records:

* **internal calls** — calls resolved to another function in the
  analyzed tree, via the module's import table, local definitions, and
  ``self.method()`` within a class;
* **external calls** — calls resolved to a dotted name outside the
  tree (``time.perf_counter``, ``os.environ.get``) or, when the
  receiver is an unresolvable local, an attribute pattern
  (``*.result``, ``*.popitem``);
* **submitted refs** — function *references* handed to a worker pool
  (``pool.submit(f)``, ``pool.map(f)``, ``loop.run_in_executor(x, f)``)
  — these cross a fork boundary and seed the fork-worker zone, but are
  deliberately *not* synchronous call edges, so code dispatched via
  ``asyncio.to_thread``/``run_in_executor`` does not leak into the
  async-handler zone;
* the function-body facts the rule engine needs (set iterations,
  ``open()`` modes, env reads, ...), precomputed here so rules stay
  declarative.

Resolution is deliberately conservative and deterministic: an edge is
added only when the callee is named statically.  Zones built on this
graph therefore under-approximate; the configured seeds (see
:mod:`repro.analysis.zones`) are chosen so the paths the invariants
protect are covered by direct calls.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.modules import ModuleInfo

FuncKey = str  # "module:qualname", e.g. "repro.compiler.service:compile_one"

MODULE_BODY = "<module>"

#: Attribute methods whose call mutates the receiver in place; used for
#: K-FORK-STATE "is this module-level name mutated anywhere" evidence.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "extend",
        "insert",
        "remove",
        "discard",
        "clear",
        "setdefault",
        "pop",
        "popitem",
    }
)

#: Set-producing builtins / expression forms (for D-SETITER taint).
_SET_BUILTINS = frozenset({"set", "frozenset"})

#: Wrappers that consume an iterable order-insensitively — iterating a
#: set through these is deterministic and compliant.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"}
)

#: Wrappers that *preserve* iteration order — feeding a set through
#: these leaks set order into the result.
_ORDER_LEAKING = frozenset({"list", "tuple", "enumerate", "iter"})


@dataclass(frozen=True)
class CallSite:
    """One call to a resolved name, with its source span."""

    name: str  # internal FuncKey, dotted external, or "*.attr" pattern
    line: int
    col: int
    nargs: int  # positional + keyword argument count


@dataclass(frozen=True)
class BodyFact:
    """One rule-relevant body site (set iteration, open call, ...)."""

    kind: str
    line: int
    col: int
    detail: str = ""


@dataclass
class FunctionInfo:
    """Everything the zones and rules need to know about one function."""

    module: str
    qualname: str
    path: str
    line: int
    is_async: bool
    internal_calls: list[CallSite] = field(default_factory=list)
    external_calls: list[CallSite] = field(default_factory=list)
    submitted: list[FuncKey] = field(default_factory=list)
    facts: list[BodyFact] = field(default_factory=list)
    #: attribute names this function assigns / augments on any object
    #: (``telemetry.kl_probes += n`` records ``kl_probes``); the zone
    #: classifier uses these to find effort-counter mutators.
    attr_stores: set[str] = field(default_factory=set)

    @property
    def key(self) -> FuncKey:
        return f"{self.module}:{self.qualname}"


@dataclass
class ModuleFacts:
    """Module-level state the K-* rules judge."""

    #: module-level names bound to mutable literals/constructors:
    #: name -> (line, col, kind)
    mutable_globals: dict[str, tuple[int, int, str]] = field(default_factory=dict)
    #: module-level names bound to threading locks: name -> (line, col)
    lock_globals: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: names for which some function in the module holds mutation
    #: evidence (``global`` rebind, ``name[...] =``, ``name.append``...)
    mutated_names: set[str] = field(default_factory=set)


@dataclass
class CallGraph:
    """The analyzed tree: functions, edges, and module-level facts."""

    functions: dict[FuncKey, FunctionInfo] = field(default_factory=dict)
    module_facts: dict[str, ModuleFacts] = field(default_factory=dict)
    modules: dict[str, ModuleInfo] = field(default_factory=dict)

    def reachable(self, seeds: list[FuncKey]) -> dict[FuncKey, FuncKey | None]:
        """BFS over internal call edges.

        Returns ``reached -> immediate caller`` (``None`` for seeds),
        in deterministic order: seeds are processed sorted, neighbors
        in call-site order.
        """
        parent: dict[FuncKey, FuncKey | None] = {}
        queue: list[FuncKey] = []
        for seed in sorted(set(seeds)):
            if seed in self.functions and seed not in parent:
                parent[seed] = None
                queue.append(seed)
        while queue:
            key = queue.pop(0)
            info = self.functions[key]
            for call in info.internal_calls:
                name = call.name
                if name not in self.functions and f"{name}.__init__" in self.functions:
                    name = f"{name}.__init__"  # class instantiation
                if name in self.functions and name not in parent:
                    parent[name] = key
                    queue.append(name)
        return parent

    def trace(self, parent: dict[FuncKey, FuncKey | None], key: FuncKey) -> tuple[str, ...]:
        """The seed -> ... -> key chain recorded by :meth:`reachable`."""
        chain: list[str] = []
        cursor: FuncKey | None = key
        while cursor is not None and len(chain) < 32:
            chain.append(cursor)
            cursor = parent.get(cursor)
        return tuple(reversed(chain))


class _ImportTable:
    """Alias -> dotted target for one module's imports and local defs."""

    def __init__(self, module: ModuleInfo):
        self.module = module
        self.aliases: dict[str, str] = {}
        package = module.package
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        # ``import x.y`` binds the *top* name x to x.
                        top = alias.name.split(".")[0]
                        self.aliases[top] = top
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    parts = package.split(".")
                    parts = parts[: len(parts) - (node.level - 1)]
                    base = ".".join(parts + ([node.module] if node.module else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.aliases[bound] = f"{base}.{alias.name}" if base else alias.name

    def resolve(self, expr: ast.expr) -> str | None:
        """Resolve a Name/Attribute chain to a dotted name, or None."""
        parts: list[str] = []
        cursor = expr
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        base = self.aliases.get(cursor.id, cursor.id)
        parts.append(base)
        return ".".join(reversed(parts))

    def rooted_in_import(self, expr: ast.expr) -> bool:
        """True when the chain's root Name is an imported alias — i.e.
        the dotted resolution is a real module path, not a guess built
        from a local variable's name."""
        cursor = expr
        while isinstance(cursor, ast.Attribute):
            cursor = cursor.value
        return isinstance(cursor, ast.Name) and cursor.id in self.aliases


def _dotted_to_key(dotted: str, module_names: set[str]) -> FuncKey | None:
    """Split a dotted name into ``module:qual`` on the longest known
    module prefix (``repro.a.b.f`` -> ``repro.a.b:f``)."""
    parts = dotted.split(".")
    for cut in range(len(parts) - 1, 0, -1):
        prefix = ".".join(parts[:cut])
        if prefix in module_names:
            return f"{prefix}:{'.'.join(parts[cut:])}"
    return None


def build_call_graph(modules: list[ModuleInfo]) -> CallGraph:
    """Extract functions, edges, and facts from parsed modules."""
    graph = CallGraph()
    module_names = {m.name for m in sorted(modules, key=lambda m: m.name)}
    for module in sorted(modules, key=lambda m: m.name):
        graph.modules[module.name] = module
        table = _ImportTable(module)
        facts = ModuleFacts()
        graph.module_facts[module.name] = facts
        _scan_module_level(module, facts)
        extractor = _Extractor(module, table, module_names, graph, facts)
        extractor.run()
    # Local (same-module) definitions resolve in a second pass so
    # forward references work regardless of definition order.
    for info in graph.functions.values():
        _resolve_local_calls(info, graph)
    return graph


def _scan_module_level(module: ModuleInfo, facts: ModuleFacts) -> None:
    """Record module-level mutable bindings and lock constructions."""
    facts.mutated_names |= _mutation_evidence(module)
    for node in module.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        kind = _mutable_kind(value)
        if kind is None:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if kind == "lock":
                # A lock is hazardous across the fork however it is
                # named — the constants convention does not exempt it.
                facts.lock_globals[target.id] = (node.lineno, node.col_offset)
                continue
            if target.id == "__all__" or (
                target.id.isupper() and target.id not in facts.mutated_names
            ):
                # Dunder/SHOUTING names are read-only constants by
                # convention; mutation evidence overrides the exemption.
                continue
            facts.mutable_globals[target.id] = (node.lineno, node.col_offset, kind)


def _mutable_kind(value: ast.expr) -> str | None:
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call):
        dotted = _plain_dotted(value.func)
        if dotted in ("list", "dict", "set", "collections.defaultdict", "defaultdict"):
            return dotted.rpartition(".")[2]
        if dotted in (
            "threading.Lock",
            "threading.RLock",
            "threading.Condition",
            "threading.Semaphore",
            "Lock",
            "RLock",
        ):
            return "lock"
    if isinstance(value, ast.Constant) and value.value is None:
        # ``_ACTIVE: X | None = None`` rebound via ``global`` is mutable
        # module state; only flagged when mutation evidence exists.
        return "optional-slot"
    return None


def _plain_dotted(expr: ast.expr) -> str:
    parts: list[str] = []
    cursor = expr
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        parts.append(cursor.id)
        return ".".join(reversed(parts))
    return ""


def _mutation_evidence(module: ModuleInfo) -> set[str]:
    """Names a function in this module mutates (rebinding via
    ``global``, subscript stores, augmented assigns, mutating method
    calls)."""
    mutated: set[str] = set()
    global_names: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Global):
            global_names |= set(node.names)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
                    mutated.add(target.value.id)
                if isinstance(target, ast.Name) and isinstance(node, ast.AugAssign):
                    mutated.add(target.id)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
                and isinstance(func.value, ast.Name)
            ):
                mutated.add(func.value.id)
    # A ``global`` declaration inside any function means the name is
    # rebound somewhere in that function.
    mutated |= global_names
    return mutated


class _Extractor:
    """Walks one module collecting :class:`FunctionInfo` records."""

    def __init__(
        self,
        module: ModuleInfo,
        table: _ImportTable,
        module_names: set[str],
        graph: CallGraph,
        facts: ModuleFacts,
    ):
        self.module = module
        self.table = table
        self.module_names = module_names
        self.graph = graph
        self.facts = facts
        #: same-module definitions: bare name -> qualname
        self.local_defs: dict[str, str] = {}

    def run(self) -> None:
        self._collect_defs(self.module.tree.body, prefix="")
        body_info = self._make_info(MODULE_BODY, self.module.tree, is_async=False)
        self._scan_body(body_info, self.module.tree.body, class_name=None, skip_defs=True)
        self.graph.functions[body_info.key] = body_info
        self._walk_defs(self.module.tree.body, prefix="", class_name=None)

    def _collect_defs(self, body: list[ast.stmt], prefix: str) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                if not prefix:
                    self.local_defs[node.name] = qual
            elif isinstance(node, ast.ClassDef):
                qual = f"{prefix}{node.name}"
                if not prefix:
                    self.local_defs[node.name] = qual
                self._collect_defs(node.body, prefix=f"{qual}.")

    def _walk_defs(self, body: list[ast.stmt], prefix: str, class_name: str | None) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                info = self._make_info(
                    qual, node, is_async=isinstance(node, ast.AsyncFunctionDef)
                )
                self._scan_body(info, node.body, class_name=class_name, skip_defs=True)
                self.graph.functions[info.key] = info
                # Nested defs become their own functions, called from
                # the enclosing one only when named directly.
                self._walk_defs(node.body, prefix=f"{qual}.", class_name=class_name)
            elif isinstance(node, ast.ClassDef):
                self._walk_defs(node.body, prefix=f"{prefix}{node.name}.", class_name=node.name)

    def _make_info(
        self, qualname: str, node: ast.AST, is_async: bool
    ) -> FunctionInfo:
        return FunctionInfo(
            module=self.module.name,
            qualname=qualname,
            path=self.module.path,
            line=getattr(node, "lineno", 1),
            is_async=is_async,
        )

    # ------------------------------------------------------------------
    # body scanning

    def _scan_body(
        self,
        info: FunctionInfo,
        body: list[ast.stmt],
        class_name: str | None,
        skip_defs: bool,
    ) -> None:
        set_vars: set[str] = set()
        has_replace = False
        for stmt in body:
            for node in _walk_skipping_defs(stmt) if skip_defs else ast.walk(stmt):
                self._scan_node(info, node, class_name, set_vars)
                if isinstance(node, ast.Call):
                    dotted = self.table.resolve(node.func)
                    if dotted == "os.replace":
                        has_replace = True
        if has_replace:
            info.facts.append(BodyFact("os-replace", info.line, 0))

    def _scan_node(
        self,
        info: FunctionInfo,
        node: ast.AST,
        class_name: str | None,
        set_vars: set[str],
    ) -> None:
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._track_assign(info, node, set_vars)
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._check_set_iter(info, node.iter, set_vars, context="for loop")
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                self._check_set_iter(info, gen.iter, set_vars, context="comprehension")
        if isinstance(node, ast.Call):
            self._scan_call(info, node, class_name, set_vars)

    def _track_assign(self, info: FunctionInfo, node: ast.stmt, set_vars: set[str]) -> None:
        targets: list[ast.expr]
        value: ast.expr | None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        else:
            assert isinstance(node, ast.AugAssign)
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Attribute):
                info.attr_stores.add(target.attr)
            if isinstance(target, ast.Name) and value is not None:
                if self._is_set_expr(value, set_vars):
                    set_vars.add(target.id)
                else:
                    set_vars.discard(target.id)

    def _is_set_expr(self, expr: ast.expr, set_vars: set[str]) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name) and expr.id in set_vars:
            return True
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Name) and expr.func.id in _SET_BUILTINS:
                return True
            if isinstance(expr.func, ast.Attribute) and expr.func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
                "copy",
            ):
                return self._is_set_expr(expr.func.value, set_vars)
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(expr.left, set_vars) or self._is_set_expr(
                expr.right, set_vars
            )
        return False

    def _check_set_iter(
        self, info: FunctionInfo, iter_expr: ast.expr, set_vars: set[str], context: str
    ) -> None:
        if self._is_set_expr(iter_expr, set_vars):
            info.facts.append(
                BodyFact(
                    "set-iteration",
                    iter_expr.lineno,
                    iter_expr.col_offset,
                    detail=f"unordered set iterated in a {context}",
                )
            )

    def _scan_call(
        self,
        info: FunctionInfo,
        node: ast.Call,
        class_name: str | None,
        set_vars: set[str],
    ) -> None:
        nargs = len(node.args) + len(node.keywords)
        dotted = self.table.resolve(node.func)
        func = node.func

        # self.method() resolves within the enclosing class.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and class_name is not None
        ):
            qual = f"{class_name}.{func.attr}"
            key = f"{self.module.name}:{qual}"
            info.internal_calls.append(
                CallSite(key, node.lineno, node.col_offset, nargs)
            )
            self._scan_order_leak(info, node, set_vars)
            self._record_submissions(info, node, func.attr)
            return

        if dotted is not None:
            key = _dotted_to_key(dotted, self.module_names)
            if key is None and "." not in dotted and dotted in self.local_defs:
                key = f"{self.module.name}:{self.local_defs[dotted]}"
            if (
                key is None
                and isinstance(func, ast.Attribute)
                and not self.table.rooted_in_import(func)
            ):
                # ``table.popitem()`` where ``table`` is a local: the
                # dotted name is a guess from a variable name, not a
                # module path — fall through to the ``*.attr`` pattern.
                dotted = None
        if dotted is not None:
            if key is not None:
                info.internal_calls.append(
                    CallSite(key, node.lineno, node.col_offset, nargs)
                )
            else:
                info.external_calls.append(
                    CallSite(dotted, node.lineno, node.col_offset, nargs)
                )
                self._record_open(info, node, dotted)
        elif isinstance(func, ast.Attribute):
            # Unresolvable receiver: keep the attribute pattern.
            info.external_calls.append(
                CallSite(f"*.{func.attr}", node.lineno, node.col_offset, nargs)
            )
            if func.attr == "pop" and not node.args and not node.keywords:
                if isinstance(func.value, ast.Name) and func.value.id in set_vars:
                    info.facts.append(
                        BodyFact(
                            "set-pop",
                            node.lineno,
                            node.col_offset,
                            detail=f"set.pop() removes an arbitrary element "
                            f"({func.value.id})",
                        )
                    )
            if func.attr in ("write_text", "write_bytes"):
                info.facts.append(
                    BodyFact("open-write", node.lineno, node.col_offset, detail="w")
                )

        self._scan_order_leak(info, node, set_vars)
        if isinstance(func, ast.Attribute):
            self._record_submissions(info, node, func.attr)
        self._record_env_read(info, node, dotted)

    def _scan_order_leak(
        self, info: FunctionInfo, node: ast.Call, set_vars: set[str]
    ) -> None:
        """``list(a_set)`` / ``",".join(a_set)`` leak set order."""
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in _ORDER_LEAKING
            and node.args
            and self._is_set_expr(node.args[0], set_vars)
        ):
            info.facts.append(
                BodyFact(
                    "set-iteration",
                    node.lineno,
                    node.col_offset,
                    detail=f"{func.id}() materializes unordered set order",
                )
            )
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and node.args
            and self._is_set_expr(node.args[0], set_vars)
        ):
            info.facts.append(
                BodyFact(
                    "set-iteration",
                    node.lineno,
                    node.col_offset,
                    detail="str.join() over an unordered set",
                )
            )

    def _record_open(self, info: FunctionInfo, node: ast.Call, dotted: str) -> None:
        if dotted not in ("open", "io.open", "os.fdopen"):
            if dotted == "os.open":
                flags = node.args[1] if len(node.args) > 1 else None
                flag_text = ast.dump(flags) if flags is not None else ""
                if "O_APPEND" not in flag_text and (
                    "O_WRONLY" in flag_text or "O_RDWR" in flag_text
                ):
                    info.facts.append(
                        BodyFact(
                            "open-write", node.lineno, node.col_offset, detail="os.open"
                        )
                    )
            return
        mode = "r"
        mode_index = 1
        for idx, arg in enumerate(node.args):
            if idx == mode_index and isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                mode = arg.value
        for kw in node.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                mode = str(kw.value.value)
        if "a" in mode:
            info.facts.append(
                BodyFact("open-append", node.lineno, node.col_offset, detail=mode)
            )
        elif any(ch in mode for ch in "wx+"):
            info.facts.append(
                BodyFact("open-write", node.lineno, node.col_offset, detail=mode)
            )

    def _record_env_read(
        self, info: FunctionInfo, node: ast.Call, dotted: str | None
    ) -> None:
        if dotted in ("os.getenv", "os.environ.get"):
            detail = ""
            if node.args and isinstance(node.args[0], ast.Constant):
                detail = str(node.args[0].value)
            info.facts.append(
                BodyFact("env-read", node.lineno, node.col_offset, detail=detail)
            )

    def _record_submissions(self, info: FunctionInfo, node: ast.Call, attr: str) -> None:
        """Function refs passed to pool ``submit``/``map``/
        ``run_in_executor`` seed the fork-worker zone."""
        ref_args: list[ast.expr] = []
        if attr in ("submit", "map") and node.args:
            ref_args = [node.args[0]]
        elif attr == "run_in_executor" and len(node.args) >= 2:
            ref_args = [node.args[1]]
        for arg in ref_args:
            dotted = self.table.resolve(arg)
            if dotted is None:
                continue
            key = _dotted_to_key(dotted, self.module_names)
            if key is None and "." not in dotted and dotted in self.local_defs:
                key = f"{self.module.name}:{self.local_defs[dotted]}"
            if key is not None:
                info.submitted.append(key)


def _walk_skipping_defs(stmt: ast.stmt):
    """``ast.walk`` that does not descend into nested function/class
    definitions (they are scanned as their own functions)."""
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return
    yield stmt
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield from _walk_subtree(child)


def _walk_subtree(node: ast.AST):
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield from _walk_subtree(child)


def _resolve_local_calls(info: FunctionInfo, graph: CallGraph) -> None:
    """Second pass: external calls that are actually bare names of
    same-module definitions become internal edges (handles forward
    references and decorator-order effects)."""
    remaining: list[CallSite] = []
    for call in info.external_calls:
        if "." not in call.name and not call.name.startswith("*"):
            # Try a nested definition of this function first, then a
            # module-level one.
            nested_key = f"{info.module}:{info.qualname}.{call.name}"
            key = nested_key if nested_key in graph.functions else f"{info.module}:{call.name}"
            if key in graph.functions:
                info.internal_calls.append(
                    CallSite(key, call.line, call.col, call.nargs)
                )
                continue
            # A bare class name: instantiation calls __init__.
            init_key = f"{info.module}:{call.name}.__init__"
            if init_key in graph.functions:
                info.internal_calls.append(
                    CallSite(init_key, call.line, call.col, call.nargs)
                )
                continue
        remaining.append(call)
    info.external_calls = remaining
