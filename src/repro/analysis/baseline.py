"""The checked-in exception list for deliberate invariant waivers.

Layout of ``analysis/baseline.json``::

    {
      "version": 1,
      "entries": [
        {
          "rule": "D-WALLCLOCK",
          "module": "repro.compiler.driver",
          "function": "compile_loop",
          "reason": "check_ms is wall telemetry; WALL_FIELDS are excluded ..."
        },
        ...
      ]
    }

An entry matches every finding with the same ``(rule, module,
function)`` — deliberately line-insensitive so unrelated edits don't
churn the baseline (the cost: one entry waives all same-rule findings
in that function, which review accepts because the reason must cover
the function's whole use of the pattern).  Every entry **must** carry a
non-empty ``reason``; loading rejects reasonless entries so a waiver
can never be silent.  Entries that no longer match anything are
reported as *stale* so the file shrinks as code is fixed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import AnalysisFinding

BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    module: str
    function: str
    reason: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.module, self.function)

    def to_json(self) -> dict[str, str]:
        return {
            "rule": self.rule,
            "module": self.module,
            "function": self.function,
            "reason": self.reason,
        }


class BaselineError(ValueError):
    """The baseline file is malformed (bad shape, missing reason)."""


@dataclass
class Baseline:
    entries: list[BaselineEntry]
    path: str = ""

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries=[])

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
            raise BaselineError(f"{path}: expected baseline version {BASELINE_VERSION}")
        entries = []
        for i, item in enumerate(raw.get("entries", [])):
            if not isinstance(item, dict):
                raise BaselineError(f"{path}: entry {i} is not an object")
            missing = {"rule", "module", "function", "reason"} - set(item)
            if missing:
                raise BaselineError(f"{path}: entry {i} missing {sorted(missing)}")
            if not str(item["reason"]).strip():
                raise BaselineError(
                    f"{path}: entry {i} ({item['rule']} {item['module']}:"
                    f"{item['function']}) has an empty reason — every waiver "
                    "must be justified"
                )
            entries.append(
                BaselineEntry(
                    rule=str(item["rule"]),
                    module=str(item["module"]),
                    function=str(item["function"]),
                    reason=str(item["reason"]),
                )
            )
        return cls(entries=entries, path=str(path))

    def to_json(self) -> dict[str, object]:
        return {
            "version": BASELINE_VERSION,
            "entries": [e.to_json() for e in sorted(self.entries, key=lambda e: e.key)],
        }

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def apply(
        self, findings: list[AnalysisFinding]
    ) -> tuple[list[AnalysisFinding], list[tuple[AnalysisFinding, BaselineEntry]], list[BaselineEntry]]:
        """Split findings into (unbaselined, baselined, stale entries)."""
        by_key: dict[tuple[str, str, str], BaselineEntry] = {
            e.key: e for e in self.entries
        }
        used: set[tuple[str, str, str]] = set()
        unbaselined: list[AnalysisFinding] = []
        baselined: list[tuple[AnalysisFinding, BaselineEntry]] = []
        for finding in findings:
            entry = by_key.get(finding.baseline_key)
            if entry is None:
                unbaselined.append(finding)
            else:
                used.add(entry.key)
                baselined.append((finding, entry))
        stale = [e for e in sorted(self.entries, key=lambda e: e.key) if e.key not in used]
        return unbaselined, baselined, stale
