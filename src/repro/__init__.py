"""Reproduction of *Exploiting Vector Parallelism in Software Pipelined
Loops* (Larsen, Rabbah, Amarasinghe — MICRO 2005).

The package implements the paper's complete compilation flow on a loop IR:

* :mod:`repro.ir` — the low-level loop IR the backend passes consume.
* :mod:`repro.frontend` — a small loop DSL that lowers onto the IR.
* :mod:`repro.opt` — the standard dataflow optimizations applied before
  vectorization (CSE, constant/copy propagation, DCE, LICM, unrolling).
* :mod:`repro.dependence` — array dependence analysis and vectorizability.
* :mod:`repro.machine` — parametric VLIW machine descriptions (Table 1).
* :mod:`repro.vectorize` — selective vectorization (the contribution) plus
  the traditional and full vectorizer baselines.
* :mod:`repro.pipeline` — iterative modulo scheduling.
* :mod:`repro.regalloc` — rotating-register allocation for kernels.
* :mod:`repro.interp` — a functional interpreter used to check semantics.
* :mod:`repro.simulate` — schedule-level timing.
* :mod:`repro.compiler` — the end-to-end driver and the four strategies.
* :mod:`repro.workloads` — kernels and the synthetic SPEC FP corpus.
* :mod:`repro.evaluation` — the experiments behind Tables 2-5 / Figure 1.
"""

__version__ = "1.0.0"

from repro.ir import Loop, LoopBuilder, OpKind, ScalarType

__all__ = ["Loop", "LoopBuilder", "OpKind", "ScalarType", "__version__"]
