"""Cross-run analytics over the ledger.

The noise discipline is inherited from the profiling diff
(:mod:`repro.profiling.diff`): **wall-clock deltas only count when they
clear both a relative and an absolute threshold; deterministic deltas —
effort counters, per-loop IIs, table speedups — are exact** (the corpus
and the compiler are pure, so any change is a real change).

Queries:

* :func:`compare_runs` — run B against run A; regressions ranked by
  exact effort delta first (the same ranking the dashboard's
  "top regressions" table uses);
* :func:`trend` — one metric's value across runs, by dotted path;
* :func:`outliers` — runs whose metric deviates from the median by more
  than ``k`` robust standard deviations (MAD-based);
* :func:`summarize` — the per-run listing rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ledger.record import RunRecord, strip_wall_fields
from repro.profiling.diff import (
    DEFAULT_WALL_ABS_MS,
    DEFAULT_WALL_REL,
    wall_significant,
)

#: Deterministic float metrics (speedups, IIs) still ride through
#: floating point; equality below this is equality.
EXACT_EPSILON = 1e-9


@dataclass
class MetricDelta:
    """One metric's change from run A to run B."""

    kind: str  # "effort" | "ii" | "speedup" | "wall" | "check"
    path: str
    a: float
    b: float
    #: Exact metrics are deterministic: any delta is real.  Non-exact
    #: (wall) metrics are noise-gated.
    exact: bool
    significant: bool

    @property
    def delta(self) -> float:
        return self.b - self.a

    def render(self) -> str:
        sign = "+" if self.delta >= 0 else ""
        return (
            f"[{self.kind}] {self.path}: {self.a:g} -> {self.b:g} "
            f"({sign}{self.delta:g})"
        )


@dataclass
class RunComparison:
    """Run B against run A, grouped by metric family."""

    a: RunRecord
    b: RunRecord
    #: Exact effort-counter deltas, ranked by |delta| descending —
    #: the dashboard's "top regressions" order.
    effort: list[MetricDelta] = field(default_factory=list)
    #: Exact per-loop II deltas (any change is a real schedule change).
    iis: list[MetricDelta] = field(default_factory=list)
    #: Exact speedup drifts.
    speedups: list[MetricDelta] = field(default_factory=list)
    #: Noise-gated wall-clock deltas (informational).
    walls: list[MetricDelta] = field(default_factory=list)
    #: Check/oracle outcome changes.
    checks: list[MetricDelta] = field(default_factory=list)

    def exact_deltas(self) -> list[MetricDelta]:
        return self.effort + self.iis + self.speedups + self.checks

    def ranked(self) -> list[MetricDelta]:
        """Every significant delta, exact families first, each ranked by
        magnitude (effort by absolute delta, the rest by |delta|)."""
        return (
            sorted(self.effort, key=lambda d: -abs(d.delta))
            + sorted(self.iis, key=lambda d: -abs(d.delta))
            + sorted(self.speedups, key=lambda d: -abs(d.delta))
            + sorted(self.checks, key=lambda d: -abs(d.delta))
            + sorted(
                [d for d in self.walls if d.significant],
                key=lambda d: -abs(d.delta),
            )
        )

    @property
    def clean(self) -> bool:
        """No exact delta at all — byte-for-byte the same compilation."""
        return not self.exact_deltas()


def _walk_numeric(tree: object, prefix: str = "") -> dict[str, float]:
    leaves: dict[str, float] = {}
    if isinstance(tree, dict):
        for key, value in tree.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            leaves.update(_walk_numeric(value, path))
    elif isinstance(tree, bool):
        pass
    elif isinstance(tree, (int, float)):
        leaves[prefix] = float(tree)
    return leaves


def _exact_deltas(
    kind: str, a_tree: object, b_tree: object, *, prefix: str = ""
) -> list[MetricDelta]:
    a_leaves = _walk_numeric(a_tree, prefix)
    b_leaves = _walk_numeric(b_tree, prefix)
    deltas = []
    for path in sorted(set(a_leaves) | set(b_leaves)):
        av = a_leaves.get(path, 0.0)
        bv = b_leaves.get(path, 0.0)
        if abs(bv - av) > EXACT_EPSILON:
            deltas.append(
                MetricDelta(
                    kind=kind, path=path, a=av, b=bv, exact=True,
                    significant=True,
                )
            )
    return deltas


def compare_runs(
    a: RunRecord,
    b: RunRecord,
    *,
    wall_rel: float = DEFAULT_WALL_REL,
    wall_abs_ms: float = DEFAULT_WALL_ABS_MS,
) -> RunComparison:
    """Diff run ``b`` against run ``a`` with the profiling-diff noise
    discipline: effort/II/speedup deltas exact, wall deltas gated."""
    comparison = RunComparison(a=a, b=b)

    comparison.effort = _exact_deltas(
        "effort", a.effort, b.effort, prefix="effort"
    )
    # Per-(benchmark, variant) effort counters give the drill-down the
    # ranking needs ("which benchmark got more expensive"); wall and
    # cache-traffic fields inside telemetry are volatile and stripped.
    comparison.effort += _exact_deltas(
        "effort",
        strip_wall_fields(a.telemetry),
        strip_wall_fields(b.telemetry),
        prefix="telemetry",
    )
    comparison.effort.sort(key=lambda d: -abs(d.delta))

    comparison.iis = [
        d
        for d in _exact_deltas("ii", a.loops, b.loops, prefix="loop")
        if d.path.endswith((".ii", ".res_mii", ".rec_mii"))
    ]
    comparison.speedups = _exact_deltas(
        "speedup", a.experiments, b.experiments, prefix="experiments"
    )
    comparison.checks = _exact_deltas(
        "check", a.check or {}, b.check or {}, prefix="check"
    ) + _exact_deltas(
        "check", a.oracle or {}, b.oracle or {}, prefix="oracle"
    )

    a_wall_ns = int(a.wall_s * 1e9)
    b_wall_ns = int(b.wall_s * 1e9)
    comparison.walls = [
        MetricDelta(
            kind="wall",
            path="wall_s",
            a=a.wall_s,
            b=b.wall_s,
            exact=False,
            significant=wall_significant(
                a_wall_ns, b_wall_ns, wall_rel, wall_abs_ms
            ),
        )
    ]
    return comparison


def render_comparison(comparison: RunComparison) -> str:
    a, b = comparison.a, comparison.b
    lines = [
        f"== run comparison: {b.run_id} vs {a.run_id} ==",
        f"A: {a.summary_line()}",
        f"B: {b.summary_line()}",
        "",
    ]
    n_effort = len(comparison.effort)
    ranked = comparison.ranked()
    if ranked:
        lines.append("-- ranked deltas (exact families first) --")
        lines += [f"  {d.render()}" for d in ranked]
    else:
        lines.append("(no significant delta)")
    wall = comparison.walls[0] if comparison.walls else None
    if wall is not None and not wall.significant:
        lines.append(
            f"  [wall] wall_s: {wall.a:g} -> {wall.b:g} "
            "(below noise thresholds; informational)"
        )
    lines.append("")
    lines.append(
        f"compare: {n_effort} effort delta(s), "
        f"{len(comparison.iis)} II delta(s), "
        f"{len(comparison.speedups)} speedup drift(s), "
        f"{sum(1 for d in comparison.walls if d.significant)} "
        f"significant wall change(s)"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Trends & outliers


def metric_value(record: RunRecord, metric: str) -> float | None:
    """Resolve a dotted metric path inside a record's document.

    Examples: ``effort.sched_attempts``, ``wall_s``, ``cache.hits``,
    ``experiments.table2.101.tomcatv.selective``,
    ``loops.101.tomcatv.101.tomcatv.L0.selective.ii`` — path segments
    may themselves contain dots, so resolution greedily matches the
    longest key at each level.
    """
    node: object = record.to_dict()
    remainder = metric
    while remainder:
        if not isinstance(node, dict):
            return None
        if remainder in node:
            node = node[remainder]
            break
        # Greedy longest-key match so benchmark names with dots work.
        candidates = [
            key
            for key in node
            if remainder.startswith(f"{key}.")
        ]
        if not candidates:
            return None
        key = max(candidates, key=len)
        node = node[key]
        remainder = remainder[len(key) + 1 :]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def trend(
    records: list[RunRecord], metric: str
) -> list[tuple[RunRecord, float | None]]:
    """``metric`` across runs, oldest first (ledger append order)."""
    return [(record, metric_value(record, metric)) for record in records]


SPARK_CHARS = "▁▂▃▄▅▆▇█"


def spark_line(values: list[float | None]) -> str:
    """A unicode sparkline (missing values render as spaces)."""
    present = [v for v in values if v is not None]
    if not present:
        return ""
    lo, hi = min(present), max(present)
    span = hi - lo
    chars = []
    for v in values:
        if v is None:
            chars.append(" ")
        elif span <= 0:
            chars.append(SPARK_CHARS[3])
        else:
            idx = int((v - lo) / span * (len(SPARK_CHARS) - 1))
            chars.append(SPARK_CHARS[idx])
    return "".join(chars)


def render_trend(
    records: list[RunRecord], metric: str
) -> str:
    points = trend(records, metric)
    lines = [f"== trend: {metric} ({len(points)} run(s)) =="]
    values = [v for _, v in points]
    spark = spark_line(values)
    if spark:
        lines.append(f"  {spark}")
    for record, value in points:
        rendered = "-" if value is None else f"{value:g}"
        lines.append(
            f"  {record.run_id:<28} {record.created_at}  "
            f"{record.label or '-':<10} {rendered:>14}"
        )
    return "\n".join(lines)


@dataclass
class Outlier:
    record: RunRecord
    value: float
    median: float
    deviation: float  # in robust sigmas


def outliers(
    records: list[RunRecord], metric: str, *, k: float = 3.0
) -> list[Outlier]:
    """Runs whose ``metric`` sits more than ``k`` robust standard
    deviations (1.4826·MAD) from the cross-run median."""
    points = [
        (record, value)
        for record, value in trend(records, metric)
        if value is not None
    ]
    if len(points) < 3:
        return []
    values = sorted(v for _, v in points)
    mid = len(values) // 2
    median = (
        values[mid]
        if len(values) % 2
        else (values[mid - 1] + values[mid]) / 2.0
    )
    abs_dev = sorted(abs(v - median) for v in values)
    mad = (
        abs_dev[mid]
        if len(abs_dev) % 2
        else (abs_dev[mid - 1] + abs_dev[mid]) / 2.0
    )
    sigma = 1.4826 * mad
    found = []
    for record, value in points:
        if sigma <= 0:
            if value != median:
                found.append(
                    Outlier(record, value, median, float("inf"))
                )
            continue
        deviation = abs(value - median) / sigma
        if deviation > k:
            found.append(Outlier(record, value, median, deviation))
    found.sort(key=lambda o: -o.deviation)
    return found


def render_outliers(found: list[Outlier], metric: str) -> str:
    if not found:
        return f"outliers: none for {metric}"
    lines = [f"== outliers: {metric} =="]
    for o in found:
        sigmas = "inf" if o.deviation == float("inf") else f"{o.deviation:.1f}"
        lines.append(
            f"  {o.record.run_id:<28} value {o.value:g} "
            f"(median {o.median:g}, {sigmas} robust sigma)"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Listing


def summarize(records: list[RunRecord]) -> str:
    if not records:
        return "(ledger is empty)"
    header = (
        f"{'run id':<28} {'created (UTC)':<21} {'sha':<8}  "
        f"{'label':<10} {'loops':>5} {'effort':>12} {'wall s':>8}  experiments"
    )
    lines = ["== ledger runs (oldest first) ==", header]
    for record in records:
        lines.append(
            f"{record.run_id:<28} {record.created_at:<21} "
            f"{(record.git_sha or '-')[:8]:<8}  "
            f"{record.label or '-':<10} {record.loop_count():>5} "
            f"{record.effort_total():>12} {record.wall_s:>8.3f}  "
            + ",".join(sorted(record.experiments))
        )
    return "\n".join(lines)
