"""Cross-run observability: ledger queries and the HTML dashboard.

Built on :mod:`repro.ledger`.  The query layer answers "what changed
between runs" with the profiling diff's noise discipline (exact effort
and II deltas, noise-gated wall clock); the renderer turns the run
history into a single self-contained HTML file.

CLI: ``python -m repro.dashboard {record,list,compare,trend,outliers,
render,merge}``.
"""

from repro.dashboard.queries import (
    EXACT_EPSILON,
    MetricDelta,
    Outlier,
    RunComparison,
    compare_runs,
    metric_value,
    outliers,
    render_comparison,
    render_outliers,
    render_trend,
    spark_line,
    summarize,
    trend,
)
from repro.dashboard.render import render_dashboard, svg_sparkline

__all__ = [
    "EXACT_EPSILON",
    "MetricDelta",
    "Outlier",
    "RunComparison",
    "compare_runs",
    "metric_value",
    "outliers",
    "render_comparison",
    "render_outliers",
    "render_trend",
    "render_dashboard",
    "spark_line",
    "summarize",
    "svg_sparkline",
    "trend",
]
