"""Dashboard CLI: record runs, query the ledger, render the HTML.

Examples::

    # record a run from a directory of BENCH_*.json artifacts
    python -m repro.dashboard record --bench-dir . --label nightly

    # list / compare / trend / outliers over the ledger
    python -m repro.dashboard list
    python -m repro.dashboard compare prev latest --fail-on-exact
    python -m repro.dashboard trend effort.sched_attempts
    python -m repro.dashboard outliers wall_s

    # merge per-shard ledgers into one logical run
    python -m repro.dashboard merge shard-a/ shard-b/ --label sharded

    # render the self-contained HTML dashboard
    python -m repro.dashboard render -o dashboard.html

The ledger directory comes from ``--ledger``, else the ``REPRO_LEDGER``
environment variable, else ``.repro-ledger``.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

from repro.dashboard.queries import (
    compare_runs,
    outliers,
    render_comparison,
    render_outliers,
    render_trend,
    summarize,
)
from repro.dashboard.render import render_dashboard
from repro.ledger import (
    DEFAULT_LEDGER_DIR,
    Ledger,
    merge_records,
    record_from_payloads,
)
from repro.profiling.diff import DEFAULT_WALL_ABS_MS, DEFAULT_WALL_REL

LEDGER_ENV = "REPRO_LEDGER"


def resolve_ledger_dir(flag_value: str | None) -> str:
    return flag_value or os.environ.get(LEDGER_ENV) or DEFAULT_LEDGER_DIR


def _add_ledger_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ledger",
        metavar="DIR",
        default=None,
        help=(
            "ledger directory (default: $REPRO_LEDGER or "
            f"{DEFAULT_LEDGER_DIR})"
        ),
    )


def load_bench_payloads(directory: str) -> dict[str, dict]:
    """Every ``BENCH_*.json`` in ``directory``, keyed by experiment."""
    payloads: dict[str, dict] = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        name = os.path.basename(path)[len("BENCH_") : -len(".json")]
        with open(path, encoding="utf-8") as f:
            payloads[name] = json.load(f)
    return payloads


def _cmd_record(args: argparse.Namespace) -> int:
    payloads = load_bench_payloads(args.bench_dir)
    if not payloads:
        print(
            f"record: no BENCH_*.json artifacts in {args.bench_dir!r}",
            file=sys.stderr,
        )
        return 2
    record = record_from_payloads(
        payloads,
        label=args.label,
        repo=args.repo,
        profile=args.profile,
        notes=args.note,
    )
    ledger = Ledger(resolve_ledger_dir(args.ledger))
    ledger.append(record)
    print(f"recorded {record.run_id} -> {ledger.runs_path}")
    print(record.summary_line())
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    ledger = Ledger(resolve_ledger_dir(args.ledger))
    print(summarize(ledger.latest(args.n)))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    ledger = Ledger(resolve_ledger_dir(args.ledger))
    comparison = compare_runs(
        ledger.resolve(args.a),
        ledger.resolve(args.b),
        wall_rel=args.wall_rel,
        wall_abs_ms=args.wall_abs_ms,
    )
    print(render_comparison(comparison))
    if args.fail_on_exact and not comparison.clean:
        print(
            f"compare: FAIL ({len(comparison.exact_deltas())} exact "
            "delta(s) — deterministic content changed)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_trend(args: argparse.Namespace) -> int:
    ledger = Ledger(resolve_ledger_dir(args.ledger))
    print(render_trend(ledger.latest(args.n), args.metric))
    return 0


def _cmd_outliers(args: argparse.Namespace) -> int:
    ledger = Ledger(resolve_ledger_dir(args.ledger))
    found = outliers(ledger.latest(args.n), args.metric, k=args.k)
    print(render_outliers(found, args.metric))
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    ledger = Ledger(resolve_ledger_dir(args.ledger))
    html = render_dashboard(ledger, limit=args.n)
    if args.output == "-":
        sys.stdout.write(html)
    else:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(html)
        print(f"rendered {args.output} ({len(html)} bytes)")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    shards = []
    for source in args.shards:
        shard_ledger = Ledger(source)
        records = shard_ledger.records()
        if not records:
            print(f"merge: no records in {source!r}", file=sys.stderr)
            return 2
        shards += records
    merged = merge_records(shards, label=args.label or None)
    ledger = Ledger(resolve_ledger_dir(args.ledger))
    ledger.append(merged)
    print(
        f"merged {len(shards)} shard record(s) -> {merged.run_id} "
        f"in {ledger.runs_path}"
    )
    print(merged.summary_line())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dashboard",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "record", help="append a run record built from BENCH_*.json"
    )
    _add_ledger_flag(p)
    p.add_argument(
        "--bench-dir", default=".", help="directory holding BENCH_*.json"
    )
    p.add_argument("--label", default="", help="free-form run label")
    p.add_argument(
        "--repo", default=".", help="git repo to stamp the record's sha from"
    )
    p.add_argument(
        "--profile", default=None, help="path of a profile JSON to reference"
    )
    p.add_argument(
        "--note",
        action="append",
        default=[],
        help="free-form remark (repeatable)",
    )
    p.set_defaults(fn=_cmd_record)

    p = sub.add_parser("list", help="list recorded runs")
    _add_ledger_flag(p)
    p.add_argument("-n", type=int, default=None, help="newest N runs only")
    p.set_defaults(fn=_cmd_list)

    p = sub.add_parser(
        "compare", help="diff two runs (exact effort/II, noise-gated wall)"
    )
    _add_ledger_flag(p)
    p.add_argument("a", help="baseline run: latest/prev/-N/run-id prefix")
    p.add_argument("b", help="candidate run: latest/prev/-N/run-id prefix")
    p.add_argument(
        "--wall-rel",
        type=float,
        default=DEFAULT_WALL_REL,
        help="relative wall-noise threshold",
    )
    p.add_argument(
        "--wall-abs-ms",
        type=float,
        default=DEFAULT_WALL_ABS_MS,
        help="absolute wall-noise threshold (ms)",
    )
    p.add_argument(
        "--fail-on-exact",
        action="store_true",
        help="exit 1 when any exact (deterministic) delta exists",
    )
    p.set_defaults(fn=_cmd_compare)

    p = sub.add_parser("trend", help="one metric across runs")
    _add_ledger_flag(p)
    p.add_argument(
        "metric", help="dotted path, e.g. effort.sched_attempts or wall_s"
    )
    p.add_argument("-n", type=int, default=None, help="newest N runs only")
    p.set_defaults(fn=_cmd_trend)

    p = sub.add_parser(
        "outliers", help="runs deviating from the cross-run median"
    )
    _add_ledger_flag(p)
    p.add_argument("metric", help="dotted path, e.g. wall_s")
    p.add_argument("-n", type=int, default=None, help="newest N runs only")
    p.add_argument(
        "-k", type=float, default=3.0, help="robust-sigma threshold"
    )
    p.set_defaults(fn=_cmd_outliers)

    p = sub.add_parser(
        "render", help="write the self-contained HTML dashboard"
    )
    _add_ledger_flag(p)
    p.add_argument(
        "-o",
        "--output",
        default="dashboard.html",
        help="output path ('-' for stdout)",
    )
    p.add_argument("-n", type=int, default=None, help="newest N runs only")
    p.set_defaults(fn=_cmd_render)

    p = sub.add_parser(
        "merge",
        help="fold per-shard ledgers into one record in the target ledger",
    )
    _add_ledger_flag(p)
    p.add_argument(
        "shards", nargs="+", help="shard ledger directories to fold"
    )
    p.add_argument("--label", default="", help="label for the merged run")
    p.set_defaults(fn=_cmd_merge)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (KeyError, ValueError, OSError) as exc:
        print(f"dashboard: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
