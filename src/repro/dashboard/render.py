"""Self-contained HTML observability dashboard.

``render_dashboard`` turns a ledger's run history into **one HTML file
with zero external dependencies** — no scripts, no fonts, no CSS or
image fetches; every chart is inline SVG — so the file can be archived
as a CI artifact, mailed around, or opened from disk years later and
still render identically.

Sections:

* headline stat tiles for the latest run (loops, effort, cache hit
  rate, wall clock) each with a cross-run sparkline;
* per-metric trend sparklines (effort counters exact; wall informational)
  and per-experiment headline trends (mean speedups, Figure 1 IIs);
* top regressions — latest vs previous run, ranked by exact effort
  delta, with II changes and speedup drifts (wall deltas shown only when
  they clear the profiling-diff noise thresholds, and marked as such);
* per-experiment result grids for the latest run;
* per-benchmark drill-down: per-loop II/ResMII/RecMII by variant, plus
  check/oracle outcomes and run notes.

Colors follow the repo-neutral validated reference palette (light and
dark selected separately, switched via ``prefers-color-scheme`` and a
``data-theme`` override); numbers in tables use tabular figures; status
is never conveyed by color alone (each delta carries a direction glyph
and text).
"""

from __future__ import annotations

import html
from typing import Sequence

from repro.dashboard.queries import (
    MetricDelta,
    compare_runs,
    trend,
)
from repro.ledger.record import RunRecord
from repro.ledger.store import Ledger

DASHBOARD_TITLE = "repro observability dashboard"

#: Effort counters charted in the trends section, in display order.
TREND_COUNTERS = (
    "sched_attempts",
    "kl_pack_steps",
    "kl_probes",
    "kl_bin_packs",
    "kl_repacks",
    "kl_iterations",
)

_CSS = """
:root {
  color-scheme: light dark;
}
.viz-root {
  color-scheme: light;
  --page:           #f9f9f7;
  --surface-1:      #fcfcfb;
  --text-primary:   #0b0b0b;
  --text-secondary: #52514e;
  --text-muted:     #898781;
  --gridline:       #e1e0d9;
  --baseline:       #c3c2b7;
  --border:         rgba(11,11,11,0.10);
  --series-1:       #2a78d6;
  --status-good:    #006300;
  --status-bad:     #d03b3b;
  --status-warn:    #ec835a;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page);
  color: var(--text-primary);
  margin: 0;
  padding: 24px;
  line-height: 1.45;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --page:           #0d0d0d;
    --surface-1:      #1a1a19;
    --text-primary:   #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted:     #898781;
    --gridline:       #2c2c2a;
    --baseline:       #383835;
    --border:         rgba(255,255,255,0.10);
    --series-1:       #3987e5;
    --status-good:    #0ca30c;
    --status-bad:     #d03b3b;
    --status-warn:    #ec835a;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --page:           #0d0d0d;
  --surface-1:      #1a1a19;
  --text-primary:   #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted:     #898781;
  --gridline:       #2c2c2a;
  --baseline:       #383835;
  --border:         rgba(255,255,255,0.10);
  --series-1:       #3987e5;
  --status-good:    #0ca30c;
  --status-bad:     #d03b3b;
  --status-warn:    #ec835a;
}
.viz-root h1 { font-size: 20px; margin: 0 0 2px; }
.viz-root h2 { font-size: 15px; margin: 28px 0 10px; }
.viz-root .subtitle { color: var(--text-secondary); margin: 0 0 18px; }
.viz-root .muted { color: var(--text-muted); }
.viz-root section.card {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 16px 18px;
  margin-bottom: 16px;
}
.viz-root .tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.viz-root .tile {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 12px 16px;
  min-width: 150px;
}
.viz-root .tile .label {
  font-size: 12px; color: var(--text-secondary);
}
.viz-root .tile .value {
  font-size: 26px; font-weight: 600; margin: 2px 0;
}
.viz-root .tile .context { font-size: 12px; color: var(--text-muted); }
.viz-root .sparks {
  display: grid;
  grid-template-columns: repeat(auto-fill, minmax(230px, 1fr));
  gap: 10px 22px;
}
.viz-root .spark-row { display: flex; align-items: center; gap: 10px; }
.viz-root .spark-row .name {
  flex: 1; font-size: 12px; color: var(--text-secondary);
  overflow: hidden; text-overflow: ellipsis; white-space: nowrap;
}
.viz-root .spark-row .last {
  font-size: 12px; font-weight: 600; min-width: 56px; text-align: right;
}
.viz-root table {
  border-collapse: collapse; width: 100%; font-size: 13px;
}
.viz-root th, .viz-root td {
  text-align: left; padding: 4px 10px 4px 0;
  border-bottom: 1px solid var(--gridline);
}
.viz-root th {
  color: var(--text-muted); font-weight: 500; font-size: 12px;
}
.viz-root td.num, .viz-root th.num {
  text-align: right; font-variant-numeric: tabular-nums;
}
.viz-root .delta-bad { color: var(--status-bad); font-weight: 600; }
.viz-root .delta-good { color: var(--status-good); }
.viz-root .delta-info { color: var(--text-muted); }
.viz-root .badge {
  display: inline-block; font-size: 11px; padding: 1px 8px;
  border: 1px solid var(--border); border-radius: 999px;
  color: var(--text-secondary);
}
.viz-root details { margin: 6px 0; }
.viz-root summary { cursor: pointer; color: var(--text-secondary); }
.viz-root footer {
  margin-top: 24px; font-size: 12px; color: var(--text-muted);
}
.viz-root .ok-line { color: var(--text-secondary); }
"""


def _esc(text: object) -> str:
    return html.escape(str(text), quote=True)


def _fmt(value: float | None) -> str:
    if value is None:
        return "–"
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:,.3f}"


def _compact(value: float | None) -> str:
    """Auto-compact figure for tiles: 1,284 / 12.9K / 4.2M."""
    if value is None:
        return "–"
    magnitude = abs(value)
    if magnitude >= 1e6:
        return f"{value / 1e6:.1f}M"
    if magnitude >= 10_000:
        return f"{value / 1e3:.1f}K"
    return _fmt(value)


# ----------------------------------------------------------------------
# Inline SVG sparkline


def svg_sparkline(
    values: Sequence[float | None],
    *,
    width: int = 120,
    height: int = 30,
    pad: int = 4,
) -> str:
    """A 2px polyline sparkline with a ringed end dot, as inline SVG.

    Missing values break the line.  One series per sparkline, so no
    legend is needed — the adjacent label names it (dataviz rule: a
    single series carries no legend box).
    """
    points = [
        (i, float(v)) for i, v in enumerate(values) if v is not None
    ]
    if not points:
        return (
            f'<svg class="spark" width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}" role="img" '
            'aria-label="no data"></svg>'
        )
    lo = min(v for _, v in points)
    hi = max(v for _, v in points)
    span = (hi - lo) or 1.0
    n = max(len(values) - 1, 1)

    def xy(i: int, v: float) -> tuple[float, float]:
        x = pad + (width - 2 * pad) * (i / n)
        y = pad + (height - 2 * pad) * (1.0 - (v - lo) / span)
        return round(x, 2), round(y, 2)

    # Split into segments at gaps so missing runs do not interpolate.
    segments: list[list[tuple[float, float]]] = []
    current: list[tuple[float, float]] = []
    for i, v in enumerate(values):
        if v is None:
            if current:
                segments.append(current)
            current = []
        else:
            current.append(xy(i, float(v)))
    if current:
        segments.append(current)

    parts = [
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="trend, last {_esc(_fmt(points[-1][1]))}">'
    ]
    parts.append(
        f'<title>min {_esc(_fmt(lo))}, max {_esc(_fmt(hi))}, '
        f'last {_esc(_fmt(points[-1][1]))}</title>'
    )
    for segment in segments:
        if len(segment) == 1:
            continue
        coords = " ".join(f"{x},{y}" for x, y in segment)
        parts.append(
            f'<polyline points="{coords}" fill="none" '
            'stroke="var(--series-1)" stroke-width="2" '
            'stroke-linecap="round" stroke-linejoin="round"/>'
        )
    end_x, end_y = xy(*points[-1])
    # End-dot with a 2px surface ring so it stays legible on the line.
    parts.append(
        f'<circle cx="{end_x}" cy="{end_y}" r="3" '
        'fill="var(--series-1)" stroke="var(--surface-1)" '
        'stroke-width="2"/>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _spark_row(name: str, values: list[float | None]) -> str:
    present = [v for v in values if v is not None]
    last = present[-1] if present else None
    return (
        '<div class="spark-row">'
        f'<span class="name" title="{_esc(name)}">{_esc(name)}</span>'
        + svg_sparkline(values)
        + f'<span class="last">{_esc(_fmt(last))}</span>'
        "</div>"
    )


# ----------------------------------------------------------------------
# Sections


def _tiles(records: list[RunRecord]) -> str:
    latest = records[-1]

    def series(fn) -> list[float | None]:
        return [fn(r) for r in records]

    cache = latest.cache or {}
    seen = int(cache.get("hits") or 0) + int(cache.get("misses") or 0)
    hit_rate = (100.0 * int(cache.get("hits") or 0) / seen) if seen else None
    tiles = [
        (
            "Loops compiled",
            _compact(float(latest.loop_count() or latest.config.get("loops", 0) or 0)),
            series(lambda r: float(r.loop_count()) or None),
            "latest run",
        ),
        (
            "Scheduler attempts",
            _compact(float(latest.effort.get("sched_attempts", 0))),
            series(lambda r: float(r.effort.get("sched_attempts", 0))),
            "deterministic effort",
        ),
        (
            "KL pack steps",
            _compact(float(latest.effort.get("kl_pack_steps", 0))),
            series(lambda r: float(r.effort.get("kl_pack_steps", 0))),
            "deterministic effort",
        ),
        (
            "Cache hit rate",
            "–" if hit_rate is None else f"{hit_rate:.0f}%",
            series(
                lambda r: (
                    100.0
                    * int((r.cache or {}).get("hits") or 0)
                    / max(
                        int((r.cache or {}).get("hits") or 0)
                        + int((r.cache or {}).get("misses") or 0),
                        1,
                    )
                )
            ),
            "this run's circumstance",
        ),
        (
            "Wall clock",
            f"{latest.wall_s:.1f}s",
            series(lambda r: r.wall_s or None),
            "informational, noisy",
        ),
    ]
    out = ['<div class="tiles">']
    for label, value, values, context in tiles:
        out.append(
            '<div class="tile">'
            f'<div class="label">{_esc(label)}</div>'
            f'<div class="value">{_esc(value)}</div>'
            + svg_sparkline(values, width=110, height=22)
            + f'<div class="context">{_esc(context)}</div>'
            "</div>"
        )
    out.append("</div>")
    return "".join(out)


def _experiment_trend_series(
    records: list[RunRecord],
) -> list[tuple[str, list[float | None]]]:
    """Per-experiment headline series: figure1 IIs per strategy; mean
    speedup per column for the table experiments."""
    series: list[tuple[str, list[float | None]]] = []
    experiments: list[str] = []
    for record in records:
        for name in record.experiments:
            if name not in experiments:
                experiments.append(name)
    for experiment in sorted(experiments):
        columns: list[str] = []
        for record in records:
            data = record.experiments.get(experiment)
            if not isinstance(data, dict):
                continue
            if experiment == "figure1":
                for column in data:
                    if column not in columns:
                        columns.append(column)
            else:
                for row in data.values():
                    if isinstance(row, dict):
                        for column in row:
                            if column not in columns and isinstance(
                                row[column], (int, float)
                            ):
                                columns.append(column)
        for column in columns:
            values: list[float | None] = []
            for record in records:
                data = record.experiments.get(experiment)
                if not isinstance(data, dict):
                    values.append(None)
                elif experiment == "figure1":
                    v = data.get(column)
                    values.append(
                        float(v) if isinstance(v, (int, float)) else None
                    )
                else:
                    cells = [
                        row[column]
                        for row in data.values()
                        if isinstance(row, dict)
                        and isinstance(row.get(column), (int, float))
                    ]
                    values.append(
                        sum(cells) / len(cells) if cells else None
                    )
            label = (
                f"figure1 · {column} II"
                if experiment == "figure1"
                else f"{experiment} · mean {column}"
            )
            series.append((label, values))
    return series


def _trends(records: list[RunRecord]) -> str:
    rows = []
    for counter in TREND_COUNTERS:
        values = [v for _, v in trend(records, f"effort.{counter}")]
        if any(v for v in values if v):
            rows.append(_spark_row(f"effort · {counter}", values))
    for label, values in _experiment_trend_series(records):
        rows.append(_spark_row(label, values))
    wall = [v for _, v in trend(records, "wall_s")]
    if any(wall):
        rows.append(_spark_row("wall_s (informational)", wall))
    if not rows:
        return '<p class="muted">(no numeric trends yet)</p>'
    return '<div class="sparks">' + "".join(rows) + "</div>"


def _delta_cell(delta: MetricDelta) -> str:
    """Signed delta with a direction glyph and text label — direction ×
    whether up is good; never color alone."""
    worse = delta.delta > 0
    if delta.kind == "speedup":
        worse = delta.delta < 0
    glyph = "▲" if delta.delta > 0 else "▼"
    if delta.kind == "wall":
        css, word = "delta-info", "informational"
    elif worse:
        css, word = "delta-bad", "regressed"
    else:
        css, word = "delta-good", "improved"
    sign = "+" if delta.delta >= 0 else ""
    return (
        f'<td class="num {css}">{glyph} {sign}{_esc(f"{delta.delta:g}")} '
        f"({word})</td>"
    )


def _regressions(records: list[RunRecord]) -> str:
    if len(records) < 2:
        return (
            '<p class="muted">(fewer than two runs — record another run '
            "to unlock cross-run comparison)</p>"
        )
    comparison = compare_runs(records[-2], records[-1])
    head = (
        f'<p class="subtitle">latest <strong>{_esc(comparison.b.run_id)}'
        f"</strong> vs previous <strong>{_esc(comparison.a.run_id)}"
        "</strong> — effort and II deltas are exact; wall-clock rows "
        "appear only past the noise thresholds.</p>"
    )
    ranked = comparison.ranked()
    if not ranked:
        return head + (
            '<p class="ok-line">✓ no exact deltas: the two runs compiled '
            "identically (wall-clock differences, if any, are below the "
            "noise thresholds).</p>"
        )
    rows = [
        "<table><thead><tr>"
        '<th>#</th><th>kind</th><th>metric</th>'
        '<th class="num">previous</th><th class="num">latest</th>'
        '<th class="num">delta</th>'
        "</tr></thead><tbody>"
    ]
    for rank, delta in enumerate(ranked[:50], start=1):
        rows.append(
            "<tr>"
            f'<td class="num">{rank}</td>'
            f"<td><span class=\"badge\">{_esc(delta.kind)}</span></td>"
            f"<td>{_esc(delta.path)}</td>"
            f'<td class="num">{_esc(f"{delta.a:g}")}</td>'
            f'<td class="num">{_esc(f"{delta.b:g}")}</td>'
            + _delta_cell(delta)
            + "</tr>"
        )
    rows.append("</tbody></table>")
    if len(ranked) > 50:
        rows.append(
            f'<p class="muted">({len(ranked) - 50} further delta(s) not '
            "shown)</p>"
        )
    return head + "".join(rows)


def _experiment_grids(latest: RunRecord) -> str:
    if not latest.experiments:
        return '<p class="muted">(latest run carries no experiment data)</p>'
    out = []
    for experiment in sorted(latest.experiments):
        data = latest.experiments[experiment]
        if not isinstance(data, dict) or not data:
            continue
        out.append(f"<h3>{_esc(experiment)}</h3>")
        first = next(iter(data.values()))
        if isinstance(first, dict):
            columns: list[str] = []
            for row in data.values():
                if isinstance(row, dict):
                    for column in row:
                        if column not in columns:
                            columns.append(column)
            head = "".join(
                f'<th class="num">{_esc(c)}</th>' for c in columns
            )
            body = []
            for name in sorted(data):
                row = data[name]
                if not isinstance(row, dict):
                    continue
                cells = "".join(
                    f'<td class="num">{_esc(_cell(row.get(c)))}</td>'
                    for c in columns
                )
                body.append(f"<tr><td>{_esc(name)}</td>{cells}</tr>")
            out.append(
                "<table><thead><tr><th>benchmark</th>"
                + head
                + "</tr></thead><tbody>"
                + "".join(body)
                + "</tbody></table>"
            )
        else:
            body = "".join(
                f'<tr><td>{_esc(k)}</td><td class="num">'
                f"{_esc(_cell(data[k]))}</td></tr>"
                for k in sorted(data)
            )
            out.append(
                "<table><thead><tr><th>metric</th>"
                '<th class="num">value</th></tr></thead>'
                f"<tbody>{body}</tbody></table>"
            )
    return "".join(out)


def _cell(value: object) -> str:
    if isinstance(value, bool) or value is None:
        return "–" if value is None else str(value)
    if isinstance(value, (int, float)):
        return f"{value:g}" if isinstance(value, int) else f"{value:.3f}"
    if isinstance(value, dict):
        return " / ".join(f"{k} {v}" for k, v in sorted(value.items()))
    return str(value)


def _drilldown(latest: RunRecord) -> str:
    out = []
    badges = []
    if latest.check is not None:
        errors = int(latest.check.get("errors") or 0)
        units = int(latest.check.get("units") or 0)
        badges.append(
            f"check: {'✓ clean' if errors == 0 else f'✗ {errors} error(s)'}"
            f" over {units} unit(s)"
        )
    if latest.oracle is not None:
        badges.append(
            " / ".join(
                f"oracle {k}: {v}" for k, v in sorted(latest.oracle.items())
            )
        )
    if badges:
        out.append(
            "<p>"
            + " ".join(f'<span class="badge">{_esc(b)}</span>' for b in badges)
            + "</p>"
        )
    if latest.notes:
        out.append("<ul>")
        out += [f"<li>{_esc(note)}</li>" for note in latest.notes]
        out.append("</ul>")
    if not latest.loops:
        out.append(
            '<p class="muted">(latest run carries no per-loop rows)</p>'
        )
        return "".join(out)
    for bench in sorted(latest.loops):
        loops = latest.loops[bench]
        variants: list[str] = []
        for row in loops.values():
            if isinstance(row, dict):
                for variant in row:
                    if variant not in variants:
                        variants.append(variant)
        head = "".join(
            f'<th class="num">{_esc(v)} II</th>' for v in variants
        )
        body = []
        for loop_name in sorted(loops):
            row = loops[loop_name]
            cells = []
            for variant in variants:
                metrics = row.get(variant) if isinstance(row, dict) else None
                if isinstance(metrics, dict):
                    ii = metrics.get("ii")
                    title = " ".join(
                        f"{k}={metrics[k]:g}"
                        for k in ("ii", "res_mii", "rec_mii")
                        if isinstance(metrics.get(k), (int, float))
                    )
                    cells.append(
                        f'<td class="num" title="{_esc(title)}">'
                        f"{_esc(_cell(ii))}</td>"
                    )
                else:
                    cells.append('<td class="num">–</td>')
            body.append(
                f"<tr><td>{_esc(loop_name)}</td>" + "".join(cells) + "</tr>"
            )
        out.append(
            f"<details><summary>{_esc(bench)} "
            f"({len(loops)} loop(s))</summary>"
            "<table><thead><tr><th>loop</th>"
            + head
            + "</tr></thead><tbody>"
            + "".join(body)
            + "</tbody></table></details>"
        )
    return "".join(out)


# ----------------------------------------------------------------------
# Document


def render_dashboard(
    ledger: Ledger, *, limit: int | None = None
) -> str:
    """The complete dashboard HTML for a ledger (newest ``limit`` runs)."""
    records = ledger.latest(limit)
    if not records:
        body = (
            "<section class=\"card\"><p class=\"muted\">The ledger at "
            f"<code>{_esc(ledger.root)}</code> holds no runs yet. Record "
            "one with <code>--ledger</code> on the evaluation CLI or "
            "<code>python -m repro.dashboard record</code>.</p></section>"
        )
        return _document(body, subtitle="0 runs")
    latest = records[-1]
    sha = (latest.git_sha or "unknown")[:12]
    subtitle = (
        f"{len(records)} run(s) · latest {_esc(latest.run_id)} "
        f"({_esc(latest.created_at)}, {_esc(latest.label or 'unlabeled')}, "
        f"git {_esc(sha)})"
    )
    sections = [
        f'<section class="card"><h2>Latest run</h2>{_tiles(records)}'
        "</section>",
        f'<section class="card"><h2>Trends across runs</h2>'
        f"{_trends(records)}</section>",
        f'<section class="card"><h2>Top regressions '
        f"(ranked by exact effort delta)</h2>{_regressions(records)}"
        "</section>",
        f'<section class="card"><h2>Latest results by experiment</h2>'
        f"{_experiment_grids(latest)}</section>",
        f'<section class="card"><h2>Per-benchmark drill-down</h2>'
        f"{_drilldown(latest)}</section>",
    ]
    return _document("".join(sections), subtitle=subtitle)


def _document(body: str, *, subtitle: str) -> str:
    return (
        "<!doctype html>\n"
        '<html lang="en">\n<head>\n'
        '<meta charset="utf-8"/>\n'
        '<meta name="viewport" content="width=device-width, '
        'initial-scale=1"/>\n'
        f"<title>{_esc(DASHBOARD_TITLE)}</title>\n"
        f"<style>{_CSS}</style>\n"
        "</head>\n"
        '<body class="viz-root">\n'
        f"<h1>{_esc(DASHBOARD_TITLE)}</h1>\n"
        f'<p class="subtitle">{subtitle}</p>\n'
        f"{body}\n"
        "<footer>Self-contained artifact: inline SVG only, no scripts, "
        "no network fetches. Effort counters are deterministic — exact "
        "across machines; wall clock is informational.</footer>\n"
        "</body>\n</html>\n"
    )
