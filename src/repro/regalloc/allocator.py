"""Rotating-register allocation for modulo-scheduled kernels.

A value defined in stage ``s`` and consumed in stage ``s+k`` is live
across ``k`` kernel copies, so it needs ``k+1`` rotating registers (the
Trimaran/Itanium scheme; modulo variable expansion achieves the same
effect by unrolling).  We compute, for every kernel cycle, how many
simultaneously live copies each register file must hold (MaxLive), assign
rotating indices, and report whether the Table 1 file capacities suffice.
Allocation failure sends the loop back to the scheduler at a higher II.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.dependence.graph import DependenceGraph, DepKind, Via
from repro.ir.types import ScalarType, VectorType
from repro.ir.values import VirtualRegister

if TYPE_CHECKING:  # avoid a circular import with repro.pipeline
    from repro.pipeline.scheduler import ModuloSchedule


def register_file_of(reg: VirtualRegister) -> str:
    """Which architected file holds this value: int / fp / vint / vfp."""
    ty = reg.type
    if isinstance(ty, VectorType):
        return "vint" if ty.element.is_integer else "vfp"
    if ty is ScalarType.PRED:
        return "pred"
    return "int" if ty.is_integer else "fp"


_CAPACITY_ATTR = {
    "int": "scalar_int",
    "fp": "scalar_fp",
    "vint": "vector_int",
    "vfp": "vector_fp",
    "pred": "predicate",
}


@dataclass
class FilePressure:
    file: str
    max_live: int
    capacity: int

    @property
    def fits(self) -> bool:
        return self.max_live <= self.capacity


@dataclass
class AllocationResult:
    pressures: dict[str, FilePressure]
    rotating_indices: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(p.fits for p in self.pressures.values())

    def pressure(self, file: str) -> int:
        p = self.pressures.get(file)
        return p.max_live if p else 0


def _live_copies(start: int, end: int, cycle: int, ii: int) -> int:
    """Number of rotating copies of a value live at kernel cycle ``cycle``
    given an absolute lifetime [start, end)."""
    if end <= start:
        return 0
    lo = math.ceil((start - cycle) / ii)
    hi = math.ceil((end - cycle) / ii)
    return max(0, hi - lo)


def allocate_kernel(
    schedule: ModuloSchedule,
    graph: DependenceGraph,
) -> AllocationResult:
    """MaxLive analysis and rotating assignment for one kernel."""
    from repro.observability.recorder import active_recorder, maybe_span

    rec = active_recorder()
    with maybe_span(rec, "regalloc", loop=schedule.loop.name, ii=schedule.ii):
        result = _allocate_kernel(schedule, graph)
        if rec is not None:
            rec.count("regalloc.calls")
            if not result.ok:
                rec.count("regalloc.failures")
                rec.event(
                    "regalloc.overflow",
                    loop=schedule.loop.name,
                    ii=schedule.ii,
                    overflow={
                        p.file: [p.max_live, p.capacity]
                        for p in result.pressures.values()
                        if not p.fits
                    },
                )
        return result


def _allocate_kernel(
    schedule: ModuloSchedule,
    graph: DependenceGraph,
) -> AllocationResult:
    loop = schedule.loop
    machine = schedule.machine
    ii = schedule.ii
    times = schedule.times

    # Lifetime of each defined value: from issue to the latest consumer
    # read (offset by II per carried distance); values without consumers
    # live through their own latency.
    lifetimes: dict[VirtualRegister, tuple[int, int]] = {}
    for op in loop.body:
        if op.dest is None:
            continue
        start = times[op.uid]
        end = start + max(1, machine.opcode_info(op).latency)
        for edge in graph.successors(op.uid):
            if edge.kind is not DepKind.FLOW or edge.via not in (
                Via.REGISTER,
                Via.CARRIED,
            ):
                continue
            end = max(end, times[edge.dst] + ii * edge.distance + 1)
        lifetimes[op.dest] = (start, end)

    # Live-out values persist past the loop: round their lifetime up to a
    # full extra stage so the epilogue can still read them.
    for reg in loop.live_out:
        if reg in lifetimes:
            start, end = lifetimes[reg]
            lifetimes[reg] = (start, max(end, start + ii + 1))

    max_live: dict[str, int] = {}
    for cycle in range(ii):
        live_now: dict[str, int] = {}
        for reg, (start, end) in lifetimes.items():
            copies = _live_copies(start, end, cycle, ii)
            if copies:
                file = register_file_of(reg)
                live_now[file] = live_now.get(file, 0) + copies
        for file, count in live_now.items():
            max_live[file] = max(max_live.get(file, 0), count)

    # Persistent values: carried entries without a body definition and
    # loop invariants defined in the preheader each pin one register.
    body_defs = {op.dest for op in loop.body if op.dest is not None}
    for c in loop.carried:
        if c.exit == c.entry or c.exit not in body_defs:
            file = register_file_of(c.entry)
            max_live[file] = max_live.get(file, 0) + 1
    for op in loop.preheader:
        if op.dest is not None:
            file = register_file_of(op.dest)
            max_live[file] = max_live.get(file, 0) + 1

    rf = machine.register_files
    pressures = {
        file: FilePressure(file, count, getattr(rf, _CAPACITY_ATTR[file]))
        for file, count in sorted(max_live.items())
    }

    # Rotating assignment: values receive consecutive base indices within
    # their file; the hardware (or modulo variable expansion) advances the
    # rotating base by one register per kernel iteration.
    rotating: dict[str, int] = {}
    counters: dict[str, int] = {}
    for reg in sorted(lifetimes, key=lambda r: r.name):
        file = register_file_of(reg)
        rotating[reg.name] = counters.get(file, 0)
        counters[file] = counters.get(file, 0) + 1

    return AllocationResult(pressures=pressures, rotating_indices=rotating)
