"""Rotating-register allocation for software-pipelined kernels."""

from repro.regalloc.allocator import (
    AllocationResult,
    FilePressure,
    allocate_kernel,
    register_file_of,
)
from repro.regalloc.spill import (
    insert_spills,
    spill_candidates,
    spill_for_pressure,
)

__all__ = [
    "AllocationResult",
    "FilePressure",
    "allocate_kernel",
    "insert_spills",
    "register_file_of",
    "spill_candidates",
    "spill_for_pressure",
]
