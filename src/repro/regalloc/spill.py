"""Spill code insertion.

When a kernel's MaxLive exceeds a register file even after the scheduler
retries at longer IIs, the remaining recourse is to spill: store a
long-lived value to a scratch location right after its definition and
reload it in front of each use.  The spill traffic competes for the
load/store units — exactly the cost a real backend pays — and the
shortened live ranges bring MaxLive back under the file capacity.

Spill candidates are the values with the longest kernel lifetimes in the
overflowing file, excluding carried exits and live-outs (whose lifetimes
are structural).  The scratch slots are indexed by the loop counter, so
spills from overlapped iterations never collide (the software-pipelining
analogue of distinct stack slots).
"""

from __future__ import annotations

from dataclasses import replace

from repro.dependence.graph import DependenceGraph, DepKind, Via
from repro.ir.loop import ArrayInfo, Loop
from repro.ir.operations import Operation, OpKind
from repro.ir.subscripts import AffineExpr, Subscript
from repro.ir.types import ScalarType
from typing import TYPE_CHECKING

from repro.ir.values import VirtualRegister
from repro.regalloc.allocator import AllocationResult, register_file_of

if TYPE_CHECKING:  # avoid a circular import with repro.pipeline
    from repro.pipeline.scheduler import ModuloSchedule

SPILL_PREFIX = "spill."
SPILL_SCRATCH_ELEMS = 1 << 14


def spill_candidates(
    schedule: "ModuloSchedule",
    graph: DependenceGraph,
    file: str,
) -> list[VirtualRegister]:
    """Spillable values of ``file``, longest kernel lifetime first."""
    loop = schedule.loop
    machine = schedule.machine
    protected: set[VirtualRegister] = set(loop.live_out)
    for c in loop.carried:
        if isinstance(c.exit, VirtualRegister):
            protected.add(c.exit)

    lifetimes: list[tuple[int, VirtualRegister]] = []
    for op in loop.body:
        if op.dest is None or op.dest in protected:
            continue
        if register_file_of(op.dest) != file:
            continue
        if isinstance(op.dest.type, ScalarType) and op.dest.type is ScalarType.PRED:
            continue
        start = schedule.times[op.uid]
        end = start + max(1, machine.opcode_info(op).latency)
        consumers = 0
        for edge in graph.successors(op.uid):
            if edge.kind is DepKind.FLOW and edge.via in (Via.REGISTER, Via.CARRIED):
                end = max(end, schedule.times[edge.dst] + schedule.ii * edge.distance)
                consumers += 1
        if consumers == 0:
            continue
        lifetimes.append((end - start, op.dest))
    lifetimes.sort(key=lambda t: (-t[0], t[1].name))
    return [reg for _, reg in lifetimes]


def insert_spills(loop: Loop, victims: list[VirtualRegister]) -> Loop:
    """Rewrite ``loop`` spilling each victim: store after its definition,
    reload in front of every consumer."""
    if not victims:
        return loop
    victim_set = set(victims)
    arrays = dict(loop.arrays)
    body: list[Operation] = []
    reload_counter = 0

    def scratch(reg: VirtualRegister) -> str:
        name = f"{SPILL_PREFIX}{reg.name}"
        if name not in arrays:
            dtype = reg.type
            assert isinstance(dtype, ScalarType)
            arrays[name] = ArrayInfo(name, dtype, (SPILL_SCRATCH_ELEMS,))
        return name

    sub = Subscript((AffineExpr(1, 0),))
    for op in loop.body:
        # Reload spilled operands immediately before the consumer.
        new_srcs = list(op.srcs)
        changed = False
        for i, src in enumerate(op.srcs):
            if isinstance(src, VirtualRegister) and src in victim_set:
                nonlocal_name = f"{src.name}.rl{reload_counter}"
                reload_counter += 1
                dtype = src.type
                assert isinstance(dtype, ScalarType)
                reload_reg = VirtualRegister(nonlocal_name, dtype)
                body.append(
                    Operation(
                        OpKind.LOAD,
                        dtype,
                        dest=reload_reg,
                        array=scratch(src),
                        subscript=sub,
                    )
                )
                new_srcs[i] = reload_reg
                changed = True
        body.append(replace(op, srcs=tuple(new_srcs)) if changed else op)
        # Store a victim to its slot right after its definition.
        if op.dest is not None and op.dest in victim_set:
            dtype = op.dest.type
            assert isinstance(dtype, ScalarType)
            body.append(
                Operation(
                    OpKind.STORE,
                    dtype,
                    srcs=(op.dest,),
                    array=scratch(op.dest),
                    subscript=sub,
                )
            )

    spilled = replace(loop, body=tuple(body), arrays=arrays)
    from repro.ir.verifier import verify_loop

    verify_loop(spilled)
    return spilled


def spill_for_pressure(
    loop: Loop,
    schedule: "ModuloSchedule",
    graph: DependenceGraph,
    allocation: AllocationResult,
) -> Loop | None:
    """Choose and apply spills for every overflowing file.  Returns the
    rewritten loop, or ``None`` when nothing can be spilled."""
    victims: list[VirtualRegister] = []
    for file, pressure in allocation.pressures.items():
        if pressure.fits:
            continue
        overflow = pressure.max_live - pressure.capacity
        candidates = spill_candidates(schedule, graph, file)
        victims.extend(candidates[: max(1, overflow)])
    if not victims:
        return None
    return insert_spills(loop, victims)
