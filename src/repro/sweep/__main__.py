"""CLI for corpus-scale sweeps.

::

    python -m repro.sweep run --size 10000 --shards 8 --out sweep-10k \\
        [--jobs N] [--seed S] [--archetypes a,b] [--weights a=2,b=0.5] \\
        [--trip 16:256] [--strategies selective] [--machine paper] \\
        [--resume] [--ledger DIR] [--run-label L] [--progress] \\
        [--profile PATH] [--fail-shard K --fail-after N]
    python -m repro.sweep status --out sweep-10k

``run`` generates the corpus plan, compiles it shard by shard, merges
the shard records into one ledger record, and writes
``BENCH_sweep.json`` into the output directory.  A killed run resumes
with ``--resume`` (completed shards are never recompiled).  Exit code 3
means shards failed but the manifest is intact and resumable.
"""

from __future__ import annotations

import argparse
import sys

from repro.sweep.manifest import SweepManifest
from repro.sweep.runner import SweepConfig, SweepError, run_sweep
from repro.workloads.generator import GENERATORS, CorpusSpec

EXIT_FAILED_SHARDS = 3


def _parse_weights(text: str) -> dict[str, float]:
    weights: dict[str, float] = {}
    for part in filter(None, (p.strip() for p in text.split(","))):
        name, sep, value = part.partition("=")
        if not sep:
            raise argparse.ArgumentTypeError(
                f"bad weight {part!r} (expected name=value)"
            )
        weights[name.strip()] = float(value)
    return weights


def _parse_trip(text: str) -> tuple[int, int]:
    lo, sep, hi = text.partition(":")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"bad trip range {text!r} (expected lo:hi)"
        )
    return int(lo), int(hi)


def _parse_list(text: str) -> tuple[str, ...]:
    return tuple(filter(None, (p.strip() for p in text.split(","))))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="sharded, resumable corpus sweeps",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run (or resume) a sweep")
    run.add_argument("--size", type=int, required=True, help="corpus size")
    run.add_argument("--seed", type=int, default=0, help="corpus seed")
    run.add_argument(
        "--archetypes",
        type=_parse_list,
        default=(),
        help=f"comma-separated mix (default: all of {','.join(GENERATORS)})",
    )
    run.add_argument(
        "--weights",
        type=_parse_weights,
        default={},
        help="relative archetype draw weights, e.g. fp_chain=2,stencil=0.5",
    )
    run.add_argument(
        "--trip",
        type=_parse_trip,
        default=(16, 256),
        metavar="LO:HI",
        help="trip-count draw range (default 16:256)",
    )
    run.add_argument(
        "--strategies",
        type=_parse_list,
        default=("selective",),
        help="comma-separated strategies (default: selective)",
    )
    run.add_argument(
        "--machine",
        default="paper",
        choices=("paper", "figure1"),
        help="machine model (default: paper)",
    )
    run.add_argument("--shards", type=int, default=1)
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="process-pool size; shards are work-stolen as workers free up",
    )
    run.add_argument("--out", required=True, help="sweep output directory")
    run.add_argument(
        "--resume",
        action="store_true",
        help="complete the missing shards of an interrupted sweep",
    )
    run.add_argument("--ledger", help="append the merged record here")
    run.add_argument("--run-label", default="sweep")
    run.add_argument(
        "--progress",
        action="store_true",
        help="emit per-loop progress heartbeats to stderr",
    )
    run.add_argument(
        "--profile",
        metavar="PATH",
        help="write a call-tree profile JSON ('-' renders to stdout); "
        "only the in-process work is profiled, so use --jobs 1",
    )
    run.add_argument(
        "--fail-shard",
        type=int,
        metavar="K",
        help="fault injection: kill shard K mid-run (tests, CI smoke)",
    )
    run.add_argument(
        "--fail-after",
        type=int,
        default=0,
        metavar="N",
        help="with --fail-shard: die after N loops of the shard",
    )

    status = sub.add_parser("status", help="summarize a sweep manifest")
    status.add_argument("--out", required=True)
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    spec = CorpusSpec(
        size=args.size,
        seed=args.seed,
        archetypes=args.archetypes,
        weights=args.weights,
        trip_counts=args.trip,
    )
    config = SweepConfig(
        spec=spec,
        shards=args.shards,
        jobs=args.jobs,
        strategies=args.strategies,
        machine=args.machine,
    )
    progress = None
    if args.progress:
        from repro.profiling import ProgressMonitor

        progress = ProgressMonitor(stream=sys.stderr, require_tty=False)

    recorder = None
    if args.profile is not None:
        from repro.observability import recording

        recorder_cm = recording(trace=True)
        recorder = recorder_cm.__enter__()
    try:
        result = run_sweep(
            config,
            args.out,
            resume=args.resume,
            ledger_dir=args.ledger,
            run_label=args.run_label,
            progress=progress,
            fail_shard=args.fail_shard,
            fail_after=args.fail_after if args.fail_shard is not None else None,
        )
    except SweepError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return EXIT_FAILED_SHARDS
    finally:
        if progress is not None:
            progress.finish()
        if recorder is not None:
            recorder_cm.__exit__(None, None, None)
            from repro.profiling import Profile, render_tree, write_profile

            profile = Profile.from_recorder(recorder)
            if args.profile == "-":
                print(render_tree(profile, counters=True))
            else:
                write_profile(profile, args.profile)
                print(f"wrote profile to {args.profile}")

    wall = result.loop_wall_ms
    p50 = wall[len(wall) // 2] if wall else 0.0
    p99 = wall[min(len(wall) - 1, int(round(0.99 * (len(wall) - 1))))] if wall else 0.0
    print(
        f"sweep: {result.loops} loops ({result.compiles} compiles) in "
        f"{result.shard_wall_s:.1f}s across {config.shards} shard(s) "
        f"({result.ran_shards} ran, {result.resumed_shards} resumed) — "
        f"{result.rate_per_s():.1f} loops/s, per-loop p50 {p50:.1f}ms "
        f"p99 {p99:.1f}ms"
    )
    print(f"sweep: wrote {result.bench_path}")
    if args.ledger:
        print(
            f"sweep: recorded run {result.merged.run_id} in {args.ledger}"
        )
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    manifest = SweepManifest(args.out)
    header = manifest.header()
    if header is None:
        print(f"sweep: no manifest in {args.out}")
        return 1
    config = header.get("config", {})
    shards = int(config.get("shards") or 0)
    done = manifest.completed_shards()
    sweep_cfg = config.get("sweep", {})
    corpus = sweep_cfg.get("corpus", {})
    print(
        f"sweep {header.get('run_id')}: {corpus.get('size')} loops, "
        f"{len(done)}/{shards} shard(s) done"
    )
    for k in sorted(done):
        event = done[k]
        print(
            f"  shard {k}: {event.get('loops')} loops in "
            f"{event.get('wall_s')}s -> {event.get('path')}"
        )
    missing = [k for k in range(shards) if k not in done]
    if missing:
        print(f"  missing: {missing} (run with --resume to complete)")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_status(args)


if __name__ == "__main__":
    sys.exit(main())
