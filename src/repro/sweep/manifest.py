"""Crash-safe sweep manifest: an append-only JSONL progress journal.

One manifest per sweep directory.  The first line is the header (the
corpus spec and run configuration); each later line records one durably
completed shard.  Appends follow the ledger's durability rules — one
``O_APPEND`` write of a complete line — and the reader skips a torn tail
or corrupt line, so a run killed mid-write still leaves every earlier
shard completion readable and ``--resume`` can trust what it finds.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Callable

MANIFEST_FILE = "manifest.jsonl"


def _stderr_warn(message: str) -> None:
    print(f"[sweep] {message}", file=sys.stderr)


class SweepManifest:
    """The append-only journal of one sweep directory."""

    def __init__(
        self,
        directory: str,
        *,
        warn: Callable[[str], None] | None = None,
    ) -> None:
        self.directory = directory
        self.path = os.path.join(directory, MANIFEST_FILE)
        self._warn = warn if warn is not None else _stderr_warn

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def append(self, event: dict) -> None:
        """Durably append one event (a single complete JSONL line)."""
        os.makedirs(self.directory, exist_ok=True)
        line = (
            json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)

    def events(self) -> list[dict]:
        """Every readable event in append order; torn or corrupt lines
        are skipped with a warning."""
        try:
            with open(self.path, "rb") as f:
                raw = f.read()
        except FileNotFoundError:
            return []
        events: list[dict] = []
        chunks = raw.split(b"\n")
        torn_tail = chunks[-1] != b""
        for lineno, chunk in enumerate(chunks, start=1):
            if chunk == b"":
                continue
            if torn_tail and lineno == len(chunks):
                self._warn(
                    f"{self.path}:{lineno}: torn event (no trailing "
                    f"newline; {len(chunk)} bytes) — skipped"
                )
                continue
            try:
                event = json.loads(chunk.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                self._warn(
                    f"{self.path}:{lineno}: unreadable event ({exc}) "
                    "— skipped"
                )
                continue
            if isinstance(event, dict):
                events.append(event)
        return events

    def header(self) -> dict | None:
        """The sweep header event, or None for an empty/alien manifest."""
        for event in self.events():
            if event.get("event") == "sweep":
                return event
        return None

    def completed_shards(self) -> dict[int, dict]:
        """Shard index -> its completion event, for every shard whose
        ``done`` line made it to disk."""
        done: dict[int, dict] = {}
        for event in self.events():
            if event.get("event") == "shard" and event.get("status") == "done":
                done[int(event["shard"])] = event
        return done
