"""Corpus-scale sweeps: sharded, resumable compilation of generated loops.

The sweep runner compiles a :class:`~repro.workloads.generator.CorpusSpec`
corpus (thousands to hundreds of thousands of loops) split into shards,
pulling shards from a shared queue (work stealing) when ``jobs > 1``.
Every completed shard is durably recorded — an atomically-written shard
result file plus an append-only JSONL manifest line — before the runner
moves on, so a killed run loses at most the shards in flight and
``--resume`` completes exactly the missing ones.  Shard records merge
through the ledger's ``merge_records`` path, so a sharded (or resumed)
sweep's ledger record is comparable exactly — same loops, same effort
counters — with a serial reference run; only wall clock differs.
"""

from repro.sweep.manifest import SweepManifest
from repro.sweep.runner import (
    ShardFailure,
    SweepConfig,
    SweepError,
    SweepResult,
    run_sweep,
    shard_bounds,
)

__all__ = [
    "ShardFailure",
    "SweepConfig",
    "SweepError",
    "SweepManifest",
    "SweepResult",
    "run_sweep",
    "shard_bounds",
]
