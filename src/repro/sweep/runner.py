"""Sharded, resumable sweep runner over a generated corpus.

A sweep partitions the corpus plan into contiguous shards.  Each shard
compiles its loops under every requested strategy, accumulates the
deterministic effort counters, and lands durably as (1) an atomically
written shard result file under ``shards/`` and (2) one appended
manifest line.  A crash between the two re-runs the shard on resume —
shard compilation is pure, so redoing it is always safe.  With
``jobs > 1`` shards are pulled from a shared pool queue as workers free
up (work stealing), so one slow shard never idles the rest of the pool.

The per-shard :class:`~repro.ledger.record.RunRecord`\\ s carry only
shard-independent config, so ``merge_records`` folds them into a record
whose deterministic content exactly equals a serial reference run —
the property the ``sweep-smoke`` CI job gates with ``--fail-on-exact``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.compiler.driver import check_env_enabled
from repro.compiler.service import CompileRequest, compile_one
from repro.compiler.strategies import Strategy
from repro.evaluation.bench_io import EFFORT_COUNTERS, write_bench_json
from repro.evaluation.experiments import CompileTelemetry
from repro.ledger.record import (
    RunRecord,
    current_git_sha,
    digest_of,
    new_run_id,
    utc_now_iso,
)
from repro.ledger.store import Ledger, merge_records
from repro.machine.configs import MACHINE_FACTORIES
from repro.sweep.manifest import SweepManifest
from repro.workloads.generator import CorpusSpec, corpus_plan

if TYPE_CHECKING:
    from repro.profiling.progress import ProgressMonitor

SHARD_DIR = "shards"

#: Machines a sweep may target — the shared registry, so the sweep
#: runner, the compiler CLI, and the compile server resolve the same
#: names to the same configurations.
MACHINES = MACHINE_FACTORIES


class SweepError(RuntimeError):
    """The sweep could not run to completion (config mismatch on resume,
    failed shards, ...)."""


class ShardFailure(RuntimeError):
    """A shard died before its result landed durably.  Raised by the
    fault-injection knob (``fail_after``) to simulate a mid-shard kill:
    the shard's result file and manifest line are never written, exactly
    as if the process had been SIGKILLed mid-compile."""

    def __init__(self, shard: int, after: int) -> None:
        self.shard = shard
        super().__init__(
            f"shard {shard} killed after {after} loop(s) (induced failure)"
        )


@dataclass(frozen=True)
class SweepConfig:
    """Everything that shapes a sweep's deterministic content, plus the
    sharding/parallelism that only shapes how it is obtained."""

    spec: CorpusSpec
    shards: int = 1
    jobs: int = 1
    strategies: tuple[str, ...] = ("selective",)
    machine: str = "paper"

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.machine not in MACHINES:
            raise ValueError(
                f"unknown machine {self.machine!r} "
                f"(expected one of {sorted(MACHINES)})"
            )
        for label in self.strategies:
            if label.upper() not in Strategy.__members__:
                raise ValueError(f"unknown strategy {label!r}")

    def record_config(self) -> dict:
        """The shard-record config: deliberately free of shard count and
        pool size, so serial and sharded runs merge to equal records."""
        return {
            "experiments": ["sweep"],
            "sweep": {
                "corpus": self.spec.to_dict(),
                "strategies": sorted(self.strategies),
                "machine": self.machine,
            },
        }

    def resume_digest(self) -> str:
        """Identity a resume must match: the deterministic content plus
        the shard boundaries (resuming with a different shard split would
        mix incompatible slices)."""
        return digest_of(
            {"config": self.record_config(), "shards": self.shards}
        )


@dataclass
class SweepResult:
    """What one (possibly resumed) sweep run produced."""

    merged: RunRecord
    bench_path: str
    out_dir: str
    loops: int
    compiles: int
    wall_s: float
    shard_wall_s: float
    resumed_shards: int = 0
    ran_shards: int = 0
    loop_wall_ms: list[float] = field(default_factory=list)

    def rate_per_s(self) -> float:
        return self.loops / self.shard_wall_s if self.shard_wall_s > 0 else 0.0


def shard_bounds(size: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` plan slices, sizes differing by at most 1."""
    base, extra = divmod(size, shards)
    bounds: list[tuple[int, int]] = []
    lo = 0
    for k in range(shards):
        hi = lo + base + (1 if k < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def shard_path(out_dir: str, shard: int) -> str:
    return os.path.join(out_dir, SHARD_DIR, f"shard-{shard:05d}.json")


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1,
        max(0, int(round(fraction * (len(sorted_values) - 1)))),
    )
    return sorted_values[rank]


def _run_shard(task: dict) -> dict:
    """Compile one shard and durably write its result file.

    Top-level so the process pool can pickle it.  Returns the summary
    the parent appends to the manifest *after* the result file exists —
    the ordering that makes a crash at any point resumable.
    """
    config = SweepConfig(
        spec=CorpusSpec.from_dict(task["spec"]),
        shards=int(task["shards"]),
        strategies=tuple(task["strategies"]),
        machine=task["machine"],
    )
    shard = int(task["shard"])
    lo, hi = int(task["lo"]), int(task["hi"])
    fail_after = task.get("fail_after")
    machine = MACHINES[config.machine]()
    strategies = [
        (label, Strategy[label.upper()]) for label in sorted(config.strategies)
    ]
    plan = corpus_plan(config.spec)[lo:hi]
    check_enabled = check_env_enabled()

    telemetry = CompileTelemetry()
    loops: dict[str, dict[str, dict[str, float]]] = {}
    loop_wall_ms: list[float] = []
    start = time.perf_counter()
    for n, item in enumerate(plan):
        if fail_after is not None and n >= int(fail_after):
            raise ShardFailure(shard, n)
        loop = item.materialize()
        loop_start = time.perf_counter()
        row: dict[str, dict[str, float]] = {}
        for label, strategy in strategies:
            compiled = compile_one(
                CompileRequest(loop=loop, machine=machine, strategy=strategy)
            ).compiled
            telemetry.absorb(compiled)
            row[label] = {
                "ii": compiled.ii_per_iteration(),
                "res_mii": compiled.res_mii_per_iteration(),
                "rec_mii": compiled.rec_mii_per_iteration(),
            }
        loops[item.name] = row
        loop_wall_ms.append((time.perf_counter() - loop_start) * 1e3)
    wall_s = time.perf_counter() - start

    effort = {counter: getattr(telemetry, counter) for counter in EFFORT_COUNTERS}
    effort["kl_probe_cache_hits"] = telemetry.kl_probe_cache_hits
    record = RunRecord(
        run_id=f"{task['run_id']}-s{shard:05d}",
        created_at=utc_now_iso(),
        label=task.get("label", ""),
        git_sha=current_git_sha(task.get("repo", ".")),
        config=config.record_config(),
        config_digest=digest_of(config.record_config()),
        corpus_digest=digest_of({"sweep": sorted(loops)}),
        experiments={
            "sweep": {
                "loops": config.spec.size,
                "strategies": sorted(config.strategies),
                "machine": config.machine,
                "corpus": config.spec.to_dict(),
            }
        },
        loops={"sweep": loops},
        effort=effort,
        jobs=1,
        cache={
            "hits": 0,
            "misses": telemetry.loops,
            "compile_cache": False,
        },
        wall_s=round(wall_s, 3),
        check=(
            {
                "enabled": True,
                "findings": telemetry.check_findings,
                "check_ms": round(telemetry.check_ms, 3),
            }
            if check_enabled
            else None
        ),
    )

    path = shard_path(task["out_dir"], shard)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    document = {
        "shard": shard,
        "lo": lo,
        "hi": hi,
        "wall_s": round(wall_s, 3),
        "loop_wall_ms": [round(ms, 3) for ms in loop_wall_ms],
        "record": record.to_dict(),
    }
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(document, f, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)
    return {
        "shard": shard,
        "lo": lo,
        "hi": hi,
        "loops": len(plan),
        "wall_s": round(wall_s, 3),
        "path": os.path.relpath(path, task["out_dir"]),
    }


def _load_shard(out_dir: str, shard: int) -> dict:
    with open(shard_path(out_dir, shard), encoding="utf-8") as f:
        return json.load(f)


def run_sweep(
    config: SweepConfig,
    out_dir: str,
    *,
    resume: bool = False,
    ledger_dir: str | None = None,
    run_label: str = "sweep",
    progress: "ProgressMonitor | None" = None,
    fail_shard: int | None = None,
    fail_after: int | None = None,
) -> SweepResult:
    """Run (or resume) a sweep; returns the merged result.

    Durability contract: a shard is *done* only once its result file has
    been atomically renamed into place and its manifest line appended,
    in that order.  Killing the process anywhere loses only unfinished
    shards; ``resume=True`` verifies the manifest header matches this
    config and completes exactly the missing shards.

    ``fail_shard``/``fail_after`` are the fault-injection knobs used by
    the resume tests and the ``sweep-smoke`` CI job: shard ``fail_shard``
    raises :class:`ShardFailure` after ``fail_after`` loops, before
    anything of it lands on disk.
    """
    manifest = SweepManifest(out_dir)
    header = manifest.header() if manifest.exists() else None
    done: dict[int, dict] = {}
    if resume:
        if header is None:
            raise SweepError(
                f"nothing to resume: {manifest.path} has no sweep header"
            )
        if header.get("digest") != config.resume_digest():
            raise SweepError(
                "resume config mismatch: the manifest in "
                f"{out_dir} describes a different sweep "
                "(corpus, strategies, machine, or shard count changed)"
            )
        done = manifest.completed_shards()
    elif header is not None:
        raise SweepError(
            f"{out_dir} already holds a sweep manifest; pass resume=True "
            "(--resume) to complete it or choose a fresh directory"
        )
    run_id = (
        str(header.get("run_id"))
        if header is not None and header.get("run_id")
        else new_run_id()
    )
    if header is None:
        manifest.append(
            {
                "event": "sweep",
                "run_id": run_id,
                "digest": config.resume_digest(),
                "config": {
                    **config.record_config(),
                    "shards": config.shards,
                },
            }
        )

    bounds = shard_bounds(config.spec.size, config.shards)
    pending = [k for k in range(config.shards) if k not in done]
    tasks = []
    for k in pending:
        lo, hi = bounds[k]
        tasks.append(
            {
                "spec": config.spec.to_dict(),
                "shards": config.shards,
                "strategies": list(config.strategies),
                "machine": config.machine,
                "shard": k,
                "lo": lo,
                "hi": hi,
                "out_dir": out_dir,
                "run_id": run_id,
                "label": run_label,
                "fail_after": fail_after if k == fail_shard else None,
            }
        )
    if progress is not None:
        progress.add_total(sum(t["hi"] - t["lo"] for t in tasks))

    start = time.perf_counter()
    failures: list[BaseException] = []
    if config.jobs > 1 and len(tasks) > 1:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor, as_completed

        with ProcessPoolExecutor(
            max_workers=config.jobs,
            mp_context=multiprocessing.get_context("fork"),
        ) as pool:
            # Submitting every shard and draining as_completed is the
            # work-stealing loop: a worker that finishes early pulls the
            # next pending shard off the shared queue.
            futures = {pool.submit(_run_shard, t): t for t in tasks}
            for future in as_completed(futures):
                task = futures[future]
                exc = future.exception()
                if exc is not None:
                    failures.append(exc)
                    continue
                summary = future.result()
                manifest.append(
                    {"event": "shard", "status": "done", **summary}
                )
                if progress is not None:
                    for ms in _load_shard(out_dir, summary["shard"]).get(
                        "loop_wall_ms", []
                    ):
                        progress.tick(
                            f"shard{summary['shard']:05d}",
                            "sweep",
                            wall_ms=ms,
                        )
                del task
    else:
        for task in tasks:
            try:
                summary = _run_shard(task)
            except ShardFailure as exc:
                failures.append(exc)
                continue
            manifest.append({"event": "shard", "status": "done", **summary})
            if progress is not None:
                for ms in _load_shard(out_dir, summary["shard"]).get(
                    "loop_wall_ms", []
                ):
                    progress.tick(
                        f"shard{summary['shard']:05d}", "sweep", wall_ms=ms
                    )
    wall_s = time.perf_counter() - start

    if failures:
        detail = "; ".join(str(f) for f in failures)
        raise SweepError(
            f"{len(failures)} shard(s) failed ({detail}); completed shards "
            f"are durable — re-run with resume=True (--resume) to finish"
        )

    documents = [_load_shard(out_dir, k) for k in range(config.shards)]
    records = [RunRecord.from_dict(d["record"]) for d in documents]
    merged = merge_records(records, run_id=run_id, label=run_label)
    if ledger_dir:
        Ledger(ledger_dir).append(merged)

    loop_wall_ms = sorted(
        ms for d in documents for ms in d.get("loop_wall_ms", [])
    )
    shard_wall_s = sum(float(d.get("wall_s") or 0.0) for d in documents)
    compiles = config.spec.size * len(config.strategies)
    payload = {
        "schema_version": 1,
        "experiment": "sweep",
        "data": {
            "loops": config.spec.size,
            "compiles": compiles,
            "shards": config.shards,
            "strategies": sorted(config.strategies),
            "machine": config.machine,
            "corpus": config.spec.to_dict(),
            "resumed_shards": len(done),
            "effort": merged.effort,
            "rate": {
                "rate_per_s": (
                    round(config.spec.size / shard_wall_s, 3)
                    if shard_wall_s > 0
                    else 0.0
                )
            },
            "per_loop": {
                "p50": {"wall_ms": _percentile(loop_wall_ms, 0.50)},
                "p90": {"wall_ms": _percentile(loop_wall_ms, 0.90)},
                "p99": {"wall_ms": _percentile(loop_wall_ms, 0.99)},
                "max": {"wall_ms": loop_wall_ms[-1] if loop_wall_ms else 0.0},
            },
        },
        "wall_s": round(shard_wall_s, 3),
    }
    bench_path = write_bench_json("sweep", payload, out_dir)
    return SweepResult(
        merged=merged,
        bench_path=bench_path,
        out_dir=out_dir,
        loops=config.spec.size,
        compiles=compiles,
        wall_s=wall_s,
        shard_wall_s=shard_wall_s,
        resumed_shards=len(done),
        ran_shards=len(tasks),
        loop_wall_ms=loop_wall_ms,
    )
