"""Cycle-level execution of modulo schedules.

The timing model (:mod:`repro.simulate.timing`) computes cycle counts by
formula; this module *executes* the software pipeline instead, playing
the Trimaran-simulator role: instance ``j`` of an operation scheduled at
kernel time ``sigma(op)`` issues at absolute cycle ``sigma(op) + j*II``,
values flow between instances exactly as the dependence structure
dictates (same-iteration flow, loop-carried scalars reaching back one
iteration, rotating-register semantics implied by instance indexing), and
loads/stores touch a real memory image.

Running the simulator serves three purposes:

* it validates that a schedule is *executable*, not merely
  constraint-satisfying — every operand must be ready when read;
* it cross-checks the closed-form timing model: the measured makespan of
  ``m`` iterations must be within one II of ``(m + stages - 1) * II``;
* it produces the same memory/reduction results as the sequential
  interpreter, closing the loop between scheduling and semantics.

The prologue and epilogue are not special-cased: they emerge naturally
from instances near ``j = 0`` and ``j = m-1`` issuing with partial
overlap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.interp.interpreter import InterpreterError, _binary, _unary
from repro.interp.memory import MemoryImage
from repro.ir.loop import CarriedScalar, Loop
from repro.ir.operations import Operation, OpKind
from repro.ir.types import VectorType
from repro.ir.values import Constant, Operand, VirtualRegister
from repro.pipeline.scheduler import ModuloSchedule


@dataclass
class PipelineRun:
    """Outcome of executing a software pipeline cycle by cycle."""

    cycles: int
    iterations: int
    issue_slots_used: int
    issue_slot_capacity: int
    carried: dict[str, object] = field(default_factory=dict)
    final_values: dict[VirtualRegister, object] = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        if self.issue_slot_capacity == 0:
            return 0.0
        return self.issue_slots_used / self.issue_slot_capacity


class PipelineSimulator:
    """Executes a modulo schedule against a memory image."""

    def __init__(
        self,
        schedule: ModuloSchedule,
        memory: MemoryImage,
        symbols: dict[str, int] | None = None,
        carried_init: dict[str, object] | None = None,
    ):
        self.schedule = schedule
        self.loop: Loop = schedule.loop
        self.machine = schedule.machine
        self.memory = memory
        self.symbols = {**self.loop.symbols, **(symbols or {})}
        memory.declare_all(self.loop)

        self.def_of: dict[VirtualRegister, Operation] = {
            op.dest: op for op in self.loop.body if op.dest is not None
        }
        self.carried_by_entry: dict[VirtualRegister, CarriedScalar] = {
            c.entry: c for c in self.loop.carried
        }
        self.invariants: dict[VirtualRegister, object] = {}
        # (producer uid, iteration) -> value
        self.values: dict[tuple[int, int], object] = {}
        self._run_preheader(carried_init or {})

    # ------------------------------------------------------------------

    def _carried_initial(self, c: CarriedScalar, overrides: dict[str, object]):
        if c.entry.name in overrides:
            return overrides[c.entry.name]
        if isinstance(c.entry.type, VectorType):
            return tuple([c.init] * c.entry.type.length)
        return c.init

    def _run_preheader(self, overrides: dict[str, object]) -> None:
        self.carried_initials = {
            c.entry: self._carried_initial(c, overrides)
            for c in self.loop.carried
        }
        for op in self.loop.preheader:
            value = self._evaluate_preheader_op(op)
            if op.dest is not None:
                self.invariants[op.dest] = value

    def _evaluate_preheader_op(self, op: Operation):
        def operand(src: Operand):
            if isinstance(src, Constant):
                return src.value
            if src in self.invariants:
                return self.invariants[src]
            if src in self.carried_initials:
                return self.carried_initials[src]
            raise InterpreterError(f"preheader reads unknown value {src}")

        if op.kind is OpKind.COPY and op.is_vector:
            width = op.dest.type.length if isinstance(op.dest.type, VectorType) else 1
            return tuple([operand(op.srcs[0])] * width)
        if op.kind is OpKind.LOAD:
            base = op.subscript.evaluate(0, self.memory.shapes[op.array], self.symbols)
            return self.memory.load(op.array, base)
        values = [operand(s) for s in op.srcs]
        if len(values) == 2:
            return _binary(op.kind, op.dtype, values[0], values[1])
        return _unary(op.kind, op.dtype, values[0])

    # ------------------------------------------------------------------
    # Value resolution across iteration instances.

    def _operand(self, src: Operand, j: int):
        if isinstance(src, Constant):
            return src.value
        producer = self.def_of.get(src)
        if producer is not None:
            key = (producer.uid, j)
            if key not in self.values:
                raise InterpreterError(
                    f"instance ({producer.dest}, {j}) read before it was "
                    "produced — the schedule is not executable"
                )
            return self.values[key]
        carried = self.carried_by_entry.get(src)
        if carried is not None:
            return self._carried_value(carried, j)
        if src in self.invariants:
            return self.invariants[src]
        raise InterpreterError(f"unknown operand {src}")

    def _carried_value(self, c: CarriedScalar, j: int):
        if j == 0:
            return self.carried_initials[c.entry]
        if c.exit == c.entry or isinstance(c.exit, Constant):
            if isinstance(c.exit, Constant):
                return c.exit.value
            return self.carried_initials[c.entry]
        return self._operand(c.exit, j - 1)

    # ------------------------------------------------------------------

    def _vector_width(self, op: Operation) -> int:
        if op.dest is not None and isinstance(op.dest.type, VectorType):
            return op.dest.type.length
        for src in op.srcs:
            if isinstance(src.type, VectorType):
                return src.type.length
        return self.machine.vector_length

    def _as_lanes(self, value, width: int):
        if isinstance(value, tuple):
            return value
        return tuple([value] * width)

    def _execute_instance(self, op: Operation, j: int) -> None:
        kind = op.kind
        if kind.is_overhead:
            if op.dest is not None:
                self.values[(op.uid, j)] = 0
            return
        if kind is OpKind.LOAD:
            base = op.subscript.evaluate(j, self.memory.shapes[op.array], self.symbols)
            if op.is_vector:
                width = self._vector_width(op)
                value = tuple(
                    self.memory.load(op.array, base + l) for l in range(width)
                )
            else:
                value = self.memory.load(op.array, base)
            self.values[(op.uid, j)] = value
            return
        if kind is OpKind.STORE:
            base = op.subscript.evaluate(j, self.memory.shapes[op.array], self.symbols)
            value = self._operand(op.stored_value, j)
            if op.is_vector:
                lanes = self._as_lanes(value, self._vector_width(op))
                for l, v in enumerate(lanes):
                    self.memory.store(op.array, base + l, v)
            else:
                self.memory.store(op.array, base, value)
            return
        if kind is OpKind.MERGE:
            self.values[(op.uid, j)] = self._operand(op.srcs[0], j)
            return
        if kind is OpKind.PACK:
            self.values[(op.uid, j)] = tuple(
                self._operand(s, j) for s in op.srcs
            )
            return
        if kind is OpKind.EXTRACT:
            value = self._operand(op.srcs[0], j)
            self.values[(op.uid, j)] = value[op.lane]
            return
        values = [self._operand(s, j) for s in op.srcs]
        if op.is_vector:
            width = self._vector_width(op)
            lanes = [self._as_lanes(v, width) for v in values]
            if len(values) == 2:
                result = tuple(
                    _binary(kind, op.dtype, lanes[0][l], lanes[1][l])
                    for l in range(width)
                )
            else:
                result = tuple(
                    _unary(kind, op.dtype, lanes[0][l]) for l in range(width)
                )
        elif len(values) == 2:
            result = _binary(kind, op.dtype, values[0], values[1])
        else:
            result = _unary(kind, op.dtype, values[0])
        self.values[(op.uid, j)] = result

    # ------------------------------------------------------------------

    def run(self, iterations: int) -> PipelineRun:
        """Execute ``iterations`` overlapped iterations of the kernel."""
        ii = self.schedule.ii
        times = self.schedule.times
        # All instances in absolute issue order; reads happen before
        # writes within a cycle, which the (cycle, is_store) sort realizes.
        instances = [
            (times[op.uid] + j * ii, op.is_store, idx, j, op)
            for idx, op in enumerate(self.loop.body)
            for j in range(iterations)
        ]
        instances.sort(key=lambda t: (t[0], t[1], t[3], t[2]))

        makespan = 0
        for cycle, _, _, j, op in instances:
            self._execute_instance(op, j)
            latency = self.machine.opcode_info(op).latency
            makespan = max(makespan, cycle + max(1, latency))

        carried = {
            c.entry.name: self._carried_value(c, iterations)
            for c in self.loop.carried
        }
        final_values = {}
        for op in self.loop.body:
            if op.dest is not None and iterations > 0:
                final_values[op.dest] = self.values[(op.uid, iterations - 1)]

        slot_class = self.machine.resource_class(self.machine.slot_resource)
        used = sum(
            1
            for op in self.loop.body
            if self.machine.opcode_info(op).uses
        ) * iterations
        return PipelineRun(
            cycles=makespan if iterations else 0,
            iterations=iterations,
            issue_slots_used=used,
            issue_slot_capacity=slot_class.count * makespan if makespan else 0,
            carried=carried,
            final_values=final_values,
        )


def simulate_pipeline(
    schedule: ModuloSchedule,
    memory: MemoryImage,
    iterations: int,
    symbols: dict[str, int] | None = None,
    carried_init: dict[str, object] | None = None,
) -> PipelineRun:
    """Execute a modulo schedule for ``iterations`` kernel iterations."""
    sim = PipelineSimulator(schedule, memory, symbols, carried_init)
    return sim.run(iterations)
