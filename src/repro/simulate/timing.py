"""Schedule-level timing.

The paper's evaluation deliberately excludes memory-system effects, so a
loop invocation's cost is pure schedule arithmetic:

* the software pipeline executes ``m = trip // factor`` kernel iterations
  in ``(m + stages - 1) * II`` cycles (prologue fills, epilogue drains);
* residual ``trip % factor`` iterations run through the unpipelined
  cleanup loop at its list-schedule makespan each;
* the preheader and loop setup cost a few cycles once per invocation.

Benchmark-level totals sum loop invocations plus a serial component the
compiler does not touch (the Amdahl term that keeps whole-benchmark
speedups modest, as in Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

# Per-invocation fixed cost: loop-counter and rotating-register setup,
# live-in/live-out moves, and the entry branch.  Paid once per loop, so
# distribution (several loops) and low trip counts both feel it.
LOOP_SETUP_CYCLES = 6


@dataclass(frozen=True)
class UnitTiming:
    """Static timing parameters of one compiled loop unit."""

    ii: int
    stages: int
    factor: int
    cleanup_cycles: int  # per residual iteration; 0 when factor == 1
    preheader_cycles: int

    def invocation_cycles(self, trip_count: int) -> int:
        """Cycles for one invocation of this unit at a given trip count."""
        if trip_count < 0:
            raise ValueError("negative trip count")
        cycles = LOOP_SETUP_CYCLES + self.preheader_cycles
        main_iters = trip_count // self.factor
        if main_iters > 0:
            cycles += (main_iters + self.stages - 1) * self.ii
        cycles += (trip_count % self.factor) * self.cleanup_cycles
        return cycles

    def steady_state_ii_per_iteration(self) -> float:
        """Asymptotic cost per original iteration."""
        return self.ii / self.factor


def aggregate_cycles(timings: list[UnitTiming], trip_count: int) -> int:
    """Total cycles for one invocation of a (possibly distributed) loop."""
    return sum(t.invocation_cycles(trip_count) for t in timings)


def speedup(baseline_cycles: int, other_cycles: int) -> float:
    if other_cycles <= 0:
        raise ValueError("non-positive cycle count")
    return baseline_cycles / other_cycles
