"""Schedule-level timing model."""

from repro.simulate.pipeline_sim import (
    PipelineRun,
    PipelineSimulator,
    simulate_pipeline,
)
from repro.simulate.timing import (
    LOOP_SETUP_CYCLES,
    UnitTiming,
    aggregate_cycles,
    speedup,
)

__all__ = [
    "LOOP_SETUP_CYCLES",
    "PipelineRun",
    "PipelineSimulator",
    "UnitTiming",
    "aggregate_cycles",
    "simulate_pipeline",
    "speedup",
]
