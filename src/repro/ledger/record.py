"""The unit the ledger stores: one immutable run record.

A :class:`RunRecord` captures everything a later cross-run question
needs, split along the same line the rest of the tooling draws:

* **deterministic** content — per-loop II/ResMII/RecMII, table speedups,
  effort counters, check/oracle outcomes, config and corpus digests —
  comparable exactly across machines and weeks;
* **circumstantial** content — wall clock, cache hit/miss split, pool
  size — recorded for context, excluded from equality
  (:meth:`RunRecord.comparable_dict`).

Records are plain JSON documents; every field is optional except the
identity triple (``run_id``, ``created_at``, ``schema_version``), so the
compiler CLI's single-loop record and the evaluation harness's
full-corpus record share one shape.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone

LEDGER_SCHEMA_VERSION = 1

#: Keys (anywhere in a record tree) that carry wall-clock
#: measurements.  Shard merges sum them instead of treating them as
#: disagreements.
WALL_FIELDS = frozenset(
    {"wall_s", "wall_ms", "check_ms", "elapsed_s", "eta_s", "rate_per_s"}
)

#: Wall fields plus cache traffic: everything that describes *how this
#: particular run obtained* its results (machine speed, cache state)
#: rather than what the compiler deterministically produced.
#: ``comparable_dict`` strips these; so do the dashboard's exact
#: comparisons and the canonical-artifact equivalence check in
#: ``bench_io``.
VOLATILE_FIELDS = WALL_FIELDS | frozenset({"cache_hits", "cache_misses"})

#: Record keys that identify *this particular* run rather than its
#: deterministic content.
CIRCUMSTANTIAL_FIELDS = ("run_id", "created_at", "label", "jobs", "cache")


def utc_now_iso() -> str:
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def current_git_sha(repo: str = ".") -> str | None:
    """The checked-out commit, or ``None`` outside a git repository."""
    try:
        out = subprocess.run(
            ["git", "-C", repo, "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        return out or None
    except (subprocess.CalledProcessError, OSError):
        return None


def digest_of(tree: object) -> str:
    """SHA-256 over the canonical JSON of ``tree`` (sorted keys)."""
    blob = json.dumps(tree, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def new_run_id(created_at: str | None = None) -> str:
    """``<timestamp>-<random8>`` — sortable, collision-resistant."""
    stamp = (created_at or utc_now_iso()).replace(":", "").replace("-", "")
    return f"{stamp.rstrip('Z')}-{os.urandom(4).hex()}"


def strip_wall_fields(tree: object) -> object:
    """``tree`` with every wall-clock and cache-traffic key removed,
    recursively — the volatile, machine-circumstantial leaves that must
    never count as a cross-run difference."""
    if isinstance(tree, dict):
        return {
            key: strip_wall_fields(value)
            for key, value in tree.items()
            if key not in VOLATILE_FIELDS
        }
    if isinstance(tree, list):
        return [strip_wall_fields(item) for item in tree]
    return tree


@dataclass
class RunRecord:
    """One run's immutable ledger entry."""

    run_id: str
    created_at: str
    label: str = ""
    git_sha: str | None = None
    #: What was asked for: experiments, benchmarks, strategy knobs,
    #: jobs, cache — anything that shaped the run.
    config: dict = field(default_factory=dict)
    config_digest: str = ""
    #: Digest over the loop population the run covered.
    corpus_digest: str = ""
    #: Headline data per experiment (figure1 IIs, table speedups).
    experiments: dict = field(default_factory=dict)
    #: Per-loop metrics: {benchmark: {loop: {variant: {ii, ...}}}}.
    loops: dict = field(default_factory=dict)
    #: Deterministic effort totals (kl_probes, sched_attempts, ...).
    effort: dict = field(default_factory=dict)
    #: Per-(benchmark, variant) telemetry rows (includes wall_ms).
    telemetry: dict = field(default_factory=dict)
    #: How this run obtained its results (not comparable).
    jobs: int = 1
    cache: dict = field(default_factory=dict)
    wall_s: float = 0.0
    #: Translation-validation outcome, when checks ran.
    check: dict | None = None
    #: Oracle certification outcome, when the oracle ran.
    oracle: dict | None = None
    #: Optional pointer to a profile JSON for drill-down.
    profile: str | None = None
    #: Free-form notes/remarks worth surfacing in the dashboard.
    notes: list = field(default_factory=list)
    schema_version: int = LEDGER_SCHEMA_VERSION

    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, document: dict) -> "RunRecord":
        known = {f for f in cls.__dataclass_fields__}
        fields = {k: v for k, v in document.items() if k in known}
        missing = {"run_id", "created_at"} - set(fields)
        if missing:
            raise ValueError(f"run record missing {sorted(missing)}")
        return cls(**fields)

    def comparable_dict(self) -> dict:
        """The deterministic portion: identity and wall fields removed.

        Two runs of the same compiler over the same corpus — serial or
        sharded, cold or warm, any machine — must produce equal
        comparable dicts; anything that differs is a real change.
        """
        tree = self.to_dict()
        for key in CIRCUMSTANTIAL_FIELDS:
            tree.pop(key, None)
        tree.pop("profile", None)
        tree.pop("notes", None)
        return strip_wall_fields(tree)  # type: ignore[return-value]

    def content_digest(self) -> str:
        return digest_of(self.comparable_dict())

    # ------------------------------------------------------------------

    def effort_total(self) -> int:
        return sum(
            int(v) for v in self.effort.values() if isinstance(v, (int, float))
        )

    def loop_count(self) -> int:
        return sum(
            len(loops_by_name) for loops_by_name in self.loops.values()
        )

    def summary_line(self) -> str:
        sha = (self.git_sha or "-")[:8]
        exps = ",".join(sorted(self.experiments)) or "-"
        return (
            f"{self.run_id}  {self.created_at}  {sha:<8}  "
            f"{self.label or '-':<10}  {exps}"
        )


# ----------------------------------------------------------------------
# Builders


def record_from_payloads(
    payloads: dict[str, dict],
    perf: dict | None = None,
    *,
    run_id: str | None = None,
    created_at: str | None = None,
    label: str = "",
    git_sha: str | None = None,
    repo: str = ".",
    config: dict | None = None,
    check: dict | None = None,
    oracle: dict | None = None,
    profile: str | None = None,
    notes: list | None = None,
) -> RunRecord:
    """Assemble a :class:`RunRecord` from the ``BENCH_*`` payloads the
    evaluation harness already produces.

    ``payloads`` maps experiment name to its artifact payload (the
    ``bench_io.collect_experiment`` shape); ``perf`` is the
    ``compile_perf`` payload carrying effort totals and cache traffic.
    """
    created_at = created_at or utc_now_iso()
    experiments: dict = {}
    loops: dict = {}
    telemetry: dict = {}
    for experiment, payload in sorted(payloads.items()):
        if experiment == "compile_perf":
            perf = perf or payload
            continue
        experiments[experiment] = payload.get("data", {})
        for bench, rows in (payload.get("loops") or {}).items():
            loops.setdefault(bench, {}).update(rows)
        for bench, variants in (payload.get("telemetry") or {}).items():
            telemetry.setdefault(bench, {}).update(variants)
    perf = perf or {}
    effort = dict(perf.get("effort") or {})
    cache = {
        "hits": int(perf.get("cache_hits") or 0),
        "misses": int(perf.get("cache_misses") or 0),
        "compile_cache": bool(perf.get("compile_cache")),
    }
    config = dict(config or {})
    config.setdefault("experiments", sorted(experiments))
    corpus = {
        bench: sorted(loops_by_name) for bench, loops_by_name in loops.items()
    }
    return RunRecord(
        run_id=run_id or new_run_id(created_at),
        created_at=created_at,
        label=label,
        git_sha=git_sha if git_sha is not None else current_git_sha(repo),
        config=config,
        config_digest=digest_of(config),
        corpus_digest=digest_of(corpus),
        experiments=experiments,
        loops=loops,
        effort=effort,
        telemetry=telemetry,
        jobs=int(perf.get("jobs") or 1),
        cache=cache,
        wall_s=float(perf.get("wall_s") or 0.0),
        check=check,
        oracle=oracle,
        profile=profile,
        notes=list(notes or []),
    )
