"""Append-only JSONL run store with an index and a shard merge.

Layout (one directory per ledger)::

    <root>/runs.jsonl   one canonical JSON record per line, append-only
    <root>/index.json   run_id -> summary row (rebuilt on each append,
                        written atomically via temp-file + rename)

Durability rules:

* an append is one ``O_APPEND`` write of a complete line, so concurrent
  appenders interleave whole records, never halves;
* the reader treats a line that fails to parse — or a final line with no
  trailing newline (a torn write from a crashed process) — as absent:
  it is skipped with a warning and every other record survives;
* the index is advisory (fast listing); the JSONL file is the truth and
  the index is rebuilt from it whenever they disagree.

``merge_records`` folds per-shard records of one logical run (a sharded
or parallel sweep) into a single record whose deterministic content
equals the serial record exactly; wall clock and cache traffic — the
circumstantial fields — are summed.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from typing import Callable, Iterable

from repro.ledger.record import (
    LEDGER_SCHEMA_VERSION,
    WALL_FIELDS,
    RunRecord,
    digest_of,
    new_run_id,
)

DEFAULT_LEDGER_DIR = ".repro-ledger"

RUNS_FILE = "runs.jsonl"
INDEX_FILE = "index.json"


class LedgerWarning(UserWarning):
    """A non-fatal ledger problem (torn line, unreadable record)."""


def _stderr_warn(message: str) -> None:
    print(f"[ledger] {message}", file=sys.stderr)


class Ledger:
    """One append-only run ledger rooted at a directory."""

    def __init__(
        self,
        root: str = DEFAULT_LEDGER_DIR,
        *,
        warn: Callable[[str], None] | None = None,
    ) -> None:
        self.root = root
        self._warn_cb = warn if warn is not None else _stderr_warn
        #: Warnings collected by the most recent scan.
        self.warnings: list[str] = []

    # ------------------------------------------------------------------

    @property
    def runs_path(self) -> str:
        return os.path.join(self.root, RUNS_FILE)

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, INDEX_FILE)

    def _warn(self, message: str) -> None:
        self.warnings.append(message)
        self._warn_cb(message)

    # ------------------------------------------------------------------
    # Writing

    def append(self, record: RunRecord) -> RunRecord:
        """Durably append one record and refresh the index."""
        os.makedirs(self.root, exist_ok=True)
        line = (
            json.dumps(
                record.to_dict(), sort_keys=True, separators=(",", ":")
            )
            + "\n"
        ).encode("utf-8")
        fd = os.open(
            self.runs_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line)
        finally:
            os.close(fd)
        self._write_index(self.records())
        return record

    def _write_index(self, records: list[RunRecord]) -> None:
        index = {
            "schema_version": LEDGER_SCHEMA_VERSION,
            "runs": {
                record.run_id: {
                    "line": i + 1,
                    "created_at": record.created_at,
                    "label": record.label,
                    "git_sha": record.git_sha,
                    "experiments": sorted(record.experiments),
                    "loops": record.loop_count(),
                    "effort_total": record.effort_total(),
                    "content_digest": record.content_digest(),
                }
                for i, record in enumerate(records)
            },
        }
        fd, tmp = tempfile.mkstemp(
            prefix=".index-", suffix=".json", dir=self.root
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(index, f, indent=2, sort_keys=True)
                f.write("\n")
            os.replace(tmp, self.index_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Reading

    def records(self) -> list[RunRecord]:
        """Every readable record, in append order.

        Torn or corrupt lines are skipped with a warning — a crashed
        writer never takes the ledger down with it.
        """
        self.warnings = []
        try:
            with open(self.runs_path, "rb") as f:
                raw = f.read()
        except FileNotFoundError:
            return []
        records: list[RunRecord] = []
        chunks = raw.split(b"\n")
        torn_tail = chunks[-1] != b""
        for lineno, chunk in enumerate(chunks, start=1):
            if chunk == b"":
                continue
            if torn_tail and lineno == len(chunks):
                self._warn(
                    f"{self.runs_path}:{lineno}: torn record "
                    f"(no trailing newline; {len(chunk)} bytes) — skipped"
                )
                continue
            try:
                document = json.loads(chunk.decode("utf-8"))
                record = RunRecord.from_dict(document)
            except (ValueError, TypeError, UnicodeDecodeError) as exc:
                self._warn(
                    f"{self.runs_path}:{lineno}: unreadable record "
                    f"({exc}) — skipped"
                )
                continue
            records.append(record)
        return records

    def get(self, run_id: str) -> RunRecord:
        matches = [r for r in self.records() if r.run_id == run_id]
        if matches:
            return matches[-1]
        raise KeyError(f"no run {run_id!r} in ledger {self.root}")

    def latest(self, n: int | None = None) -> list[RunRecord]:
        """The newest ``n`` records (all when ``n`` is None), newest last."""
        records = self.records()
        return records if n is None else records[-n:]

    def resolve(self, ref: str) -> RunRecord:
        """A record by reference: ``latest``, ``prev``, ``-N`` (from the
        end), or a run-id (unique prefixes accepted)."""
        records = self.records()
        if not records:
            raise KeyError(f"ledger {self.root} is empty")
        if ref in ("latest", "last", "-1"):
            return records[-1]
        if ref in ("prev", "previous", "-2"):
            if len(records) < 2:
                raise KeyError(f"ledger {self.root} has only one run")
            return records[-2]
        if ref.startswith("-") and ref[1:].isdigit():
            offset = int(ref)
            if -offset > len(records):
                raise KeyError(
                    f"ledger {self.root} has {len(records)} run(s), "
                    f"cannot resolve {ref}"
                )
            return records[offset]
        matches = [r for r in records if r.run_id.startswith(ref)]
        if not matches:
            raise KeyError(f"no run matching {ref!r} in ledger {self.root}")
        full = [r for r in matches if r.run_id == ref]
        if full:
            return full[-1]
        if len({r.run_id for r in matches}) > 1:
            raise KeyError(
                f"ambiguous run reference {ref!r}: "
                + ", ".join(sorted({r.run_id for r in matches}))
            )
        return matches[-1]


# ----------------------------------------------------------------------
# Shard merge


def _merge_config(configs: list[dict]) -> dict:
    merged: dict = {}
    for config in configs:
        for key, value in config.items():
            if key not in merged:
                merged[key] = value
            elif merged[key] == value:
                continue
            elif isinstance(merged[key], list) and isinstance(value, list):
                merged[key] = sorted(set(merged[key]) | set(value))
            else:
                raise ValueError(
                    f"shards disagree on config[{key!r}]: "
                    f"{merged[key]!r} vs {value!r}"
                )
    return merged


def _merge_data(a: object, b: object, path: str) -> object:
    """Deep union; scalar conflicts are shard disagreements (an error —
    shards of one logical run must agree wherever they overlap)."""
    if isinstance(a, dict) and isinstance(b, dict):
        merged = dict(a)
        for key, value in b.items():
            if key not in merged:
                merged[key] = value
            elif (
                key in WALL_FIELDS
                and isinstance(merged[key], (int, float))
                and isinstance(value, (int, float))
            ):
                # Wall clock is additive across shards, never a
                # disagreement — it is excluded from comparisons anyway.
                merged[key] = round(float(merged[key]) + float(value), 3)
            else:
                merged[key] = _merge_data(merged[key], value, f"{path}.{key}")
        return merged
    if a == b:
        return a
    raise ValueError(f"shards disagree at {path}: {a!r} vs {b!r}")


def _merge_outcomes(outcomes: list[dict | None]) -> dict | None:
    present = [o for o in outcomes if o]
    if not present:
        return None
    merged: dict = {}
    for outcome in present:
        for key, value in outcome.items():
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                merged[key] = _merge_data(
                    merged.get(key, value), value, f"check.{key}"
                )
            else:
                merged[key] = merged.get(key, 0) + value
    return merged


def merge_records(
    shards: Iterable[RunRecord],
    *,
    run_id: str | None = None,
    label: str | None = None,
) -> RunRecord:
    """Fold per-shard records of one logical run into a single record.

    Deterministic content (experiments, loops, effort, digests) merges
    to exactly what a serial run over the union would have recorded;
    circumstantial content (wall clock, cache traffic) is summed, and
    per-counter telemetry wall is carried through additively.
    """
    shards = list(shards)
    if not shards:
        raise ValueError("merge_records needs at least one shard")
    git_shas = {s.git_sha for s in shards if s.git_sha}
    if len(git_shas) > 1:
        raise ValueError(
            f"shards span several commits: {sorted(git_shas)}"
        )
    schema_versions = {s.schema_version for s in shards}
    if len(schema_versions) > 1:
        raise ValueError(
            f"shards span schema versions {sorted(schema_versions)}"
        )

    experiments: dict = {}
    loops: dict = {}
    telemetry: dict = {}
    effort: dict = {}
    cache = {"hits": 0, "misses": 0, "compile_cache": False}
    notes: list = []
    wall_s = 0.0
    for shard in shards:
        experiments = _merge_data(  # type: ignore[assignment]
            experiments, shard.experiments, "experiments"
        )
        loops = _merge_data(loops, shard.loops, "loops")  # type: ignore[assignment]
        telemetry = _merge_data(  # type: ignore[assignment]
            telemetry, shard.telemetry, "telemetry"
        )
        for counter, value in shard.effort.items():
            effort[counter] = effort.get(counter, 0) + value
        cache["hits"] += int(shard.cache.get("hits") or 0)
        cache["misses"] += int(shard.cache.get("misses") or 0)
        cache["compile_cache"] = bool(
            cache["compile_cache"] or shard.cache.get("compile_cache")
        )
        wall_s += shard.wall_s
        notes += [n for n in shard.notes if n not in notes]

    config = _merge_config([s.config for s in shards])
    corpus = {
        bench: sorted(loops_by_name) for bench, loops_by_name in loops.items()
    }
    created_at = min(s.created_at for s in shards)
    return RunRecord(
        run_id=run_id or new_run_id(created_at),
        created_at=created_at,
        label=label if label is not None else shards[0].label,
        git_sha=next(iter(git_shas), None),
        config=config,
        config_digest=digest_of(config),
        corpus_digest=digest_of(corpus),
        experiments=experiments,
        loops=loops,
        effort=effort,
        telemetry=telemetry,
        jobs=max(s.jobs for s in shards),
        cache=cache,
        wall_s=round(wall_s, 3),
        check=_merge_outcomes([s.check for s in shards]),
        oracle=_merge_outcomes([s.oracle for s in shards]),
        profile=next((s.profile for s in shards if s.profile), None),
        notes=notes,
        schema_version=shards[0].schema_version,
    )
