"""Persistent run ledger: a durable, queryable record of every run.

One evaluation (or compilation) run produces a :class:`RunRecord` — run
id, git SHA, config and corpus digests, per-loop II/ResMII/RecMII and
speedups, deterministic effort counters, cache traffic, check/oracle
outcomes, wall clock — and the :class:`Ledger` appends it to an
append-only JSONL store with an index.  The ledger is what turns
"did Table 2 speedups drift since last week?" from a hand-diff of stray
``BENCH_*.json`` files into a query (`python -m repro.dashboard`).

Design rules:

* **Append-only.** Records are immutable once written; a run is never
  edited, only superseded by later runs.
* **Atomic.** Appends are single ``O_APPEND`` writes; the index is
  rewritten via temp-file + rename.  A torn line (a crashed writer)
  is detected and skipped with a warning, never propagated.
* **Mergeable.** Sharded/parallel runs append per-shard records that
  :func:`merge_records` folds into one record equal to the serial
  record modulo wall-clock.
"""

from repro.ledger.record import (
    LEDGER_SCHEMA_VERSION,
    RunRecord,
    record_from_payloads,
    strip_wall_fields,
)
from repro.ledger.store import (
    DEFAULT_LEDGER_DIR,
    Ledger,
    LedgerWarning,
    merge_records,
)

__all__ = [
    "DEFAULT_LEDGER_DIR",
    "LEDGER_SCHEMA_VERSION",
    "Ledger",
    "LedgerWarning",
    "RunRecord",
    "merge_records",
    "record_from_payloads",
    "strip_wall_fields",
]
