"""The optimality-gap harness: heuristics vs the exact oracles.

``certify_loop`` compiles a loop under the selective strategy and then
asks both oracles how much the heuristics left on the table:

* the KL partition cost vs the branch-and-bound optimum ResMII
  (:func:`exact_partition`, warm-started from the KL incumbent);
* the achieved modulo-schedule II of every compiled unit vs the
  certified minimal II (:func:`certify_schedule`).

``oracle_gap_report`` runs this over the Figure 1 dot-product (on the
figure1 machine) plus a deterministic subset of small corpus loops (on
the paper machine), producing the ``BENCH_oracle_gap.json`` payload the
evaluation CLI writes and CI gates on: *on every loop the oracle manages
to certify, the KL gap must be zero*.  Certificates degrade gracefully —
``bounded``/``timeout`` loops are reported, never failed.

With a recorder active, each certificate also lands as ``oracle``
remarks, which is how ``--explain`` grows its certification section.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.driver import CompiledLoop, compile_loop
from repro.compiler.strategies import Strategy
from repro.dependence.analysis import analyze_loop
from repro.ir.loop import Loop
from repro.machine.machine import MachineDescription
from repro.oracle import BOUNDED, CERTIFIED, TIMEOUT, OracleBudget
from repro.oracle.exact_partition import PartitionOracleResult, exact_partition
from repro.oracle.exact_schedule import ScheduleOracleResult, certify_schedule
from repro.vectorize.partition import PartitionConfig

#: Corpus-subset selection: loops this small certify in well under the
#: default budget, and ~10 of them keep the CI smoke job quick.
MAX_CORPUS_OPS = 12
CORPUS_LIMIT = 10


@dataclass
class UnitCertificate:
    """Schedule certificate for one compiled unit."""

    name: str
    factor: int
    result: ScheduleOracleResult


@dataclass
class LoopCertificate:
    """Both oracles' verdicts on one compiled loop."""

    loop: str
    machine: str
    ops: int
    partition: PartitionOracleResult | None
    units: list[UnitCertificate] = field(default_factory=list)

    @property
    def status(self) -> str:
        """Worst status across both oracles (certified < bounded < timeout)."""
        statuses = [u.result.status for u in self.units]
        if self.partition is not None:
            statuses.append(self.partition.status)
        for bad in (TIMEOUT, BOUNDED):
            if bad in statuses:
                return bad
        return CERTIFIED

    @property
    def kl_gap(self) -> int | None:
        return self.partition.kl_gap if self.partition is not None else None

    @property
    def achieved_ii_per_iteration(self) -> float:
        return sum(u.result.achieved_ii / u.factor for u in self.units)

    @property
    def certified_ii_per_iteration(self) -> float | None:
        total = 0.0
        for u in self.units:
            if u.result.certified_ii is None:
                return None
            total += u.result.certified_ii / u.factor
        return total

    @property
    def ii_gap(self) -> int | None:
        """Total kernel cycles the scheduler left on the table, or None
        while any unit's certificate is unfinished."""
        total = 0
        for u in self.units:
            if u.result.ii_gap is None:
                return None
            total += u.result.ii_gap
        return total

    def to_row(self) -> dict[str, object]:
        row: dict[str, object] = {
            "machine": self.machine,
            "ops": self.ops,
            "status": self.status,
        }
        if self.partition is not None:
            p = self.partition
            row["partition"] = {
                "status": p.status,
                "kl_cost": p.kl_cost,
                "oracle_cost": p.best_cost,
                "lower_bound": p.lower_bound,
                "kl_gap": p.kl_gap,
                "candidates": p.candidates,
                "nodes": p.nodes,
            }
        row["units"] = {
            u.name: {
                "status": u.result.status,
                "mii": u.result.mii,
                "achieved_ii": u.result.achieved_ii,
                "certified_ii": u.result.certified_ii,
                "ii_gap": u.result.ii_gap,
                "infeasible_iis": list(u.result.infeasible_iis),
                "nodes": u.result.nodes,
            }
            for u in self.units
        }
        row["achieved_ii_per_iteration"] = self.achieved_ii_per_iteration
        row["certified_ii_per_iteration"] = self.certified_ii_per_iteration
        return row


# ----------------------------------------------------------------------


def certify_compiled(
    loop: Loop,
    machine: MachineDescription,
    compiled: CompiledLoop,
    budget: OracleBudget | None = None,
    config: PartitionConfig | None = None,
) -> LoopCertificate:
    """Certify an already-compiled loop (observe-only: the compilation
    is never altered — the oracle runs after the fact)."""
    from repro.observability.recorder import active_recorder, maybe_span

    budget = budget or OracleBudget.from_env()
    rec = active_recorder()
    with maybe_span(rec, "oracle_certify", loop=loop.name):
        partition_result: PartitionOracleResult | None = None
        if compiled.partition is not None:
            dep = analyze_loop(loop, machine.vector_length)
            partition_result = exact_partition(
                dep, machine, config, budget, incumbent=compiled.partition
            )
        cert = LoopCertificate(
            loop=loop.name,
            machine=machine.name,
            ops=len(loop.body),
            partition=partition_result,
        )
        for unit in compiled.units:
            udep = analyze_loop(unit.transform.loop, machine.vector_length)
            result = certify_schedule(
                unit.transform.loop,
                udep.graph,
                machine,
                unit.schedule.ii,
                budget,
            )
            cert.units.append(
                UnitCertificate(
                    name=unit.transform.loop.name,
                    factor=unit.transform.factor,
                    result=result,
                )
            )
        if rec is not None:
            rec.count("oracle.loops_certified")
    if rec is not None:
        emit_oracle_remarks(rec, cert)
    return cert


def certify_loop(
    loop: Loop,
    machine: MachineDescription,
    budget: OracleBudget | None = None,
    config: PartitionConfig | None = None,
) -> LoopCertificate:
    """Compile ``loop`` selectively, then certify the result."""
    compiled = compile_loop(
        loop, machine, Strategy.SELECTIVE, partition_config=config
    )
    return certify_compiled(loop, machine, compiled, budget, config)


def emit_oracle_remarks(rec, cert: LoopCertificate) -> None:
    """One remark per certificate, under pass name ``oracle`` (rendered
    by ``--explain`` as the certification section)."""
    p = cert.partition
    if p is not None:
        if p.certified and (p.kl_gap or 0) == 0:
            rec.remark(
                "oracle",
                cert.loop,
                "partition-optimal",
                f"KL partition cost {p.kl_cost} is the certified optimum "
                f"(branch-and-bound, {p.nodes} nodes, {p.leaves} leaves)",
                cost=p.best_cost,
                nodes=p.nodes,
            )
        elif p.certified:
            rec.remark(
                "oracle",
                cert.loop,
                "partition-gap",
                f"KL partition cost {p.kl_cost} vs certified optimum "
                f"{p.best_cost} (gap {p.kl_gap})",
                kl_cost=p.kl_cost,
                oracle_cost=p.best_cost,
                gap=p.kl_gap,
                nodes=p.nodes,
            )
        else:
            rec.remark(
                "oracle",
                cert.loop,
                "partition-unfinished",
                f"partition search {p.status} after {p.nodes} nodes: "
                f"optimum in [{p.lower_bound}, {p.best_cost}]; KL cost "
                f"{p.kl_cost} unrefuted",
                status=p.status,
                lower_bound=p.lower_bound,
                best_cost=p.best_cost,
                nodes=p.nodes,
            )
    for u in cert.units:
        r = u.result
        if r.certified and r.ii_gap == 0:
            proved = (
                f", proved II {list(r.infeasible_iis)} infeasible"
                if r.infeasible_iis
                else ""
            )
            rec.remark(
                "oracle",
                cert.loop,
                "ii-optimal",
                f"unit {u.name}: II={r.achieved_ii} certified optimal "
                f"(MII {r.mii}{proved})",
                unit=u.name,
                ii=r.achieved_ii,
                mii=r.mii,
            )
        elif r.certified:
            rec.remark(
                "oracle",
                cert.loop,
                "ii-gap",
                f"unit {u.name}: oracle found a schedule at "
                f"II={r.certified_ii}, heuristic achieved "
                f"{r.achieved_ii} (gap {r.ii_gap})",
                unit=u.name,
                achieved_ii=r.achieved_ii,
                certified_ii=r.certified_ii,
                gap=r.ii_gap,
            )
        else:
            rec.remark(
                "oracle",
                cert.loop,
                "ii-unfinished",
                f"unit {u.name}: II certificate {r.status} after "
                f"{r.nodes} nodes (optimal II in "
                f"[{r.ii_lower_bound}, {r.achieved_ii}])",
                unit=u.name,
                status=r.status,
                lower_bound=r.ii_lower_bound,
                achieved_ii=r.achieved_ii,
            )


def render_certificate(cert: LoopCertificate) -> str:
    """Human-readable certificate for one loop (the ``--oracle`` CLI
    output)."""
    lines = [f"oracle certificate for {cert.loop} ({cert.status}):"]
    p = cert.partition
    if p is not None:
        if p.certified:
            verdict = (
                "optimal"
                if (p.kl_gap or 0) == 0
                else f"suboptimal (certified optimum {p.best_cost})"
            )
            lines.append(
                f"  partition: KL cost {p.kl_cost} {verdict} — "
                f"{p.nodes} node(s), {p.leaves} leaf/leaves, "
                f"{p.elapsed_s * 1000:.0f} ms"
            )
        else:
            lines.append(
                f"  partition: {p.status} after {p.nodes} node(s); "
                f"optimum in [{p.lower_bound}, {p.best_cost}], "
                f"KL cost {p.kl_cost} unrefuted"
            )
    for u in cert.units:
        r = u.result
        if r.certified:
            verdict = (
                "optimal"
                if r.ii_gap == 0
                else f"suboptimal (feasible at II={r.certified_ii})"
            )
            proved = (
                f", proved {list(r.infeasible_iis)} infeasible"
                if r.infeasible_iis
                else ""
            )
            lines.append(
                f"  unit {u.name}: II={r.achieved_ii} {verdict} "
                f"(MII {r.mii}{proved}, {r.nodes} node(s))"
            )
        else:
            lines.append(
                f"  unit {u.name}: {r.status} after {r.nodes} node(s); "
                f"optimal II in [{r.ii_lower_bound}, {r.achieved_ii}]"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The report


def small_corpus_loops(
    max_ops: int = MAX_CORPUS_OPS, limit: int = CORPUS_LIMIT
) -> list[Loop]:
    """A deterministic subset of small corpus loops (body size capped so
    certification fits comfortably in the default budget)."""
    from repro.workloads.spec import BENCHMARK_NAMES, build_benchmark

    loops: list[Loop] = []
    for name in BENCHMARK_NAMES:
        for wl in build_benchmark(name).loops:
            if len(wl.loop.body) <= max_ops:
                loops.append(wl.loop)
                if len(loops) >= limit:
                    return loops
    return loops


def default_gap_suite() -> list[tuple[Loop, MachineDescription]]:
    """Figure 1's dot product on the toy machine, plus the corpus subset
    on the paper machine."""
    from repro.machine.configs import figure1_machine, paper_machine

    from repro.workloads.kernels import dot_product

    suite: list[tuple[Loop, MachineDescription]] = [
        (dot_product(), figure1_machine())
    ]
    paper = paper_machine()
    for loop in small_corpus_loops():
        suite.append((loop, paper))
    return suite


def oracle_gap_report(
    budget: OracleBudget | None = None,
    suite: list[tuple[Loop, MachineDescription]] | None = None,
) -> dict[str, object]:
    """Run the harness and assemble the ``BENCH_oracle_gap.json`` payload."""
    from repro.evaluation.bench_io import BENCH_SCHEMA_VERSION

    budget = budget or OracleBudget.from_env()
    suite = suite if suite is not None else default_gap_suite()
    rows: dict[str, dict[str, object]] = {}
    summary = {
        "loops": 0,
        "certified": 0,
        "bounded": 0,
        "timeout": 0,
        "kl_gap_zero": 0,
        "kl_gap_positive": 0,
        "ii_gap_positive": 0,
    }
    for loop, machine in suite:
        cert = certify_loop(loop, machine, budget)
        rows[loop.name] = cert.to_row()
        summary["loops"] += 1
        summary[cert.status] += 1
        if cert.partition is not None and cert.partition.certified:
            if (cert.kl_gap or 0) == 0:
                summary["kl_gap_zero"] += 1
            else:
                summary["kl_gap_positive"] += 1
        if (cert.ii_gap or 0) > 0:
            summary["ii_gap_positive"] += 1
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "experiment": "oracle_gap",
        "budget": {
            "max_nodes": budget.max_nodes,
            "max_seconds": budget.max_seconds,
        },
        "data": {"loops": rows, "summary": summary},
    }


def render_gap_table(payload: dict[str, object]) -> str:
    """ASCII summary of an oracle-gap payload."""
    data = payload["data"]
    loops: dict[str, dict] = data["loops"]  # type: ignore[assignment]
    lines = [
        "oracle optimality gaps (KL ResMII vs branch-and-bound; achieved "
        "II vs certified II):",
        f"{'loop':<24} {'machine':<10} {'status':<10} "
        f"{'KL':>4} {'opt':>4} {'gap':>4}  {'II':>5} {'II*':>5}",
    ]
    for name, row in loops.items():
        part = row.get("partition") or {}
        certified_ii = row.get("certified_ii_per_iteration")
        ii_star = "-" if certified_ii is None else f"{certified_ii:.2f}"
        lines.append(
            f"{name:<24} {row['machine']:<10} {row['status']:<10} "
            f"{_fmt(part.get('kl_cost')):>4} "
            f"{_fmt(part.get('oracle_cost')):>4} "
            f"{_fmt(part.get('kl_gap')):>4}  "
            f"{row['achieved_ii_per_iteration']:>5.2f} {ii_star:>5}"
        )
    s = data["summary"]  # type: ignore[index]
    lines.append(
        f"summary: {s['loops']} loop(s) — {s['certified']} certified, "
        f"{s['bounded']} bounded, {s['timeout']} timeout; KL gap zero on "
        f"{s['kl_gap_zero']}/{s['kl_gap_zero'] + s['kl_gap_positive']} "
        f"certified partition(s)"
    )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    return "-" if value is None else str(value)
