"""Exact-optimality oracle for the compiler's two heuristic searches.

The Kernighan-Lin partitioner (Figure 2) and the iterative modulo
scheduler (Rau) are heuristics; Table 3's comparisons are therefore
heuristic-vs-heuristic.  This subsystem certifies them against exact
methods at the loop sizes the corpus actually contains:

* :mod:`repro.oracle.exact_partition` — branch-and-bound over
  scalar/vector assignments, sharing the partitioner's bin-packing cost
  model, so the optimum it returns is the true minimum ResMII over every
  partition the heuristic could have chosen;
* :mod:`repro.oracle.exact_schedule` — an exhaustive modulo scheduler
  over kernel rows that certifies whether the achieved II is minimal
  (or exhibits a schedule at a smaller feasible II);
* :mod:`repro.oracle.gap` — the optimality-gap harness wiring both into
  the evaluation flow (``BENCH_oracle_gap.json``, ``--explain`` remarks).

Every search runs under an :class:`OracleBudget` (node count and wall
clock) and degrades to a *sound bound* instead of blocking compilation:
``certified`` means the search finished and the answer is exact;
``bounded``/``timeout`` mean the search was cut off and only the
returned ``[lower_bound, best]`` interval is guaranteed.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

#: Certificate statuses shared by both oracles.
CERTIFIED = "certified"
BOUNDED = "bounded"  # node budget exhausted
TIMEOUT = "timeout"  # wall-clock budget exhausted

#: Environment fallback for the node budget (mirrors REPRO_JOBS etc.).
BUDGET_ENV = "REPRO_ORACLE_BUDGET"

DEFAULT_MAX_NODES = 200_000
DEFAULT_MAX_SECONDS = 10.0


@dataclass(frozen=True)
class OracleBudget:
    """Search limits for one oracle invocation.

    ``max_nodes`` bounds the number of search-tree nodes expanded;
    ``max_seconds`` bounds wall clock.  Either may be ``None`` for
    unlimited.  Exhausting a budget is not an error: the oracle returns
    with status :data:`BOUNDED` / :data:`TIMEOUT` and a sound interval.
    """

    max_nodes: int | None = DEFAULT_MAX_NODES
    max_seconds: float | None = DEFAULT_MAX_SECONDS

    @classmethod
    def from_env(cls, override_nodes: int | None = None) -> "OracleBudget":
        """Budget from ``REPRO_ORACLE_BUDGET`` (a node count), optionally
        overridden by an explicit CLI value."""
        nodes = DEFAULT_MAX_NODES
        raw = os.environ.get(BUDGET_ENV, "").strip()
        if raw:
            nodes = int(raw)
        if override_nodes is not None:
            nodes = override_nodes
        return cls(max_nodes=nodes)


class BudgetMeter:
    """Mutable consumption state for one search under a budget."""

    def __init__(self, budget: OracleBudget):
        self.budget = budget
        self.nodes = 0
        self.started = time.monotonic()
        self.exhausted_by: str | None = None

    def charge(self) -> bool:
        """Account one search node; False once the budget is exhausted."""
        if self.exhausted_by is not None:
            return False
        self.nodes += 1
        limit = self.budget.max_nodes
        if limit is not None and self.nodes > limit:
            self.exhausted_by = "nodes"
            return False
        seconds = self.budget.max_seconds
        if seconds is not None and time.monotonic() - self.started > seconds:
            self.exhausted_by = "time"
            return False
        return True

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self.started

    def status(self) -> str:
        """The certificate status this meter's outcome implies."""
        if self.exhausted_by == "time":
            return TIMEOUT
        if self.exhausted_by == "nodes":
            return BOUNDED
        return CERTIFIED


__all__ = [
    "BOUNDED",
    "BUDGET_ENV",
    "CERTIFIED",
    "TIMEOUT",
    "BudgetMeter",
    "OracleBudget",
]
