"""Exact modulo scheduling: certify the heuristic scheduler's II.

A modulo schedule decomposes each issue time as
``t_i = k_i * II + r_i`` with kernel row ``r_i in [0, II)``.  For a
*fixed* row assignment the stage numbers ``k_i`` must satisfy the
difference constraints

    k_dst - k_src >= ceil((delay_e - II*distance_e - r_dst + r_src) / II)

for every dependence edge ``e``, which is feasible iff the constraint
graph has no positive-weight cycle (checked by Bellman-Ford longest
paths, the same machinery RecMII uses).  Resource conflicts recur every
II cycles, so rows alone decide them.  The oracle therefore searches the
row space exhaustively — depth-first over operations, most-constrained
first, pruning every prefix whose difference constraints already cycle —
and decides *exactly* whether any modulo schedule exists at a given II.

Resource accounting is exact, unlike the heuristic's greedy
:class:`ModuloReservationTable`: unit-cycle reservations are counted per
(class, row) — instances are interchangeable there, so a count check is
complete — while multi-cycle reservations (non-pipelined divides) pin
concrete instances and are enumerated as explicit alternatives.

``certify_schedule`` walks II upward from MII: each infeasible II is
*proved* infeasible; the first feasible II is the certified optimum
(witness schedule included).  Reaching the heuristic's achieved II
certifies it optimal.  Budget exhaustion mid-proof degrades to
``bounded``/``timeout`` with the infeasibility prefix retained.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dependence.graph import DependenceGraph
from repro.ir.loop import Loop
from repro.ir.operations import Operation
from repro.machine.machine import MachineDescription
from repro.oracle import CERTIFIED, BudgetMeter, OracleBudget
from repro.pipeline.mii import edge_delays, minimum_ii
from repro.pipeline.scheduler import _heights


@dataclass
class ScheduleOracleResult:
    """Certificate for one loop's achieved II.

    ``certified_ii`` is the *provably minimal* II when
    ``status == "certified"`` (equal to ``achieved_ii`` when the
    heuristic was optimal; smaller when the oracle found a better
    schedule, carried in ``witness``).  Otherwise only
    ``ii_lower_bound`` is guaranteed.
    """

    status: str
    mii: int
    res_mii: int
    rec_mii: int
    achieved_ii: int
    certified_ii: int | None
    infeasible_iis: tuple[int, ...]
    nodes: int
    elapsed_s: float
    witness: dict[int, int] | None = field(default=None, repr=False)

    @property
    def certified(self) -> bool:
        return self.status == CERTIFIED

    @property
    def ii_gap(self) -> int | None:
        """Cycles the heuristic left on the table (0 when optimal)."""
        if self.certified_ii is None:
            return None
        return self.achieved_ii - self.certified_ii

    @property
    def ii_lower_bound(self) -> int:
        """Smallest II not yet proven infeasible."""
        if self.infeasible_iis:
            return self.infeasible_iis[-1] + 1
        return self.mii


# ----------------------------------------------------------------------
# Exact resource state


class _ExactReservation:
    """Row occupancy with exact (not greedy) instance accounting."""

    def __init__(self, machine: MachineDescription, ii: int):
        self.machine = machine
        self.ii = ii
        # (class, row) -> unit-cycle reservations held there.
        self.unit: dict[tuple[str, int], int] = {}
        # (class, instance index, row) occupied by a multi-cycle use.
        self.multi_cells: set[tuple[str, int, int]] = set()
        # (class, row) -> distinct instances holding a multi-cycle cell.
        self.multi_rows: dict[tuple[str, int], int] = {}

    def placements(
        self, op: Operation, row: int
    ) -> list[tuple[list[tuple[str, int]], list[tuple[str, int, int]]]]:
        """Every distinct way to reserve ``op``'s resources at ``row``:
        ``(unit cells, multi-cycle instance cells)`` pairs.  Unit uses
        have one canonical placement (instances are interchangeable);
        each multi-cycle use contributes one alternative per free
        instance whose occupied span matters to later operations."""
        info = self.machine.opcode_info(op)
        units: list[tuple[str, int]] = []
        multi_uses = []
        for use in info.uses:
            if use.cycles == 1:
                units.append((use.resource, row))
            elif use.cycles > self.ii:
                return []  # a reservation longer than II can never fit
            else:
                multi_uses.append(use)

        results: list[
            tuple[list[tuple[str, int]], list[tuple[str, int, int]]]
        ] = []

        def feasible(chosen: list[tuple[str, int, int]]) -> bool:
            new_instances: dict[tuple[str, int], set[int]] = {}
            for cls, idx, r in chosen:
                new_instances.setdefault((cls, r), set()).add(idx)
            needed: dict[tuple[str, int], int] = {}
            for cell in units:
                needed[cell] = needed.get(cell, 0) + 1
            for cell in set(needed) | set(new_instances):
                used = self.unit.get(cell, 0) + self.multi_rows.get(cell, 0)
                used += len(new_instances.get(cell, ()))
                used += needed.get(cell, 0)
                if used > self.machine.resource_class(cell[0]).count:
                    return False
            return True

        def expand(i: int, chosen: list[tuple[str, int, int]]) -> None:
            if i == len(multi_uses):
                if feasible(chosen):
                    results.append((list(units), list(chosen)))
                return
            use = multi_uses[i]
            span = [(row + k) % self.ii for k in range(use.cycles)]
            for idx in range(self.machine.resource_class(use.resource).count):
                cells = [(use.resource, idx, r) for r in span]
                if any(c in self.multi_cells or c in chosen for c in cells):
                    continue
                expand(i + 1, chosen + cells)

        expand(0, [])
        return results

    def place(self, placement) -> None:
        units, cells = placement
        for cell in units:
            self.unit[cell] = self.unit.get(cell, 0) + 1
        for cls, idx, r in cells:
            self.multi_cells.add((cls, idx, r))
            self.multi_rows[(cls, r)] = self.multi_rows.get((cls, r), 0) + 1

    def unplace(self, placement) -> None:
        units, cells = placement
        for cell in units:
            self.unit[cell] -= 1
        for cls, idx, r in cells:
            self.multi_cells.remove((cls, idx, r))
            self.multi_rows[(cls, r)] -= 1


# ----------------------------------------------------------------------
# Stage feasibility (difference constraints over the assigned prefix)


def _stage_potentials(
    rows: dict[int, int],
    arcs: list[tuple[int, int, int]],
    ii: int,
) -> dict[int, int] | None:
    """Longest-path stage numbers consistent with the assigned rows, or
    ``None`` when the difference constraints carry a positive cycle."""
    dist = {uid: 0 for uid in rows}
    active = []
    for src, dst, c in arcs:
        if src in rows and dst in rows:
            w = -(-(c - rows[dst] + rows[src]) // ii)
            if src == dst:
                if w > 0:  # an edge op->op the row itself cannot satisfy
                    return None
                continue
            active.append((src, dst, w))
    for _ in range(len(rows)):
        changed = False
        for src, dst, w in active:
            nd = dist[src] + w
            if nd > dist[dst]:
                dist[dst] = nd
                changed = True
        if not changed:
            return dist
    return None


def _feasible_at(
    loop: Loop,
    graph: DependenceGraph,
    machine: MachineDescription,
    ii: int,
    delays,
    meter: BudgetMeter,
) -> tuple[bool | None, dict[int, int] | None]:
    """Exact feasibility of II: ``(True, times)``, ``(False, None)``, or
    ``(None, None)`` when the budget ran out mid-proof."""
    arcs = [(e.src, e.dst, delays[e] - ii * e.distance) for e in graph.edges]
    heights = _heights(loop, graph, machine, ii, delays)
    total_cycles = {
        op.uid: sum(u.cycles for u in machine.opcode_info(op).uses)
        for op in loop.body
    }
    body_index = {op.uid: i for i, op in enumerate(loop.body)}
    order = sorted(
        loop.body,
        key=lambda op: (
            -heights[op.uid],
            -total_cycles[op.uid],
            body_index[op.uid],
        ),
    )
    res = _ExactReservation(machine, ii)
    rows: dict[int, int] = {}

    def search(idx: int) -> bool | None:
        if idx == len(order):
            return True
        op = order[idx]
        for row in range(ii):
            if not meter.charge():
                return None
            for placement in res.placements(op, row):
                res.place(placement)
                rows[op.uid] = row
                if _stage_potentials(rows, arcs, ii) is not None:
                    sub = search(idx + 1)
                    if sub:
                        return True  # keep state: rows holds the witness
                    if sub is None:
                        res.unplace(placement)
                        del rows[op.uid]
                        return None
                res.unplace(placement)
                del rows[op.uid]
        return False

    outcome = search(0)
    if not outcome:
        return outcome, None
    stages = _stage_potentials(rows, arcs, ii)
    assert stages is not None
    base = min(stages.values())
    times = {uid: (stages[uid] - base) * ii + rows[uid] for uid in rows}
    _validate_witness(graph, delays, ii, times, loop)
    return True, times


def _validate_witness(graph, delays, ii, times, loop) -> None:
    for edge in graph.edges:
        if times[edge.dst] + ii * edge.distance < times[edge.src] + delays[edge]:
            raise RuntimeError(
                f"oracle witness violates {edge} in {loop.name!r} at II={ii}"
            )


# ----------------------------------------------------------------------


def certify_schedule(
    loop: Loop,
    graph: DependenceGraph,
    machine: MachineDescription,
    achieved_ii: int,
    budget: OracleBudget | None = None,
) -> ScheduleOracleResult:
    """Certify (or bound) the minimality of ``achieved_ii`` for ``loop``.

    IIs are examined upward from MII; each is either proved infeasible
    or a witness schedule is produced.  ``achieved_ii`` itself is known
    feasible (the heuristic's schedule is the witness), so proving
    ``[MII, achieved_ii)`` infeasible certifies optimality.
    """
    from repro.observability.recorder import active_recorder

    meter = BudgetMeter(budget or OracleBudget())
    delays = edge_delays(graph, machine)
    mii, res, rec_bound = minimum_ii(loop, graph, machine, delays)

    infeasible: list[int] = []
    certified_ii: int | None = None
    witness: dict[int, int] | None = None
    status = CERTIFIED
    if achieved_ii <= mii:
        certified_ii = achieved_ii
    else:
        for ii in range(mii, achieved_ii):
            feasible, times = _feasible_at(
                loop, graph, machine, ii, delays, meter
            )
            if feasible is None:
                status = meter.status()
                break
            if feasible:
                certified_ii = ii
                witness = times
                break
            infeasible.append(ii)
        else:
            certified_ii = achieved_ii

    result = ScheduleOracleResult(
        status=status,
        mii=mii,
        res_mii=int(res),
        rec_mii=int(rec_bound),
        achieved_ii=achieved_ii,
        certified_ii=certified_ii,
        infeasible_iis=tuple(infeasible),
        nodes=meter.nodes,
        elapsed_s=meter.elapsed,
        witness=witness,
    )
    recorder = active_recorder()
    if recorder is not None:
        recorder.count("oracle.schedule_runs")
        recorder.count("oracle.schedule_nodes", result.nodes)
        recorder.count(f"oracle.schedule_{result.status}")
        recorder.event(
            "oracle.schedule",
            loop=loop.name,
            status=result.status,
            mii=mii,
            achieved_ii=achieved_ii,
            certified_ii=certified_ii,
            infeasible_iis=list(infeasible),
            nodes=result.nodes,
        )
    return result
