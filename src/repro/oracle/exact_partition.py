"""Branch-and-bound optimal scalar/vector partitioning.

The search optimizes *exactly* the partitioner's objective: the
high-water mark of :meth:`PartitionCostModel.bin_pack` — the ResMII of
the configuration, with communication and alignment overhead charged the
same way Figure 2 charges them.  A leaf is evaluated with the very same
``bin_pack`` the Kernighan-Lin heuristic uses, so "certified optimal"
means optimal over every assignment KL could have returned, under the
identical cost model.

Search structure:

* **Decisions** are the vectorizable operations (everything else is
  pinned scalar), ordered by descending resource weight so heavy
  commitments happen near the root where pruning pays most.
* **Lower bound** — decided work is accumulated in a live :class:`Bins`
  via the PR 3 checkpoint/rollback journal: the decided operations'
  opcodes plus every transfer already *forced* by decided ops (a
  producer and a crossing consumer both decided; a decided vector
  consumer of a non-constant carried scalar).  Undecided operations
  contribute, per resource class, the cheaper of their two sides
  (precomputed suffix sums).  The bound is
  ``max_c ceil(total_c / instances_c)`` — admissible because a greedy
  high-water mark can never undercut the per-class average, every
  completion reserves at least the accounted cycles, and transfers only
  add work.
* **Dominance** — when the bound kills one side of a decision outright,
  the other side is taken without branching (counted in
  ``forced_moves``).
* **Symmetry** — interchangeable candidates (identical kind/dtype,
  identical opcode tuples on both sides, identical producer/consumer/
  carried context) whose resource classes carry only unit-cycle
  reservations are constrained to "vectorized members form a prefix":
  for such groups a side swap provably leaves the greedy pack's
  high-water mark unchanged, so one representative per orbit suffices.
  Groups touching any class with a multi-cycle (non-pipelined divide)
  reservation are left unpruned — there the greedy pack is order
  sensitive and the swap argument does not hold.
* **Budget** — the search charges one :class:`BudgetMeter` node per
  branch.  On exhaustion it returns status ``bounded``/``timeout`` with
  ``lower_bound = min(incumbent, bound of every abandoned subtree)``,
  which remains a true lower bound on the optimum.

``enumerate_partitions`` is the brute-force reference the property tests
compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.dependence.analysis import LoopDependence
from repro.ir.operations import Operation
from repro.machine.machine import MachineDescription
from repro.oracle import CERTIFIED, BudgetMeter, OracleBudget
from repro.vectorize.bins import Bins
from repro.vectorize.communication import Side, Transfer
from repro.vectorize.partition import (
    PartitionConfig,
    PartitionCostModel,
    PartitionResult,
)


@dataclass
class PartitionOracleResult:
    """Outcome of one branch-and-bound partition search.

    ``status == "certified"`` means ``best_cost == lower_bound`` is the
    true minimum ResMII; otherwise the optimum lies in
    ``[lower_bound, best_cost]``.
    """

    status: str
    best_cost: int
    lower_bound: int
    assignment: dict[int, Side]
    candidates: int
    nodes: int
    leaves: int
    elapsed_s: float
    kl_cost: int | None = None
    pruned_bound: int = 0
    pruned_symmetry: int = 0
    forced_moves: int = 0

    @property
    def certified(self) -> bool:
        return self.status == CERTIFIED

    @property
    def kl_gap(self) -> int | None:
        """How far the heuristic landed above the oracle's best (exact
        when certified, else an upper bound on the true gap)."""
        if self.kl_cost is None:
            return None
        return self.kl_cost - self.best_cost


# ----------------------------------------------------------------------
# Model-derived tables


def _class_cycles(infos) -> dict[str, int]:
    """Busy cycles per resource class over a tuple of opcodes."""
    cycles: dict[str, int] = {}
    for info in infos:
        for use in info.uses:
            cycles[use.resource] = cycles.get(use.resource, 0) + use.cycles
    return cycles


def _possible_transfers(
    model: PartitionCostModel, key: object
) -> list[Transfer]:
    """Both directions a transfer of ``key`` could take (cost scanning)."""
    if isinstance(key, tuple) and key and key[0] == "carried":
        for entry in model.dataflow.carried_consumers:
            if entry.name == key[1]:
                return [Transfer(key=key, dtype=entry.type, to_vector=True)]
        return []
    dtype = model.dataflow.producer_dtype.get(key)
    if dtype is None:
        return []
    return [
        Transfer(key=key, dtype=dtype, to_vector=tv) for tv in (False, True)
    ]


def _multi_cycle_classes(model: PartitionCostModel) -> frozenset[str]:
    """Resource classes that any reservation in this loop's cost model
    can occupy for more than one cycle (non-pipelined divides): greedy
    packing into these is order sensitive, which voids the symmetry
    swap argument."""
    multi: set[str] = set()

    def scan(infos) -> None:
        for info in infos:
            for use in info.uses:
                if use.cycles > 1:
                    multi.add(use.resource)

    for op in model.dep.loop.body:
        scan(model.op_opcodes(op, Side.SCALAR))
        if model.dep.is_vectorizable(op):
            scan(model.op_opcodes(op, Side.VECTOR))
    scan(model.overhead_opcodes())
    for op in model.dep.loop.body:
        for key in model.touch_keys[op.uid]:
            for transfer in _possible_transfers(model, key):
                scan(model.transfer_opcodes(transfer))
    return frozenset(multi)


def _touched_classes(model: PartitionCostModel, op: Operation) -> set[str]:
    """Every resource class a repartition of ``op`` can load, on either
    side, including the transfers it can imply."""
    classes: set[str] = set()
    for side in (Side.SCALAR, Side.VECTOR):
        for info in model.op_opcodes(op, side):
            for use in info.uses:
                classes.add(use.resource)
    for key in model.touch_keys[op.uid]:
        for transfer in _possible_transfers(model, key):
            for info in model.transfer_opcodes(transfer):
                for use in info.uses:
                    classes.add(use.resource)
    return classes


def _symmetry_signature(model: PartitionCostModel, op: Operation):
    """Candidates with equal signatures are cost-interchangeable (given
    unit-cycle classes): same opcodes on both sides and the same operand
    environment, so swapping their sides permutes identical reservations."""
    dataflow = model.dataflow
    consumed = frozenset(
        p for p, consumers in dataflow.consumers.items() if op.uid in consumers
    )
    consumers = frozenset(dataflow.consumers.get(op.uid, ()))
    carried = frozenset(
        entry.name
        for entry, readers in dataflow.carried_consumers.items()
        if op.uid in readers
    )
    return (
        op.kind,
        op.dtype,
        model.op_opcodes(op, Side.SCALAR),
        model.op_opcodes(op, Side.VECTOR),
        consumed,
        consumers,
        carried,
        op.dest is not None,
    )


# ----------------------------------------------------------------------
# The search


def exact_partition(
    dep: LoopDependence,
    machine: MachineDescription,
    config: PartitionConfig | None = None,
    budget: OracleBudget | None = None,
    incumbent: PartitionResult | None = None,
) -> PartitionOracleResult:
    """Branch-and-bound over every scalar/vector assignment of ``dep``.

    ``incumbent`` (typically the KL result) warm-starts the upper bound
    and the branch order; pass ``None`` for a fully independent search
    (the second-witness self-check does, so a corrupt heuristic cost
    cannot steer its own verification).
    """
    from repro.observability.recorder import active_recorder

    config = config or PartitionConfig()
    budget = budget or OracleBudget()
    model = PartitionCostModel(dep, machine, config)
    body = dep.loop.body
    meter = BudgetMeter(budget)

    side_of: dict[int, Side] = {}
    candidates: list[Operation] = []
    for op in body:
        if machine.supports_vectors and dep.is_vectorizable(op):
            candidates.append(op)
        else:
            side_of[op.uid] = Side.SCALAR

    if not candidates:
        assignment = dict(side_of)
        cost = model.bin_pack(assignment).high_water_mark()
        return _finish(
            dep,
            PartitionOracleResult(
                status=CERTIFIED,
                best_cost=cost,
                lower_bound=cost,
                assignment=assignment,
                candidates=0,
                nodes=0,
                leaves=1,
                elapsed_s=meter.elapsed,
                kl_cost=incumbent.cost if incumbent else None,
            ),
        )

    # Decision order: heaviest resource footprint first.
    body_index = {op.uid: i for i, op in enumerate(body)}
    scalar_cycles = {
        op.uid: _class_cycles(model.op_opcodes(op, Side.SCALAR))
        for op in candidates
    }
    vector_cycles = {
        op.uid: _class_cycles(model.op_opcodes(op, Side.VECTOR))
        for op in candidates
    }
    order = sorted(
        candidates,
        key=lambda op: (
            -(
                sum(scalar_cycles[op.uid].values())
                + sum(vector_cycles[op.uid].values())
            ),
            body_index[op.uid],
        ),
    )
    n = len(order)

    # Per-class suffix sums of each undecided op's cheaper side.
    suffix_min: list[dict[str, int]] = [{} for _ in range(n + 1)]
    for i in range(n - 1, -1, -1):
        acc = dict(suffix_min[i + 1])
        s, v = scalar_cycles[order[i].uid], vector_cycles[order[i].uid]
        for cls in s.keys() & v.keys():
            low = min(s[cls], v[cls])
            if low:
                acc[cls] = acc.get(cls, 0) + low
        suffix_min[i] = acc

    # Symmetry orbits: for each decision, the nearest earlier member of
    # its (sound) interchangeability group.
    multi_classes = _multi_cycle_classes(model)
    group_prev: list[int | None] = [None] * n
    last_member: dict[object, int] = {}
    for i, op in enumerate(order):
        if _touched_classes(model, op) & multi_classes:
            continue
        sig = _symmetry_signature(model, op)
        group_prev[i] = last_member.get(sig)
        last_member[sig] = i

    # Warm start.
    if incumbent is not None:
        best_assignment = dict(incumbent.assignment)
        best_cost = incumbent.cost
        side_pref = [
            (incumbent.assignment[op.uid], incumbent.assignment[op.uid].flipped())
            for op in order
        ]
    else:
        best_assignment = {op.uid: Side.SCALAR for op in body}
        best_cost = model.bin_pack(best_assignment).high_water_mark()
        side_pref = [(Side.SCALAR, Side.VECTOR)] * n

    # Decided-work accumulator: pinned-scalar ops and loop overhead are
    # packed once, outside any checkpoint; candidate decisions and the
    # transfers they force ride the journal.
    bins = Bins(machine, balance_ties=config.balanced_bin_packing)
    for op in body:
        if op.uid in side_of:
            bins.reserve_all(list(model.op_opcodes(op, Side.SCALAR)), ("op", op.uid))
    for i, info in enumerate(model.overhead_opcodes()):
        bins.reserve_least_used(info, ("overhead", i))

    inst_class = {
        inst: rc.name for rc in machine.resources for inst in rc.instances()
    }
    class_count = {rc.name: rc.count for rc in machine.resources}
    dataflow = model.dataflow
    forced: set[object] = set()

    def lower_bound(depth: int) -> int:
        totals: dict[str, int] = {}
        for inst, w in bins.weights.items():
            if w:
                cls = inst_class[inst]
                totals[cls] = totals.get(cls, 0) + w
        for cls, w in suffix_min[depth].items():
            totals[cls] = totals.get(cls, 0) + w
        bound = 0
        for cls, w in totals.items():
            need = -(-w // class_count[cls])
            if need > bound:
                bound = need
        return bound

    def forced_transfer(key: object) -> Transfer | None:
        """The transfer implied by *decided* sides alone, if any."""
        if isinstance(key, tuple) and key and key[0] == "carried":
            for entry, readers in dataflow.carried_consumers.items():
                if entry.name != key[1]:
                    continue
                if entry in dataflow.constant_carried:
                    return None
                if any(side_of.get(c) is Side.VECTOR for c in readers):
                    return Transfer(key=key, dtype=entry.type, to_vector=True)
                return None
            return None
        side = side_of.get(key)
        if side is None:
            return None
        if any(
            side_of.get(c) not in (None, side)
            for c in dataflow.consumers.get(key, ())
        ):
            return Transfer(
                key=key,
                dtype=dataflow.producer_dtype[key],
                to_vector=(side is Side.SCALAR),
            )
        return None

    def apply(op: Operation, side: Side) -> list[object]:
        side_of[op.uid] = side
        bins.reserve_all(list(model.op_opcodes(op, side)), ("op", op.uid))
        newly: list[object] = []
        for key in model.touch_keys[op.uid]:
            if key in forced:
                continue
            transfer = forced_transfer(key)
            if transfer is None:
                continue
            opcodes = model.transfer_opcodes(transfer)
            if opcodes:
                bins.reserve_all(list(opcodes), ("comm", key))
            forced.add(key)
            newly.append(key)
        return newly

    stats = {
        "leaves": 0,
        "pruned_bound": 0,
        "pruned_symmetry": 0,
        "forced_moves": 0,
    }
    abandon_lb: list[int] = []

    def search(depth: int) -> None:
        nonlocal best_cost, best_assignment
        if depth == n:
            stats["leaves"] += 1
            cost = model.bin_pack(side_of).high_water_mark()
            if cost < best_cost:
                best_cost = cost
                best_assignment = dict(side_of)
            return
        op = order[depth]
        prev = group_prev[depth]
        explored = pruned = 0
        for side in side_pref[depth]:
            if (
                side is Side.VECTOR
                and prev is not None
                and side_of[order[prev].uid] is Side.SCALAR
            ):
                # An equal-cost representative with the group's vector
                # members packed first is (or was) explored instead.
                stats["pruned_symmetry"] += 1
                continue
            if not meter.charge():
                abandon_lb.append(lower_bound(depth))
                return
            mark = bins.checkpoint()
            newly = apply(op, side)
            bound = lower_bound(depth + 1)
            if bound >= best_cost:
                stats["pruned_bound"] += 1
                pruned += 1
            else:
                explored += 1
                search(depth + 1)
            bins.rollback(mark)
            del side_of[op.uid]
            forced.difference_update(newly)
            if meter.exhausted_by is not None:
                abandon_lb.append(lower_bound(depth))
                return
        if explored == 1 and pruned == 1:
            stats["forced_moves"] += 1

    search(0)

    status = meter.status()
    if status == CERTIFIED:
        lower = best_cost
    else:
        lower = min([best_cost] + abandon_lb)
    result = PartitionOracleResult(
        status=status,
        best_cost=best_cost,
        lower_bound=lower,
        assignment=best_assignment,
        candidates=n,
        nodes=meter.nodes,
        leaves=stats["leaves"],
        elapsed_s=meter.elapsed,
        kl_cost=incumbent.cost if incumbent else None,
        pruned_bound=stats["pruned_bound"],
        pruned_symmetry=stats["pruned_symmetry"],
        forced_moves=stats["forced_moves"],
    )
    rec = active_recorder()
    if rec is not None:
        _record(rec, dep, result)
    return result


def _finish(dep: LoopDependence, result: PartitionOracleResult) -> PartitionOracleResult:
    from repro.observability.recorder import active_recorder

    rec = active_recorder()
    if rec is not None:
        _record(rec, dep, result)
    return result


def _record(rec, dep: LoopDependence, result: PartitionOracleResult) -> None:
    rec.count("oracle.partition_runs")
    rec.count("oracle.partition_nodes", result.nodes)
    rec.count("oracle.partition_leaves", result.leaves)
    rec.count("oracle.partition_pruned_bound", result.pruned_bound)
    rec.count("oracle.partition_pruned_symmetry", result.pruned_symmetry)
    rec.count(f"oracle.partition_{result.status}")
    rec.event(
        "oracle.partition",
        loop=dep.loop.name,
        status=result.status,
        best_cost=result.best_cost,
        lower_bound=result.lower_bound,
        candidates=result.candidates,
        nodes=result.nodes,
        leaves=result.leaves,
        kl_cost=result.kl_cost,
    )


# ----------------------------------------------------------------------
# Brute force (the reference the property tests certify the search with)


def enumerate_partitions(
    dep: LoopDependence,
    machine: MachineDescription,
    config: PartitionConfig | None = None,
    max_candidates: int = 16,
) -> tuple[int, int]:
    """Exhaustively evaluate every assignment; returns
    ``(optimal cost, configurations evaluated)``."""
    config = config or PartitionConfig()
    model = PartitionCostModel(dep, machine, config)
    assignment = {op.uid: Side.SCALAR for op in dep.loop.body}
    candidates = (
        [op for op in dep.loop.body if dep.is_vectorizable(op)]
        if machine.supports_vectors
        else []
    )
    if len(candidates) > max_candidates:
        raise ValueError(
            f"{len(candidates)} candidates exceed the enumeration limit "
            f"of {max_candidates}"
        )
    best = model.bin_pack(assignment).high_water_mark()
    evaluated = 1
    for sides in product((Side.SCALAR, Side.VECTOR), repeat=len(candidates)):
        if all(s is Side.SCALAR for s in sides):
            continue
        for op, side in zip(candidates, sides):
            assignment[op.uid] = side
        cost = model.bin_pack(assignment).high_water_mark()
        evaluated += 1
        if cost < best:
            best = cost
    return best, evaluated
