"""Wire protocol of the compile server.

A compile request is a JSON object naming everything
:class:`~repro.compiler.service.CompileRequest` needs:

.. code-block:: json

    {
      "loop": {"dsl": "array x(64) ..."},
      "machine": "paper",
      "strategy": "selective",
      "optimize": false,
      "baseline_unroll": null,
      "allow_reassociation": false
    }

The loop comes in one of two forms:

``{"dsl": <text>}``
    DSL source, parsed with the normal frontend.

``{"generator": {"archetype": <name>, "seed": <int>, "name": <str>}}``
    A deterministic workload-generator draw — the form the load
    generator uses, because it lets a corpus be replayed by plan
    rather than shipping loop text.

``machine`` is a name in the shared registry
(:data:`repro.machine.configs.MACHINE_FACTORIES`); ``strategy`` is a
:class:`~repro.compiler.strategies.Strategy` value.  Every validation
failure raises :class:`ProtocolError`, which the server renders as a
structured error body::

    {"error": {"code": "unknown_machine", "message": "..."}}

so clients can branch on ``code`` without parsing prose.
"""

from __future__ import annotations

from typing import Any

from repro.compiler.service import CompileRequest
from repro.compiler.strategies import Strategy
from repro.frontend import parse_loop
from repro.machine.configs import MACHINE_FACTORIES, machine_by_name
from repro.workloads.generator import GENERATORS, generate


class ProtocolError(Exception):
    """A request the protocol rejects, with a machine-readable code and
    the HTTP status the server should answer with."""

    def __init__(self, code: str, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.status = status

    def body(self) -> dict:
        return {"error": {"code": self.code, "message": self.message}}


def _require(mapping: dict, field: str, code: str) -> Any:
    if field not in mapping:
        raise ProtocolError(code, f"missing required field {field!r}")
    return mapping[field]


def _parse_loop_form(form: object) -> "object":
    if not isinstance(form, dict):
        raise ProtocolError(
            "bad_loop", "loop must be an object with 'dsl' or 'generator'"
        )
    if ("dsl" in form) == ("generator" in form):
        raise ProtocolError(
            "bad_loop", "loop takes exactly one of 'dsl' or 'generator'"
        )
    if "dsl" in form:
        source = form["dsl"]
        if not isinstance(source, str) or not source.strip():
            raise ProtocolError("bad_loop", "loop.dsl must be DSL text")
        try:
            return parse_loop(source)
        except Exception as exc:
            raise ProtocolError("parse_error", str(exc)) from exc
    draw = form["generator"]
    if not isinstance(draw, dict):
        raise ProtocolError(
            "bad_loop",
            "loop.generator must be {archetype, seed[, name]}",
        )
    archetype = _require(draw, "archetype", "bad_loop")
    if archetype not in GENERATORS:
        raise ProtocolError(
            "unknown_archetype",
            f"unknown archetype {archetype!r} "
            f"(expected one of {sorted(GENERATORS)})",
        )
    seed = _require(draw, "seed", "bad_loop")
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ProtocolError("bad_loop", "loop.generator.seed must be an int")
    name = draw.get("name")
    if name is not None and not isinstance(name, str):
        raise ProtocolError("bad_loop", "loop.generator.name must be a string")
    return generate(archetype, seed, name)


def parse_compile_request(body: object) -> CompileRequest:
    """Validate one JSON request body into a :class:`CompileRequest`.

    Raises :class:`ProtocolError` on any malformed or unknown field
    value; never partially succeeds.
    """
    if not isinstance(body, dict):
        raise ProtocolError("bad_request", "request body must be an object")
    loop = _parse_loop_form(_require(body, "loop", "bad_request"))

    machine_name = body.get("machine", "paper")
    if not isinstance(machine_name, str):
        raise ProtocolError("unknown_machine", "machine must be a name")
    try:
        machine = machine_by_name(machine_name)
    except KeyError:
        raise ProtocolError(
            "unknown_machine",
            f"unknown machine {machine_name!r} "
            f"(expected one of {sorted(MACHINE_FACTORIES)})",
        ) from None

    strategy_name = body.get("strategy", "selective")
    try:
        strategy = Strategy(strategy_name)
    except ValueError:
        raise ProtocolError(
            "unknown_strategy",
            f"unknown strategy {strategy_name!r} "
            f"(expected one of {sorted(s.value for s in Strategy)})",
        ) from None

    optimize = body.get("optimize", False)
    if not isinstance(optimize, bool):
        raise ProtocolError("bad_request", "optimize must be a boolean")
    allow_reassociation = body.get("allow_reassociation", False)
    if not isinstance(allow_reassociation, bool):
        raise ProtocolError(
            "bad_request", "allow_reassociation must be a boolean"
        )
    baseline_unroll = body.get("baseline_unroll")
    if baseline_unroll is not None and (
        not isinstance(baseline_unroll, int)
        or isinstance(baseline_unroll, bool)
        or baseline_unroll < 1
    ):
        raise ProtocolError(
            "bad_request", "baseline_unroll must be a positive int or null"
        )

    return CompileRequest(
        loop=loop,
        machine=machine,
        strategy=strategy,
        baseline_unroll=baseline_unroll,
        optimize=optimize,
        allow_reassociation=allow_reassociation,
    )
