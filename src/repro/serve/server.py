"""Asyncio batch compile server.

One process, three moving parts:

* **Front door** — an ``asyncio.start_server`` loop speaking a small
  HTTP/1.1 subset (keep-alive, ``Content-Length`` framed bodies).
  ``POST /compile`` takes the JSON request shape of
  :mod:`repro.serve.protocol`; ``GET /healthz`` and ``GET /stats``
  observe the server; ``POST /shutdown`` starts a graceful drain.

* **Dedup + store** — each request resolves to its content-addressed
  cache key.  A key already being compiled joins the in-flight future
  (N identical concurrent requests cost one compile); a key already in
  the artifact store answers immediately without queueing; only novel
  keys enter the bounded dispatch queue.  A full queue answers
  ``429`` with ``Retry-After`` — backpressure instead of unbounded
  memory.

* **Batch dispatcher** — a single task drains the queue, coalescing up
  to ``batch_max`` requests within a ``batch_linger_ms`` window, and
  ships each batch to the worker pool as *one* task (one IPC
  round-trip per batch, not per request).  Workers compile, persist
  artifacts into the shared store, and return response summaries; the
  dispatcher resolves every waiter.

Responses carry ``"served": "compiled" | "cache" | "dedup"`` so
clients (and the load generator) can attribute how each answer was
obtained; the compiled result itself is bit-identical regardless.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

from repro.compiler.service import CompileRequest, compile_one
from repro.evaluation.compile_cache import CompileCache
from repro.serve.protocol import ProtocolError, parse_compile_request
from repro.serve.store import ArtifactStore

_SHUTDOWN = object()

#: Largest request body the front door accepts.
MAX_BODY_BYTES = 8 << 20

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class CompileFailure(Exception):
    """A compile job raised inside the worker; message is the rendered
    worker-side exception."""


@dataclass(frozen=True)
class ServerConfig:
    """Everything that shapes one server process."""

    store_dir: str
    host: str = "127.0.0.1"
    port: int = 0
    max_bytes: int | None = None
    queue_limit: int = 64
    batch_max: int = 16
    batch_linger_ms: float = 2.0
    #: Worker processes; ``0`` compiles batches on a thread in-process
    #: (deterministic and fork-free — what the asyncio tests use).
    jobs: int = 1
    retry_after_s: int = 1


def _compile_batch_worker(
    store_dir: str,
    max_bytes: int | None,
    items: list[tuple[str, CompileRequest]],
) -> list[tuple[bool, object]]:
    """Compile one batch inside a pool worker.

    Artifacts are persisted here, in the worker, so a result is durable
    in the shared store before any waiter sees it.  Per-item failures
    come back as ``(False, message)`` — one bad loop must not poison
    its batch-mates.
    """
    cache = CompileCache(store_dir, max_bytes=max_bytes)
    results: list[tuple[bool, object]] = []
    for key, request in items:
        try:
            payload = compile_one(request)
            cache.store(key, payload.compiled)
            results.append((True, payload.summary()))
        except Exception as exc:  # noqa: BLE001 — reported to the client
            results.append((False, f"{type(exc).__name__}: {exc}"))
    return results


@dataclass
class ServerStats:
    requests: int = 0
    compiles: int = 0
    compile_errors: int = 0
    dedup_hits: int = 0
    cache_hits: int = 0
    rejected: int = 0
    bad_requests: int = 0
    batches: dict[int, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "compiles": self.compiles,
            "compile_errors": self.compile_errors,
            "dedup_hits": self.dedup_hits,
            "cache_hits": self.cache_hits,
            "rejected": self.rejected,
            "bad_requests": self.bad_requests,
            "batches": {str(k): v for k, v in sorted(self.batches.items())},
        }


class CompileServer:
    """The batching, deduplicating compile front door."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.store = ArtifactStore(
            config.store_dir, max_bytes=config.max_bytes
        )
        self.stats = ServerStats()
        self.port: int | None = None
        self._server: asyncio.base_events.Server | None = None
        self._queue: asyncio.Queue | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._dispatcher: asyncio.Task | None = None
        self._pool = None
        self._gate: asyncio.Event | None = None
        self._draining = False
        self._stopped: asyncio.Event | None = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.config.queue_limit)
        self._gate = asyncio.Event()
        self._gate.set()
        self._stopped = asyncio.Event()
        if self.config.jobs >= 1:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            # Fork workers inherit the fully imported compiler, so the
            # pool is warm from its first batch.
            self._pool = ProcessPoolExecutor(
                max_workers=self.config.jobs,
                mp_context=multiprocessing.get_context("fork"),
            )
        self._dispatcher = loop.create_task(self._dispatch_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def drain_and_stop(self) -> None:
        """Graceful shutdown: refuse new compiles, finish every accepted
        one, then stop the dispatcher, listener, and pool."""
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        while self._inflight or (self._queue and not self._queue.empty()):
            await asyncio.sleep(0.005)
        await self._queue.put(_SHUTDOWN)
        await self._dispatcher
        self._server.close()
        await self._server.wait_closed()
        if self._pool is not None:
            self._pool.shutdown()
        self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    # -- test hooks ----------------------------------------------------

    def hold_dispatch(self) -> None:
        """Pause the dispatcher (tests: fill the queue deterministically
        to exercise backpressure)."""
        self._gate.clear()

    def release_dispatch(self) -> None:
        self._gate.set()

    # -- dispatch ------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        linger = self.config.batch_linger_ms / 1e3
        while True:
            item = await self._queue.get()
            if item is _SHUTDOWN:
                return
            await self._gate.wait()
            batch = [item]
            stop_after = False
            deadline = loop.time() + linger
            while len(batch) < self.config.batch_max:
                remaining = deadline - loop.time()
                if remaining <= 0 and linger > 0:
                    break
                try:
                    if linger > 0:
                        nxt = await asyncio.wait_for(
                            self._queue.get(), remaining
                        )
                    else:
                        nxt = self._queue.get_nowait()
                except (asyncio.TimeoutError, asyncio.QueueEmpty):
                    break
                if nxt is _SHUTDOWN:
                    stop_after = True
                    break
                batch.append(nxt)
            size = len(batch)
            self.stats.batches[size] = self.stats.batches.get(size, 0) + 1
            await self._run_batch(batch)
            if stop_after:
                return

    async def _run_batch(
        self, batch: list[tuple[str, CompileRequest]]
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            if self._pool is not None:
                results = await loop.run_in_executor(
                    self._pool,
                    _compile_batch_worker,
                    self.store.directory,
                    self.store.cache.max_bytes,
                    batch,
                )
            else:
                results = await asyncio.to_thread(
                    _compile_batch_worker,
                    self.store.directory,
                    self.store.cache.max_bytes,
                    batch,
                )
        except BaseException as exc:  # pool death: fail every waiter
            for key, _ in batch:
                fut = self._inflight.pop(key, None)
                if fut is not None and not fut.done():
                    fut.set_exception(CompileFailure(str(exc)))
            if isinstance(exc, asyncio.CancelledError):
                raise
            return
        for (key, _), (ok, value) in zip(batch, results):
            fut = self._inflight.pop(key, None)
            if ok:
                self.stats.compiles += 1
                summary = self.store.memoize_summary(key, value)
                if fut is not None and not fut.done():
                    fut.set_result(summary)
            else:
                self.stats.compile_errors += 1
                if fut is not None and not fut.done():
                    fut.set_exception(CompileFailure(str(value)))

    # -- request handling ----------------------------------------------

    async def _handle_compile(
        self, body: dict
    ) -> tuple[int, dict, dict[str, str]]:
        if self._draining:
            return (
                503,
                {
                    "error": {
                        "code": "draining",
                        "message": "server is shutting down",
                    }
                },
                {},
            )
        try:
            request = parse_compile_request(body)
        except ProtocolError as exc:
            self.stats.bad_requests += 1
            return exc.status, exc.body(), {}
        key = await asyncio.to_thread(request.cache_key)

        fut = self._inflight.get(key)
        if fut is None:
            summary = await asyncio.to_thread(
                self.store.get_summary, key, request
            )
            if summary is not None:
                self.stats.cache_hits += 1
                return 200, {"key": key, "served": "cache", "result": summary}, {}
            # The store read ran on a thread; an identical request may
            # have claimed the key meanwhile.
            fut = self._inflight.get(key)

        if fut is not None:
            self.stats.dedup_hits += 1
            try:
                summary = await asyncio.shield(fut)
            except CompileFailure as exc:
                return (
                    500,
                    {"error": {"code": "compile_error", "message": str(exc)}},
                    {},
                )
            return 200, {"key": key, "served": "dedup", "result": summary}, {}

        fut = asyncio.get_running_loop().create_future()
        self._inflight[key] = fut
        try:
            self._queue.put_nowait((key, request))
        except asyncio.QueueFull:
            del self._inflight[key]
            self.stats.rejected += 1
            return (
                429,
                {
                    "error": {
                        "code": "saturated",
                        "message": "compile queue is full; retry shortly",
                    }
                },
                {"Retry-After": str(self.config.retry_after_s)},
            )
        try:
            summary = await asyncio.shield(fut)
        except CompileFailure as exc:
            return (
                500,
                {"error": {"code": "compile_error", "message": str(exc)}},
                {},
            )
        return 200, {"key": key, "served": "compiled", "result": summary}, {}

    def _stats_body(self) -> dict:
        body = self.stats.to_dict()
        body["draining"] = self._draining
        body["queue_depth"] = self._queue.qsize() if self._queue else 0
        body["inflight"] = len(self._inflight)
        body["store"] = self.store.stats()
        return body

    async def _route(
        self, method: str, path: str, body_bytes: bytes
    ) -> tuple[int, dict, dict[str, str]]:
        if path == "/healthz":
            if method != "GET":
                return 405, _error("method_not_allowed", "use GET"), {}
            return 200, {"ok": True, "draining": self._draining}, {}
        if path == "/stats":
            if method != "GET":
                return 405, _error("method_not_allowed", "use GET"), {}
            return 200, self._stats_body(), {}
        if path == "/shutdown":
            if method != "POST":
                return 405, _error("method_not_allowed", "use POST"), {}
            asyncio.get_running_loop().create_task(self.drain_and_stop())
            return 200, {"ok": True, "draining": True}, {}
        if path == "/compile":
            if method != "POST":
                return 405, _error("method_not_allowed", "use POST"), {}
            try:
                body = json.loads(body_bytes.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self.stats.bad_requests += 1
                return 400, _error("bad_json", f"body is not JSON: {exc}"), {}
            return await self._handle_compile(body)
        return 404, _error("not_found", f"no route {path!r}"), {}

    # -- HTTP plumbing -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, path, headers, body_bytes, framing_error = parsed
                if framing_error is not None:
                    status, body, extra = framing_error
                    keep_alive = False
                else:
                    self.stats.requests += 1
                    status, body, extra = await self._route(
                        method, path, body_bytes
                    )
                    keep_alive = (
                        headers.get("connection", "keep-alive").lower()
                        != "close"
                    )
                payload = json.dumps(body, sort_keys=True).encode("utf-8")
                head = [
                    f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Status')}",
                    "Content-Type: application/json",
                    f"Content-Length: {len(payload)}",
                    f"Connection: {'keep-alive' if keep_alive else 'close'}",
                ]
                head.extend(f"{k}: {v}" for k, v in extra.items())
                writer.write(
                    ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + payload
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop teardown cancels connection tasks; finishing the
            # task normally keeps the streams done-callback quiet.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # Loop teardown cancels handler tasks mid-close; the
                # connection is going away either way.
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes, tuple[int, dict, dict[str, str]] | None] | None:
        """One framed request: ``(method, path, headers, body, error)``,
        or ``None`` on a cleanly closed connection.  ``error`` is a
        pre-built response for framing problems (bad request line,
        oversized body) — the connection closes after sending it."""
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            return (
                "",
                "",
                {},
                b"",
                (400, _error("bad_request_line", "malformed request line"), {}),
            )
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line:
                return None
            text = line.decode("latin-1").strip()
            if not text:
                break
            name, sep, value = text.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            return (
                method,
                path,
                headers,
                b"",
                (400, _error("bad_length", "bad Content-Length"), {}),
            )
        if length > MAX_BODY_BYTES:
            return (
                method,
                path,
                headers,
                b"",
                (413, _error("too_large", "request body too large"), {}),
            )
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body, None


def _error(code: str, message: str) -> dict:
    return {"error": {"code": code, "message": message}}
