"""The server's shared artifact store.

The store *is* the PR 3 compile cache — the same sharded,
content-addressed, atomically written directory layout
(``<dir>/<key[:2]>/<key>.pkl``), the same torn-entry-reads-as-miss
contract, and (with ``max_bytes``) the same size-bounded LRU eviction.
Server workers and the evaluation harness can point at one directory
and share artifacts, because a key already encodes the compiler code
version alongside the full request.

On top of the on-disk cache the store keeps a small in-memory LRU of
response *summaries*, so repeated warm requests for the same key skip
the unpickle.  A summary is a pure function of the artifact (and the
artifact of the key), so a memoized summary can outlive a disk
eviction without ever becoming wrong — at worst the disk copy is gone
and the next cold process recompiles.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.compiler.driver import CompiledLoop
from repro.compiler.service import (
    CompiledLoopPayload,
    CompileRequest,
)
from repro.evaluation.compile_cache import CompileCache


class ArtifactStore:
    """Content-addressed compile artifacts plus a summary memo.

    ``get``/``put`` are blocking (disk + pickle) — the server calls
    them through ``asyncio.to_thread`` / inside pool workers.
    """

    def __init__(
        self,
        directory: str,
        max_bytes: int | None = None,
        summary_slots: int = 4096,
    ) -> None:
        self.cache = CompileCache(directory, max_bytes=max_bytes)
        self._summaries: OrderedDict[str, dict] = OrderedDict()
        self._summary_slots = summary_slots
        self.memo_hits = 0

    @property
    def directory(self) -> str:
        return self.cache.directory

    def _memoize(self, key: str, summary: dict) -> dict:
        self._summaries[key] = summary
        self._summaries.move_to_end(key)
        while len(self._summaries) > self._summary_slots:
            self._summaries.popitem(last=False)
        return summary

    def get_summary(self, key: str, request: CompileRequest) -> dict | None:
        """The stored response summary for ``key``, or ``None`` on miss.

        The memo answers without touching disk; otherwise the on-disk
        artifact is loaded (counting a cache hit/miss) and summarized.
        """
        memo = self._summaries.get(key)
        if memo is not None:
            self._summaries.move_to_end(key)
            self.memo_hits += 1
            return memo
        compiled = self.cache.load(key)
        if compiled is None:
            return None
        summary = CompiledLoopPayload(
            request=request, compiled=compiled
        ).summary()
        return self._memoize(key, summary)

    def put(self, key: str, payload: CompiledLoopPayload) -> dict:
        """Persist one compiled artifact and memoize its summary."""
        self.cache.store(key, payload.compiled)
        return self._memoize(key, payload.summary())

    def memoize_summary(self, key: str, summary: dict) -> dict:
        """Adopt a summary computed elsewhere (a pool worker that
        already persisted the artifact) into the memo tier."""
        return self._memoize(key, summary)

    def load_compiled(self, key: str) -> CompiledLoop | None:
        return self.cache.load(key)

    def stats(self) -> dict:
        stats = self.cache.stats()
        stats["memo_hits"] = self.memo_hits
        stats["memo_entries"] = len(self._summaries)
        return stats
