"""Load generator for the compile server.

Replays a deterministically generated corpus (the PR 8
:class:`~repro.workloads.generator.CorpusSpec` plan) against a running
server — or one it spawns itself — at configurable concurrency::

    python -m repro.serve.loadgen --spawn --store /tmp/artifacts \\
        --size 200 --seed 1 --concurrency 16 --duplicates 3 \\
        --out bench --ledger .repro-ledger

Each planned loop crossed with each strategy is one unique request;
``--duplicates N`` sends every unique request N times back-to-back, so
duplicates are concurrently in flight and exercise the server's
in-flight dedup.  ``429`` responses are retried after the server's
``Retry-After`` — a saturated queue is backpressure, not failure.

The run writes ``BENCH_serve.json`` (throughput, latency percentiles,
batch-size histogram, dedup and cache hit rates) and appends a ledger
record whose deterministic content — per-loop II grid and summed
effort counters — is built *only* from the per-unique-key response
summaries.  A ``--direct`` run compiles the same unique requests
in-process through the same :func:`~repro.compiler.service.compile_one`
entry point and records the same shape, so
``python -m repro.dashboard compare <serve> <direct> --fail-on-exact``
proves the served answers bit-identical to direct compiles.  Unless
disabled, every response's content-addressed key is also checked
against a locally computed key for the same request.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import subprocess
import sys
import time

from repro.compiler.service import compile_one
from repro.compiler.strategies import Strategy
from repro.evaluation.bench_io import EFFORT_COUNTERS, write_bench_json
from repro.ledger.record import (
    RunRecord,
    current_git_sha,
    digest_of,
    new_run_id,
    utc_now_iso,
)
from repro.ledger.store import Ledger
from repro.machine.configs import MACHINE_FACTORIES
from repro.serve.protocol import parse_compile_request
from repro.workloads.generator import CorpusSpec, corpus_plan

#: Every deterministic effort counter a serve/direct record sums —
#: the bench set plus the probe-cache counter, matching sweep records.
ALL_EFFORT = tuple(EFFORT_COUNTERS) + ("kl_probe_cache_hits",)


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1,
        max(0, int(round(fraction * (len(sorted_values) - 1)))),
    )
    return sorted_values[rank]


class HttpClient:
    """Minimal keep-alive HTTP/1.1 JSON client over asyncio streams."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict[str, str], dict]:
        payload = (
            json.dumps(body).encode("utf-8") if body is not None else b""
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: keep-alive\r\n\r\n"
        )
        self._writer.write(head.encode("ascii") + payload)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.decode("latin-1").split()[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            text = line.decode("latin-1").strip()
            if not text:
                break
            name, sep, value = text.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        return status, headers, json.loads(raw) if raw else {}

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Replay a generated corpus against the compile server.",
    )
    parser.add_argument("--size", type=int, default=100, help="corpus size")
    parser.add_argument("--seed", type=int, default=0, help="corpus seed")
    parser.add_argument(
        "--archetypes",
        default="",
        help="comma-separated archetype subset (default: all)",
    )
    parser.add_argument(
        "--strategies",
        default="selective",
        help="comma-separated strategies; each loop is requested under each",
    )
    parser.add_argument(
        "--machine", default="paper", choices=sorted(MACHINE_FACTORIES)
    )
    parser.add_argument("--concurrency", type=int, default=16)
    parser.add_argument(
        "--duplicates",
        type=int,
        default=1,
        help="send every unique request N times (exercises dedup)",
    )
    target = parser.add_mutually_exclusive_group()
    target.add_argument(
        "--url", default=None, metavar="HOST:PORT", help="a running server"
    )
    target.add_argument(
        "--spawn",
        action="store_true",
        help="spawn a server subprocess for the run (needs --store)",
    )
    target.add_argument(
        "--direct",
        action="store_true",
        help="no server: compile the unique requests in-process and "
        "record the reference ledger entry for dashboard compare",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="artifact store for --spawn",
    )
    parser.add_argument("--server-jobs", type=int, default=1)
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument("--batch-max", type=int, default=16)
    parser.add_argument("--batch-linger-ms", type=float, default=2.0)
    parser.add_argument(
        "--max-bytes", type=int, default=None, help="store LRU budget"
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write BENCH_serve.json here",
    )
    parser.add_argument("--ledger", default=None, metavar="DIR")
    parser.add_argument("--run-label", default="serve")
    parser.add_argument(
        "--expect-no-compiles",
        action="store_true",
        help="fail unless every response was served warm (cache/dedup) — "
        "the warm-rerun CI gate",
    )
    parser.add_argument(
        "--no-verify-keys",
        action="store_true",
        help="skip checking response keys against locally computed ones",
    )
    return parser


def build_requests(
    args: argparse.Namespace,
) -> tuple[CorpusSpec, list[str], list[dict]]:
    spec = CorpusSpec(
        size=args.size,
        seed=args.seed,
        archetypes=tuple(
            a for a in args.archetypes.split(",") if a.strip()
        ),
    )
    strategies = sorted(
        label for label in args.strategies.split(",") if label.strip()
    )
    for label in strategies:
        Strategy(label)  # raises on unknown names before any traffic
    unique = [
        {
            "loop": {
                "generator": {
                    "archetype": item.archetype,
                    "seed": item.loop_seed,
                    "name": item.name,
                }
            },
            "machine": args.machine,
            "strategy": label,
        }
        for item in corpus_plan(spec)
        for label in strategies
    ]
    return spec, strategies, unique


def build_record(
    spec: CorpusSpec,
    strategies: list[str],
    machine: str,
    summaries: dict[str, dict],
    *,
    wall_s: float,
    label: str,
    jobs: int,
    cache_info: dict,
) -> RunRecord:
    """The ledger record of one serve (or direct) run.

    Deterministic content — the per-loop II grid and summed effort —
    comes only from per-unique-key summaries, so a served run and a
    direct run over the same corpus produce records with zero exact
    deltas under ``dashboard compare --fail-on-exact``.
    """
    loops_grid: dict[str, dict[str, dict[str, float]]] = {}
    effort = {counter: 0 for counter in ALL_EFFORT}
    for summary in summaries.values():
        row = loops_grid.setdefault(summary["loop"], {})
        row[summary["strategy"]] = {
            "ii": summary["ii"],
            "res_mii": summary["res_mii"],
            "rec_mii": summary["rec_mii"],
        }
        for counter in ALL_EFFORT:
            effort[counter] += int(summary["effort"].get(counter, 0))
    config = {
        "experiments": ["serve"],
        "serve": {
            "corpus": spec.to_dict(),
            "strategies": strategies,
            "machine": machine,
        },
    }
    return RunRecord(
        run_id=new_run_id(),
        created_at=utc_now_iso(),
        label=label,
        git_sha=current_git_sha(),
        config=config,
        config_digest=digest_of(config),
        corpus_digest=digest_of({"serve": sorted(loops_grid)}),
        experiments={
            "serve": {
                "loops": spec.size,
                "strategies": strategies,
                "machine": machine,
                "corpus": spec.to_dict(),
            }
        },
        loops={"serve": loops_grid},
        effort=effort,
        jobs=jobs,
        cache=cache_info,
        wall_s=round(wall_s, 3),
    )


def spawn_server(args: argparse.Namespace) -> tuple[subprocess.Popen, str, int]:
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [src_root, env.get("PYTHONPATH", "")] if p
    )
    cmd = [
        sys.executable,
        "-m",
        "repro.serve",
        "--store",
        args.store,
        "--host",
        "127.0.0.1",
        "--port",
        "0",
        "--queue-limit",
        str(args.queue_limit),
        "--batch-max",
        str(args.batch_max),
        "--batch-linger-ms",
        str(args.batch_linger_ms),
        "--jobs",
        str(args.server_jobs),
    ]
    if args.max_bytes is not None:
        cmd.extend(["--max-bytes", str(args.max_bytes)])
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, env=env, text=True
    )
    line = proc.stdout.readline()
    try:
        announce = json.loads(line)["serving"]
    except (json.JSONDecodeError, KeyError, TypeError):
        proc.kill()
        raise RuntimeError(
            f"server did not announce itself (got {line!r})"
        ) from None
    return proc, announce["host"], int(announce["port"])


async def _run_load(
    host: str,
    port: int,
    unique: list[dict],
    expected_keys: list[str] | None,
    *,
    concurrency: int,
    duplicates: int,
) -> dict:
    """Drive the request stream; returns raw observations."""
    work: asyncio.Queue = asyncio.Queue()
    for uidx, body in enumerate(unique):
        for _ in range(duplicates):
            work.put_nowait((uidx, body))
    latencies_ms: list[float] = []
    served: dict[str, int] = {}
    summaries: dict[str, dict] = {}
    failures: list[dict] = []
    key_mismatches = 0
    retried_429 = 0

    async def worker() -> None:
        nonlocal key_mismatches, retried_429
        client = HttpClient(host, port)
        await client.connect()
        try:
            while True:
                try:
                    uidx, body = work.get_nowait()
                except asyncio.QueueEmpty:
                    return
                start = time.perf_counter()
                while True:
                    status, headers, response = await client.request(
                        "POST", "/compile", body
                    )
                    if status != 429:
                        break
                    retried_429 += 1
                    await asyncio.sleep(
                        min(0.25, float(headers.get("retry-after", 1)) / 20)
                    )
                latencies_ms.append((time.perf_counter() - start) * 1e3)
                if status != 200:
                    failures.append(
                        {"index": uidx, "status": status, "body": response}
                    )
                    continue
                tag = response.get("served", "?")
                served[tag] = served.get(tag, 0) + 1
                key = response.get("key", "")
                summaries.setdefault(key, response.get("result", {}))
                if (
                    expected_keys is not None
                    and key != expected_keys[uidx]
                ):
                    key_mismatches += 1
        finally:
            await client.close()

    start = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(concurrency)))
    wall_s = time.perf_counter() - start

    stats_client = HttpClient(host, port)
    await stats_client.connect()
    _, _, stats = await stats_client.request("GET", "/stats")
    await stats_client.close()

    return {
        "wall_s": wall_s,
        "latencies_ms": sorted(latencies_ms),
        "served": served,
        "summaries": summaries,
        "failures": failures,
        "key_mismatches": key_mismatches,
        "retried_429": retried_429,
        "server_stats": stats,
    }


def _finish_run(
    args: argparse.Namespace,
    spec: CorpusSpec,
    strategies: list[str],
    observed: dict,
    total_requests: int,
) -> int:
    latencies = observed["latencies_ms"]
    wall_s = observed["wall_s"]
    served = observed["served"]
    n_ok = sum(served.values())
    dedup = served.get("dedup", 0)
    cache = served.get("cache", 0)
    warm_rate = (dedup + cache) / n_ok if n_ok else 0.0
    record = build_record(
        spec,
        strategies,
        args.machine,
        observed["summaries"],
        wall_s=wall_s,
        label=args.run_label,
        jobs=args.concurrency,
        cache_info={
            "hits": cache,
            "misses": served.get("compiled", 0),
            "dedup_hits": dedup,
            "compile_cache": True,
        },
    )
    if args.ledger:
        Ledger(args.ledger).append(record)
        print(f"recorded run {record.run_id} in {args.ledger}")
    if args.out:
        payload = {
            "schema_version": 1,
            "experiment": "serve",
            "data": {
                "requests": total_requests,
                "unique_requests": total_requests // max(1, args.duplicates),
                "concurrency": args.concurrency,
                "duplicates": args.duplicates,
                "corpus": spec.to_dict(),
                "strategies": strategies,
                "machine": args.machine,
                "served": {k: served[k] for k in sorted(served)},
                "failures": len(observed["failures"]),
                "retried_429": observed["retried_429"],
                "dedup_rate": round(dedup / n_ok, 4) if n_ok else 0.0,
                "cache_hit_rate": round(cache / n_ok, 4) if n_ok else 0.0,
                "batches": observed["server_stats"].get("batches", {}),
                "effort": record.effort,
                "rate": {
                    "rate_per_s": (
                        round(n_ok / wall_s, 3) if wall_s > 0 else 0.0
                    )
                },
                "latency": {
                    "p50": {"wall_ms": _percentile(latencies, 0.50)},
                    "p90": {"wall_ms": _percentile(latencies, 0.90)},
                    "p99": {"wall_ms": _percentile(latencies, 0.99)},
                    "max": {
                        "wall_ms": latencies[-1] if latencies else 0.0
                    },
                },
            },
            "wall_s": round(wall_s, 3),
        }
        path = write_bench_json("serve", payload, args.out)
        print(f"wrote {path}")

    print(
        f"serve: {n_ok}/{total_requests} ok in {wall_s:.2f}s "
        f"({n_ok / wall_s if wall_s > 0 else 0.0:.1f} req/s), "
        f"p50 {_percentile(latencies, 0.5):.1f}ms "
        f"p99 {_percentile(latencies, 0.99):.1f}ms; "
        f"served compiled={served.get('compiled', 0)} "
        f"cache={cache} dedup={dedup} "
        f"(warm rate {warm_rate:.1%}), "
        f"{observed['retried_429']} request(s) retried after 429"
    )
    rc = 0
    if observed["failures"]:
        print(
            f"FAIL: {len(observed['failures'])} failed request(s); first: "
            f"{observed['failures'][0]}",
            file=sys.stderr,
        )
        rc = 1
    if observed["key_mismatches"]:
        print(
            f"FAIL: {observed['key_mismatches']} response key(s) did not "
            "match locally computed cache keys",
            file=sys.stderr,
        )
        rc = 1
    if args.expect_no_compiles and served.get("compiled", 0):
        print(
            f"FAIL: expected a fully warm run but {served['compiled']} "
            "request(s) were compiled",
            file=sys.stderr,
        )
        rc = 1
    return rc


def run_direct(
    args: argparse.Namespace,
    spec: CorpusSpec,
    strategies: list[str],
    unique: list[dict],
) -> int:
    """Reference mode: same unique requests, compiled in-process."""
    summaries: dict[str, dict] = {}
    latencies: list[float] = []
    start = time.perf_counter()
    for body in unique:
        request = parse_compile_request(body)
        key = request.cache_key()
        if key in summaries:
            continue
        loop_start = time.perf_counter()
        payload = compile_one(request)
        latencies.append((time.perf_counter() - loop_start) * 1e3)
        summaries[key] = payload.summary()
    wall_s = time.perf_counter() - start
    record = build_record(
        spec,
        strategies,
        args.machine,
        summaries,
        wall_s=wall_s,
        label=args.run_label,
        jobs=1,
        cache_info={"hits": 0, "misses": len(summaries), "compile_cache": False},
    )
    if args.ledger:
        Ledger(args.ledger).append(record)
        print(f"recorded run {record.run_id} in {args.ledger}")
    latencies.sort()
    print(
        f"direct: {len(summaries)} unique compile(s) in {wall_s:.2f}s, "
        f"p50 {_percentile(latencies, 0.5):.1f}ms "
        f"p99 {_percentile(latencies, 0.99):.1f}ms"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.concurrency < 1 or args.duplicates < 1:
        print("concurrency and duplicates must be >= 1", file=sys.stderr)
        return 2
    spec, strategies, unique = build_requests(args)
    if args.direct:
        return run_direct(args, spec, strategies, unique)

    if args.spawn:
        if not args.store:
            print("--spawn needs --store DIR", file=sys.stderr)
            return 2
        proc, host, port = spawn_server(args)
    elif args.url:
        host, _, port_text = args.url.rpartition(":")
        host = host or "127.0.0.1"
        port = int(port_text)
        proc = None
    else:
        print("pick a target: --url, --spawn, or --direct", file=sys.stderr)
        return 2

    expected_keys = None
    if not args.no_verify_keys:
        expected_keys = [
            parse_compile_request(body).cache_key() for body in unique
        ]

    try:
        observed = asyncio.run(
            _run_load(
                host,
                port,
                unique,
                expected_keys,
                concurrency=args.concurrency,
                duplicates=args.duplicates,
            )
        )
    finally:
        if proc is not None:
            try:
                asyncio.run(_shutdown(host, port))
            except (ConnectionError, OSError):
                pass
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()

    return _finish_run(
        args, spec, strategies, observed, len(unique) * args.duplicates
    )


async def _shutdown(host: str, port: int) -> None:
    client = HttpClient(host, port)
    await client.connect()
    await client.request("POST", "/shutdown")
    await client.close()


if __name__ == "__main__":
    sys.exit(main())
