"""Compilation as a service.

The serve package turns the compile pipeline into a long-running,
shared resource: an asyncio HTTP/JSON front door (:mod:`.server`)
accepts compile requests, deduplicates identical in-flight work by the
content-addressed cache key, coalesces requests into batches for a
worker pool, pushes back with 429s when its bounded queue saturates,
and answers warm traffic straight from a sharded on-disk artifact
store (:mod:`.store`).  :mod:`.protocol` defines the wire shapes and
:mod:`.loadgen` replays a generated corpus against a server to measure
serving throughput and latency.

Everything is standard library only — the server is plain
``asyncio`` streams speaking a deliberately small subset of HTTP/1.1.
"""

from repro.serve.protocol import ProtocolError, parse_compile_request
from repro.serve.server import CompileServer, ServerConfig
from repro.serve.store import ArtifactStore

__all__ = [
    "ArtifactStore",
    "CompileServer",
    "ProtocolError",
    "ServerConfig",
    "parse_compile_request",
]
