"""Run the compile server.

::

    python -m repro.serve --store /tmp/artifacts --port 8787
    python -m repro.serve --store /tmp/artifacts --port 0 --jobs 2

With ``--port 0`` the kernel picks a free port; the server announces
itself with one JSON line on stdout::

    {"serving": {"host": "127.0.0.1", "port": 43211, "pid": 1234}}

which is what ``python -m repro.serve.loadgen --spawn`` parses to find
its target.  The process runs until ``POST /shutdown`` (graceful
drain) or SIGINT/SIGTERM, which also drain before exiting.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys

from repro.serve.server import CompileServer, ServerConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve compile requests over HTTP/JSON.",
    )
    parser.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help="artifact store directory (shared, content-addressed)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8787, help="0 picks a free port"
    )
    parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="LRU-evict the artifact store above N bytes",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="bounded dispatch queue; beyond it requests get 429",
    )
    parser.add_argument(
        "--batch-max", type=int, default=16, help="largest coalesced batch"
    )
    parser.add_argument(
        "--batch-linger-ms",
        type=float,
        default=2.0,
        help="how long a batch waits for company before dispatch",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (0 compiles in-process on a thread)",
    )
    return parser


async def _serve(args: argparse.Namespace) -> int:
    config = ServerConfig(
        store_dir=args.store,
        host=args.host,
        port=args.port,
        max_bytes=args.max_bytes,
        queue_limit=args.queue_limit,
        batch_max=args.batch_max,
        batch_linger_ms=args.batch_linger_ms,
        jobs=args.jobs,
    )
    server = CompileServer(config)
    await server.start()
    print(
        json.dumps(
            {
                "serving": {
                    "host": config.host,
                    "port": server.port,
                    "pid": os.getpid(),
                }
            }
        ),
        flush=True,
    )
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(
            sig, lambda: loop.create_task(server.drain_and_stop())
        )
    await server.wait_stopped()
    stats = server.stats
    print(
        f"served {stats.requests} request(s): {stats.compiles} compile(s), "
        f"{stats.cache_hits} cache hit(s), {stats.dedup_hits} dedup hit(s), "
        f"{stats.rejected} rejected",
        file=sys.stderr,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return asyncio.run(_serve(args))


if __name__ == "__main__":
    sys.exit(main())
