"""Flat memory image for functional loop execution."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ir.loop import ArrayInfo, Loop
from repro.ir.types import ScalarType


@dataclass
class MemoryImage:
    """Named flat arrays of Python scalars."""

    arrays: dict[str, list] = field(default_factory=dict)
    shapes: dict[str, tuple[int, ...]] = field(default_factory=dict)
    dtypes: dict[str, ScalarType] = field(default_factory=dict)

    def declare(self, info: ArrayInfo) -> None:
        if info.name in self.arrays:
            return
        fill = 0 if info.dtype.is_integer else 0.0
        self.arrays[info.name] = [fill] * info.size
        self.shapes[info.name] = info.dim_sizes
        self.dtypes[info.name] = info.dtype

    def declare_all(self, loop: Loop) -> None:
        for info in loop.arrays.values():
            self.declare(info)

    def load(self, array: str, flat_index: int):
        data = self.arrays[array]
        if not 0 <= flat_index < len(data):
            raise IndexError(
                f"load from {array}[{flat_index}] out of bounds (size {len(data)})"
            )
        return data[flat_index]

    def store(self, array: str, flat_index: int, value) -> None:
        data = self.arrays[array]
        if not 0 <= flat_index < len(data):
            raise IndexError(
                f"store to {array}[{flat_index}] out of bounds (size {len(data)})"
            )
        data[flat_index] = value

    def copy(self) -> MemoryImage:
        return MemoryImage(
            arrays={k: list(v) for k, v in self.arrays.items()},
            shapes=dict(self.shapes),
            dtypes=dict(self.dtypes),
        )

    def randomize(self, seed: int, low: float = -4.0, high: float = 4.0) -> None:
        """Deterministic random contents (integers get small magnitudes,
        floats short decimal values so reductions stay exactly comparable)."""
        rng = random.Random(seed)
        for name, data in self.arrays.items():
            dtype = self.dtypes[name]
            if dtype.is_integer:
                self.arrays[name] = [rng.randrange(-8, 9) for _ in data]
            else:
                self.arrays[name] = [
                    round(rng.uniform(low, high), 3) for _ in data
                ]

    SCRATCH_PREFIXES = ("xfer.", "exp.", "spill.")

    def snapshot_user_arrays(self) -> dict[str, list]:
        """Array contents excluding compiler-introduced buffers (transfer
        scratch and scalar-expansion temporaries)."""
        return {
            name: list(data)
            for name, data in self.arrays.items()
            if not name.startswith(self.SCRATCH_PREFIXES)
        }


def memory_for_loop(loop: Loop, seed: int | None = None) -> MemoryImage:
    memory = MemoryImage()
    memory.declare_all(loop)
    if seed is not None:
        memory.randomize(seed)
    return memory
