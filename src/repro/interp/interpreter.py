"""Functional interpreter for loop IR.

Executes a loop (original, unrolled, or vectorized) against a
:class:`~repro.interp.memory.MemoryImage`, iteration by iteration, in
normalized index space: each body execution is one value of the loop
index ``j`` and covers ``loop.increment`` original iterations.

The interpreter exists to *verify semantics*: every compilation strategy
must leave memory and loop-carried scalars in exactly the state the
untransformed loop produces.  Scheduling never changes program meaning,
so interpretation happens at the IR level, before scheduling.

Semantics notes:

* Vector values are tuples of ``VL`` scalars; scalar operands of vector
  operations broadcast.
* ``MERGE`` passes its first source through.  Functionally, the aligned
  load feeding a merge already fetched the exact (misaligned) elements —
  the merge models the realignment *cost*, which is the schedule's
  concern, not the interpreter's.
* Overhead operations (``BUMP``/``IVINC``/``CBR``) define zero and touch
  nothing.
* Carried scalars update *after* the body, all at once, from their exit
  operands — matching the "value entering the next iteration" semantics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.interp.memory import MemoryImage
from repro.ir.loop import Loop
from repro.ir.operations import Operation, OpKind
from repro.ir.types import ScalarType, VectorType
from repro.ir.values import Constant, Operand, VirtualRegister


class InterpreterError(Exception):
    """Functional execution failed (bad operand, out-of-bounds access)."""


@dataclass
class LoopRunResult:
    """Final state after running a loop segment."""

    env: dict[VirtualRegister, object]
    carried: dict[str, object] = field(default_factory=dict)
    iterations: int = 0

    def value_of(self, reg: VirtualRegister, lane: int | None = None):
        value = self.env[reg]
        if lane is not None:
            return value[lane]
        return value


def _binary(kind: OpKind, dtype: ScalarType, a, b):
    if kind is OpKind.ADD:
        return a + b
    if kind is OpKind.SUB:
        return a - b
    if kind is OpKind.MUL:
        return a * b
    if kind is OpKind.DIV:
        if b == 0:
            raise InterpreterError("division by zero")
        if dtype.is_integer:
            q = abs(a) // abs(b)
            return q if (a >= 0) == (b >= 0) else -q
        return a / b
    if kind is OpKind.MIN:
        return min(a, b)
    if kind is OpKind.MAX:
        return max(a, b)
    raise InterpreterError(f"unknown binary kind {kind}")


def _unary(kind: OpKind, dtype: ScalarType, a):
    if kind is OpKind.NEG:
        return -a
    if kind is OpKind.ABS:
        return abs(a)
    if kind is OpKind.SQRT:
        if a < 0:
            raise InterpreterError("square root of negative value")
        if dtype.is_integer:
            return math.isqrt(a)
        return math.sqrt(a)
    if kind is OpKind.COPY:
        return a
    if kind is OpKind.CVT:
        return int(a) if dtype.is_integer else float(a)
    raise InterpreterError(f"unknown unary kind {kind}")


class Interpreter:
    """Executes one loop over a memory image."""

    def __init__(
        self,
        loop: Loop,
        memory: MemoryImage,
        symbols: dict[str, int] | None = None,
        carried_init: dict[str, object] | None = None,
    ):
        self.loop = loop
        self.memory = memory
        self.symbols = {**loop.symbols, **(symbols or {})}
        self.env: dict[VirtualRegister, object] = {}
        memory.declare_all(loop)
        for c in loop.carried:
            if carried_init and c.entry.name in carried_init:
                self.env[c.entry] = carried_init[c.entry.name]
            else:
                self.env[c.entry] = self._broadcast_init(c.entry, c.init)

    def _broadcast_init(self, entry: VirtualRegister, init):
        if isinstance(entry.type, VectorType):
            return tuple([init] * entry.type.length)
        return init

    # ------------------------------------------------------------------

    def _operand(self, operand: Operand):
        if isinstance(operand, Constant):
            return operand.value
        try:
            return self.env[operand]
        except KeyError as exc:
            raise InterpreterError(f"register {operand} undefined") from exc

    def _flat_index(self, op: Operation, j: int) -> int:
        assert op.subscript is not None and op.array is not None
        shape = self.memory.shapes[op.array]
        return op.subscript.evaluate(j, shape, self.symbols)

    def _vector_width(self, op: Operation) -> int:
        if op.dest is not None and isinstance(op.dest.type, VectorType):
            return op.dest.type.length
        for src in op.srcs:
            if isinstance(src.type, VectorType):
                return src.type.length
        return self.loop.increment

    def _as_lanes(self, value, width: int):
        if isinstance(value, tuple):
            if len(value) != width:
                raise InterpreterError("vector width mismatch")
            return value
        return tuple([value] * width)

    def execute(self, op: Operation, j: int) -> None:
        kind = op.kind
        if kind.is_overhead:
            if op.dest is not None:
                self.env[op.dest] = 0
            return

        if kind is OpKind.LOAD:
            base = self._flat_index(op, j)
            assert op.dest is not None
            if op.is_vector:
                width = self._vector_width(op)
                self.env[op.dest] = tuple(
                    self.memory.load(op.array, base + l) for l in range(width)
                )
            else:
                self.env[op.dest] = self.memory.load(op.array, base)
            return

        if kind is OpKind.STORE:
            base = self._flat_index(op, j)
            value = self._operand(op.stored_value)
            if op.is_vector:
                width = len(value) if isinstance(value, tuple) else self.loop.increment
                lanes = self._as_lanes(value, width)
                for l, v in enumerate(lanes):
                    self.memory.store(op.array, base + l, v)
            else:
                if isinstance(value, tuple):
                    raise InterpreterError(f"scalar store of vector value: {op}")
                self.memory.store(op.array, base, value)
            return

        if kind is OpKind.MERGE:
            assert op.dest is not None
            self.env[op.dest] = self._operand(op.srcs[0])
            return

        if kind is OpKind.PACK:
            assert op.dest is not None
            self.env[op.dest] = tuple(self._operand(s) for s in op.srcs)
            return

        if kind is OpKind.EXTRACT:
            assert op.dest is not None and op.lane is not None
            value = self._operand(op.srcs[0])
            if not isinstance(value, tuple):
                raise InterpreterError(f"extract from non-vector value: {op}")
            self.env[op.dest] = value[op.lane]
            return

        # Arithmetic.
        assert op.dest is not None
        values = [self._operand(s) for s in op.srcs]
        if op.is_vector:
            width = self._vector_width(op)
            lanes = [self._as_lanes(v, width) for v in values]
            if len(values) == 2:
                result = tuple(
                    _binary(kind, op.dtype, lanes[0][l], lanes[1][l])
                    for l in range(width)
                )
            else:
                result = tuple(
                    _unary(kind, op.dtype, lanes[0][l]) for l in range(width)
                )
        else:
            for v in values:
                if isinstance(v, tuple):
                    raise InterpreterError(f"scalar op with vector operand: {op}")
            if len(values) == 2:
                result = _binary(kind, op.dtype, values[0], values[1])
            else:
                result = _unary(kind, op.dtype, values[0])
        self.env[op.dest] = result

    # ------------------------------------------------------------------

    def run(self, start_j: int, iterations: int) -> LoopRunResult:
        for op in self.loop.preheader:
            self.execute(op, start_j)
        for j in range(start_j, start_j + iterations):
            for op in self.loop.body:
                self.execute(op, j)
            updates = {
                c.entry: self._operand(c.exit) for c in self.loop.carried
            }
            self.env.update(updates)
        carried = {c.entry.name: self.env[c.entry] for c in self.loop.carried}
        return LoopRunResult(env=dict(self.env), carried=carried, iterations=iterations)


def run_loop(
    loop: Loop,
    memory: MemoryImage,
    start_j: int,
    iterations: int,
    symbols: dict[str, int] | None = None,
    carried_init: dict[str, object] | None = None,
) -> LoopRunResult:
    """Execute ``iterations`` body executions starting at index ``start_j``."""
    return Interpreter(loop, memory, symbols, carried_init).run(start_j, iterations)
