"""Functional IR interpreter used to verify that every compilation
strategy preserves the original loop's semantics."""

from repro.interp.interpreter import (
    Interpreter,
    InterpreterError,
    LoopRunResult,
    run_loop,
)
from repro.interp.memory import MemoryImage, memory_for_loop

__all__ = [
    "Interpreter",
    "InterpreterError",
    "LoopRunResult",
    "MemoryImage",
    "memory_for_loop",
    "run_loop",
]
