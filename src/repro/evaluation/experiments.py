"""Experiment runners for the paper's evaluation.

``Evaluator`` compiles every loop of the synthetic SPEC corpus under each
strategy (memoized) and aggregates:

* **Table 2** — whole-benchmark speedup over modulo scheduling for
  traditional, full, and selective vectorization;
* **Table 3** — per-loop ResMII / final II comparisons (resource-limited
  loops only), selective vs the best competing technique;
* **Table 4** — selective speedup with communication costs considered vs
  ignored during partitioning;
* **Table 5** — selective speedup with vector memory assumed misaligned
  vs aligned;
* **Figure 1** — the dot-product motivating example's IIs on the toy
  machine.

Benchmark time = sum over loops of per-invocation cycles times invocation
count, plus a serial component: ``serial_fraction`` of baseline total
time is spent outside the compiled loops and is identical under every
strategy.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.compiler.driver import CompiledLoop, compile_loop
from repro.compiler.service import CompileRequest, compile_one, effort_counters
from repro.compiler.strategies import Strategy
from repro.machine.configs import aligned_machine, figure1_machine, paper_machine
from repro.machine.machine import MachineDescription
from repro.observability.recorder import active_recorder, maybe_span
from repro.vectorize.partition import PartitionConfig
from repro.workloads.kernels import dot_product
from repro.workloads.spec import BENCHMARK_NAMES, Benchmark, build_benchmark

EPSILON = 1e-9


@dataclass(frozen=True)
class Variant:
    """A named compilation configuration."""

    label: str
    machine: MachineDescription
    strategy: Strategy
    partition_config: PartitionConfig | None = None


@dataclass
class LoopComparison:
    """Per-loop Table 3 entry."""

    name: str
    resource_limited: bool
    res_mii: dict[str, float]
    final_ii: dict[str, float]

    def _compare(self, values: dict[str, float], selective: str) -> str:
        sel = values[selective]
        best_other = min(v for k, v in values.items() if k != selective)
        if sel < best_other - EPSILON:
            return "better"
        if sel > best_other + EPSILON:
            return "worse"
        return "equal"

    def res_mii_outcome(self, selective: str = "selective") -> str:
        return self._compare(self.res_mii, selective)

    def final_ii_outcome(self, selective: str = "selective") -> str:
        return self._compare(self.final_ii, selective)


@dataclass
class CompileTelemetry:
    """Aggregate compile-time effort for one (benchmark, variant) batch.

    The ``kl_*`` and ``sched_attempts`` counters are *deterministic
    effort* metrics: they ride on the compiled objects themselves, so
    they are identical whether a loop was compiled in-process, in a
    worker, or served from the on-disk compile cache.  ``wall_ms`` and
    the ``cache_hits``/``cache_misses`` split describe how this
    particular run obtained the results."""

    loops: int = 0
    wall_ms: float = 0.0
    kl_iterations: int = 0
    kl_probes: int = 0
    kl_probe_cache_hits: int = 0
    kl_bin_packs: int = 0
    kl_repacks: int = 0
    kl_pack_steps: int = 0
    sched_attempts: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    # Translation-validation overhead (populated when checks run, either
    # in-process via REPRO_CHECK or post-hoc via --check).
    check_ms: float = 0.0
    check_findings: int = 0

    def absorb(self, compiled: CompiledLoop) -> None:
        """Fold one compiled loop's effort counters into the batch."""
        self.loops += 1
        self.check_ms += getattr(compiled, "check_ms", 0.0)
        self.check_findings += getattr(compiled, "check_findings", 0)
        if compiled.partition is not None:
            self.kl_iterations += compiled.partition.iterations
            self.kl_probes += compiled.partition.n_probes
            self.kl_probe_cache_hits += compiled.partition.n_probe_cache_hits
            self.kl_bin_packs += compiled.partition.n_bin_packs
            self.kl_repacks += compiled.partition.n_repacks
            self.kl_pack_steps += compiled.partition.n_pack_steps
        self.sched_attempts += sum(u.schedule.attempts for u in compiled.units)


@dataclass
class BenchmarkEvaluation:
    benchmark: Benchmark
    loop_cycles: dict[str, list[int]]  # label -> per-loop weighted cycles
    compiled: dict[str, list[CompiledLoop]]
    serial_cycles: int

    def total_cycles(self, label: str) -> int:
        return sum(self.loop_cycles[label]) + self.serial_cycles

    def speedup(self, label: str, baseline: str = "baseline") -> float:
        return self.total_cycles(baseline) / self.total_cycles(label)


def _compile_job(request: CompileRequest) -> CompiledLoop:
    """Top-level worker for the process pool: compile one request
    through the shared pure entry point."""
    return compile_one(request).compiled


def _timed_compile_job(request: CompileRequest) -> tuple[CompiledLoop, float]:
    """Pool worker measuring its own compile wall time, so per-loop
    timings (progress stragglers, telemetry) survive the fan-out."""
    start = time.perf_counter()
    compiled = _compile_job(request)
    return compiled, (time.perf_counter() - start) * 1e3


def _loop_effort(compiled: CompiledLoop) -> dict[str, int]:
    """The progress monitor's per-strategy effort subset."""
    effort = effort_counters(compiled)
    return {
        key: effort[key]
        for key in ("sched_attempts", "kl_pack_steps", "kl_probes")
        if key in effort
    }


class Evaluator:
    """Compiles and caches the corpus under the standard variants.

    ``jobs`` fans independent (benchmark, variant, loop) compilations out
    to a process pool (default: serial; ``REPRO_JOBS`` overrides).
    ``compile_cache`` — a directory path or
    :class:`~repro.evaluation.compile_cache.CompileCache` — persists
    compiled loops across runs keyed by loop IR, machine, strategy, and
    compiler version (``REPRO_COMPILE_CACHE`` overrides).  Neither
    changes any result: the corpus is deterministic, workers return the
    same objects in-process compilation produces, and cached entries are
    content-addressed.
    """

    def __init__(
        self,
        machine: MachineDescription | None = None,
        jobs: int | None = None,
        compile_cache=None,
        progress=None,
    ):
        self.machine = machine or paper_machine()
        if jobs is None:
            jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
        self.jobs = max(1, jobs)
        if compile_cache is None:
            compile_cache = os.environ.get("REPRO_COMPILE_CACHE") or None
        if isinstance(compile_cache, str):
            from repro.evaluation.compile_cache import CompileCache

            compile_cache = CompileCache(compile_cache)
        self.compile_cache = compile_cache
        #: Optional :class:`repro.profiling.ProgressMonitor`; ticked once
        #: per loop (cache hits included) as compilations complete.
        self.progress = progress
        self._benchmarks: dict[str, Benchmark] = {}
        self._compiled: dict[tuple[str, str], list[CompiledLoop]] = {}
        self.telemetry: dict[tuple[str, str], CompileTelemetry] = {}
        self._pool = None

    # ------------------------------------------------------------------

    def _executor(self):
        """The shared worker pool, created on first parallel fan-out and
        reused by every subsequent batch (forking a fresh pool per batch
        costs a worker warm-up each time ``prewarm`` or a table runner
        triggers compilation)."""
        if self._pool is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context("fork"),
            )
        return self._pool

    def close(self) -> None:
        """Shut down the shared worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "Evaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------

    def standard_variants(self) -> list[Variant]:
        return [
            Variant("baseline", self.machine, Strategy.BASELINE),
            Variant("traditional", self.machine, Strategy.TRADITIONAL),
            Variant("full", self.machine, Strategy.FULL),
            Variant("selective", self.machine, Strategy.SELECTIVE),
        ]

    def benchmark(self, name: str) -> Benchmark:
        if name not in self._benchmarks:
            self._benchmarks[name] = build_benchmark(name)
        return self._benchmarks[name]

    def compiled_loops(self, name: str, variant: Variant) -> list[CompiledLoop]:
        key = (name, variant.label)
        if key not in self._compiled:
            self._compile_batches([(name, variant)])
        return self._compiled[key]

    def prewarm(
        self,
        names: tuple[str, ...] = BENCHMARK_NAMES,
        variants: list[Variant] | None = None,
    ) -> None:
        """Compile every (benchmark, variant) pair up front, in one
        fan-out.  With ``jobs > 1`` this is where cross-benchmark
        parallelism comes from: the tables then read memoized results."""
        variants = (
            list(variants) if variants is not None else self.standard_variants()
        )
        pending = [
            (name, variant)
            for name in names
            for variant in variants
            if (name, variant.label) not in self._compiled
        ]
        if pending:
            self._compile_batches(pending)

    def _compile_batches(
        self, batches: list[tuple[str, Variant]]
    ) -> None:
        """Compile every loop of every (benchmark, variant) batch,
        consulting the compile cache first and fanning misses out to the
        process pool when ``jobs > 1``."""
        rec = active_recorder()
        progress = self.progress
        slots: dict[tuple[str, str], list[CompiledLoop | None]] = {}
        misses: list[tuple[tuple[str, str], int, tuple, str | None]] = []
        cache = self.compile_cache
        if progress is not None:
            progress.add_total(
                sum(len(self.benchmark(name).loops) for name, _ in batches)
            )
        for name, variant in batches:
            key = (name, variant.label)
            bench = self.benchmark(name)
            self.telemetry[key] = telemetry = CompileTelemetry()
            slot: list[CompiledLoop | None] = [None] * len(bench.loops)
            slots[key] = slot
            for i, wl in enumerate(bench.loops):
                request = CompileRequest(
                    loop=wl.loop,
                    machine=variant.machine,
                    strategy=variant.strategy,
                    partition_config=variant.partition_config,
                )
                entry_key: str | None = None
                if cache is not None:
                    entry_key = request.cache_key()
                    cached = cache.load(entry_key)
                    if cached is not None:
                        slot[i] = cached
                        telemetry.cache_hits += 1
                        if progress is not None:
                            progress.tick(
                                wl.loop.name,
                                variant.label,
                                cache_hit=True,
                                effort=_loop_effort(cached),
                            )
                        continue
                    telemetry.cache_misses += 1
                misses.append((key, i, request, entry_key))

        batch_wall: dict[tuple[str, str], float] = {}
        if self.jobs > 1 and len(misses) > 1:
            start = time.perf_counter()
            pool = self._executor()
            # pool.map streams results back in submission order, so
            # the progress monitor ticks as workers finish rather
            # than after the whole fan-out drains.
            for (key, i, request, entry_key), (compiled, loop_ms) in zip(
                misses,
                pool.map(
                    _timed_compile_job,
                    [request for _, _, request, _ in misses],
                ),
            ):
                slots[key][i] = compiled
                if cache is not None and entry_key is not None:
                    cache.store(entry_key, compiled)
                if progress is not None:
                    progress.tick(
                        request.loop.name,
                        key[1],
                        wall_ms=loop_ms,
                        effort=_loop_effort(compiled),
                    )
            elapsed_ms = (time.perf_counter() - start) * 1e3
            for (key, _, _, _) in misses:
                # Attribute the fan-out's wall time by miss share.
                batch_wall[key] = batch_wall.get(key, 0.0) + elapsed_ms / len(
                    misses
                )
        else:
            by_batch: dict[tuple[str, str], list] = {}
            for miss in misses:
                by_batch.setdefault(miss[0], []).append(miss)
            for (name, variant) in batches:
                key = (name, variant.label)
                todo = by_batch.get(key, [])
                if not todo:
                    continue
                with maybe_span(
                    rec,
                    "compile_benchmark",
                    benchmark=name,
                    variant=variant.label,
                ):
                    start = time.perf_counter()
                    for _, i, request, entry_key in todo:
                        loop_start = time.perf_counter()
                        compiled = _compile_job(request)
                        loop_ms = (time.perf_counter() - loop_start) * 1e3
                        slots[key][i] = compiled
                        if cache is not None and entry_key is not None:
                            cache.store(entry_key, compiled)
                        if progress is not None:
                            progress.tick(
                                request.loop.name,
                                variant.label,
                                wall_ms=loop_ms,
                                effort=_loop_effort(compiled),
                            )
                    batch_wall[key] = (time.perf_counter() - start) * 1e3

        for key, slot in slots.items():
            telemetry = self.telemetry[key]
            telemetry.wall_ms = batch_wall.get(key, 0.0)
            for compiled in slot:
                assert compiled is not None
                telemetry.absorb(compiled)
            self._compiled[key] = slot

    def run_checks(self, names: tuple[str, ...] | None = None) -> list:
        """Run translation validation over every compiled loop memoized
        so far (optionally restricted to ``names``), folding checker
        wall-time into the batch telemetry.  Returns the
        :class:`~repro.check.CheckReport` list."""
        from repro.compiler.driver import run_translation_checks

        reports = []
        for (name, label), loops in sorted(self._compiled.items()):
            if names is not None and name not in names:
                continue
            telemetry = self.telemetry.get((name, label))
            for compiled in loops:
                reports.append(run_translation_checks(compiled))
                if telemetry is not None:
                    telemetry.check_ms += compiled.check_ms
                    telemetry.check_findings += compiled.check_findings
        return reports

    def loop_metric_rows(
        self, names: tuple[str, ...] = BENCHMARK_NAMES
    ) -> dict[str, dict[str, dict[str, dict[str, float]]]]:
        """Per-loop II/ResMII/RecMII (per original iteration) for every
        (benchmark, variant) compiled so far:
        ``{benchmark: {loop: {variant: {ii, res_mii, rec_mii}}}}`` —
        the payload of the ``BENCH_*.json`` artifacts."""
        rows: dict[str, dict[str, dict[str, dict[str, float]]]] = {}
        for (name, label), loops in sorted(self._compiled.items()):
            if name not in names:
                continue
            bench = self.benchmark(name)
            for wl, compiled in zip(bench.loops, loops):
                rows.setdefault(name, {}).setdefault(wl.loop.name, {})[
                    label
                ] = {
                    "ii": compiled.ii_per_iteration(),
                    "res_mii": compiled.res_mii_per_iteration(),
                    "rec_mii": compiled.rec_mii_per_iteration(),
                }
        return rows

    def telemetry_rows(
        self, names: tuple[str, ...] = BENCHMARK_NAMES
    ) -> dict[str, dict[str, CompileTelemetry]]:
        """Per-benchmark, per-variant compile telemetry for everything
        compiled so far (ordered by benchmark name)."""
        rows: dict[str, dict[str, CompileTelemetry]] = {}
        for (name, label), telemetry in sorted(self.telemetry.items()):
            if name in names:
                rows.setdefault(name, {})[label] = telemetry
        return rows

    def evaluate(
        self, name: str, variants: list[Variant] | None = None
    ) -> BenchmarkEvaluation:
        bench = self.benchmark(name)
        variants = variants or self.standard_variants()
        self.prewarm((name,), variants)
        loop_cycles: dict[str, list[int]] = {}
        compiled: dict[str, list[CompiledLoop]] = {}
        for variant in variants:
            loops = self.compiled_loops(name, variant)
            compiled[variant.label] = loops
            loop_cycles[variant.label] = [
                c.invocation_cycles(wl.trip_count) * wl.invocations
                for c, wl in zip(loops, bench.loops)
            ]
        base_label = variants[0].label
        base_total = sum(loop_cycles[base_label])
        frac = bench.serial_fraction
        serial = int(round(base_total * frac / (1.0 - frac)))
        return BenchmarkEvaluation(bench, loop_cycles, compiled, serial)

    # ------------------------------------------------------------------
    # Tables

    def table2(
        self, names: tuple[str, ...] = BENCHMARK_NAMES
    ) -> dict[str, dict[str, float]]:
        """Speedup over modulo scheduling: traditional / full / selective."""
        self.prewarm(names)
        rows: dict[str, dict[str, float]] = {}
        for name in names:
            ev = self.evaluate(name)
            rows[name] = {
                label: ev.speedup(label)
                for label in ("traditional", "full", "selective")
            }
        return rows

    def table3(
        self, names: tuple[str, ...] = BENCHMARK_NAMES
    ) -> dict[str, dict[str, object]]:
        """Per-loop ResMII / final II outcomes for resource-limited loops."""
        rows: dict[str, dict[str, object]] = {}
        for name in names:
            ev = self.evaluate(name)
            comparisons = self.loop_comparisons(name, ev)
            limited = [c for c in comparisons if c.resource_limited]
            res_counts = {"better": 0, "equal": 0, "worse": 0}
            ii_counts = {"better": 0, "equal": 0, "worse": 0}
            for c in limited:
                res_counts[c.res_mii_outcome()] += 1
                ii_counts[c.final_ii_outcome()] += 1
            rows[name] = {
                "loops": len(limited),
                "res_mii": res_counts,
                "final_ii": ii_counts,
            }
        return rows

    def loop_comparisons(
        self, name: str, evaluation: BenchmarkEvaluation | None = None
    ) -> list[LoopComparison]:
        ev = evaluation or self.evaluate(name)
        bench = ev.benchmark
        labels = ("baseline", "traditional", "full", "selective")
        comparisons: list[LoopComparison] = []
        for i, wl in enumerate(bench.loops):
            res = {lab: ev.compiled[lab][i].res_mii_per_iteration() for lab in labels}
            fin = {lab: ev.compiled[lab][i].ii_per_iteration() for lab in labels}
            limited = (
                ev.compiled["baseline"][i].is_resource_limited
                and ev.compiled["selective"][i].is_resource_limited
            )
            comparisons.append(
                LoopComparison(wl.loop.name, limited, res, fin)
            )
        return comparisons

    def table4(
        self, names: tuple[str, ...] = BENCHMARK_NAMES
    ) -> dict[str, dict[str, float]]:
        """Selective speedup: communication considered vs ignored."""
        ignored = Variant(
            "selective_nocomm",
            self.machine,
            Strategy.SELECTIVE,
            PartitionConfig(account_communication=False),
        )
        self.prewarm(names, self.standard_variants() + [ignored])
        rows: dict[str, dict[str, float]] = {}
        for name in names:
            ev = self.evaluate(
                name, self.standard_variants() + [ignored]
            )
            rows[name] = {
                "considered": ev.speedup("selective"),
                "ignored": ev.speedup("selective_nocomm"),
            }
        return rows

    def table5(
        self, names: tuple[str, ...] = BENCHMARK_NAMES
    ) -> dict[str, dict[str, float]]:
        """Selective speedup: misaligned vs aligned vector memory."""
        am = aligned_machine(self.machine.vector_length)
        aligned_base = Variant("baseline_al", am, Strategy.BASELINE)
        aligned_sel = Variant("selective_al", am, Strategy.SELECTIVE)
        self.prewarm(
            names, self.standard_variants() + [aligned_base, aligned_sel]
        )
        rows: dict[str, dict[str, float]] = {}
        for name in names:
            ev = self.evaluate(name)
            ev_al = self.evaluate(name, [aligned_base, aligned_sel])
            rows[name] = {
                "misaligned": ev.speedup("selective"),
                "aligned": ev_al.speedup("selective_al", baseline="baseline_al"),
            }
        return rows


def figure1_iis() -> dict[str, float]:
    """The motivating example's initiation intervals per original
    iteration on the toy machine (paper Figure 1: 2.0 / 3.0 / 1.5 / 1.0)."""
    machine = figure1_machine()
    loop = dot_product()
    results: dict[str, float] = {}
    baseline = compile_loop(
        loop, machine, Strategy.BASELINE, baseline_unroll=1
    )
    results["modulo"] = baseline.ii_per_iteration()
    for label, strategy in (
        ("traditional", Strategy.TRADITIONAL),
        ("full", Strategy.FULL),
        ("selective", Strategy.SELECTIVE),
    ):
        results[label] = compile_loop(loop, machine, strategy).ii_per_iteration()
    return results


def figure1_check_reports() -> list:
    """Translation-validation reports for the Figure 1 example under
    every strategy on the toy machine."""
    from repro.compiler.driver import run_translation_checks

    machine = figure1_machine()
    loop = dot_product()
    reports = []
    for strategy in (
        Strategy.BASELINE,
        Strategy.TRADITIONAL,
        Strategy.FULL,
        Strategy.SELECTIVE,
    ):
        compiled = compile_loop(
            loop,
            machine,
            strategy,
            baseline_unroll=1 if strategy is Strategy.BASELINE else None,
        )
        reports.append(run_translation_checks(compiled))
    return reports
