"""Experiments reproducing the paper's tables and figures."""

from repro.evaluation.experiments import (
    BenchmarkEvaluation,
    Evaluator,
    LoopComparison,
    Variant,
    figure1_iis,
)
from repro.evaluation.tables import (
    PAPER_FIGURE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    format_figure1,
    format_table2,
    format_table3,
    format_table4,
    format_table5,
)

__all__ = [
    "BenchmarkEvaluation",
    "Evaluator",
    "LoopComparison",
    "PAPER_FIGURE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "Variant",
    "figure1_iis",
    "format_figure1",
    "format_table2",
    "format_table3",
    "format_table4",
    "format_table5",
]
