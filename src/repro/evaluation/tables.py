"""Paper-style table rendering.

Formats the experiment results in the layout of the paper's tables so
that runs of the benchmark harness can be compared to the published
numbers side by side.
"""

from __future__ import annotations

PAPER_TABLE2 = {
    "093.nasa7": {"traditional": 0.18, "full": 0.76, "selective": 1.04},
    "101.tomcatv": {"traditional": 0.71, "full": 0.99, "selective": 1.38},
    "103.su2cor": {"traditional": 0.63, "full": 0.94, "selective": 1.15},
    "104.hydro2d": {"traditional": 0.94, "full": 1.00, "selective": 1.03},
    "125.turb3d": {"traditional": 0.38, "full": 0.93, "selective": 0.95},
    "146.wave5": {"traditional": 0.76, "full": 0.96, "selective": 1.03},
    "171.swim": {"traditional": 1.01, "full": 1.00, "selective": 1.17},
    "172.mgrid": {"traditional": 0.53, "full": 0.99, "selective": 1.26},
    "301.apsi": {"traditional": 0.51, "full": 0.97, "selective": 1.02},
}

PAPER_TABLE3 = {
    "093.nasa7": {"loops": 30, "better": 9, "equal": 21, "worse": 0},
    "101.tomcatv": {"loops": 6, "better": 5, "equal": 1, "worse": 0},
    "103.su2cor": {"loops": 38, "better": 27, "equal": 11, "worse": 0},
    "104.hydro2d": {"loops": 67, "better": 23, "equal": 44, "worse": 0},
    "125.turb3d": {"loops": 12, "better": 4, "equal": 8, "worse": 0},
    "146.wave5": {"loops": 133, "better": 57, "equal": 76, "worse": 0},
    "171.swim": {"loops": 14, "better": 5, "equal": 9, "worse": 0},
    "172.mgrid": {"loops": 16, "better": 9, "equal": 7, "worse": 0},
    "301.apsi": {"loops": 61, "better": 18, "equal": 42, "worse": 1},
}

PAPER_TABLE4 = {
    "093.nasa7": {"considered": 1.04, "ignored": 0.78},
    "101.tomcatv": {"considered": 1.38, "ignored": 1.22},
    "103.su2cor": {"considered": 1.15, "ignored": 1.02},
    "104.hydro2d": {"considered": 1.03, "ignored": 0.98},
    "125.turb3d": {"considered": 0.95, "ignored": 0.81},
    "146.wave5": {"considered": 1.03, "ignored": 0.99},
    "171.swim": {"considered": 1.17, "ignored": 1.08},
    "172.mgrid": {"considered": 1.26, "ignored": 1.14},
    "301.apsi": {"considered": 1.02, "ignored": 0.97},
}

PAPER_TABLE5 = {
    "093.nasa7": {"misaligned": 1.04, "aligned": 1.07},
    "101.tomcatv": {"misaligned": 1.38, "aligned": 1.48},
    "103.su2cor": {"misaligned": 1.15, "aligned": 1.16},
    "104.hydro2d": {"misaligned": 1.03, "aligned": 1.05},
    "125.turb3d": {"misaligned": 0.95, "aligned": 0.95},
    "146.wave5": {"misaligned": 1.03, "aligned": 1.04},
    "171.swim": {"misaligned": 1.17, "aligned": 1.21},
    "172.mgrid": {"misaligned": 1.26, "aligned": 1.26},
    "301.apsi": {"misaligned": 1.02, "aligned": 1.02},
}

PAPER_FIGURE1 = {
    "modulo": 2.0,
    "traditional": 3.0,
    "full": 1.5,
    "selective": 1.0,
}


def _rule(widths: list[int]) -> str:
    return "-+-".join("-" * w for w in widths)


def render_table(
    headers: list[str],
    rows: list[list[str]],
    title: str | None = None,
) -> str:
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(_rule(widths))
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_table2(measured: dict[str, dict[str, float]]) -> str:
    rows = []
    for name, r in measured.items():
        p = PAPER_TABLE2[name]
        rows.append(
            [
                name,
                f"{r['traditional']:.2f} ({p['traditional']:.2f})",
                f"{r['full']:.2f} ({p['full']:.2f})",
                f"{r['selective']:.2f} ({p['selective']:.2f})",
            ]
        )
    mean = sum(r["selective"] for r in measured.values()) / len(measured)
    rows.append(["(mean selective)", "", "", f"{mean:.2f} (1.11)"])
    return render_table(
        ["Benchmark", "Traditional", "Full", "Selective"],
        rows,
        title="Table 2. Speedup over modulo scheduling — measured (paper)",
    )


def format_table3(measured: dict[str, dict[str, object]]) -> str:
    rows = []
    for name, r in measured.items():
        p = PAPER_TABLE3[name]
        res = r["res_mii"]
        fin = r["final_ii"]
        rows.append(
            [
                name,
                f"{r['loops']} ({p['loops']})",
                f"{res['better']}/{res['equal']}/{res['worse']}"
                f" ({p['better']}/{p['equal']}/{p['worse']})",
                f"{fin['better']}/{fin['equal']}/{fin['worse']}",
            ]
        )
    return render_table(
        ["Benchmark", "Loops", "ResMII b/e/w (paper)", "Final II b/e/w"],
        rows,
        title="Table 3. Loops where selective vectorization finds a better/"
        "equal/worse II (resource-limited loops)",
    )


def format_table4(measured: dict[str, dict[str, float]]) -> str:
    rows = []
    for name, r in measured.items():
        p = PAPER_TABLE4[name]
        rows.append(
            [
                name,
                f"{r['considered']:.2f} ({p['considered']:.2f})",
                f"{r['ignored']:.2f} ({p['ignored']:.2f})",
            ]
        )
    return render_table(
        ["Benchmark", "Considered", "Ignored"],
        rows,
        title="Table 4. Selective speedup with communication considered vs "
        "ignored — measured (paper)",
    )


def format_table5(measured: dict[str, dict[str, float]]) -> str:
    rows = []
    for name, r in measured.items():
        p = PAPER_TABLE5[name]
        rows.append(
            [
                name,
                f"{r['misaligned']:.2f} ({p['misaligned']:.2f})",
                f"{r['aligned']:.2f} ({p['aligned']:.2f})",
            ]
        )
    return render_table(
        ["Benchmark", "Misaligned", "Aligned"],
        rows,
        title="Table 5. Selective speedup with memory assumed misaligned vs "
        "aligned — measured (paper)",
    )


def format_figure1(measured: dict[str, float]) -> str:
    rows = [
        [label, f"{measured[label]:.2f}", f"{PAPER_FIGURE1[label]:.2f}"]
        for label in ("modulo", "traditional", "full", "selective")
    ]
    return render_table(
        ["Technique", "II/iteration", "Paper"],
        rows,
        title="Figure 1. Dot product on the three-issue example machine",
    )
