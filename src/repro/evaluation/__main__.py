"""Command-line entry point: regenerate the paper's tables.

Usage::

    python -m repro.evaluation              # everything (a few minutes)
    python -m repro.evaluation figure1
    python -m repro.evaluation table2 table3
    python -m repro.evaluation table2 --benchmarks 101.tomcatv 171.swim
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.evaluation.experiments import Evaluator, figure1_iis
from repro.evaluation.tables import (
    format_figure1,
    format_table2,
    format_table3,
    format_table4,
    format_table5,
)
from repro.observability import recording, render_stats_table, write_trace
from repro.workloads.spec import BENCHMARK_NAMES

EXPERIMENTS = ("figure1", "table2", "table3", "table4", "table5")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation",
        description="Regenerate the paper's evaluation tables.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=EXPERIMENTS + ((),) and EXPERIMENTS,
        default=list(EXPERIMENTS),
        help="which experiments to run (default: all)",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        default=list(BENCHMARK_NAMES),
        choices=list(BENCHMARK_NAMES),
        help="restrict to a subset of benchmarks",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print aggregate compile telemetry after the experiments",
    )
    parser.add_argument(
        "--trace-json",
        metavar="PATH",
        help="write a JSON trace covering every compilation performed",
    )
    args = parser.parse_args(argv)
    experiments = args.experiments or list(EXPERIMENTS)
    names = tuple(args.benchmarks)

    recorder = None
    session = (
        recording(trace=bool(args.trace_json) or args.stats)
        if (args.stats or args.trace_json)
        else None
    )
    if session is not None:
        recorder = session.__enter__()
    try:
        evaluator = Evaluator()
        for experiment in experiments:
            start = time.time()
            if experiment == "figure1":
                print(format_figure1(figure1_iis()))
            elif experiment == "table2":
                print(format_table2(evaluator.table2(names)))
            elif experiment == "table3":
                print(format_table3(evaluator.table3(names)))
            elif experiment == "table4":
                print(format_table4(evaluator.table4(names)))
            elif experiment == "table5":
                print(format_table5(evaluator.table5(names)))
            print(f"[{experiment}: {time.time() - start:.1f}s]\n")
    finally:
        if session is not None:
            session.__exit__(None, None, None)

    if recorder is not None:
        if args.stats:
            print(render_stats_table(recorder))
        if args.trace_json:
            write_trace(recorder, args.trace_json)
            print(f"wrote trace to {args.trace_json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
