"""Command-line entry point: regenerate the paper's tables.

Usage::

    python -m repro.evaluation              # everything (a few minutes)
    python -m repro.evaluation figure1
    python -m repro.evaluation table2 table3
    python -m repro.evaluation table2 --benchmarks 101.tomcatv 171.swim

Every run writes one machine-readable ``BENCH_<experiment>.json``
artifact per experiment (disable with ``--no-bench-json``; redirect with
``--bench-dir``).  ``--compare-baseline PATH`` diffs the run against a
checked-in baseline and exits nonzero on II or speedup regressions;
``--write-baseline PATH`` refreshes that baseline.  ``--explain LOOP``
prints the II provenance report for one workload loop instead of
running experiments.  ``--oracle-gap`` runs the exact-optimality
oracle harness (``BENCH_oracle_gap.json``) instead, exiting nonzero
if a *certified* loop shows a heuristic gap.

Compile-time fast paths (results are identical either way): ``--jobs N``
fans loop compilations out to a process pool, ``--compile-cache DIR``
persists compiled loops across runs, and every run writes a
``BENCH_compile_perf.json`` artifact recording wall clock, cache
hits/misses, and the deterministic effort counters that
``--gate-effort PATH`` checks against a baseline (see
``docs/performance.md``).

Observability: ``--ledger[=DIR]`` (or the ``REPRO_LEDGER`` environment
variable) appends an immutable run record — per-loop IIs, speedups,
effort counters, check outcome — to the append-only run ledger that
``python -m repro.dashboard`` queries and renders (see
``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.evaluation import bench_io
from repro.evaluation.experiments import Evaluator
from repro.evaluation.tables import (
    format_figure1,
    format_table2,
    format_table3,
    format_table4,
    format_table5,
)
from repro.observability import recording, render_stats_table, write_trace
from repro.workloads.spec import BENCHMARK_NAMES

EXPERIMENTS = ("figure1", "table2", "table3", "table4", "table5")

FORMATTERS = {
    "figure1": format_figure1,
    "table2": format_table2,
    "table3": format_table3,
    "table4": format_table4,
    "table5": format_table5,
}


def explain_workload_loop(name: str) -> int:
    """Print the --explain report for one workload loop (``<bench>.L<i>``)."""
    from repro.compiler.explain import explain_loop
    from repro.machine.configs import paper_machine
    from repro.workloads.spec import build_benchmark

    bench_name = name.rsplit(".L", 1)[0]
    if bench_name not in BENCHMARK_NAMES:
        print(
            f"unknown loop {name!r}: expected <benchmark>.L<index>, "
            f"benchmarks: {', '.join(BENCHMARK_NAMES)}",
            file=sys.stderr,
        )
        return 2
    bench = build_benchmark(bench_name)
    for wl in bench.loops:
        if wl.loop.name == name:
            print(explain_loop(wl.loop, paper_machine()))
            return 0
    print(
        f"no loop named {name!r} in {bench_name} "
        f"(it has {len(bench.loops)} loops: "
        f"{bench.loops[0].loop.name} .. {bench.loops[-1].loop.name})",
        file=sys.stderr,
    )
    return 2


def run_oracle_gap(args: argparse.Namespace) -> int:
    """Run the optimality-gap harness and gate on certified gaps."""
    from repro.oracle import OracleBudget
    from repro.oracle.gap import oracle_gap_report, render_gap_table

    budget = OracleBudget.from_env(override_nodes=args.oracle_budget)
    start = time.time()
    payload = oracle_gap_report(budget)
    print(render_gap_table(payload))
    print(f"[oracle_gap: {time.time() - start:.1f}s]")
    if not args.no_bench_json:
        path = bench_io.write_bench_json("oracle_gap", payload, args.bench_dir)
        print(f"wrote {path}")
    regressions = bench_io.oracle_gap_regressions(payload)
    print(bench_io.render_oracle_gap_gate(regressions))
    return 1 if regressions else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation",
        description="Regenerate the paper's evaluation tables.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="experiment",
        default=[],
        help=f"which experiments to run (default: all of "
        f"{', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        default=list(BENCHMARK_NAMES),
        choices=list(BENCHMARK_NAMES),
        help="restrict to a subset of benchmarks",
    )
    parser.add_argument(
        "--explain",
        metavar="LOOP",
        help="print the II provenance report for one workload loop "
        "(e.g. 101.tomcatv.L0) instead of running experiments",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="run translation validation over every compiled loop (plus "
        "the Figure 1 strategies) after the experiments; print the "
        "check gate and exit nonzero on any ERROR finding",
    )
    parser.add_argument(
        "--oracle-gap",
        action="store_true",
        help="run the exact-optimality oracle over Figure 1 plus the "
        "small-loop corpus subset instead of the table experiments: "
        "write BENCH_oracle_gap.json and exit nonzero if any *certified* "
        "loop shows a KL or II gap",
    )
    parser.add_argument(
        "--oracle-budget",
        type=int,
        default=None,
        metavar="NODES",
        help="search-node budget per oracle invocation (default: "
        "REPRO_ORACLE_BUDGET environment variable, then 200000)",
    )
    parser.add_argument(
        "--bench-dir",
        default=".",
        metavar="DIR",
        help="directory for BENCH_<experiment>.json artifacts (default: .)",
    )
    parser.add_argument(
        "--no-bench-json",
        action="store_true",
        help="skip writing BENCH_*.json artifacts",
    )
    parser.add_argument(
        "--compare-baseline",
        metavar="PATH",
        help="diff this run against a baseline JSON; exit nonzero on II "
        "or speedup regressions beyond tolerance",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="write the combined baseline JSON for the experiments run",
    )
    parser.add_argument(
        "--speedup-tolerance",
        type=float,
        default=bench_io.DEFAULT_SPEEDUP_TOLERANCE,
        help="relative speedup drop tolerated by --compare-baseline "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="compile loops on a pool of N processes (default: serial, "
        "or the REPRO_JOBS environment variable)",
    )
    parser.add_argument(
        "--compile-cache",
        metavar="DIR",
        default=None,
        help="persist compiled loops in DIR keyed by loop/machine/"
        "strategy/compiler-version (default: off, or the "
        "REPRO_COMPILE_CACHE environment variable)",
    )
    parser.add_argument(
        "--gate-effort",
        metavar="PATH",
        help="compare deterministic compile-effort counters (KL probes, "
        "bin-packs, scheduler attempts) against a baseline JSON; exit "
        "nonzero if any counter grew",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print aggregate compile telemetry after the experiments",
    )
    parser.add_argument(
        "--trace-json",
        metavar="PATH",
        help="write a JSON trace covering every compilation performed",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="profile the run: a call tree of per-phase wall time and "
        "deterministic effort counters. With PATH, write the profile "
        "JSON for python -m repro.profiling; without, print the tree",
    )
    parser.add_argument(
        "--ledger",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help="append this run to the run ledger (directory: DIR, else "
        "the REPRO_LEDGER environment variable, else .repro-ledger); "
        "setting REPRO_LEDGER alone also enables recording",
    )
    parser.add_argument(
        "--run-label",
        default="",
        metavar="LABEL",
        help="free-form label stamped on the ledger record (e.g. "
        "nightly, cold, warm)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="emit periodic progress heartbeats to stderr (loops "
        "done/total, ETA, cache hit-rate, stragglers); works with "
        "--jobs. The REPRO_PROGRESS environment variable enables the "
        "same heartbeats, but only onto an interactive terminal — "
        "redirected stderr (CI logs) stays clean unless --progress is "
        "passed explicitly",
    )
    parser.add_argument(
        "--progress-json",
        metavar="PATH",
        help="append progress heartbeats as JSON lines to PATH",
    )
    args = parser.parse_args(argv)

    if args.explain:
        return explain_workload_loop(args.explain)

    if args.oracle_gap:
        return run_oracle_gap(args)

    for experiment in args.experiments:
        if experiment not in EXPERIMENTS:
            parser.error(
                f"unknown experiment {experiment!r} "
                f"(choose from {', '.join(EXPERIMENTS)})"
            )
    experiments = args.experiments or list(EXPERIMENTS)
    names = tuple(args.benchmarks)

    progress = None
    progress_env = bool(os.environ.get("REPRO_PROGRESS"))
    if args.progress or args.progress_json or progress_env:
        from repro.profiling import ProgressMonitor

        progress = ProgressMonitor(
            stream=(
                sys.stderr if (args.progress or progress_env) else None
            ),
            json_path=args.progress_json,
            # Implicit (environment-enabled) heartbeats must not pollute
            # redirected logs; an explicit --progress always emits.
            require_tty=not args.progress,
        )

    recorder = None
    session = (
        recording(trace=bool(args.trace_json) or args.stats or args.profile is not None)
        if (args.stats or args.trace_json or args.profile is not None)
        else None
    )
    if session is not None:
        recorder = session.__enter__()
    payloads: dict[str, dict[str, object]] = {}
    run_start = time.time()
    evaluator = None
    try:
        evaluator = Evaluator(
            jobs=args.jobs,
            compile_cache=args.compile_cache,
            progress=progress,
        )
        for experiment in experiments:
            start = time.time()
            payloads[experiment] = bench_io.collect_experiment(
                evaluator, experiment, names
            )
            print(FORMATTERS[experiment](payloads[experiment]["data"]))
            print(f"[{experiment}: {time.time() - start:.1f}s]\n")
    finally:
        if session is not None:
            session.__exit__(None, None, None)
        if progress is not None:
            progress.finish()
        if evaluator is not None:
            evaluator.close()

    perf = bench_io.compile_perf_payload(
        evaluator, names, wall_s=time.time() - run_start
    )
    print(
        "compile perf: {wall_s}s wall, jobs={jobs}, cache "
        "{cache_hits} hit(s) / {cache_misses} miss(es)".format(**perf)
    )

    if not args.no_bench_json:
        for experiment, payload in payloads.items():
            path = bench_io.write_bench_json(
                experiment, payload, args.bench_dir
            )
            print(f"wrote {path}")
        path = bench_io.write_bench_json("compile_perf", perf, args.bench_dir)
        print(f"wrote {path}")

    if args.write_baseline:
        bench_io.write_baseline(args.write_baseline, payloads)
        print(f"wrote baseline {args.write_baseline}")

    if recorder is not None:
        if args.stats:
            print(render_stats_table(recorder))
        if args.trace_json:
            write_trace(recorder, args.trace_json)
            print(f"wrote trace to {args.trace_json}")
        if args.profile is not None:
            from repro.profiling import Profile, render_tree, write_profile

            profile = Profile.from_recorder(recorder)
            if args.profile == "-":
                print(render_tree(profile, counters=True))
            else:
                write_profile(profile, args.profile)
                print(f"wrote profile to {args.profile}")

    failed = False
    check_outcome: dict[str, object] | None = None
    if args.check:
        from repro.evaluation.experiments import figure1_check_reports

        check_start = time.time()
        reports = evaluator.run_checks(names) + figure1_check_reports()
        errors = sum(len(r.errors()) for r in reports)
        findings = sum(len(r.findings) for r in reports)
        for report in reports:
            if report.findings:
                print(report.render_text())
        print(
            f"check gate: {len(reports)} compile(s) validated, "
            f"{errors} error finding(s), {findings} total finding(s) "
            f"[{time.time() - check_start:.1f}s]"
        )
        check_outcome = {
            "units": len(reports),
            "errors": errors,
            "findings": findings,
            "check_ms": round((time.time() - check_start) * 1e3, 3),
        }
        failed = failed or errors > 0
    if args.compare_baseline:
        baseline = bench_io.load_baseline(args.compare_baseline)
        regressions = bench_io.compare_to_baseline(
            payloads,
            baseline,
            speedup_tolerance=args.speedup_tolerance,
        )
        print(bench_io.render_comparison(regressions))
        failed = failed or bool(regressions)
    if args.gate_effort:
        baseline = bench_io.load_baseline(args.gate_effort)
        effort_regressions = bench_io.compare_effort(payloads, baseline)
        print(bench_io.render_effort_comparison(effort_regressions))
        failed = failed or bool(effort_regressions)

    if args.ledger is not None or os.environ.get("REPRO_LEDGER"):
        from repro.ledger import Ledger, record_from_payloads

        record = record_from_payloads(
            payloads,
            perf,
            label=args.run_label,
            config={
                "benchmarks": sorted(names),
                "compile_cache": args.compile_cache is not None,
            },
            check=check_outcome,
            profile=(
                args.profile
                if args.profile not in (None, "-")
                else None
            ),
            notes=(["gate failed"] if failed else []),
        )
        ledger = Ledger(
            args.ledger
            or os.environ.get("REPRO_LEDGER")
            or Ledger().root
        )
        ledger.append(record)
        print(f"recorded run {record.run_id} in {ledger.runs_path}")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
