"""On-disk, content-addressed cache of compiled loops.

A cache entry is the pickled :class:`~repro.compiler.driver.CompiledLoop`
produced by one ``compile_loop`` invocation, stored under a SHA-256 key
derived from everything that determines its output:

* the loop IR and the machine description (canonically pickled — lazy
  memo attributes are excluded from pickles precisely so equal inputs
  hash equally),
* the strategy and partition/unroll/optimization knobs, and
* a *code version*: the hash of every ``repro`` source file, so any
  compiler change invalidates the whole cache rather than serving stale
  results.

The cache is safe to share between processes: entries are written to a
temporary file and atomically renamed into place, a torn or corrupt
entry reads as a miss, and concurrent writers of the same key converge
on identical content.  Enable it by passing a directory to
:class:`CompileCache` (the evaluation CLI wires ``--compile-cache`` /
``REPRO_COMPILE_CACHE`` to this).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import replace

from repro.compiler.driver import CompiledLoop

_PICKLE_PROTOCOL = 4

_code_version: str | None = None


def canonical_loop(loop):
    """``loop`` with operation uids renumbered to position order.

    Operation uids come from a process-global counter, so two builds of
    the same workload loop carry different absolute uids.  Every
    uid-bearing field (``uid`` itself and the ``origin`` provenance
    link) is remapped onto a dense 0..n-1 numbering over preheader+body
    order; registers and arrays are already name-based.  The result
    hashes equally for logically identical loops regardless of build
    order, and remains injective per loop, so distinct loops cannot
    collide through the renumbering."""
    ops = list(loop.preheader) + list(loop.body)
    remap = {op.uid: i for i, op in enumerate(ops)}

    def fix(op):
        origin = op.origin
        if origin is not None:
            origin = remap.get(origin, origin)
        return replace(op, uid=remap[op.uid], origin=origin)

    return replace(
        loop,
        preheader=tuple(fix(op) for op in loop.preheader),
        body=tuple(fix(op) for op in loop.body),
    )


def code_version() -> str:
    """SHA-256 over every ``repro`` source file (path and content).

    Computed once per process.  Any edit to the compiler — not just to
    modules a compilation happens to import — changes the version, which
    keeps cache keys conservative.
    """
    global _code_version
    if _code_version is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for directory, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(directory, filename)
                digest.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as f:
                    digest.update(f.read())
        _code_version = digest.hexdigest()
    return _code_version


def cache_key(
    loop,
    machine,
    strategy,
    partition_config=None,
    baseline_unroll=None,
    optimize=False,
    allow_reassociation=False,
) -> str:
    """Content hash of one ``compile_loop`` invocation's inputs."""
    blob = pickle.dumps(
        (
            code_version(),
            canonical_loop(loop),
            machine,
            strategy.value,
            partition_config,
            baseline_unroll,
            optimize,
            allow_reassociation,
        ),
        protocol=_PICKLE_PROTOCOL,
    )
    return hashlib.sha256(blob).hexdigest()


class CompileCache:
    """Directory-backed store of compiled loops keyed by content hash."""

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], f"{key}.pkl")

    def load(self, key: str) -> CompiledLoop | None:
        """The cached compile result, or ``None`` on a miss (including a
        missing, torn, or unreadable entry)."""
        try:
            with open(self._path(key), "rb") as f:
                value = pickle.load(f)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        return value if isinstance(value, CompiledLoop) else None

    def store(self, key: str, compiled: CompiledLoop) -> None:
        """Atomically persist one compile result under ``key``."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(compiled, f, protocol=_PICKLE_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
