"""On-disk, content-addressed cache of compiled loops.

A cache entry is the pickled :class:`~repro.compiler.driver.CompiledLoop`
produced by one ``compile_loop`` invocation, stored under a SHA-256 key
derived from everything that determines its output:

* the loop IR and the machine description (canonically pickled — lazy
  memo attributes are excluded from pickles precisely so equal inputs
  hash equally),
* the strategy and partition/unroll/optimization knobs, and
* a *code version*: the hash of every ``repro`` source file, so any
  compiler change invalidates the whole cache rather than serving stale
  results.

The cache is safe to share between processes: entries are written to a
temporary file and atomically renamed into place, a torn or corrupt
entry reads as a miss, and concurrent writers of the same key converge
on identical content.  Enable it by passing a directory to
:class:`CompileCache` (the evaluation CLI wires ``--compile-cache`` /
``REPRO_COMPILE_CACHE`` to this).

With ``max_bytes`` set the cache is additionally size-bounded: every
hit bumps the entry's mtime, and after each store the least-recently
used entries are evicted until the directory fits the budget.  An
eviction racing a reader degrades to a miss on the reader's side (the
open fails, the caller recompiles) — never a torn or wrong artifact,
because entries only ever appear via atomic rename and only ever
disappear whole.  Hit/miss/eviction counts flow through the recorder
(``compile_cache.hits`` / ``.misses`` / ``.evictions``) so profiles
and ledger records can attribute them.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import replace

from repro.compiler.driver import CompiledLoop
from repro.observability.recorder import active_recorder

_PICKLE_PROTOCOL = 4

_code_version: str | None = None


def canonical_loop(loop):
    """``loop`` with operation uids renumbered to position order.

    Operation uids come from a process-global counter, so two builds of
    the same workload loop carry different absolute uids.  Every
    uid-bearing field (``uid`` itself and the ``origin`` provenance
    link) is remapped onto a dense 0..n-1 numbering over preheader+body
    order; registers and arrays are already name-based.  The result
    hashes equally for logically identical loops regardless of build
    order, and remains injective per loop, so distinct loops cannot
    collide through the renumbering."""
    ops = list(loop.preheader) + list(loop.body)
    remap = {op.uid: i for i, op in enumerate(ops)}

    def fix(op):
        origin = op.origin
        if origin is not None:
            origin = remap.get(origin, origin)
        return replace(op, uid=remap[op.uid], origin=origin)

    return replace(
        loop,
        preheader=tuple(fix(op) for op in loop.preheader),
        body=tuple(fix(op) for op in loop.body),
    )


def code_version() -> str:
    """SHA-256 over every ``repro`` source file (path and content).

    Computed once per process.  Any edit to the compiler — not just to
    modules a compilation happens to import — changes the version, which
    keeps cache keys conservative.
    """
    global _code_version
    if _code_version is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for directory, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(directory, filename)
                digest.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as f:
                    digest.update(f.read())
        _code_version = digest.hexdigest()
    return _code_version


def cache_key(
    loop,
    machine,
    strategy,
    partition_config=None,
    baseline_unroll=None,
    optimize=False,
    allow_reassociation=False,
) -> str:
    """Content hash of one ``compile_loop`` invocation's inputs."""
    blob = pickle.dumps(
        (
            code_version(),
            canonical_loop(loop),
            machine,
            strategy.value,
            partition_config,
            baseline_unroll,
            optimize,
            allow_reassociation,
        ),
        protocol=_PICKLE_PROTOCOL,
    )
    return hashlib.sha256(blob).hexdigest()


class CompileCache:
    """Directory-backed store of compiled loops keyed by content hash.

    ``max_bytes`` bounds the total size of stored entries: hits refresh
    recency (mtime), and each store evicts least-recently-used entries
    until the cache fits.  ``hits`` / ``misses`` / ``evictions`` count
    this instance's traffic; the same counts are emitted through the
    active recorder when one is installed.
    """

    def __init__(self, directory: str, max_bytes: int | None = None):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        self.directory = directory
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        os.makedirs(directory, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], f"{key}.pkl")

    def _count(self, name: str, n: int = 1) -> None:
        rec = active_recorder()
        if rec is not None:
            rec.count(f"compile_cache.{name}", n)

    def load(self, key: str) -> CompiledLoop | None:
        """The cached compile result, or ``None`` on a miss (including a
        missing, torn, or unreadable entry)."""
        path = self._path(key)
        try:
            with open(path, "rb") as f:
                value = pickle.load(f)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            value = None
        if isinstance(value, CompiledLoop):
            self.hits += 1
            self._count("hits")
            try:
                # Recency bump: LRU eviction orders entries by mtime.
                os.utime(path)
            except OSError:
                pass
            return value
        self.misses += 1
        self._count("misses")
        return None

    def store(self, key: str, compiled: CompiledLoop) -> None:
        """Atomically persist one compile result under ``key``."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(compiled, f, protocol=_PICKLE_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self.max_bytes is not None:
            self._evict(keep=key)

    def entries(self) -> list[tuple[str, int, float]]:
        """``(key, size_bytes, mtime)`` for every complete entry.

        In-flight ``.tmp`` spool files are not entries; a file that
        vanishes mid-scan (concurrent eviction) is simply skipped.
        """
        found: list[tuple[str, int, float]] = []
        try:
            shards = sorted(os.scandir(self.directory), key=lambda e: e.name)
        except OSError:
            return found
        for shard in shards:
            if not shard.is_dir():
                continue
            try:
                files = sorted(os.scandir(shard.path), key=lambda e: e.name)
            except OSError:
                continue
            for entry in files:
                if not entry.name.endswith(".pkl"):
                    continue
                try:
                    stat = entry.stat()
                except OSError:
                    continue
                found.append(
                    (entry.name[: -len(".pkl")], stat.st_size, stat.st_mtime)
                )
        return found

    def total_bytes(self) -> int:
        return sum(size for _, size, _ in self.entries())

    def stats(self) -> dict:
        entries = self.entries()
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
            "max_bytes": self.max_bytes,
        }

    def _evict(self, keep: str | None = None) -> int:
        """Remove least-recently-used entries until the cache fits
        ``max_bytes``.  The ``keep`` key (the one just stored) is never
        evicted, so a store always leaves its own artifact readable.
        Returns the number of entries removed."""
        if self.max_bytes is None:
            return 0
        entries = self.entries()
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return 0
        removed = 0
        # Oldest mtime first; key breaks ties deterministically.
        for key, size, _ in sorted(entries, key=lambda e: (e[2], e[0])):
            if total <= self.max_bytes:
                break
            if key == keep:
                continue
            try:
                os.unlink(self._path(key))
            except OSError:
                # Already gone (concurrent eviction): its bytes are
                # freed either way.
                pass
            total -= size
            removed += 1
        if removed:
            self.evictions += removed
            self._count("evictions", removed)
        return removed
